// Command garlint is the repository's custom vet tool. It runs the
// analyzers of internal/lint (nopanic, ctxpass, mustonly, snaponce,
// lockhold, goexit, errlost) under the go command's unitchecker
// protocol:
//
//	go build -o bin/garlint ./cmd/garlint
//	go vet -vettool=bin/garlint ./...
//
// The go command drives the tool three ways: `-flags` asks for the
// supported analyzer flags as JSON, `-V=full` asks for a version line
// used as the cache key, and otherwise the single argument is a vet.cfg
// file describing one typechecked package (file set, import map and
// export data locations). Diagnostics go to stderr as
// "file:line:col: [analyzer] message" and a nonzero exit marks the
// package as failing. Three output flags reshape that report:
//
//	-json          one JSON object per package: diagnostics plus the
//	               per-analyzer //garlint:allow suppression tally
//	-github        GitHub Actions workflow annotations
//	               (::error file=...,line=...::message), so CI findings
//	               land on the offending diff line
//	-suppressions  append the per-analyzer suppression counts to the
//	               plain-text report
//
// Unlike x/tools' unitchecker this implementation is dependency-free:
// packages are typechecked with go/types against the export data the
// go command already built. Only packages of this module are analyzed;
// for dependency packages the tool just records an empty facts file so
// the go command can cache the no-op.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// vetConfig is the relevant subset of the JSON the go command writes to
// $objdir/vet.cfg for each package (see cmd/go/internal/work).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// outputMode selects how run renders its report.
type outputMode struct {
	// json emits one JSON object per package instead of text lines.
	json bool
	// github emits GitHub Actions ::error annotations.
	github bool
	// suppressions appends the //garlint:allow tally to the text report.
	suppressions bool
}

func main() {
	printFlags := flag.Bool("flags", false, "print the analyzer flags as JSON and exit")
	version := flag.String("V", "", "print the tool version (go vet protocol; pass 'full')")
	var mode outputMode
	flag.BoolVar(&mode.json, "json", false, "emit diagnostics and suppression counts as JSON")
	flag.BoolVar(&mode.github, "github", false, "emit diagnostics as GitHub Actions annotations")
	flag.BoolVar(&mode.suppressions, "suppressions", false, "report //garlint:allow suppression counts per analyzer")
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Parse()

	switch {
	case *printFlags:
		emitFlags()
	case *version != "":
		emitVersion()
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		os.Exit(run(flag.Arg(0), enabled, mode))
	default:
		fmt.Fprintln(os.Stderr, "garlint: run me via `go vet -vettool=$(command -v garlint) ./...`")
		os.Exit(1)
	}
}

// emitFlags answers the go command's `-flags` query: the set of flags
// it may forward from the `go vet` command line.
func emitFlags() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit diagnostics and suppression counts as JSON"},
		{Name: "github", Bool: true, Usage: "emit diagnostics as GitHub Actions annotations"},
		{Name: "suppressions", Bool: true, Usage: "report //garlint:allow suppression counts per analyzer"},
	}
	for _, a := range lint.All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "garlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", data)
}

// emitVersion answers `-V=full`. The line doubles as the go command's
// cache key for vet results, so it must change whenever the tool's
// behavior does: hash the executable itself.
func emitVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		var f *os.File
		if f, err = os.Open(exe); err == nil {
			_, err = io.Copy(h, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		// An unreadable executable still needs a version line; fold the
		// failure into the hash so the cache key stays honest.
		fmt.Fprintf(h, "unreadable executable: %v", err)
	}
	fmt.Printf("garlint version %x\n", h.Sum(nil)[:12])
}

// run analyzes the package described by one vet.cfg file.
func run(cfgPath string, enabled map[string]*bool, mode outputMode) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "garlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "garlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even for skipped packages, or the go
	// command cannot cache the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "garlint: %v\n", err)
			return 1
		}
	}
	// Dependencies (including std) are vetted facts-only by the go
	// command; this tool has no cross-package facts, so they are no-ops.
	if cfg.VetxOnly || !inModule(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "garlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	info := lint.NewInfo()
	conf := types.Config{
		Importer:  exportDataImporter(fset, &cfg),
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "garlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if on := enabled[a.Name]; on == nil || *on {
			analyzers = append(analyzers, a)
		}
	}
	res := lint.Run(fset, files, pkg, info, analyzers)
	diags := res.Diags
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	report(&cfg, diags, res.Suppressed, mode)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// report renders one package's findings to stderr in the selected mode.
func report(cfg *vetConfig, diags []lint.Diagnostic, suppressed map[string]int, mode outputMode) {
	if mode.json {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := struct {
			Package     string         `json:"package"`
			Diagnostics []jsonDiag     `json:"diagnostics"`
			Suppressed  map[string]int `json:"suppressed,omitempty"`
		}{Package: cfg.ImportPath, Diagnostics: []jsonDiag{}, Suppressed: suppressed}
		for _, d := range diags {
			out.Diagnostics = append(out.Diagnostics, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "garlint: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s\n", data)
		return
	}
	for _, d := range diags {
		if mode.github {
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d,title=garlint/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			continue
		}
		fmt.Fprintln(os.Stderr, d)
	}
	if mode.suppressions && len(suppressed) > 0 {
		names := make([]string, 0, len(suppressed))
		for name := range suppressed {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, suppressed[name]))
		}
		fmt.Fprintf(os.Stderr, "garlint: %s: suppressed by %s: %s\n",
			cfg.ImportPath, lint.AllowDirective, strings.Join(parts, " "))
	}
}

// inModule reports whether the import path belongs to this module.
func inModule(path string) bool {
	const module = "repro"
	return path == module || strings.HasPrefix(path, module+"/")
}

// exportDataImporter resolves imports from the export data the go
// command listed in the vet config: source import paths go through
// ImportMap to their canonical form, whose compiled export file is in
// PackageFile.
func exportDataImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return unsafeAware{importer.ForCompiler(fset, cfg.Compiler, lookup)}
}

// unsafeAware short-circuits the pseudo-package unsafe, which has no
// export data.
type unsafeAware struct{ types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.Importer.Import(path)
}
