package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeVetCfg builds a minimal vet.cfg for a single-file package with
// no imports, which lets run() be tested without the go command.
func writeVetCfg(t *testing.T, dir, src string) (cfgPath, vetx string) {
	t.Helper()
	goFile := filepath.Join(dir, "lib.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx = filepath.Join(dir, "out.vetx")
	cfg := vetConfig{
		ID:         "repro/fixture",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "repro/fixture",
		GoFiles:    []string{goFile},
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetx
}

// captureStderr runs f with os.Stderr redirected and returns the output.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	var buf strings.Builder
	chunk := make([]byte, 4096)
	for {
		n, err := r.Read(chunk)
		buf.Write(chunk[:n])
		if err != nil {
			break
		}
	}
	return buf.String()
}

func TestRunReportsDiagnostics(t *testing.T) {
	cfgPath, vetx := writeVetCfg(t, t.TempDir(), `package fixture

func Explode() {
	panic("boom")
}
`)
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil, outputMode{}) })
	if code != 2 {
		t.Fatalf("run = %d, want 2; stderr:\n%s", code, out)
	}
	if !strings.Contains(out, "[nopanic] panic in library function Explode") {
		t.Errorf("stderr missing nopanic finding:\n%s", out)
	}
	if !strings.Contains(out, "lib.go:4:2") {
		t.Errorf("stderr missing position:\n%s", out)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestRunCleanPackage(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

// MustExplode may panic: the Must* convention.
func MustExplode() {
	panic("boom")
}
`)
	if code := run(cfgPath, nil, outputMode{}); code != 0 {
		t.Fatalf("run = %d, want 0", code)
	}
}

func TestRunAnalyzerDisabled(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

func Explode() {
	panic("boom")
}
`)
	off := false
	on := true
	enabled := map[string]*bool{"nopanic": &off, "ctxpass": &on, "mustonly": &on}
	var code int
	captureStderr(t, func() { code = run(cfgPath, enabled, outputMode{}) })
	if code != 0 {
		t.Fatalf("run with nopanic disabled = %d, want 0", code)
	}
}

func TestRunSkipsForeignPackages(t *testing.T) {
	dir := t.TempDir()
	cfgPath, vetx := writeVetCfg(t, dir, `package fixture

func Explode() { panic("boom") }
`)
	// Rewrite the config to a non-module import path: the tool must
	// write the facts file and succeed without analyzing.
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.ID, cfg.ImportPath = "example.com/dep", "example.com/dep"
	data, err = json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(cfgPath, nil, outputMode{}); code != 0 {
		t.Fatalf("run on foreign package = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written for skipped package: %v", err)
	}
}

func TestRunSucceedOnTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	cfgPath, _ := writeVetCfg(t, dir, `package fixture

func Broken() undefinedType { return nil }
`)
	data, _ := os.ReadFile(cfgPath)
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.SucceedOnTypecheckFailure = true
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(cfgPath, nil, outputMode{}); code != 0 {
		t.Fatalf("run = %d, want 0 with SucceedOnTypecheckFailure", code)
	}

	cfg.SucceedOnTypecheckFailure = false
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil, outputMode{}) })
	if code == 0 {
		t.Fatalf("run = 0, want failure on typecheck error; stderr:\n%s", out)
	}
}

// TestVetToolProtocol exercises the real `go vet -vettool` integration:
// the built tool must answer -flags and -V=full and pass over a clean
// package of this repository.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "garlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/garlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}

	out, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	// Three output-mode flags plus the seven analyzer toggles.
	if len(defs) != 10 {
		t.Errorf("-flags lists %d flags, want 10", len(defs))
	}
	byName := map[string]bool{}
	for _, d := range defs {
		byName[d.Name] = true
	}
	for _, want := range []string{"json", "github", "suppressions", "nopanic", "ctxpass", "mustonly", "snaponce", "lockhold", "goexit", "errlost"} {
		if !byName[want] {
			t.Errorf("-flags missing %q", want)
		}
	}

	out, err = exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) != 3 || fields[0] != "garlint" || fields[1] != "version" {
		t.Errorf("-V=full output %q, want \"garlint version <hash>\"", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./internal/lint/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool failed on clean package: %v\n%s", err, out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

//garlint:allow nopanic -- fixture: exercising the suppression tally
func waved() { panic("ok") }

func Explode() {
	panic("boom")
}
`)
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil, outputMode{json: true}) })
	if code != 2 {
		t.Fatalf("run = %d, want 2; stderr:\n%s", code, out)
	}
	var rep struct {
		Package     string
		Diagnostics []struct {
			File     string
			Line     int
			Col      int
			Analyzer string
			Message  string
		}
		Suppressed map[string]int
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if rep.Package != "repro/fixture" {
		t.Errorf("package = %q, want repro/fixture", rep.Package)
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Analyzer != "nopanic" || rep.Diagnostics[0].Line != 7 {
		t.Errorf("diagnostics = %+v, want one nopanic finding at line 7", rep.Diagnostics)
	}
	if rep.Suppressed["nopanic"] != 1 {
		t.Errorf("suppressed = %v, want nopanic=1", rep.Suppressed)
	}
}

func TestRunGitHubAnnotations(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

func Explode() {
	panic("boom")
}
`)
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil, outputMode{github: true}) })
	if code != 2 {
		t.Fatalf("run = %d, want 2; stderr:\n%s", code, out)
	}
	if !strings.Contains(out, "::error file=") || !strings.Contains(out, ",line=4,") ||
		!strings.Contains(out, "title=garlint/nopanic") {
		t.Errorf("stderr is not a GitHub annotation:\n%s", out)
	}
}

func TestRunSuppressionsReport(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

//garlint:allow nopanic -- fixture: deliberate panic behind a directive
func waved() { panic("ok") }
`)
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil, outputMode{suppressions: true}) })
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr:\n%s", code, out)
	}
	if !strings.Contains(out, "suppressed by //garlint:allow: nopanic=1") {
		t.Errorf("stderr missing suppression tally:\n%s", out)
	}
}
