package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeVetCfg builds a minimal vet.cfg for a single-file package with
// no imports, which lets run() be tested without the go command.
func writeVetCfg(t *testing.T, dir, src string) (cfgPath, vetx string) {
	t.Helper()
	goFile := filepath.Join(dir, "lib.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx = filepath.Join(dir, "out.vetx")
	cfg := vetConfig{
		ID:         "repro/fixture",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "repro/fixture",
		GoFiles:    []string{goFile},
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetx
}

// captureStderr runs f with os.Stderr redirected and returns the output.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	var buf strings.Builder
	chunk := make([]byte, 4096)
	for {
		n, err := r.Read(chunk)
		buf.Write(chunk[:n])
		if err != nil {
			break
		}
	}
	return buf.String()
}

func TestRunReportsDiagnostics(t *testing.T) {
	cfgPath, vetx := writeVetCfg(t, t.TempDir(), `package fixture

func Explode() {
	panic("boom")
}
`)
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil) })
	if code != 2 {
		t.Fatalf("run = %d, want 2; stderr:\n%s", code, out)
	}
	if !strings.Contains(out, "[nopanic] panic in library function Explode") {
		t.Errorf("stderr missing nopanic finding:\n%s", out)
	}
	if !strings.Contains(out, "lib.go:4:2") {
		t.Errorf("stderr missing position:\n%s", out)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestRunCleanPackage(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

// MustExplode may panic: the Must* convention.
func MustExplode() {
	panic("boom")
}
`)
	if code := run(cfgPath, nil); code != 0 {
		t.Fatalf("run = %d, want 0", code)
	}
}

func TestRunAnalyzerDisabled(t *testing.T) {
	cfgPath, _ := writeVetCfg(t, t.TempDir(), `package fixture

func Explode() {
	panic("boom")
}
`)
	off := false
	on := true
	enabled := map[string]*bool{"nopanic": &off, "ctxpass": &on, "mustonly": &on}
	var code int
	captureStderr(t, func() { code = run(cfgPath, enabled) })
	if code != 0 {
		t.Fatalf("run with nopanic disabled = %d, want 0", code)
	}
}

func TestRunSkipsForeignPackages(t *testing.T) {
	dir := t.TempDir()
	cfgPath, vetx := writeVetCfg(t, dir, `package fixture

func Explode() { panic("boom") }
`)
	// Rewrite the config to a non-module import path: the tool must
	// write the facts file and succeed without analyzing.
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.ID, cfg.ImportPath = "example.com/dep", "example.com/dep"
	data, err = json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(cfgPath, nil); code != 0 {
		t.Fatalf("run on foreign package = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written for skipped package: %v", err)
	}
}

func TestRunSucceedOnTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	cfgPath, _ := writeVetCfg(t, dir, `package fixture

func Broken() undefinedType { return nil }
`)
	data, _ := os.ReadFile(cfgPath)
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.SucceedOnTypecheckFailure = true
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(cfgPath, nil); code != 0 {
		t.Fatalf("run = %d, want 0 with SucceedOnTypecheckFailure", code)
	}

	cfg.SucceedOnTypecheckFailure = false
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStderr(t, func() { code = run(cfgPath, nil) })
	if code == 0 {
		t.Fatalf("run = 0, want failure on typecheck error; stderr:\n%s", out)
	}
}

// TestVetToolProtocol exercises the real `go vet -vettool` integration:
// the built tool must answer -flags and -V=full and pass over a clean
// package of this repository.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "garlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/garlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}

	out, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	if len(defs) != 3 {
		t.Errorf("-flags lists %d analyzers, want 3", len(defs))
	}

	out, err = exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) != 3 || fields[0] != "garlint" || fields[1] != "version" {
		t.Errorf("-V=full output %q, want \"garlint version <hash>\"", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./internal/lint/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool failed on clean package: %v\n%s", err, out)
	}
}
