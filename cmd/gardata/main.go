// Command gardata generates the synthetic NLIDB benchmarks (GEO-like,
// SPIDER-like, MT-TEQL-like, QBEN-like) and prints their Table 3
// statistics or dumps sample items for inspection.
//
// Usage:
//
//	gardata -stats                      # Table 3 over all benchmarks
//	gardata -bench spider -dump 10      # show 10 validation items
//	gardata -bench qben -dump 5 -scale full
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	bench := flag.String("bench", "spider", "benchmark: spider, geo, mtteql, qben")
	dump := flag.Int("dump", 0, "dump N evaluation items")
	stats := flag.Bool("stats", false, "print Table 3 statistics for all benchmarks")
	scale := flag.String("scale", "small", "small or full")
	out := flag.String("out", "", "export the benchmark as JSON to this file")
	in := flag.String("in", "", "load a benchmark from a JSON file instead of generating")
	flag.Parse()

	cfg := experiments.Small()
	if *scale == "full" {
		cfg = experiments.Full()
	}
	lab := experiments.NewLab(cfg)

	if *stats {
		t, err := lab.Table3()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
		return
	}

	var b *datasets.Benchmark
	var items []datasets.Item
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if b, err = datasets.ReadJSON(f); err != nil {
			fatal(err)
		}
		items = b.Test
		if len(items) == 0 {
			items = b.Val
		}
	}
	switch {
	case b != nil:
		// loaded above
	default:
		b, items = generate(lab, *bench)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := b.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchmark written to %s\n", *out)
	}
	if *dump <= 0 {
		st := datasets.StatsOf(b, items)
		t := &report.Table{
			Title:   fmt.Sprintf("%s evaluation split", *bench),
			Columns: []string{"DBs", "AvgTables", "Queries", "Nested", "ORDER BY", "GROUP BY", "Compound"},
		}
		t.AddRow(st.Databases, fmt.Sprintf("%.2f", st.AvgTables), st.Queries,
			st.Nested, st.OrderBy, st.GroupBy, st.Compound)
		fmt.Println(t.Render())
		return
	}
	for i, it := range items {
		if i >= *dump {
			break
		}
		fmt.Printf("DB:   %s\nNL:   %s\nSQL:  %s\n\n", it.DB, it.NL, it.Gold)
	}
}

// generate builds the named benchmark from the lab and returns its
// evaluation split.
func generate(lab *experiments.Lab, bench string) (*datasets.Benchmark, []datasets.Item) {
	switch bench {
	case "spider":
		b := lab.Spider()
		return b, b.Val
	case "geo":
		b := lab.Geo()
		return b, b.Test
	case "mtteql":
		b := lab.MTTEQL()
		return b, b.Test
	case "qben":
		b := lab.QBEN()
		return b, b.Test
	default:
		fatal(fmt.Errorf("unknown benchmark %q", bench))
		return nil, nil
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gardata: %v\n", err)
	os.Exit(1)
}
