package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/gar"
)

const serveMemArgsEnv = "GAR_SERVE_MEM_ARGS"

// TestServeMemlimitHelper is the child body for the flag-rejection
// tests: it runs the real runServe with the arguments passed in the
// environment, so the parent can observe the fatal exit.
func TestServeMemlimitHelper(t *testing.T) {
	raw := os.Getenv(serveMemArgsEnv)
	if raw == "" {
		t.Skip("helper process body; run via TestServeMemlimitFloor")
	}
	runServe(strings.Fields(raw))
}

// TestServeMemlimitFloor pins the up-front rejection of budgets too
// small to serve: a -memlimit below 1 MiB, and a fleet whose per-tenant
// share falls below that floor, must both refuse to start with an
// error that names the flag and the floor.
func TestServeMemlimitFloor(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := []struct {
		name string
		args string
		want string
	}{
		{"below floor", "-demo -addr 127.0.0.1:0 -memlimit 1024", "-memlimit 1024 bytes is below"},
		{"negative", "-demo -addr 127.0.0.1:0 -memlimit -1", "below"},
		{"fleet share", "-specdir " + dir + " -addr 127.0.0.1:0 -memlimit 2097152 -maxtenants 8",
			"per-tenant memory share"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(exe, "-test.run=^TestServeMemlimitHelper$", "-test.v")
			cmd.Env = append(os.Environ(), serveMemArgsEnv+"="+tc.args)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("server started despite %q:\n%s", tc.args, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("rejection message for %q lacks %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}

// TestServeHealthzReportsMemory pins the resource-governance block of
// /healthz: with a budget configured, operators must see live usage,
// the snapshot's footprint, and a clean degradation record.
func TestServeHealthzReportsMemory(t *testing.T) {
	sys, _, err := buildSystem(demoSpec(), gar.Options{
		GeneralizeSize: 200, RetrievalK: 10, Seed: 1,
		EncoderEpochs: 12, RerankEpochs: 30,
		MemBudget: 64 << 20, SpillDir: t.TempDir(),
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	h := newServeHandler(sys, serveConfig{})

	if rec := postTranslate(h, `{"question": "how many employees are there"}`); rec.Code != http.StatusOK {
		t.Fatalf("translate status %d: %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", rec.Code, rec.Body)
	}
	var health struct {
		Memory *struct {
			Budget struct {
				Limit int64 `json:"limit"`
				Used  int64 `json:"used"`
				Peak  int64 `json:"peak"`
			} `json:"budget"`
			SnapshotBytes int64  `json:"snapshot_bytes"`
			Degraded      bool   `json:"degraded"`
			DegradeReason string `json:"degrade_reason"`
		} `json:"memory"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Memory == nil {
		t.Fatalf("healthz lacks memory block: %s", rec.Body)
	}
	m := health.Memory
	if m.Budget.Limit != 64<<20 {
		t.Errorf("budget limit = %d, want %d", m.Budget.Limit, 64<<20)
	}
	if m.Budget.Used <= 0 || m.SnapshotBytes <= 0 {
		t.Errorf("budget used = %d, snapshot bytes = %d, want both positive", m.Budget.Used, m.SnapshotBytes)
	}
	if m.Budget.Peak < m.Budget.Used {
		t.Errorf("peak %d below used %d", m.Budget.Peak, m.Budget.Used)
	}
	if m.Degraded || m.DegradeReason != "" {
		t.Errorf("roomy budget degraded: %v %q", m.Degraded, m.DegradeReason)
	}

	// An ungoverned system must not grow a memory block.
	plain := testHandler(t, serveConfig{})
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var bare map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &bare); err != nil {
		t.Fatal(err)
	}
	if _, ok := bare["memory"]; ok {
		t.Errorf("ungoverned healthz has memory block: %s", rec.Body)
	}
}
