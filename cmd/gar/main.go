// Command gar translates natural-language questions to SQL for a
// user-provided database using the GAR generate-and-rank pipeline.
//
// The database, sample queries, training examples and (optional) content
// come from a JSON spec file:
//
//	{
//	  "database": {
//	    "name": "company",
//	    "tables": [{
//	      "name": "employee", "annotation": "employee",
//	      "primaryKey": ["employee_id"],
//	      "columns": [
//	        {"name": "employee_id", "nl": "employee id", "type": "number"},
//	        {"name": "name", "nl": "name", "type": "text"}
//	      ]}],
//	    "foreignKeys": [{"fromTable": "...", "fromColumn": "...",
//	                     "toTable": "...", "toColumn": "..."}],
//	    "joinAnnotations": [{"tables": [...], "description": "...",
//	      "tableKeys": "...", "conditions": [{"leftTable": "...", ...}]}]
//	  },
//	  "samples": ["SELECT name FROM employee WHERE age > 30"],
//	  "examples": [{"question": "...", "sql": "..."}],
//	  "content": {"employee": [[1, "George", 45]]}
//	}
//
// Usage:
//
//	gar -spec db.json -q "who is the oldest employee"
//	gar -spec db.json            # interactive: one question per line
//	gar -demo -q "how many employees are there"
//	gar serve -demo -addr :8765  # HTTP JSON API (see serve.go)
//	gar serve -demo -statedir /var/lib/gar   # durable checkpoints + warm start
//	gar serve -specdir specs/ -statedir /var/lib/gar -maxtenants 16   # multi-tenant fleet (see serve_fleet.go)
//	gar lint -spec db.json queries.sql   # semantic SQL checks (see lint.go)
//	gar lint -demo -pool 500 -o json     # lint a generated candidate pool
//	gar checkpoint list -statedir /var/lib/gar   # inspect/verify/prune state (see checkpoint.go)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/gar"
)

type spec struct {
	Database struct {
		Name   string `json:"name"`
		Tables []struct {
			Name       string   `json:"name"`
			Annotation string   `json:"annotation"`
			PrimaryKey []string `json:"primaryKey"`
			Columns    []struct {
				Name string `json:"name"`
				NL   string `json:"nl"`
				Type string `json:"type"`
			} `json:"columns"`
		} `json:"tables"`
		ForeignKeys []struct {
			FromTable  string `json:"fromTable"`
			FromColumn string `json:"fromColumn"`
			ToTable    string `json:"toTable"`
			ToColumn   string `json:"toColumn"`
		} `json:"foreignKeys"`
		JoinAnnotations []struct {
			Tables      []string `json:"tables"`
			Description string   `json:"description"`
			TableKeys   string   `json:"tableKeys"`
			Conditions  []struct {
				LeftTable   string `json:"leftTable"`
				LeftColumn  string `json:"leftColumn"`
				RightTable  string `json:"rightTable"`
				RightColumn string `json:"rightColumn"`
			} `json:"conditions"`
		} `json:"joinAnnotations"`
	} `json:"database"`
	Samples  []string `json:"samples"`
	Examples []struct {
		Question string `json:"question"`
		SQL      string `json:"sql"`
	} `json:"examples"`
	Content map[string][][]any `json:"content"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(runLint(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "checkpoint" {
		os.Exit(runCheckpoint(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "feedback" {
		os.Exit(runFeedback(os.Args[2:], os.Stdout, os.Stderr))
	}
	specPath := flag.String("spec", "", "path to the JSON database spec")
	question := flag.String("q", "", "question to translate (omit for interactive mode)")
	demo := flag.Bool("demo", false, "use the built-in employee demo database")
	topK := flag.Int("top", 3, "number of alternatives to display")
	garJ := flag.Bool("j", false, "enable GAR-J (use join annotations)")
	pool := flag.Int("pool", 2000, "generalized candidate pool size")
	saveModels := flag.String("savemodels", "", "save trained ranking models to this file")
	loadModels := flag.String("loadmodels", "", "load ranking models instead of training")
	flag.Parse()

	s, err := loadSpec(*specPath, *demo)
	if err != nil {
		fatal(err)
	}

	// Spec workloads have few training examples, so train longer than
	// the benchmark defaults.
	sys, content, models, err := buildSystemModels(s, gar.Options{
		GeneralizeSize:  *pool,
		JoinAnnotations: *garJ,
		Seed:            1,
		EncoderEpochs:   14,
		RerankEpochs:    40,
	}, *loadModels)
	if err != nil {
		fatal(err)
	}
	if *saveModels != "" {
		if err := models.SaveFile(*saveModels); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "models saved to %s\n", *saveModels)
	}
	fmt.Fprintf(os.Stderr, "prepared %d candidate queries; models trained\n", sys.PoolSize())

	translate := func(q string) {
		res, err := sys.Translate(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		fmt.Printf("SQL:     %s\nDialect: %s\n", res.SQL, res.Dialect)
		for i, c := range res.Candidates {
			if i == 0 || i >= *topK {
				continue
			}
			fmt.Printf("alt %d:   %s\n", i, c.SQL)
		}
		if content != nil {
			if rows, err := content.Query(res.SQL); err == nil {
				fmt.Printf("Rows:    %v\n", rows)
			}
		}
	}

	if *question != "" {
		translate(*question)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(os.Stderr, "gar> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "exit" || line == "quit" {
			break
		}
		translate(line)
		fmt.Fprint(os.Stderr, "gar> ")
	}
}

// loadSpec resolves the -spec/-demo flags to a validated spec.
func loadSpec(specPath string, demo bool) (*spec, error) {
	var s *spec
	switch {
	case demo:
		s = demoSpec()
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		s = &spec{}
		if err := json.Unmarshal(data, s); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", specPath, err)
		}
	default:
		return nil, fmt.Errorf("provide -spec file.json or -demo")
	}
	return s, nil
}

// specBase is the spec's corpus in the shape the online trainer folds
// feedback into.
func specBase(s *spec) gar.BaseData {
	base := gar.BaseData{Samples: s.Samples}
	for _, ex := range s.Examples {
		base.Examples = append(base.Examples, gar.Example{Question: ex.Question, SQL: ex.SQL})
	}
	return base
}

// buildSystem assembles, prepares and deploys a system from the spec.
func buildSystem(s *spec, opts gar.Options, loadModels string) (*gar.System, *gar.Content, error) {
	sys, content, _, err := buildSystemModels(s, opts, loadModels)
	return sys, content, err
}

// buildSystemModels is buildSystem, additionally returning the deployed
// models (loaded from loadModels, or trained on the spec's examples) so
// callers can persist them or Swap them into another live system.
func buildSystemModels(s *spec, opts gar.Options, loadModels string) (*gar.System, *gar.Content, *gar.Models, error) {
	if err := validateSpec(s); err != nil {
		return nil, nil, nil, err
	}
	sys, content, err := newSystem(s, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	models, err := deploySystem(sys, s, opts, loadModels)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, content, models, nil
}

// newSystem assembles the database schema, system and content from the
// spec without preparing or training anything: the shared front half of
// a cold build and a checkpoint warm start (where the pool and models
// come from the state directory instead).
func newSystem(s *spec, opts gar.Options) (*gar.System, *gar.Content, error) {
	if err := validateSpecSchema(s); err != nil {
		return nil, nil, err
	}
	db := gar.NewDatabase(s.Database.Name)
	for _, t := range s.Database.Tables {
		tableOpts := []any{gar.Key(t.PrimaryKey...)}
		if t.Annotation != "" {
			tableOpts = append(tableOpts, gar.Annotated(t.Annotation))
		}
		for _, c := range t.Columns {
			if strings.EqualFold(c.Type, "number") {
				tableOpts = append(tableOpts, gar.NumberColumn(c.Name, c.NL))
			} else {
				tableOpts = append(tableOpts, gar.TextColumn(c.Name, c.NL))
			}
		}
		db.AddTable(t.Name, tableOpts...)
	}
	for _, fk := range s.Database.ForeignKeys {
		db.AddForeignKey(fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
	}
	for _, ann := range s.Database.JoinAnnotations {
		conv := gar.JoinAnnotation{
			Tables:      ann.Tables,
			Description: ann.Description,
			TableKeys:   ann.TableKeys,
		}
		for _, c := range ann.Conditions {
			conv.Conditions = append(conv.Conditions, gar.JoinCondition{
				LeftTable: c.LeftTable, LeftColumn: c.LeftColumn,
				RightTable: c.RightTable, RightColumn: c.RightColumn,
			})
		}
		db.AddJoinAnnotation(conv)
	}

	sys, err := gar.New(db, opts)
	if err != nil {
		return nil, nil, err
	}
	var content *gar.Content
	if len(s.Content) > 0 {
		content = gar.NewContent(db)
		for table, rows := range s.Content {
			for _, row := range rows {
				if err := content.Insert(table, row...); err != nil {
					return nil, nil, err
				}
			}
		}
		sys.SetContent(content)
	}
	return sys, content, nil
}

// deploySystem runs the expensive back half of a cold build on an
// assembled system: Prepare the candidate pool from the spec's samples,
// then train (or load) and deploy the ranking models.
func deploySystem(sys *gar.System, s *spec, opts gar.Options, loadModels string) (*gar.Models, error) {
	if len(s.Samples) == 0 {
		return nil, fmt.Errorf("spec: no sample queries (the candidate pool would be empty)")
	}
	if err := sys.Prepare(s.Samples); err != nil {
		return nil, err
	}
	var models *gar.Models
	var err error
	if loadModels != "" {
		models, err = gar.LoadModelsFile(loadModels)
	} else {
		models, err = gar.TrainModels([]gar.TrainingSet{{System: sys, Examples: specExamples(s)}}, opts)
	}
	if err != nil {
		return nil, err
	}
	if err := sys.UseModels(models); err != nil {
		return nil, err
	}
	return models, nil
}

// specExamples converts the spec's training examples.
func specExamples(s *spec) []gar.Example {
	var examples []gar.Example
	for _, ex := range s.Examples {
		examples = append(examples, gar.Example{Question: ex.Question, SQL: ex.SQL})
	}
	return examples
}

// demoSpec is the paper's Fig. 1 employee database, self-contained.
func demoSpec() *spec {
	const demo = `{
	  "database": {
	    "name": "employee_hire_evaluation",
	    "tables": [
	      {"name": "employee", "primaryKey": ["employee_id"], "columns": [
	        {"name": "employee_id", "nl": "employee id", "type": "number"},
	        {"name": "name", "nl": "name", "type": "text"},
	        {"name": "age", "nl": "age", "type": "number"},
	        {"name": "city", "nl": "city", "type": "text"}]},
	      {"name": "evaluation", "primaryKey": ["employee_id", "year_awarded"], "columns": [
	        {"name": "employee_id", "nl": "employee id", "type": "number"},
	        {"name": "year_awarded", "nl": "year awarded", "type": "text"},
	        {"name": "bonus", "nl": "bonus", "type": "number"}]}
	    ],
	    "foreignKeys": [{"fromTable": "evaluation", "fromColumn": "employee_id",
	                     "toTable": "employee", "toColumn": "employee_id"}],
	    "joinAnnotations": [{
	      "tables": ["employee", "evaluation"],
	      "description": "the employees that received evaluations",
	      "tableKeys": "evaluation",
	      "conditions": [{"leftTable": "employee", "leftColumn": "employee_id",
	                      "rightTable": "evaluation", "rightColumn": "employee_id"}]}]
	  },
	  "samples": [
	    "SELECT name FROM employee WHERE age > 30",
	    "SELECT age FROM employee WHERE city = 'Austin'",
	    "SELECT COUNT(*) FROM employee",
	    "SELECT city, COUNT(*) FROM employee GROUP BY city",
	    "SELECT name FROM employee ORDER BY age DESC LIMIT 1",
	    "SELECT AVG(bonus) FROM evaluation",
	    "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
	    "SELECT city FROM employee"
	  ],
	  "examples": [
	    {"question": "which employees are older than 30", "sql": "SELECT name FROM employee WHERE age > 30"},
	    {"question": "what is the age of employees in Austin", "sql": "SELECT age FROM employee WHERE city = 'Austin'"},
	    {"question": "how many employees are there", "sql": "SELECT COUNT(*) FROM employee"},
	    {"question": "how many employees per city", "sql": "SELECT city, COUNT(*) FROM employee GROUP BY city"},
	    {"question": "who is the oldest employee", "sql": "SELECT name FROM employee ORDER BY age DESC LIMIT 1"},
	    {"question": "what is the average bonus", "sql": "SELECT AVG(bonus) FROM evaluation"},
	    {"question": "find the name of the employee who got the highest one time bonus",
	     "sql": "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"},
	    {"question": "list the cities of employees", "sql": "SELECT city FROM employee"}
	  ],
	  "content": {
	    "employee": [[1, "George", 45, "Madrid"], [2, "John", 32, "Austin"],
	                 [3, "Alice", 28, "Austin"], [4, "Bob", 51, "Bristol"]],
	    "evaluation": [[1, "2016", 2000], [1, "2017", 3200], [2, "2017", 4100], [3, "2018", 1500]]
	  }
	}`
	s := &spec{}
	if err := json.Unmarshal([]byte(demo), s); err != nil {
		panic(err)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gar: %v\n", err)
	os.Exit(1)
}
