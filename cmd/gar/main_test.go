package main

import (
	"testing"

	"repro/gar"
)

func TestDemoSpecParses(t *testing.T) {
	s := demoSpec()
	if s.Database.Name != "employee_hire_evaluation" {
		t.Fatalf("demo database name: %s", s.Database.Name)
	}
	if len(s.Database.Tables) != 2 || len(s.Samples) == 0 || len(s.Examples) == 0 {
		t.Fatal("demo spec incomplete")
	}
	if len(s.Content["employee"]) != 4 {
		t.Fatalf("demo content rows: %d", len(s.Content["employee"]))
	}
}

func TestBuildSystemFromSpec(t *testing.T) {
	sys, content, err := buildSystem(demoSpec(), gar.Options{
		GeneralizeSize: 200, RetrievalK: 10, Seed: 1,
		EncoderEpochs: 12, RerankEpochs: 30,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if content == nil {
		t.Fatal("content not loaded from spec")
	}
	res, err := sys.Translate("how many employees are there")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := gar.ExactMatch(res.SQL, "SELECT COUNT(*) FROM employee")
	if err != nil || !ok {
		t.Errorf("demo translation wrong: %s (%v)", res.SQL, err)
	}
	rows, err := content.Query(res.SQL)
	if err != nil || len(rows) != 1 || rows[0][0] != "4" {
		t.Errorf("demo execution wrong: %v %v", rows, err)
	}
}

func TestBuildSystemBadSpec(t *testing.T) {
	s := demoSpec()
	s.Samples = append(s.Samples, "NOT SQL")
	if _, _, err := buildSystem(s, gar.Options{GeneralizeSize: 50}, ""); err == nil {
		t.Error("bad sample accepted")
	}
	s2 := demoSpec()
	s2.Database.Tables[0].PrimaryKey = []string{"nosuch"}
	if _, _, err := buildSystem(s2, gar.Options{GeneralizeSize: 50}, ""); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestBuildSystemLoadModels(t *testing.T) {
	if _, _, err := buildSystem(demoSpec(), gar.Options{GeneralizeSize: 50}, "/nonexistent/models.gob"); err == nil {
		t.Error("missing models file accepted")
	}
}
