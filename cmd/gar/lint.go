package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/generalize"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlcheck"
	"repro/internal/sqlparse"
)

// Exit codes of `gar lint`.
const (
	lintExitClean = 0 // no error-severity diagnostics
	lintExitDirty = 1 // at least one error-severity diagnostic
	lintExitUsage = 2 // bad flags, unreadable spec or input file
)

// lintFinding is one diagnostic tied to its source statement. It is the
// JSON output unit of `gar lint -o json`.
type lintFinding struct {
	// Source names where the statement came from: an input file path,
	// "<samples>" for the spec's sample list, or "<pool>" for a
	// generated candidate.
	Source string `json:"source"`
	// Line is the 1-based line of the statement in its file; zero for
	// samples and pool candidates.
	Line     int    `json:"line,omitempty"`
	SQL      string `json:"sql"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	Clause   string `json:"clause,omitempty"`
}

// lintReport is the full JSON document emitted by `gar lint -o json`.
type lintReport struct {
	Checked  int           `json:"checked"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
	Findings []lintFinding `json:"findings"`
	// PrunedByRule is only present in -pool mode: how many generated
	// candidates the semantic analyzer discarded, per rule.
	PrunedByRule map[string]int `json:"prunedByRule,omitempty"`
}

// lintStmt is one SQL statement to check.
type lintStmt struct {
	source string
	line   int
	sql    string
}

// runLint implements `gar lint`: it checks SQL statements against a
// database spec with the sqlcheck semantic analyzer. Inputs are, in
// order of precedence, the statement files given as arguments, the
// generated candidate pool (-pool), or the spec's sample queries.
func runLint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gar lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "path to the JSON database spec")
	demo := fs.Bool("demo", false, "use the built-in employee demo database")
	output := fs.String("o", "text", "output format: text or json")
	pool := fs.Int("pool", 0, "generalize a candidate pool of this size and lint it")
	seed := fs.Int64("seed", 1, "generalization seed (with -pool)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gar lint -spec db.json [-o text|json] [-pool N] [file.sql ...]\n\n"+
			"With no files, the spec's sample queries are checked. Statement files\n"+
			"hold one SQL statement per line; blank lines and -- comments are\n"+
			"skipped. Exit status: %d clean, %d diagnostics found, %d usage error.\n\n",
			lintExitClean, lintExitDirty, lintExitUsage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return lintExitUsage
	}
	if *output != "text" && *output != "json" {
		fmt.Fprintf(stderr, "gar lint: unknown output format %q (want text or json)\n", *output)
		return lintExitUsage
	}

	s, err := loadSpec(*specPath, *demo)
	if err != nil {
		fmt.Fprintf(stderr, "gar lint: %v\n", err)
		return lintExitUsage
	}
	db, err := specDatabase(s)
	if err != nil {
		fmt.Fprintf(stderr, "gar lint: %v\n", err)
		return lintExitUsage
	}
	checker := sqlcheck.New(db)
	report := &lintReport{Findings: []lintFinding{}}

	record := func(st lintStmt, diags []sqlcheck.Diagnostic) {
		report.Checked++
		for _, d := range diags {
			report.Findings = append(report.Findings, lintFinding{
				Source:   st.source,
				Line:     st.line,
				SQL:      st.sql,
				Rule:     d.Rule,
				Severity: d.Severity.String(),
				Message:  d.Message,
				Clause:   d.Clause,
			})
			if d.Severity == sqlcheck.Error {
				report.Errors++
			} else {
				report.Warnings++
			}
		}
	}

	switch {
	case fs.NArg() > 0:
		if *pool > 0 {
			fmt.Fprintln(stderr, "gar lint: -pool cannot be combined with statement files")
			return lintExitUsage
		}
		for _, path := range fs.Args() {
			stmts, err := readStatements(path)
			if err != nil {
				fmt.Fprintf(stderr, "gar lint: %v\n", err)
				return lintExitUsage
			}
			for _, st := range stmts {
				record(st, checkStatement(checker, st.sql))
			}
		}
	case *pool > 0:
		queries, pruned, err := lintPool(db, s.Samples, *pool, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "gar lint: %v\n", err)
			return lintExitUsage
		}
		report.PrunedByRule = pruned
		for _, q := range queries {
			// Pool queries are already bound by the generalizer.
			record(lintStmt{source: "<pool>", sql: q.String()}, checker.CheckBound(q))
		}
	default:
		for _, sql := range s.Samples {
			record(lintStmt{source: "<samples>", sql: sql}, checkStatement(checker, sql))
		}
	}

	if *output == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "gar lint: %v\n", err)
			return lintExitUsage
		}
	} else {
		for _, f := range report.Findings {
			loc := f.Source
			if f.Line > 0 {
				loc = fmt.Sprintf("%s:%d", f.Source, f.Line)
			}
			fmt.Fprintf(stdout, "%s: %s: [%s] %s", loc, f.Severity, f.Rule, f.Message)
			if f.Clause != "" {
				fmt.Fprintf(stdout, " (%s)", f.Clause)
			}
			fmt.Fprintf(stdout, "\n\t%s\n", f.SQL)
		}
		for rule, n := range report.PrunedByRule {
			fmt.Fprintf(stderr, "gar lint: generalizer pruned %d candidates via %s\n", n, rule)
		}
		fmt.Fprintf(stderr, "gar lint: %d statements checked, %d errors, %d warnings\n",
			report.Checked, report.Errors, report.Warnings)
	}
	if report.Errors > 0 {
		return lintExitDirty
	}
	return lintExitClean
}

// checkStatement parses and analyzes one statement. A parse failure is
// reported as an error-severity finding under the "parse" pseudo-rule so
// it counts toward the exit status like any other diagnostic.
func checkStatement(checker *sqlcheck.Analyzer, sql string) []sqlcheck.Diagnostic {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return []sqlcheck.Diagnostic{{
			Rule:     "parse",
			Severity: sqlcheck.Error,
			Message:  err.Error(),
		}}
	}
	return checker.Check(q)
}

// lintPool runs the generalizer over the spec samples and returns the
// resulting candidate pool together with its per-rule prune counters.
func lintPool(db *schema.Database, samples []string, size int, seed int64) ([]*sqlast.Query, map[string]int, error) {
	var trees []*sqlast.Query
	for i, sql := range samples {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, nil, fmt.Errorf("sample %d: %w", i+1, err)
		}
		trees = append(trees, q)
	}
	res := generalize.Generalize(db, trees, generalize.Config{
		TargetSize: size,
		Seed:       seed,
		Rules:      generalize.AllRules(),
	})
	return res.Queries, res.PrunedByRule, nil
}

// readStatements loads a statement file: one SQL statement per line,
// optionally terminated by ';'. Blank lines and lines starting with
// "--" are skipped.
func readStatements(path string) ([]lintStmt, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []lintStmt
	for i, line := range strings.Split(string(data), "\n") {
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if sql == "" || strings.HasPrefix(sql, "--") {
			continue
		}
		out = append(out, lintStmt{source: path, line: i + 1, sql: sql})
	}
	return out, nil
}

// specDatabase converts a spec's database section to the internal schema
// form used by the analyzer. Join annotations are not converted: they
// feed dialect generation, not semantic checking.
func specDatabase(s *spec) (*schema.Database, error) {
	if err := validateSpec(s); err != nil {
		return nil, err
	}
	db := &schema.Database{Name: s.Database.Name}
	for _, t := range s.Database.Tables {
		tab := &schema.Table{Name: t.Name, Annotation: t.Annotation, PrimaryKey: t.PrimaryKey}
		for _, c := range t.Columns {
			typ := schema.Text
			if strings.EqualFold(c.Type, "number") {
				typ = schema.Number
			}
			tab.Columns = append(tab.Columns, &schema.Column{Name: c.Name, Type: typ, Annotation: c.NL})
		}
		db.Tables = append(db.Tables, tab)
	}
	for _, fk := range s.Database.ForeignKeys {
		db.ForeignKeys = append(db.ForeignKeys, schema.ForeignKey{
			FromTable: fk.FromTable, FromColumn: fk.FromColumn,
			ToTable: fk.ToTable, ToColumn: fk.ToColumn,
		})
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}
