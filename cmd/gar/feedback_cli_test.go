package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/feedback"
)

// feedbackFixtureLog opens a WAL at dir and appends n records.
func feedbackFixtureLog(t *testing.T, dir string, n int) {
	t.Helper()
	l, err := feedback.Open(dir, feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := l.Append(feedback.Record{
			Question: "how many employees are there",
			SQL:      "SELECT COUNT(*) FROM employee",
			Source:   feedback.SourceCorrected,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunFeedbackCLI drives the `gar feedback` verbs over a state tree
// holding both layouts at once: the single-tenant {statedir}/feedback
// log next to a tenant's {statedir}/acme/feedback log. list walks
// both, verify localizes damage with exit 1, compact rewrites each log
// into one segment, and usage errors exit 2.
func TestRunFeedbackCLI(t *testing.T) {
	dir := t.TempDir()
	feedbackFixtureLog(t, filepath.Join(dir, "feedback"), 2)
	feedbackFixtureLog(t, filepath.Join(dir, "acme", "feedback"), 3)

	var out, errOut bytes.Buffer
	if code := runFeedback([]string{"list", "-statedir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("list exit %d: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "tenant acme:") {
		t.Fatalf("list missing the tenant header:\n%s", text)
	}
	if n := strings.Count(text, "ok"); n != 2 {
		t.Fatalf("list saw %d clean segments, want 2:\n%s", n, text)
	}

	out.Reset()
	errOut.Reset()
	if code := runFeedback([]string{"verify", "-statedir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("verify on clean tree exit %d: %s", code, errOut.String())
	}

	// Damage the tenant's segment mid-payload: verify must flag exactly
	// that log and exit 1, while list keeps reporting everything.
	segs, err := filepath.Glob(filepath.Join(dir, "acme", "feedback", "seg-*.fwal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("tenant segments = %v (err %v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := runFeedback([]string{"verify", "-statedir", dir, "-o", "json"}, &out, &errOut); code != 1 {
		t.Fatalf("verify exit %d, want 1: %s", code, errOut.String())
	}
	var reports []feedbackReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("verify saw %d rows, want 2: %+v", len(reports), reports)
	}
	for _, r := range reports {
		damaged := r.Corrupt > 0 || r.Lost || r.Err != ""
		if (r.Tenant == "acme") != damaged {
			t.Errorf("verify verdict misplaced: %+v", r)
		}
	}

	// Compact each log; the damaged record is dropped, the survivors
	// land in one fresh segment per log, and verify is clean again.
	out.Reset()
	errOut.Reset()
	if code := runFeedback([]string{"compact", "-statedir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("compact exit %d: %s", code, errOut.String())
	}
	text = out.String()
	if !strings.Contains(text, "compacted: 2 record(s) kept") ||
		!strings.Contains(text, "tenant acme: compacted: 2 record(s) kept") {
		t.Fatalf("compact output:\n%s", text)
	}
	out.Reset()
	errOut.Reset()
	if code := runFeedback([]string{"verify", "-statedir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("verify after compact exit %d: %s\n%s", code, errOut.String(), out.String())
	}

	// Usage errors exit 2.
	if code := runFeedback(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-verb exit %d, want 2", code)
	}
	if code := runFeedback([]string{"list"}, &out, &errOut); code != 2 {
		t.Fatalf("no-statedir exit %d, want 2", code)
	}
	if code := runFeedback([]string{"bogus", "-statedir", dir}, &out, &errOut); code != 2 {
		t.Fatalf("bad-verb exit %d, want 2", code)
	}
}
