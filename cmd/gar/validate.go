package main

import (
	"fmt"
	"strings"
)

// validateSpec sanity-checks a decoded JSON spec before any expensive
// preparation runs, so a malformed spec fails fast with a message that
// names the offending field instead of erroring deep inside Prepare.
func validateSpec(s *spec) error {
	if err := validateSpecSchema(s); err != nil {
		return err
	}
	if len(s.Samples) == 0 {
		return fmt.Errorf("spec: no sample queries (the candidate pool would be empty)")
	}
	return nil
}

// validateSpecSchema is validateSpec minus the sample-query
// requirement: a schema-only spec is enough to warm-start a server
// from a checkpoint, where the pool comes from the state directory
// instead of a fresh Prepare.
func validateSpecSchema(s *spec) error {
	if s.Database.Name == "" {
		return fmt.Errorf("spec: database.name is empty")
	}
	if len(s.Database.Tables) == 0 {
		return fmt.Errorf("spec: database %q has no tables", s.Database.Name)
	}
	tables := map[string]map[string]bool{}
	for _, t := range s.Database.Tables {
		if t.Name == "" {
			return fmt.Errorf("spec: database %q has a table with no name", s.Database.Name)
		}
		if _, dup := tables[t.Name]; dup {
			return fmt.Errorf("spec: table %q is defined twice", t.Name)
		}
		if len(t.Columns) == 0 {
			return fmt.Errorf("spec: table %q has no columns", t.Name)
		}
		cols := map[string]bool{}
		for _, c := range t.Columns {
			if c.Name == "" {
				return fmt.Errorf("spec: table %q has a column with no name", t.Name)
			}
			switch strings.ToLower(c.Type) {
			case "number", "text":
			default:
				return fmt.Errorf("spec: table %q column %q: unknown type %q (want \"number\" or \"text\")",
					t.Name, c.Name, c.Type)
			}
			cols[c.Name] = true
		}
		for _, pk := range t.PrimaryKey {
			if !cols[pk] {
				return fmt.Errorf("spec: table %q primary key names missing column %q", t.Name, pk)
			}
		}
		tables[t.Name] = cols
	}
	for i, fk := range s.Database.ForeignKeys {
		from, ok := tables[fk.FromTable]
		if !ok {
			return fmt.Errorf("spec: foreignKeys[%d] references missing table %q", i, fk.FromTable)
		}
		if !from[fk.FromColumn] {
			return fmt.Errorf("spec: foreignKeys[%d] references missing column %q.%q",
				i, fk.FromTable, fk.FromColumn)
		}
		to, ok := tables[fk.ToTable]
		if !ok {
			return fmt.Errorf("spec: foreignKeys[%d] references missing table %q", i, fk.ToTable)
		}
		if !to[fk.ToColumn] {
			return fmt.Errorf("spec: foreignKeys[%d] references missing column %q.%q",
				i, fk.ToTable, fk.ToColumn)
		}
	}
	for table := range s.Content {
		if _, ok := tables[table]; !ok {
			return fmt.Errorf("spec: content references missing table %q", table)
		}
	}
	return nil
}
