package main

import (
	"strings"
	"testing"

	"repro/gar"
)

func TestValidateSpecAcceptsDemo(t *testing.T) {
	if err := validateSpec(demoSpec()); err != nil {
		t.Fatalf("demo spec rejected: %v", err)
	}
}

func TestValidateSpecRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*spec)
		want   string
	}{
		{"unknown column type", func(s *spec) {
			s.Database.Tables[0].Columns[0].Type = "varchar"
		}, `unknown type "varchar"`},
		{"fk missing table", func(s *spec) {
			s.Database.ForeignKeys[0].ToTable = "nosuch"
		}, `missing table "nosuch"`},
		{"fk missing column", func(s *spec) {
			s.Database.ForeignKeys[0].FromColumn = "ghost"
		}, `missing column "evaluation"."ghost"`},
		{"empty samples", func(s *spec) {
			s.Samples = nil
		}, "no sample queries"},
		{"no tables", func(s *spec) {
			s.Database.Tables = nil
		}, "no tables"},
		{"pk missing column", func(s *spec) {
			s.Database.Tables[0].PrimaryKey = []string{"ghost"}
		}, `missing column "ghost"`},
		{"content missing table", func(s *spec) {
			s.Content["nosuch"] = [][]any{{1}}
		}, `missing table "nosuch"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := demoSpec()
			tc.mutate(s)
			err := validateSpec(s)
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The same rejection must surface through buildSystem, which
			// is what the CLI exit path uses.
			if _, _, berr := buildSystem(s, gar.Options{GeneralizeSize: 50}, ""); berr == nil {
				t.Fatal("buildSystem accepted the invalid spec")
			}
		})
	}
}
