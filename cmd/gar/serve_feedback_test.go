package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/gar"
	"repro/internal/checkpoint"
	"repro/internal/feedback"
	"repro/internal/fleet"
)

// feedbackHandler builds a single-tenant handler with the feedback
// endpoint armed: a real WAL and trainer over the demo spec, the
// trainer left unstarted so no background cycle races the assertions.
func feedbackHandler(t *testing.T) (http.Handler, *feedbackState) {
	t.Helper()
	s := demoSpec()
	sys, _, err := buildSystem(s, gar.Options{
		GeneralizeSize: 200, RetrievalK: 10, Seed: 1,
		EncoderEpochs: 12, RerankEpochs: 30,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	flog, err := feedback.Open(t.TempDir(), feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = flog.Close() })
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	trainer := sys.NewTrainer(flog, st,
		func() (gar.BaseData, error) { return specBase(s), nil }, gar.TrainerConfig{})
	fb := &feedbackState{log: flog, trainer: trainer}
	return newServeHandler(sys, serveConfig{Feedback: fb}), fb
}

func postFeedback(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServeFeedbackDisabled(t *testing.T) {
	h := testHandler(t, serveConfig{})
	if rec := postFeedback(h, `{"question": "q", "chosen": 0}`); rec.Code != http.StatusNotImplemented {
		t.Fatalf("feedback without -feedback: status %d: %s", rec.Code, rec.Body)
	}
}

func TestServeFeedbackValidation(t *testing.T) {
	h, fb := feedbackHandler(t)

	for name, body := range map[string]string{
		"malformed":      `not json`,
		"empty question": `{"question": "", "chosen": 0}`,
		"neither":        `{"question": "how many employees are there"}`,
		"both":           `{"question": "how many employees are there", "chosen": 0, "sql": "SELECT 1"}`,
	} {
		if rec := postFeedback(h, body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/feedback", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /feedback: status %d", rec.Code)
	}

	// Validation rejections are the client's fault and must be tallied;
	// bad request bodies never reach validation.
	for name, body := range map[string]string{
		"unparseable": `{"question": "q", "sql": "SELEC nope"}`,
		"unbindable":  `{"question": "q", "sql": "SELECT x FROM nosuch"}`,
		"bad index":   `{"question": "how many employees are there", "chosen": 99}`,
	} {
		if rec := postFeedback(h, body); rec.Code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422: %s", name, rec.Code, rec.Body)
		}
	}
	if got := fb.rejected.Load(); got != 3 {
		t.Errorf("rejected tally = %d, want 3", got)
	}
	if got := fb.accepted.Load(); got != 0 {
		t.Errorf("accepted tally = %d, want 0", got)
	}
	if fb.log.LastSeq() != 0 {
		t.Error("a rejected submission reached the WAL")
	}
}

func TestServeFeedbackAccept(t *testing.T) {
	h, fb := feedbackHandler(t)

	rec := postFeedback(h, `{"question": "how many people work here", "sql": "SELECT COUNT(*) FROM employee"}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("correction: status %d: %s", rec.Code, rec.Body)
	}
	var resp feedbackResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted || resp.Seq != 1 || resp.Source != feedback.SourceCorrected {
		t.Fatalf("correction response = %+v", resp)
	}

	rec = postFeedback(h, `{"question": "how many employees are there", "chosen": 0}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("chosen: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 2 || resp.Source != feedback.SourceChosen {
		t.Fatalf("chosen response = %+v", resp)
	}

	// Both acks mean both records are durable and replayable.
	recs, err := fb.log.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].SQL == "" {
		t.Fatalf("WAL replay = %+v", recs)
	}

	// The /healthz feedback block mirrors the tallies and WAL state.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", hrec.Code)
	}
	var health struct {
		Feedback *fleet.FeedbackHealth `json:"feedback"`
	}
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Feedback == nil {
		t.Fatalf("healthz has no feedback block: %s", hrec.Body)
	}
	if health.Feedback.Accepted != 2 || health.Feedback.Rejected != 0 ||
		health.Feedback.WAL.LastSeq != 2 {
		t.Fatalf("healthz feedback = %+v", health.Feedback)
	}
}

func postFleetFeedback(h http.Handler, tenant, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/db/"+tenant+"/feedback", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServeFleetFeedback drives the fleet endpoint end to end: 501 for
// a fleet without the loop, then accept/reject against an enabled one
// with the per-tenant health block checked.
func TestServeFleetFeedback(t *testing.T) {
	dir := writeSpecDir(t, "acme")

	// A fleet without the loop enabled answers 501.
	bareSrc := &specDirSource{dir: dir, opts: testServeOpts()}
	_, bareH := newTestFleet(t, bareSrc, fleet.Config{}, serveConfig{}, "acme")
	rec := postFleetFeedback(bareH, "acme", `{"question": "q", "chosen": 0}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("fleet feedback disabled: status %d: %s", rec.Code, rec.Body)
	}

	src := &specDirSource{dir: dir, opts: testServeOpts()}
	reg, h := newTestFleet(t, src, fleet.Config{
		StateDir: t.TempDir(), Feedback: true,
	}, serveConfig{}, "acme")

	rec = postFleetFeedback(h, "acme", `{"question": "fix", "sql": "SELEC nope"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("fleet invalid SQL: status %d: %s", rec.Code, rec.Body)
	}
	rec = postFleetFeedback(h, "acme", `{"question": "how many people work here", "sql": "SELECT COUNT(*) FROM employee"}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("fleet correction: status %d: %s", rec.Code, rec.Body)
	}
	var resp feedbackResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "acme" || resp.Seq != 1 || resp.Source != feedback.SourceCorrected {
		t.Fatalf("fleet response = %+v", resp)
	}

	row, err := reg.TenantHealth("acme")
	if err != nil {
		t.Fatal(err)
	}
	if row.Feedback == nil || row.Feedback.Accepted != 1 || row.Feedback.Rejected != 1 {
		t.Fatalf("tenant feedback health = %+v", row.Feedback)
	}

	rec = postFleetFeedback(h, "nosuch", `{"question": "q", "chosen": 0}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d: %s", rec.Code, rec.Body)
	}
}
