package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runLintCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := runLint(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestLintDemoSamplesClean(t *testing.T) {
	code, stdout, stderr := runLintCapture(t, "-demo")
	if code != lintExitClean {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, lintExitClean, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run should print no findings, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "8 statements checked, 0 errors") {
		t.Errorf("summary missing from stderr:\n%s", stderr)
	}
}

func TestLintFileWithViolations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.sql")
	src := strings.Join([]string{
		"-- fixture: mixed valid and invalid statements",
		"SELECT name FROM employee WHERE age > 30;",
		"",
		"SELECT name, COUNT(*) FROM employee",
		"SELECT nosuch FROM employee",
		"SELECT name FROM employee WHERE age > 'x'",
		"SELECT FROM WHERE",
	}, "\n")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runLintCapture(t, "-demo", path)
	if code != lintExitDirty {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, lintExitDirty, stderr)
	}
	for _, want := range []string{
		path + ":4: error: [agg-group]",
		path + ":5: error: [schema-bind]",
		path + ":6: error: [type-compat]",
		path + ":7: error: [parse]",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("text output missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "5 statements checked, 4 errors") {
		t.Errorf("summary wrong:\n%s", stderr)
	}
}

func TestLintJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.sql")
	if err := os.WriteFile(path, []byte("SELECT name, COUNT(*) FROM employee\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runLintCapture(t, "-demo", "-o", "json", path)
	if code != lintExitDirty {
		t.Fatalf("exit = %d, want %d", code, lintExitDirty)
	}
	var rep lintReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Checked != 1 || rep.Errors != 1 {
		t.Errorf("report = checked %d errors %d, want 1/1", rep.Checked, rep.Errors)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Rule != "agg-group" {
		t.Errorf("findings = %+v, want one agg-group finding", rep.Findings)
	}
	if rep.Findings[0].Line != 1 || rep.Findings[0].Source != path {
		t.Errorf("finding location = %s:%d, want %s:1",
			rep.Findings[0].Source, rep.Findings[0].Line, path)
	}
}

func TestLintSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "db.json")
	spec := `{
	  "database": {
	    "name": "shop",
	    "tables": [{
	      "name": "item", "primaryKey": ["item_id"],
	      "columns": [
	        {"name": "item_id", "nl": "item id", "type": "number"},
	        {"name": "label", "nl": "label", "type": "text"}
	      ]}]
	  },
	  "samples": ["SELECT label FROM item", "SELECT label, COUNT(*) FROM item"]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	// No statement files: the spec's samples are checked, and the second
	// sample is semantically invalid.
	code, stdout, _ := runLintCapture(t, "-spec", specPath)
	if code != lintExitDirty {
		t.Fatalf("exit = %d, want %d\n%s", code, lintExitDirty, stdout)
	}
	if !strings.Contains(stdout, "<samples>: error: [agg-group]") {
		t.Errorf("missing samples finding:\n%s", stdout)
	}
}

func TestLintPoolMode(t *testing.T) {
	code, stdout, stderr := runLintCapture(t, "-demo", "-pool", "200", "-o", "json")
	if code != lintExitClean {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, lintExitClean, stderr)
	}
	var rep lintReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Checked == 0 || rep.Errors != 0 {
		t.Errorf("pool report = checked %d errors %d, want >0 checked and 0 errors", rep.Checked, rep.Errors)
	}
	var pruned int
	for _, n := range rep.PrunedByRule {
		pruned += n
	}
	if pruned == 0 {
		t.Errorf("expected the generalizer to prune candidates, got %v", rep.PrunedByRule)
	}
}

func TestLintUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-demo", "-o", "yaml"},           // unknown format
		{},                                // no spec
		{"-spec", "/nonexistent/db.json"}, // unreadable spec
		{"-demo", "-pool", "100", "/tmp/whatever.sql"}, // pool + files
		{"-demo", "/nonexistent/queries.sql"},          // unreadable input
	}
	for _, args := range cases {
		if code, _, _ := runLintCapture(t, args...); code != lintExitUsage {
			t.Errorf("runLint(%v) = %d, want %d", args, code, lintExitUsage)
		}
	}
}
