// The feedback endpoint of the online learning loop:
//
//	POST /feedback            {"question": "...", "chosen": 0}
//	POST /feedback            {"question": "...", "sql": "SELECT ..."}
//	POST /db/{name}/feedback  (fleet mode, same bodies)
//
// A submission either endorses one of the candidates a /translate
// response offered ("chosen", an index into its candidates array) or
// supplies a corrected SQL text. Corrections are validated — re-parsed
// and re-bound against the schema — before anything is written;
// invalid SQL is rejected with 422 and never reaches disk. Accepted
// records are appended to the durable feedback WAL (fsynced before the
// 202 acknowledgement) and wake the background trainer; see
// internal/feedback and gar.Trainer.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/gar"
	"repro/internal/feedback"
	"repro/internal/fleet"
)

type feedbackRequest struct {
	Question string `json:"question"`
	// Chosen endorses one candidate of a prior /translate response for
	// the same question: its index in the candidates array.
	Chosen *int `json:"chosen,omitempty"`
	// SQL supplies a corrected query instead. Exactly one of Chosen and
	// SQL must be set.
	SQL string `json:"sql,omitempty"`
}

type feedbackResponse struct {
	Tenant   string `json:"tenant,omitempty"`
	Accepted bool   `json:"accepted"`
	Seq      uint64 `json:"seq"`
	Source   string `json:"source"`
}

// feedbackState couples the single-tenant server's WAL, trainer and
// accept/reject tallies (fleet mode keeps the same state per tenant in
// the registry).
type feedbackState struct {
	log      *feedback.Log
	trainer  *gar.Trainer
	accepted atomic.Uint64
	rejected atomic.Uint64
}

// healthJSON is the /healthz feedback block, shaped like fleet mode's
// per-tenant row.
func (fb *feedbackState) healthJSON() fleet.FeedbackHealth {
	return fleet.FeedbackHealth{
		Accepted: fb.accepted.Load(),
		Rejected: fb.rejected.Load(),
		WAL:      fb.log.Stats(),
		Trainer:  fb.trainer.Stats(),
	}
}

// decodeFeedback reads and validates a feedback request body, writing
// the error response itself when the body is unusable.
func decodeFeedback(w http.ResponseWriter, r *http.Request, maxBody int64) (feedbackRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorJSON{Error: "bad request body: " + err.Error()})
		return req, false
	}
	if strings.TrimSpace(req.Question) == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "empty question"})
		return req, false
	}
	if (req.Chosen == nil) == (req.SQL == "") {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "provide exactly one of chosen or sql"})
		return req, false
	}
	return req, true
}

// acceptFeedback validates one decoded submission against the serving
// system and, if it survives, durably records it and wakes the
// trainer. It reports the HTTP status and body; countRejected is
// bumped for submissions refused at validation (not for transport or
// storage errors — those are the server's fault, not the client's).
func acceptFeedback(ctx context.Context, sys *gar.System, flog *feedback.Log, trainer *gar.Trainer,
	req feedbackRequest, tenant string, countRejected func()) (int, any) {
	rec := feedback.Record{
		Question:   req.Question,
		Generation: sys.Generation(),
	}
	if req.Chosen != nil {
		// Endorsing a candidate: re-translate the question on the live
		// snapshot and index into its candidates, so the endorsed SQL is
		// exactly what the system offered.
		res, err := sys.TranslateContext(ctx, req.Question)
		if err != nil {
			return http.StatusInternalServerError, errorJSON{Error: "translating question: " + err.Error()}
		}
		if *req.Chosen < 0 || *req.Chosen >= len(res.Candidates) {
			countRejected()
			return http.StatusUnprocessableEntity,
				errorJSON{Error: "chosen index out of range (the question has " +
					strconv.Itoa(len(res.Candidates)) + " candidates)"}
		}
		rec.SQL = res.Candidates[*req.Chosen].SQL
		rec.Source = feedback.SourceChosen
	} else {
		// A correction: re-parse and re-bind against the schema before
		// anything touches disk.
		if err := sys.ValidateSQL(req.SQL); err != nil {
			countRejected()
			return http.StatusUnprocessableEntity, errorJSON{Error: err.Error()}
		}
		rec.SQL = req.SQL
		rec.Source = feedback.SourceCorrected
	}

	seq, err := flog.Append(rec)
	if err != nil {
		// Not acknowledged: the record is not durable, the client should
		// retry. No sequence number was consumed.
		return http.StatusInternalServerError, errorJSON{Error: "feedback not recorded: " + err.Error()}
	}
	rec.Seq = seq
	trainer.ObserveFeedback(ctx, rec)
	trainer.Notify()
	return http.StatusAccepted, feedbackResponse{
		Tenant:   tenant,
		Accepted: true,
		Seq:      seq,
		Source:   rec.Source,
	}
}

// handleFeedback is the single-tenant POST /feedback endpoint.
func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use POST"})
		return
	}
	fb := s.cfg.Feedback
	if fb == nil {
		writeJSON(w, http.StatusNotImplemented, errorJSON{Error: "feedback not enabled (start with -feedback)"})
		return
	}
	if !s.sys.Ready() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "no snapshot published"})
		return
	}
	req, ok := decodeFeedback(w, r, s.cfg.MaxBody)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	status, body := acceptFeedback(ctx, s.sys, fb.log, fb.trainer, req, "",
		func() { fb.rejected.Add(1) })
	if status == http.StatusAccepted {
		fb.accepted.Add(1)
	}
	writeJSON(w, status, body)
}

// handleFeedback is the fleet POST /db/{name}/feedback endpoint.
func (s *fleetServer) handleFeedback(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req, ok := decodeFeedback(w, r, s.cfg.MaxBody)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	h, err := s.reg.Acquire(ctx, name)
	if err != nil {
		writeAcquireError(w, err)
		return
	}
	defer h.Release()
	if h.FeedbackLog() == nil || h.Trainer() == nil {
		writeJSON(w, http.StatusNotImplemented, errorJSON{Error: "feedback not enabled for this fleet"})
		return
	}
	if !h.Sys().Ready() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "tenant " + name + ": no snapshot published"})
		return
	}
	status, body := acceptFeedback(ctx, h.Sys(), h.FeedbackLog(), h.Trainer(), req, name,
		func() { h.CountFeedback(false) })
	if status == http.StatusAccepted {
		h.CountFeedback(true)
	}
	writeJSON(w, status, body)
}
