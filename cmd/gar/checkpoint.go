// The checkpoint mode inspects and maintains a serving-state directory
// written by `gar serve -statedir` (see internal/checkpoint):
//
//	gar checkpoint list -statedir dir [-o json]
//	gar checkpoint verify -statedir dir [-o json]
//	gar checkpoint prune -statedir dir [-keep 3]
//
// list shows every checkpoint generation with its size, age and full
// validation verdict; verify is list with an exit code — 1 when any
// file fails validation; prune keeps the newest -keep generations and
// sweeps temp files abandoned by interrupted writes.
//
// Both layouts are understood: a single-tenant directory holding
// checkpoint files directly, and the multi-tenant tree of fleet mode
// ({statedir}/{tenant}/...), where every verb walks each tenant
// subdirectory and reports per tenant.
//
// Exit codes: 0 clean, 1 invalid checkpoints found (verify), 2 usage or
// I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/checkpoint"
)

// checkpointReport is one file's row in list/verify output.
type checkpointReport struct {
	// Tenant is the state-tree subdirectory the file belongs to; empty
	// in a single-tenant directory.
	Tenant      string `json:"tenant,omitempty"`
	Generation  uint64 `json:"generation"`
	Path        string `json:"path"`
	Size        int64  `json:"size"`
	ModTime     string `json:"mod_time"`
	Valid       bool   `json:"valid"`
	Error       string `json:"error,omitempty"`
	Database    string `json:"database,omitempty"`
	CreatedUnix int64  `json:"created_unix,omitempty"`
	Sections    int    `json:"sections,omitempty"`
}

// tenantStore pairs a store with the tenant name it serves; name is
// empty for the single-tenant layout.
type tenantStore struct {
	name string
	st   *checkpoint.Store
}

// openStateTree resolves a -statedir into the stores to operate on: the
// directory itself when it holds checkpoint files directly (or holds
// nothing at all), plus one store per tenant subdirectory of a
// multi-tenant tree. A mixed directory reports both.
func openStateTree(stateDir string) ([]tenantStore, error) {
	root, err := checkpoint.Open(stateDir)
	if err != nil {
		return nil, err
	}
	rootEntries, err := root.List()
	if err != nil {
		return nil, err
	}
	tenants, err := checkpoint.ListTenants(stateDir)
	if err != nil {
		return nil, err
	}
	var stores []tenantStore
	if len(rootEntries) > 0 || len(tenants) == 0 {
		stores = append(stores, tenantStore{st: root})
	}
	for _, name := range tenants {
		st, err := checkpoint.OpenTenant(stateDir, name)
		if err != nil {
			return nil, err
		}
		stores = append(stores, tenantStore{name: name, st: st})
	}
	return stores, nil
}

// runCheckpoint is the `gar checkpoint` entry point, separated from
// os.Exit for testability.
func runCheckpoint(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "gar checkpoint: want a verb: list, verify or prune")
		return 2
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("gar checkpoint "+verb, flag.ContinueOnError)
	fs.SetOutput(stderr)
	stateDir := fs.String("statedir", "", "serving-state directory to operate on")
	output := fs.String("o", "text", "output format: text or json")
	keep := fs.Int("keep", 3, "generations to retain (prune)")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if *stateDir == "" {
		fmt.Fprintln(stderr, "gar checkpoint: provide -statedir")
		return 2
	}
	stores, err := openStateTree(*stateDir)
	if err != nil {
		fmt.Fprintf(stderr, "gar checkpoint: %v\n", err)
		return 2
	}

	switch verb {
	case "list", "verify":
		var reports []checkpointReport
		invalid := 0
		for _, ts := range stores {
			rs, bad, err := inspectStore(ts)
			if err != nil {
				fmt.Fprintf(stderr, "gar checkpoint: %v\n", err)
				return 2
			}
			reports = append(reports, rs...)
			invalid += bad
		}
		if *output == "json" {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reports); err != nil {
				fmt.Fprintf(stderr, "gar checkpoint: %v\n", err)
				return 2
			}
		} else {
			printCheckpointReports(stdout, reports)
		}
		if verb == "verify" && invalid > 0 {
			fmt.Fprintf(stderr, "gar checkpoint: %d of %d checkpoints failed validation\n", invalid, len(reports))
			return 1
		}
		return 0
	case "prune":
		for _, ts := range stores {
			prefix := ""
			if ts.name != "" {
				prefix = "tenant " + ts.name + ": "
			}
			removed, err := ts.st.Prune(*keep)
			if err != nil {
				fmt.Fprintf(stderr, "gar checkpoint: %s%v\n", prefix, err)
				return 2
			}
			tmps, terr := ts.st.CleanTemp()
			if terr != nil {
				fmt.Fprintf(stderr, "gar checkpoint: %s%v\n", prefix, terr)
				return 2
			}
			for _, p := range removed {
				fmt.Fprintf(stdout, "%spruned %s\n", prefix, p)
			}
			for _, p := range tmps {
				fmt.Fprintf(stdout, "%sremoved temp %s\n", prefix, p)
			}
			fmt.Fprintf(stdout, "%skept newest %d generation(s); removed %d checkpoint(s), %d temp file(s)\n",
				prefix, *keep, len(removed), len(tmps))
		}
		return 0
	default:
		fmt.Fprintf(stderr, "gar checkpoint: unknown verb %q (want list, verify or prune)\n", verb)
		return 2
	}
}

// inspectStore fully validates every checkpoint in one tenant's store,
// newest first, and counts the invalid ones.
func inspectStore(ts tenantStore) ([]checkpointReport, int, error) {
	entries, err := ts.st.List()
	if err != nil {
		return nil, 0, err
	}
	reports := make([]checkpointReport, 0, len(entries))
	invalid := 0
	for _, e := range entries {
		r := checkpointReport{
			Tenant:     ts.name,
			Generation: e.Generation,
			Path:       e.Path,
			Size:       e.Size,
			ModTime:    e.ModTime.UTC().Format(time.RFC3339),
		}
		ck, err := checkpoint.ReadFile(e.Path)
		switch {
		case err != nil:
			r.Error = err.Error()
			invalid++
		case ck.Manifest.Generation != e.Generation:
			r.Error = fmt.Sprintf("file carries generation %d", ck.Manifest.Generation)
			invalid++
		default:
			r.Valid = true
			r.Database = ck.Manifest.Database
			r.CreatedUnix = ck.Manifest.CreatedUnix
			r.Sections = len(ck.Manifest.Sections)
		}
		reports = append(reports, r)
	}
	return reports, invalid, nil
}

func printCheckpointReports(w io.Writer, reports []checkpointReport) {
	if len(reports) == 0 {
		fmt.Fprintln(w, "no checkpoints")
		return
	}
	tenant := ""
	for _, r := range reports {
		if r.Tenant != tenant {
			tenant = r.Tenant
			fmt.Fprintf(w, "tenant %s:\n", tenant)
		}
		indent := ""
		if r.Tenant != "" {
			indent = "  "
		}
		if r.Valid {
			fmt.Fprintf(w, "%sgen %-6d %8d bytes  %s  ok       db=%s sections=%d\n",
				indent, r.Generation, r.Size, r.ModTime, r.Database, r.Sections)
		} else {
			fmt.Fprintf(w, "%sgen %-6d %8d bytes  %s  INVALID  %s\n",
				indent, r.Generation, r.Size, r.ModTime, r.Error)
		}
	}
}
