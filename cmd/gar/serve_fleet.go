// Fleet mode: `gar serve -specdir specs/` serves many databases from
// one process. Every {tenant}.json in the spec directory is a tenant;
// requests route by name:
//
//	POST /db/{name}/translate {"question": "..."}
//	POST /db/{name}/reload
//	GET  /db/{name}/healthz
//	GET  /healthz   fleet-wide roll-up
//	GET  /readyz    200 once at least one tenant serves a snapshot
//
// The registry (internal/fleet) keeps a bounded LRU working set of
// resident tenants: cold tenants activate on first request —
// warm-started from -statedir/{tenant}/ when a checkpoint exists —
// and idle ones are evicted after a synchronous checkpoint flush.
// Every tenant has its own admission budget and re-rank breaker, so
// one saturated or failing database sheds or degrades alone.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/gar"
	"repro/internal/fleet"
)

// specDirSource builds tenant systems from {dir}/{tenant}.json specs.
// It implements fleet.Source; the registry calls it concurrently for
// different tenants.
type specDirSource struct {
	dir  string
	opts gar.Options
}

func (s *specDirSource) load(name string) (*spec, error) {
	return loadSpec(filepath.Join(s.dir, name+".json"), false)
}

// Cold assembles the schema-bound shell the registry warm-starts or
// deploys into.
func (s *specDirSource) Cold(name string) (*gar.System, error) {
	sp, err := s.load(name)
	if err != nil {
		return nil, err
	}
	sys, _, err := newSystem(sp, s.opts)
	return sys, err
}

// Deploy cold-builds the tenant from its spec: prepare the pool and
// train (or no-op for a schema-only spec, which serves 503 until a
// reload provides samples).
func (s *specDirSource) Deploy(ctx context.Context, name string, sys *gar.System) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	sp, err := s.load(name)
	if err != nil {
		return false, err
	}
	if len(sp.Samples) == 0 {
		return false, nil
	}
	if _, err := deploySystem(sys, sp, s.opts, ""); err != nil {
		return false, err
	}
	return true, nil
}

// Reload re-reads the tenant's spec, rebuilds pool/models/content off
// to the side, and swaps them into the live system atomically.
func (s *specDirSource) Reload(ctx context.Context, name string, sys *gar.System) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sp, err := s.load(name)
	if err != nil {
		return err
	}
	_, content, models, err := buildSystemModels(sp, s.opts, "")
	if err != nil {
		return err
	}
	if content != nil {
		sys.SetContent(content)
	}
	_, err = sys.Swap(sp.Samples, models)
	return err
}

// FeedbackBase loads the tenant's committed corpus for the online
// trainer; implementing fleet.FeedbackSource opts the fleet into the
// feedback loop.
func (s *specDirSource) FeedbackBase(name string) (gar.BaseData, error) {
	sp, err := s.load(name)
	if err != nil {
		return gar.BaseData{}, err
	}
	return specBase(sp), nil
}

// tenantNames lists the tenants of a spec directory: the stem of every
// *.json file.
func tenantNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

// fleetServer routes per-database requests to the tenant registry.
type fleetServer struct {
	reg *fleet.Registry
	cfg serveConfig
}

// newFleetHandler assembles the fleet router with the panic-recovery
// middleware outermost, mirroring the single-tenant handler.
func newFleetHandler(reg *fleet.Registry, cfg serveConfig) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 5
	}
	if cfg.ReloadTimeout <= 0 {
		cfg.ReloadTimeout = 5 * time.Minute
	}
	s := &fleetServer{reg: reg, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /db/{name}/translate", s.handleTranslate)
	mux.HandleFunc("POST /db/{name}/reload", s.handleReload)
	mux.HandleFunc("POST /db/{name}/feedback", s.handleFeedback)
	mux.HandleFunc("GET /db/{name}/healthz", s.handleTenantHealthz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return recoverMiddleware(mux)
}

// writeAcquireError maps a registry acquire/reload failure onto the
// HTTP surface: unknown tenant 404, saturated working set 429 with
// Retry-After, closed registry 503, an activation still running at the
// request's deadline 503 with Retry-After (the build continues; the
// client should come back), anything else 503.
func writeAcquireError(w http.ResponseWriter, err error) {
	var sat *fleet.SaturatedError
	switch {
	case errors.Is(err, fleet.ErrUnknownTenant):
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
	case errors.As(err, &sat):
		w.Header().Set("Retry-After", retryAfterSeconds(sat.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorJSON{Error: err.Error()})
	case errors.Is(err, fleet.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "tenant still activating: " + err.Error()})
	default:
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error()})
	}
}

func (s *fleetServer) handleTranslate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req, ok := decodeTranslate(w, r, s.cfg.MaxBody)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	h, err := s.reg.Acquire(ctx, name)
	if err != nil {
		writeAcquireError(w, err)
		return
	}
	defer h.Release()
	if !h.Sys().Ready() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "tenant " + name + ": no snapshot published"})
		return
	}
	// Per-tenant admission: this tenant's budget, not the fleet's — a
	// burst here sheds here and nowhere else.
	release, err := h.Admit(ctx)
	if err != nil {
		writeAdmitError(w, err)
		return
	}
	defer release()

	start := time.Now()
	res, err := h.Sys().TranslateContext(ctx, req.Question)
	if err != nil {
		writeTranslateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, translateJSON(res, s.cfg.TopK, start, name))
}

func (s *fleetServer) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReloadTimeout)
	defer cancel()
	start := time.Now()
	gen, err := s.reg.Reload(ctx, name)
	if err != nil {
		if errors.Is(err, fleet.ErrReloadInProgress) {
			writeJSON(w, http.StatusConflict, errorJSON{Error: err.Error()})
			return
		}
		if errors.Is(err, fleet.ErrUnknownTenant) || errors.As(err, new(*fleet.SaturatedError)) ||
			errors.Is(err, fleet.ErrClosed) {
			writeAcquireError(w, err)
			return
		}
		writeJSON(w, http.StatusUnprocessableEntity, errorJSON{Error: "reload failed: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":     name,
		"generation": gen,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *fleetServer) handleTenantHealthz(w http.ResponseWriter, r *http.Request) {
	th, err := s.reg.TenantHealth(r.PathValue("name"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
		return
	}
	status := http.StatusOK
	if th.Status != "ok" && th.Status != "degraded" {
		// Cold, activating, evicting or unavailable: not serving now.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, th)
}

func (s *fleetServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.reg.Health()
	status := http.StatusOK
	if h.Status == "unavailable" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleReadyz gates fleet readiness on the first published snapshot:
// 503 until at least one tenant serves.
func (s *fleetServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.reg.AnyReady() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":  false,
			"reason": "no tenant has a published snapshot",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// fleetServeParams carries runServe's parsed flags into fleet mode.
type fleetServeParams struct {
	Addr    string
	SpecDir string
	Opts    gar.Options
	Cfg     serveConfig
	Fleet   fleet.Config
}

// runServeFleet is the fleet-mode tail of `gar serve`.
func runServeFleet(p fleetServeParams) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gar serve: "+format+"\n", args...)
	}
	names, err := tenantNames(p.SpecDir)
	if err != nil {
		fatal(err)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("gar serve: no tenant specs (*.json) in %s", p.SpecDir))
	}
	p.Fleet.Logf = logf
	reg := fleet.New(&specDirSource{dir: p.SpecDir, opts: p.Opts}, p.Fleet)
	for _, name := range names {
		if err := reg.Register(name); err != nil {
			fatal(err)
		}
	}

	srv := &http.Server{
		Addr:              p.Addr,
		Handler:           newFleetHandler(reg, p.Cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", p.Addr)
	if err != nil {
		fatal(err)
	}
	logf("fleet of %d tenants ready on %s", len(names), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Idle reaper: periodically evict tenants idle past -tenantidle,
	// each flushed before its snapshot is dropped.
	if p.Fleet.IdleAfter > 0 {
		go func() {
			period := p.Fleet.IdleAfter / 4
			if period < time.Second {
				period = time.Second
			}
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n := reg.EvictIdle(ctx); n > 0 {
						logf("idle reaper evicted %d tenant(s)", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	logf("draining connections")
	// One window bounds the whole sequence: drain every tenant's
	// in-flight requests, then flush every tenant's final checkpoint.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	if err := reg.Shutdown(shutdownCtx); err != nil {
		logf("fleet shutdown: %v", err)
	} else {
		logf("fleet flushed and stopped")
	}
}
