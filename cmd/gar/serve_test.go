package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/gar"
)

func testHandler(t *testing.T, cfg serveConfig) http.Handler {
	t.Helper()
	sys, _, err := buildSystem(demoSpec(), gar.Options{
		GeneralizeSize: 200, RetrievalK: 10, Seed: 1,
		EncoderEpochs: 12, RerankEpochs: 30,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	return newServeHandler(sys, cfg)
}

func postTranslate(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/translate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServeTranslateAndHealthz(t *testing.T) {
	h := testHandler(t, serveConfig{})

	rec := postTranslate(h, `{"question": "how many employees are there"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("translate status %d: %s", rec.Code, rec.Body)
	}
	var resp translateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	ok, err := gar.ExactMatch(resp.SQL, "SELECT COUNT(*) FROM employee")
	if err != nil || !ok {
		t.Errorf("served translation wrong: %s (%v)", resp.SQL, err)
	}
	if resp.Degraded || len(resp.Candidates) == 0 {
		t.Errorf("unexpected response shape: %+v", resp)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", hrec.Code)
	}
	var health struct {
		Status string `json:"status"`
		Pool   int    `json:"pool"`
	}
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Pool == 0 {
		t.Errorf("healthz: %+v", health)
	}
}

func TestServeRequestValidation(t *testing.T) {
	h := testHandler(t, serveConfig{MaxBody: 256})

	if rec := postTranslate(h, `{"question": ""}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty question: status %d", rec.Code)
	}
	if rec := postTranslate(h, `not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", rec.Code)
	}
	big := `{"question": "` + strings.Repeat("x", 4096) + `"}`
	if rec := postTranslate(h, big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/translate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /translate: status %d", rec.Code)
	}
	// Every error path must answer JSON with an error field.
	var e errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("error response not JSON: %s", rec.Body)
	}
}

func TestServeTimeout(t *testing.T) {
	// A nanosecond budget cannot finish retrieval: the request must
	// come back 504, not hang or crash.
	h := testHandler(t, serveConfig{Timeout: time.Nanosecond})
	rec := postTranslate(h, `{"question": "how many employees are there"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout status %d: %s", rec.Code, rec.Body)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	h := recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("handler bug")) {
		t.Errorf("panic message lost: %s", rec.Body)
	}
}

// TestServeHealthzReportsCaches pins the cache counters surfaced by
// /healthz: a repeated question must hit the translation cache, and the
// hit/miss/size numbers must be visible to operators.
func TestServeHealthzReportsCaches(t *testing.T) {
	h := testHandler(t, serveConfig{})
	for i := 0; i < 2; i++ {
		if rec := postTranslate(h, `{"question": "how many employees are there"}`); rec.Code != http.StatusOK {
			t.Fatalf("translate %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health struct {
		Caches struct {
			Translations struct {
				Hits   uint64 `json:"hits"`
				Misses uint64 `json:"misses"`
				Size   int    `json:"size"`
			} `json:"translations"`
			Embeddings struct {
				Size int `json:"size"`
			} `json:"embeddings"`
		} `json:"caches"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	tc := health.Caches.Translations
	if tc.Hits != 1 || tc.Misses != 1 || tc.Size != 1 {
		t.Errorf("translation cache counters = %+v", tc)
	}
	if health.Caches.Embeddings.Size != 1 {
		t.Errorf("embedding cache size = %d, want 1", health.Caches.Embeddings.Size)
	}
}
