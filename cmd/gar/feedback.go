// The feedback mode inspects and maintains the feedback WALs written
// by `gar serve -feedback` (see internal/feedback):
//
//	gar feedback list -statedir dir [-o json]
//	gar feedback verify -statedir dir [-o json]
//	gar feedback compact -statedir dir
//
// list shows every WAL segment with its size, record count and
// sequence range; verify is list with an exit code — 1 when any
// segment is corrupt, carries an impossible frame or has an unreadable
// header (a torn tail is reported but is not a failure: crashes
// produce torn tails by design and recovery truncates them); compact
// rewrites each log into a single deduplicated segment.
//
// Both layouts are understood: the single-tenant {statedir}/feedback
// log and the multi-tenant tree ({statedir}/{tenant}/feedback), where
// every verb walks each tenant and reports per tenant.
//
// Exit codes: 0 clean, 1 corruption found (verify), 2 usage or I/O
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/feedback"
)

// feedbackReport is one WAL segment's row in list/verify output.
type feedbackReport struct {
	// Tenant is the state-tree subdirectory the log belongs to; empty
	// for the single-tenant layout.
	Tenant string `json:"tenant,omitempty"`
	feedback.SegmentReport
}

// tenantFeedbackDir pairs a feedback directory with the tenant it
// serves; name is empty for the single-tenant layout.
type tenantFeedbackDir struct {
	name string
	dir  string
}

// feedbackTree resolves a -statedir into the feedback logs to operate
// on: {statedir}/feedback when present, plus {statedir}/{tenant}/feedback
// for every tenant subdirectory that has one. Directories without a
// log are skipped — a fleet where only some tenants saw feedback lists
// only those.
func feedbackTree(stateDir string) ([]tenantFeedbackDir, error) {
	var dirs []tenantFeedbackDir
	single := filepath.Join(stateDir, "feedback")
	if st, err := os.Stat(single); err == nil && st.IsDir() {
		dirs = append(dirs, tenantFeedbackDir{dir: single})
	}
	tenants, err := checkpoint.ListTenants(stateDir)
	if err != nil {
		return nil, err
	}
	for _, name := range tenants {
		dir := filepath.Join(stateDir, name, "feedback")
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			dirs = append(dirs, tenantFeedbackDir{name: name, dir: dir})
		}
	}
	return dirs, nil
}

// runFeedback is the `gar feedback` entry point, separated from
// os.Exit for testability.
func runFeedback(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "gar feedback: want a verb: list, verify or compact")
		return 2
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("gar feedback "+verb, flag.ContinueOnError)
	fs.SetOutput(stderr)
	stateDir := fs.String("statedir", "", "serving-state directory to operate on")
	output := fs.String("o", "text", "output format: text or json")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if *stateDir == "" {
		fmt.Fprintln(stderr, "gar feedback: provide -statedir")
		return 2
	}
	dirs, err := feedbackTree(*stateDir)
	if err != nil {
		fmt.Fprintf(stderr, "gar feedback: %v\n", err)
		return 2
	}

	switch verb {
	case "list", "verify":
		var reports []feedbackReport
		bad := 0
		for _, td := range dirs {
			segs, err := feedback.Inspect(td.dir)
			if err != nil {
				fmt.Fprintf(stderr, "gar feedback: %v\n", err)
				return 2
			}
			for _, seg := range segs {
				if seg.Err != "" || seg.Corrupt > 0 || seg.Lost {
					bad++
				}
				reports = append(reports, feedbackReport{Tenant: td.name, SegmentReport: seg})
			}
		}
		if *output == "json" {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reports); err != nil {
				fmt.Fprintf(stderr, "gar feedback: %v\n", err)
				return 2
			}
		} else {
			printFeedbackReports(stdout, reports)
		}
		if verb == "verify" && bad > 0 {
			fmt.Fprintf(stderr, "gar feedback: %d of %d segments carry corruption\n", bad, len(reports))
			return 1
		}
		return 0
	case "compact":
		for _, td := range dirs {
			prefix := ""
			if td.name != "" {
				prefix = "tenant " + td.name + ": "
			}
			l, err := feedback.Open(td.dir, feedback.Config{})
			if err != nil {
				fmt.Fprintf(stderr, "gar feedback: %s%v\n", prefix, err)
				return 2
			}
			kept, removed, err := l.Compact()
			cerr := l.Close()
			if err != nil {
				fmt.Fprintf(stderr, "gar feedback: %s%v\n", prefix, err)
				return 2
			}
			if cerr != nil {
				fmt.Fprintf(stderr, "gar feedback: %s%v\n", prefix, cerr)
				return 2
			}
			fmt.Fprintf(stdout, "%scompacted: %d record(s) kept, %d segment(s) removed\n", prefix, kept, removed)
		}
		return 0
	default:
		fmt.Fprintf(stderr, "gar feedback: unknown verb %q (want list, verify or compact)\n", verb)
		return 2
	}
}

func printFeedbackReports(w io.Writer, reports []feedbackReport) {
	if len(reports) == 0 {
		fmt.Fprintln(w, "no feedback segments")
		return
	}
	tenant := ""
	for _, r := range reports {
		if r.Tenant != tenant {
			tenant = r.Tenant
			fmt.Fprintf(w, "tenant %s:\n", tenant)
		}
		indent := ""
		if r.Tenant != "" {
			indent = "  "
		}
		switch {
		case r.Err != "":
			fmt.Fprintf(w, "%s%-28s %8d bytes  INVALID  %s\n",
				indent, filepath.Base(r.Path), r.Size, r.Err)
		case r.Corrupt > 0 || r.Lost:
			fmt.Fprintf(w, "%s%-28s %8d bytes  %5d record(s) seq %d..%d  CORRUPT (%d bad frame(s), lost=%v)\n",
				indent, filepath.Base(r.Path), r.Size, r.Records, r.FirstSeq, r.LastSeq, r.Corrupt, r.Lost)
		case r.TornBytes > 0:
			fmt.Fprintf(w, "%s%-28s %8d bytes  %5d record(s) seq %d..%d  torn tail (%d byte(s))\n",
				indent, filepath.Base(r.Path), r.Size, r.Records, r.FirstSeq, r.LastSeq, r.TornBytes)
		default:
			fmt.Fprintf(w, "%s%-28s %8d bytes  %5d record(s) seq %d..%d  ok\n",
				indent, filepath.Base(r.Path), r.Size, r.Records, r.FirstSeq, r.LastSeq)
		}
	}
}
