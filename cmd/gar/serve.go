// The serve mode runs GAR as a small HTTP JSON service:
//
//	gar serve -spec db.json -addr :8765
//	gar serve -demo
//
//	POST /translate {"question": "who is the oldest employee"}
//	POST /reload
//	GET  /healthz
//	GET  /readyz
//
// Each request runs under a per-request timeout, the request body is
// size-limited, panics are recovered into 500 responses, and SIGINT or
// SIGTERM drains in-flight requests before exiting.
//
// The service is overload-protected: an admission controller bounds
// how many translations run concurrently, queues a bounded overflow
// with a deadline-aware wait (a request that would miss its deadline
// in the queue is shed immediately), and answers sheds with 429 +
// Retry-After. A circuit breaker trips the re-ranking stage into
// retrieval-only degraded mode after repeated stage failures, and
// POST /reload hot-swaps the candidate pool and models from the spec
// with zero downtime (old snapshot serves until the atomic swap).
//
// With -statedir the serving state is durable: the server warm-starts
// from the newest valid checkpoint (skipping Prepare and Train
// entirely), checkpoints in the background after every state change,
// flushes a final checkpoint on graceful shutdown, and prunes old
// generations down to -keepckpt. /healthz reports the last checkpoint
// generation and age.
//
// With -specdir the same process serves a multi-tenant fleet — one
// isolated System per {tenant}.json spec, routed by path
// (POST /db/{name}/translate) with a bounded LRU working set,
// per-tenant admission budgets and breakers, and per-tenant state
// under -statedir/{tenant}/. See serve_fleet.go.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/gar"
	"repro/internal/admit"
	"repro/internal/breaker"
	"repro/internal/checkpoint"
	"repro/internal/feedback"
	"repro/internal/fleet"
	"repro/internal/spill"
)

// serveConfig holds the tunables of the HTTP service.
type serveConfig struct {
	// Timeout bounds each translation (the request context is also
	// honored, so a disconnecting client cancels its work).
	Timeout time.Duration
	// MaxBody caps the request body size in bytes.
	MaxBody int64
	// TopK caps the candidates returned per translation.
	TopK int

	// MaxInFlight bounds concurrent translations; MaxQueue bounds how
	// many more may wait for a slot before new arrivals are shed with
	// 429. RetryAfter is the back-off hint attached to sheds.
	MaxInFlight int
	MaxQueue    int
	RetryAfter  time.Duration

	// BreakerFailures consecutive re-rank failures trip the breaker
	// into retrieval-only mode for BreakerCooldown; NoBreaker disables
	// it.
	BreakerFailures int
	BreakerCooldown time.Duration
	NoBreaker       bool

	// Reload rebuilds the system state (pool, models, content) and
	// swaps it in; wired by runServe to re-read the spec. nil disables
	// POST /reload.
	Reload func(ctx context.Context) error
	// ReloadTimeout bounds one reload (default 5m).
	ReloadTimeout time.Duration

	// Ckpt, when set, is the background checkpointer persisting the
	// serving state; /healthz reports its last generation, age and
	// counters. nil when -statedir is not given.
	Ckpt *gar.Checkpointer

	// Feedback, when set, enables POST /feedback: the durable WAL, the
	// background trainer and the accept/reject tallies. nil when
	// -feedback is not given.
	Feedback *feedbackState

	// ExecGuide mirrors the system's execution-guided reranking switch;
	// /healthz reports the stage's counters when it is on.
	ExecGuide bool
}

type server struct {
	sys *gar.System
	cfg serveConfig
	ctl *admit.Controller
	br  *breaker.Breaker

	// reloadMu serializes POST /reload; a second concurrent reload is
	// answered 409 instead of queueing behind the first.
	reloadMu sync.Mutex
}

type translateRequest struct {
	Question string `json:"question"`
}

type candidateJSON struct {
	SQL     string  `json:"sql"`
	Dialect string  `json:"dialect"`
	Score   float64 `json:"score"`
}

type translateResponse struct {
	// Tenant names the database that answered; set in fleet mode only.
	Tenant     string          `json:"tenant,omitempty"`
	SQL        string          `json:"sql"`
	Dialect    string          `json:"dialect"`
	Degraded   bool            `json:"degraded,omitempty"`
	Warnings   []string        `json:"warnings,omitempty"`
	Candidates []candidateJSON `json:"candidates"`
	Generation uint64          `json:"generation"`
	ElapsedMS  float64         `json:"elapsed_ms"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// newServeHandler assembles the routed handler with the panic-recovery
// middleware outermost, so no handler bug can kill the process.
func newServeHandler(sys *gar.System, cfg serveConfig) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 5
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.ReloadTimeout <= 0 {
		cfg.ReloadTimeout = 5 * time.Minute
	}
	s := &server{
		sys: sys,
		cfg: cfg,
		ctl: admit.New(admit.Config{
			MaxInFlight: cfg.MaxInFlight,
			MaxQueue:    cfg.MaxQueue,
			RetryAfter:  cfg.RetryAfter,
		}),
	}
	if !cfg.NoBreaker {
		s.br = breaker.New(breaker.Config{
			FailureThreshold: cfg.BreakerFailures,
			Cooldown:         cfg.BreakerCooldown,
		})
		sys.SetRerankBreaker(s.br)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/translate", s.handleTranslate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/feedback", s.handleFeedback)
	return recoverMiddleware(mux)
}

// recoverMiddleware converts handler panics into JSON 500 responses.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeJSON(w, http.StatusInternalServerError,
					errorJSON{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// breakerJSON reports the re-rank breaker for health endpoints; the
// snapshot's own MarshalJSON renders the wire shape.
func (s *server) breakerJSON() any {
	if s.br == nil {
		return map[string]any{"state": "disabled"}
	}
	return s.br.Snapshot()
}

// handleHealthz reports live service health: pool and generation,
// breaker position, and admission occupancy. While no translatable
// snapshot is published (startup, or a bare re-Prepare) it answers
// 503 so load balancers stop routing here.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use GET"})
		return
	}
	st := s.ctl.Stats()
	cs := s.sys.CacheStats()
	body := map[string]any{
		"pool":       s.sys.PoolSize(),
		"generation": s.sys.Generation(),
		"breaker":    s.breakerJSON(),
		"caches": map[string]any{
			"embeddings":   cs.Embeddings,
			"translations": cs.Translations,
		},
		"admission": map[string]any{
			"in_flight":       st.InFlight,
			"queued":          st.Queued,
			"peak_in_flight":  st.PeakInFlight,
			"max_in_flight":   s.ctl.MaxInFlight(),
			"admitted":        st.Admitted,
			"shed_queue_full": st.ShedQueueFull,
			"shed_deadline":   st.ShedDeadline,
		},
	}
	if s.cfg.Ckpt != nil {
		cs := s.cfg.Ckpt.Stats()
		ck := map[string]any{
			"last_generation": cs.LastGeneration,
			"writes":          cs.Writes,
			"failures":        cs.Failures,
			"pruned":          cs.Pruned,
			"pending":         cs.Pending,
		}
		if cs.LastUnix > 0 {
			ck["age_seconds"] = time.Now().Unix() - cs.LastUnix
		}
		if cs.LastError != "" {
			ck["last_error"] = cs.LastError
		}
		body["checkpoint"] = ck
	}
	if s.cfg.Feedback != nil {
		body["feedback"] = s.cfg.Feedback.healthJSON()
	}
	if s.cfg.ExecGuide {
		es := s.sys.ExecGuideStats()
		body["execguide"] = map[string]any{
			"enabled":  true,
			"executed": es.Executed,
			"demoted":  es.Demoted,
			"errors":   es.Errors,
			"timeouts": es.Timeouts,
		}
	}
	if ms := s.sys.MemStats(); ms.Budget != nil {
		// Resource governance: live budget usage, the published
		// snapshot's footprint, spill gauges, and the degradation record.
		body["memory"] = ms
	}
	if !s.sys.Ready() {
		body["status"] = "unavailable"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	status := "ok"
	if s.br != nil && s.br.State() != breaker.Closed {
		// Serving, but re-ranking is tripped: retrieval-only answers.
		status = "degraded"
	}
	body["status"] = status
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the readiness probe, distinct from /healthz: it
// answers 200 exactly when a complete translatable snapshot is
// published, and reports the breaker position so orchestrators can
// see a degraded-but-serving instance.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use GET"})
		return
	}
	if !s.sys.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":   false,
			"reason":  "no snapshot published",
			"breaker": s.breakerJSON(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":      true,
		"generation": s.sys.Generation(),
		"breaker":    s.breakerJSON(),
	})
}

// handleReload rebuilds pool, models and content from the (re-read)
// spec off to the side and atomically swaps them in; translations keep
// serving the old snapshot throughout. Reloads are serialized: a
// concurrent reload answers 409.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use POST"})
		return
	}
	if s.cfg.Reload == nil {
		writeJSON(w, http.StatusNotImplemented, errorJSON{Error: "reload not configured"})
		return
	}
	if !s.reloadMu.TryLock() {
		writeJSON(w, http.StatusConflict, errorJSON{Error: "reload already in progress"})
		return
	}
	defer s.reloadMu.Unlock()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReloadTimeout)
	defer cancel()
	start := time.Now()
	if err := s.cfg.Reload(ctx); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorJSON{Error: "reload failed: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": s.sys.Generation(),
		"pool":       s.sys.PoolSize(),
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use POST"})
		return
	}
	if !s.sys.Ready() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "no snapshot published"})
		return
	}
	req, ok := decodeTranslate(w, r, s.cfg.MaxBody)
	if !ok {
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	// Admission: take a worker slot, or wait for one only as long as
	// the deadline allows. Shed requests fail fast with 429 so a
	// saturated server answers immediately instead of timing everyone
	// out.
	release, err := s.ctl.Acquire(ctx)
	if err != nil {
		writeAdmitError(w, err)
		return
	}
	defer release()

	start := time.Now()
	res, err := s.sys.TranslateContext(ctx, req.Question)
	if err != nil {
		writeTranslateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, translateJSON(res, s.cfg.TopK, start, ""))
}

// decodeTranslate reads and validates a translate request body, writing
// the error response itself when the body is unusable.
func decodeTranslate(w http.ResponseWriter, r *http.Request, maxBody int64) (translateRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req translateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorJSON{Error: "bad request body: " + err.Error()})
		return req, false
	}
	if strings.TrimSpace(req.Question) == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "empty question"})
		return req, false
	}
	return req, true
}

// writeAdmitError maps an admission failure: sheds answer 429 with a
// Retry-After hint; a context that ended while queued (client gone or
// deadline hit) answers 504.
func writeAdmitError(w http.ResponseWriter, err error) {
	if shed, ok := admit.AsShed(err); ok {
		w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusGatewayTimeout, errorJSON{Error: err.Error()})
}

// writeTranslateError maps a pipeline failure; deadline and
// cancellation (the client went away — 499-style handling keeps logs
// honest) map to 504.
func writeTranslateError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// translateJSON renders a pipeline result, capping candidates at topK.
func translateJSON(res *gar.Result, topK int, start time.Time, tenant string) translateResponse {
	out := translateResponse{
		Tenant:     tenant,
		SQL:        res.SQL,
		Dialect:    res.Dialect,
		Degraded:   res.Degraded,
		Warnings:   res.Warnings,
		Generation: res.Generation,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, c := range res.Candidates {
		if i >= topK {
			break
		}
		out.Candidates = append(out.Candidates, candidateJSON{SQL: c.SQL, Dialect: c.Dialect, Score: c.Score})
	}
	return out
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// at least 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

//garlint:allow errlost -- a response-encode failure means the client hung up; there is no one left to tell
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// buildServingSystem assembles the system runServe serves. Durable
// state: with a state directory the newest valid checkpoint brings the
// complete serving snapshot back in seconds — no Prepare, no Train.
// Recovery falls back generation-by-generation past corrupt or
// incompatible files; only when nothing valid exists does the server
// cold-build from the spec (or, with a schema-only spec, start on a
// clean empty state answering 503 until a reload). Without a state
// directory it cold-builds directly and returns a nil store.
func buildServingSystem(stateDir string, s *spec, opts gar.Options, loadModels string,
	logf func(format string, args ...any)) (*gar.System, *checkpoint.Store, bool, error) {
	if stateDir == "" {
		sys, _, err := buildSystem(s, opts, loadModels)
		return sys, nil, false, err
	}
	ckStore, err := checkpoint.Open(stateDir)
	if err != nil {
		return nil, nil, false, err
	}
	if removed, err := ckStore.CleanTemp(); err != nil {
		logf("%v", err)
	} else if len(removed) > 0 {
		logf("removed %d abandoned temp file(s) from %s", len(removed), stateDir)
	}
	sys, _, err := newSystem(s, opts)
	if err != nil {
		return nil, nil, false, err
	}
	ck, skipped, err := sys.RecoverCheckpoint(ckStore)
	if err != nil {
		return nil, nil, false, err
	}
	for _, sk := range skipped {
		logf("skipping checkpoint %s: %v", sk.Path, sk.Err)
	}
	switch {
	case ck != nil:
		logf("warm start from checkpoint generation %d (%d candidates)",
			ck.Manifest.Generation, sys.PoolSize())
		return sys, ckStore, true, nil
	case len(s.Samples) > 0:
		logf("no recoverable checkpoint; cold-building from spec")
		if _, err := deploySystem(sys, s, opts, loadModels); err != nil {
			return nil, nil, false, err
		}
		return sys, ckStore, false, nil
	default:
		logf("no recoverable checkpoint and no sample queries; serving 503 until a reload provides state")
		return sys, ckStore, false, nil
	}
}

// runServe is the `gar serve` entry point.
func runServe(args []string) {
	fs := flag.NewFlagSet("gar serve", flag.ExitOnError)
	addr := fs.String("addr", ":8765", "listen address")
	specPath := fs.String("spec", "", "path to the JSON database spec")
	demo := fs.Bool("demo", false, "use the built-in employee demo database")
	garJ := fs.Bool("j", false, "enable GAR-J (use join annotations)")
	pool := fs.Int("pool", 2000, "generalized candidate pool size")
	loadModels := fs.String("loadmodels", "", "load ranking models instead of training")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request translation timeout")
	maxBody := fs.Int64("maxbody", 1<<20, "maximum request body size in bytes")
	topK := fs.Int("top", 5, "number of candidates returned per translation")
	maxInFlight := fs.Int("maxinflight", 8, "maximum concurrent translations")
	maxQueue := fs.Int("maxqueue", 16, "maximum queued translations before shedding")
	retryAfter := fs.Duration("retryafter", time.Second, "Retry-After hint on shed (429) responses")
	breakerFailures := fs.Int("breakfailures", 5, "consecutive re-rank failures that trip the circuit breaker")
	breakerCooldown := fs.Duration("breakcooldown", 2*time.Second, "how long a tripped breaker stays open before probing")
	noBreaker := fs.Bool("nobreaker", false, "disable the re-rank circuit breaker")
	noStageBudget := fs.Bool("nostagebudget", false, "disable per-stage deadline budgets")
	execGuide := fs.Bool("execguide", false, "execution-guided reranking: execute top candidates on a seeded sample instance and demote failures")
	execBudget := fs.Duration("execbudget", 25*time.Millisecond, "per-candidate execution budget under -execguide")
	workers := fs.Int("workers", 0, "parallel fan-out of encoding and re-rank scoring (0 = one per CPU)")
	cacheSize := fs.Int("cachesize", 1024, "entries per translation cache (embeddings, results)")
	noCache := fs.Bool("nocache", false, "disable the translation-path caches")
	stateDir := fs.String("statedir", "", "durable serving-state directory: warm-start from the newest valid checkpoint and checkpoint after every state change")
	keepCkpt := fs.Int("keepckpt", 3, "checkpoint generations retained in -statedir")
	specDir := fs.String("specdir", "", "directory of per-tenant JSON database specs ({tenant}.json): serve a multi-tenant fleet")
	maxTenants := fs.Int("maxtenants", 8, "fleet mode: tenants resident in memory at once (LRU eviction beyond)")
	tenantIdle := fs.Duration("tenantidle", 15*time.Minute, "fleet mode: evict tenants idle this long (0 disables)")
	tenantInFlight := fs.Int("tenantinflight", 0, "fleet mode: per-tenant concurrent translations (0 = maxinflight/maxtenants)")
	tenantQueue := fs.Int("tenantqueue", 0, "fleet mode: per-tenant queue depth (0 = maxqueue/maxtenants)")
	memLimit := fs.Int64("memlimit", 0, "serving-state memory budget in bytes: pool, embeddings and caches spill or degrade instead of growing past it (0 = unbounded)")
	tenantMemLimit := fs.Int64("tenantmemlimit", 0, "fleet mode: per-tenant share of -memlimit in bytes (0 = memlimit/maxtenants)")
	feedbackOn := fs.Bool("feedback", false, "accept POST /feedback into a durable WAL and retrain in the background (requires -statedir)")
	shadowThreshold := fs.Float64("shadowthreshold", 0, "how much worse (shadow top-1 exact match) a retrained candidate may score and still be promoted")
	trainInterval := fs.Duration("traininterval", 30*time.Second, "quiet window after feedback arrives before a background retrain starts")
	trainBudget := fs.Int("trainbudget", 1, "fleet mode: tenants allowed to retrain concurrently")
	if err := fs.Parse(args); err != nil {
		// Unreachable with ExitOnError, but the error stays handled if
		// the flag set's policy ever changes.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := gar.Options{
		GeneralizeSize:  *pool,
		JoinAnnotations: *garJ,
		Seed:            1,
		EncoderEpochs:   14,
		RerankEpochs:    40,
		Workers:         *workers,
		CacheSize:       *cacheSize,
		NoCache:         *noCache,
		ExecGuide:       *execGuide,
		ExecBudget:      *execBudget,
	}
	if !*noStageBudget {
		// Each stage gets a slice of the remaining deadline so a slow
		// re-rank degrades early instead of starving post-processing.
		opts.StageBudget = gar.StageBudget{Retrieval: 0.5, Rerank: 0.6, Postprocess: 0.7, ExecGuide: 0.9}
	}

	if *feedbackOn && *stateDir == "" {
		fatal(fmt.Errorf("gar serve: -feedback requires -statedir (the WAL lives in the state directory)"))
	}
	if *memLimit != 0 && *memLimit < minMemLimit {
		fatal(fmt.Errorf("gar serve: -memlimit %d bytes is below the %d-byte (1 MiB) floor: a budget that small cannot hold even a minimal serving snapshot; raise it or pass 0 for unbounded", *memLimit, minMemLimit))
	}

	if *specDir != "" {
		if *specPath != "" || *demo {
			fatal(fmt.Errorf("gar serve: -specdir is exclusive with -spec and -demo"))
		}
		if *memLimit > 0 {
			// The fleet splits the process budget across resident
			// tenants; a share below the floor would start every tenant
			// degraded-by-construction.
			share := *tenantMemLimit
			if share <= 0 {
				share = *memLimit / int64(max(*maxTenants, 1))
			}
			if share < minMemLimit {
				fatal(fmt.Errorf("gar serve: the per-tenant memory share (%d bytes) is below the %d-byte (1 MiB) floor; raise -memlimit or -tenantmemlimit, or lower -maxtenants", share, minMemLimit))
			}
		}
		runServeFleet(fleetServeParams{
			Addr:    *addr,
			SpecDir: *specDir,
			Opts:    opts,
			Cfg: serveConfig{
				Timeout:   *timeout,
				MaxBody:   *maxBody,
				TopK:      *topK,
				ExecGuide: *execGuide,
			},
			Fleet: fleet.Config{
				MaxActive:       *maxTenants,
				IdleAfter:       *tenantIdle,
				MaxInFlight:     *maxInFlight,
				MaxQueue:        *maxQueue,
				TenantInFlight:  *tenantInFlight,
				TenantQueue:     *tenantQueue,
				RetryAfter:      *retryAfter,
				BreakerFailures: *breakerFailures,
				BreakerCooldown: *breakerCooldown,
				NoBreaker:       *noBreaker,
				StateDir:        *stateDir,
				Keep:            *keepCkpt,
				Feedback:        *feedbackOn,
				TrainInterval:   *trainInterval,
				ShadowThreshold: *shadowThreshold,
				TrainBudget:     *trainBudget,
				MemLimit:        *memLimit,
				TenantMemLimit:  *tenantMemLimit,
			},
		})
		return
	}

	if *memLimit > 0 {
		opts.MemBudget = *memLimit
		// Spill lives beside the durable state when there is any, in a
		// private temp directory otherwise. Runs are per-build scratch:
		// anything present at startup was orphaned by a previous
		// process, so sweep before the first build can write.
		spillDir := ""
		if *stateDir != "" {
			spillDir = filepath.Join(*stateDir, "spill")
		} else if d, err := os.MkdirTemp("", "gar-spill-"); err != nil {
			fatal(fmt.Errorf("gar serve: creating spill directory: %w", err))
		} else {
			spillDir = d
			defer os.RemoveAll(d)
		}
		if removed, err := spill.Sweep(spillDir); err != nil {
			fmt.Fprintf(os.Stderr, "gar serve: sweeping spill directory: %v\n", err)
		} else if len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "gar serve: removed %d orphaned spill file(s) from %s\n", len(removed), spillDir)
		}
		opts.SpillDir = spillDir
	}

	s, err := loadSpec(*specPath, *demo)
	if err != nil {
		fatal(err)
	}

	sys, ckStore, warm, err := buildServingSystem(*stateDir, s, opts, *loadModels,
		func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gar serve: "+format+"\n", args...)
		})
	if err != nil {
		fatal(err)
	}

	// Background checkpointer: every published state change (cold
	// build, reload swap, retrain) schedules a durable checkpoint;
	// bursts coalesce and failed writes retry with jittered backoff.
	var ckptr *gar.Checkpointer
	if ckStore != nil {
		ckptr = sys.NewCheckpointer(ckStore, gar.CheckpointerConfig{
			Keep: *keepCkpt,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "gar serve: "+format+"\n", args...)
			},
		})
		ckptr.Start()
		if sys.Ready() && !warm {
			// Persist the freshly cold-built state now, so a crash
			// before the first reload already has something to recover.
			ckptr.Notify()
		}
	}

	// Online feedback loop: a durable WAL inside the state directory
	// plus a background trainer that folds accepted feedback into the
	// spec's corpus, retrains off the serving path, and promotes only
	// through the shadow gate (with checkpoint-backed rollback).
	var fb *feedbackState
	if *feedbackOn {
		flog, err := feedback.Open(filepath.Join(*stateDir, "feedback"), feedback.Config{})
		if err != nil {
			fatal(err)
		}
		base := func() (gar.BaseData, error) {
			fresh, err := loadSpec(*specPath, *demo)
			if err != nil {
				return gar.BaseData{}, err
			}
			return specBase(fresh), nil
		}
		trainer := sys.NewTrainer(flog, ckStore, base, gar.TrainerConfig{
			Interval:        *trainInterval,
			ShadowThreshold: *shadowThreshold,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "gar serve: "+format+"\n", args...)
			},
		})
		trainer.Start()
		if flog.LastSeq() > 0 {
			// Feedback recorded before the last shutdown may not have
			// been trained on yet; wake the trainer to fold it in.
			trainer.Notify()
		}
		fb = &feedbackState{log: flog, trainer: trainer}
	}

	// Reload re-reads the spec (and model file, if any), rebuilds a
	// complete new state off to the side, and publishes it with one
	// atomic snapshot swap — in-flight and new translations keep
	// hitting the old snapshot until the swap.
	reload := func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		fresh, err := loadSpec(*specPath, *demo)
		if err != nil {
			return err
		}
		_, content, models, err := buildSystemModels(fresh, opts, *loadModels)
		if err != nil {
			return err
		}
		if content != nil {
			sys.SetContent(content)
		}
		gen, err := sys.Swap(fresh.Samples, models)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gar serve: reloaded, generation %d, %d candidates\n", gen, sys.PoolSize())
		return nil
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: newServeHandler(sys, serveConfig{
			Timeout:         *timeout,
			MaxBody:         *maxBody,
			TopK:            *topK,
			MaxInFlight:     *maxInFlight,
			MaxQueue:        *maxQueue,
			RetryAfter:      *retryAfter,
			BreakerFailures: *breakerFailures,
			BreakerCooldown: *breakerCooldown,
			NoBreaker:       *noBreaker,
			Reload:          reload,
			Ckpt:            ckptr,
			Feedback:        fb,
			ExecGuide:       *execGuide,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Listen before announcing readiness so the logged address is the
	// bound one (":0" resolves to a real port — the restart tests rely
	// on reading it back).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gar serve: %d candidate queries ready on %s\n", sys.PoolSize(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gar serve: draining connections")
	// One shutdown window covers the whole sequence — drain in-flight
	// requests, then flush the final checkpoint — so a slow drain
	// cannot silently double the time to exit.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	if fb != nil {
		// Stop the trainer before the final checkpoint flush so no
		// promotion publishes after the state that is supposed to be
		// last. Pending feedback is already fsynced in the WAL; the next
		// process trains on it.
		fb.trainer.Stop()
	}
	if ckptr != nil {
		// Final flush: no more mutations can arrive, so stop the
		// background writer and persist the last published state
		// synchronously — the restart warm-starts from exactly what
		// this process was serving.
		if err := ckptr.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "gar serve: final checkpoint flush failed: %v\n", err)
		} else if st := ckptr.Stats(); st.Writes > 0 {
			fmt.Fprintf(os.Stderr, "gar serve: final checkpoint flushed (generation %d)\n", st.LastGeneration)
		}
	}
	if fb != nil {
		if err := fb.log.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gar serve: closing feedback log: %v\n", err)
		}
	}
}

// shutdownTimeout bounds the whole graceful-shutdown sequence: the
// request drain and the final checkpoint flushes share it.
const shutdownTimeout = 10 * time.Second

// minMemLimit is the smallest admissible -memlimit (1 MiB). Below it
// not even a minimal snapshot — schema bindings, a handful of
// candidates and their embeddings — fits, so the server would start
// degraded by construction; that configuration is rejected up front.
const minMemLimit = 1 << 20
