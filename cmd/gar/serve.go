// The serve mode runs GAR as a small HTTP JSON service:
//
//	gar serve -spec db.json -addr :8765
//	gar serve -demo
//
//	POST /translate {"question": "who is the oldest employee"}
//	GET  /healthz
//
// Each request runs under a per-request timeout, the request body is
// size-limited, panics are recovered into 500 responses, and SIGINT or
// SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/gar"
)

// serveConfig holds the tunables of the HTTP service.
type serveConfig struct {
	// Timeout bounds each translation (the request context is also
	// honored, so a disconnecting client cancels its work).
	Timeout time.Duration
	// MaxBody caps the request body size in bytes.
	MaxBody int64
	// TopK caps the candidates returned per translation.
	TopK int
}

type server struct {
	sys *gar.System
	cfg serveConfig
}

type translateRequest struct {
	Question string `json:"question"`
}

type candidateJSON struct {
	SQL     string  `json:"sql"`
	Dialect string  `json:"dialect"`
	Score   float64 `json:"score"`
}

type translateResponse struct {
	SQL        string          `json:"sql"`
	Dialect    string          `json:"dialect"`
	Degraded   bool            `json:"degraded,omitempty"`
	Warnings   []string        `json:"warnings,omitempty"`
	Candidates []candidateJSON `json:"candidates"`
	ElapsedMS  float64         `json:"elapsed_ms"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// newServeHandler assembles the routed handler with the panic-recovery
// middleware outermost, so no handler bug can kill the process.
func newServeHandler(sys *gar.System, cfg serveConfig) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 5
	}
	s := &server{sys: sys, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/translate", s.handleTranslate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return recoverMiddleware(mux)
}

// recoverMiddleware converts handler panics into JSON 500 responses.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeJSON(w, http.StatusInternalServerError,
					errorJSON{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use GET"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"pool":   s.sys.PoolSize(),
	})
}

func (s *server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use POST"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req translateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorJSON{Error: "bad request body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "empty question"})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	start := time.Now()
	res, err := s.sys.TranslateContext(ctx, req.Question)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client went away; the status is moot but 499-style
			// handling keeps logs honest.
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}

	out := translateResponse{
		SQL:       res.SQL,
		Dialect:   res.Dialect,
		Degraded:  res.Degraded,
		Warnings:  res.Warnings,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, c := range res.Candidates {
		if i >= s.cfg.TopK {
			break
		}
		out.Candidates = append(out.Candidates, candidateJSON{SQL: c.SQL, Dialect: c.Dialect, Score: c.Score})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// runServe is the `gar serve` entry point.
func runServe(args []string) {
	fs := flag.NewFlagSet("gar serve", flag.ExitOnError)
	addr := fs.String("addr", ":8765", "listen address")
	specPath := fs.String("spec", "", "path to the JSON database spec")
	demo := fs.Bool("demo", false, "use the built-in employee demo database")
	garJ := fs.Bool("j", false, "enable GAR-J (use join annotations)")
	pool := fs.Int("pool", 2000, "generalized candidate pool size")
	loadModels := fs.String("loadmodels", "", "load ranking models instead of training")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request translation timeout")
	maxBody := fs.Int64("maxbody", 1<<20, "maximum request body size in bytes")
	topK := fs.Int("top", 5, "number of candidates returned per translation")
	_ = fs.Parse(args)

	s, err := loadSpec(*specPath, *demo)
	if err != nil {
		fatal(err)
	}
	sys, _, err := buildSystem(s, gar.Options{
		GeneralizeSize:  *pool,
		JoinAnnotations: *garJ,
		Seed:            1,
		EncoderEpochs:   14,
		RerankEpochs:    40,
	}, *loadModels)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gar serve: %d candidate queries ready on %s\n", sys.PoolSize(), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServeHandler(sys, serveConfig{Timeout: *timeout, MaxBody: *maxBody, TopK: *topK}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gar serve: draining connections")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
}
