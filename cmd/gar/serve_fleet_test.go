package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/fleet"
)

// writeSpecDir lays down one demo spec per tenant name and returns the
// directory, ready for -specdir.
func writeSpecDir(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	data, err := json.Marshal(demoSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// newTestFleet assembles a registry over a spec directory plus the
// fleet handler in front of it.
func newTestFleet(t *testing.T, src fleet.Source, fcfg fleet.Config, cfg serveConfig, names ...string) (*fleet.Registry, http.Handler) {
	t.Helper()
	reg := fleet.New(src, fcfg)
	for _, name := range names {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	return reg, newFleetHandler(reg, cfg)
}

func postFleetTranslate(h http.Handler, tenant, question string) *httptest.ResponseRecorder {
	body := fmt.Sprintf(`{"question": %q}`, question)
	req := httptest.NewRequest(http.MethodPost, "/db/"+tenant+"/translate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func postFleetReload(h http.Handler, tenant string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/db/"+tenant+"/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestFleetHandlerRoutingAndHealth covers the per-database surface end
// to end in process: readyz flips on the first published snapshot,
// translate routes by path and stamps the tenant, unknown names 404,
// and both health endpoints tell the truth about a half-cold fleet.
func TestFleetHandlerRoutingAndHealth(t *testing.T) {
	dir := writeSpecDir(t, "alpha", "beta")
	src := &specDirSource{dir: dir, opts: testServeOpts()}
	reg, h := newTestFleet(t, src, fleet.Config{}, serveConfig{}, "alpha", "beta")

	// Before any request, no tenant has a snapshot: not ready.
	if code, body := getJSON(t, h, "/readyz"); code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("cold readyz = %d %v, want 503 not-ready", code, body)
	}

	rec := postFleetTranslate(h, "alpha", "how many employees are there")
	if rec.Code != http.StatusOK {
		t.Fatalf("translate status %d: %s", rec.Code, rec.Body)
	}
	var resp translateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "alpha" {
		t.Errorf("response tenant = %q, want alpha", resp.Tenant)
	}
	if ok, err := gar.ExactMatch(resp.SQL, "SELECT COUNT(*) FROM employee"); err != nil || !ok {
		t.Errorf("served translation wrong: %s (%v)", resp.SQL, err)
	}

	if code, body := getJSON(t, h, "/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz after first snapshot = %d %v, want 200 ready", code, body)
	}

	// Unknown tenants 404 on every per-database route.
	if rec := postFleetTranslate(h, "gamma", "x"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant translate = %d, want 404", rec.Code)
	}
	if code, _ := getJSON(t, h, "/db/gamma/healthz"); code != http.StatusNotFound {
		t.Errorf("unknown tenant healthz = %d, want 404", code)
	}
	if rec := postFleetReload(h, "gamma"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant reload = %d, want 404", rec.Code)
	}

	// Per-tenant health: alpha serves, beta is still cold (503 row).
	if code, body := getJSON(t, h, "/db/alpha/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("alpha healthz = %d %v", code, body)
	}
	if code, body := getJSON(t, h, "/db/beta/healthz"); code != http.StatusServiceUnavailable || body["status"] != "cold" {
		t.Errorf("cold beta healthz = %d %v, want 503 cold", code, body)
	}

	// Fleet roll-up: a cold sibling is a fact of a bounded working set,
	// not degradation.
	code, body := getJSON(t, h, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("fleet healthz = %d %v", code, body)
	}
	tenants := body["tenants"].(map[string]any)
	if len(tenants) != 2 {
		t.Fatalf("roll-up covers %d tenants, want 2", len(tenants))
	}
	if st := tenants["alpha"].(map[string]any)["status"]; st != "ok" {
		t.Errorf("alpha roll-up status = %v", st)
	}
	if st := tenants["beta"].(map[string]any)["state"]; st != "cold" {
		t.Errorf("beta roll-up state = %v", st)
	}
	if reg.Health().Known != 2 {
		t.Errorf("registry knows %d tenants", reg.Health().Known)
	}

	// Request validation matches the single-tenant surface.
	if rec := postFleetTranslate(h, "alpha", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("empty question = %d, want 400", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/db/alpha/translate", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	if mrec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET translate = %d, want 405", mrec.Code)
	}
}

// gatedFleetSource wraps specDirSource so a test can park one tenant's
// reload at a gate, after announcing itself on entered.
type gatedFleetSource struct {
	*specDirSource
	mu      sync.Mutex
	gate    map[string]chan struct{}
	entered chan string
}

func (g *gatedFleetSource) Reload(ctx context.Context, name string, sys *gar.System) error {
	g.mu.Lock()
	gate := g.gate[name]
	g.mu.Unlock()
	if gate != nil {
		g.entered <- name
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-gate:
		}
	}
	return g.specDirSource.Reload(ctx, name, sys)
}

// TestFleetHandlerReloadScoping pins the per-tenant 409: while alpha's
// reload is in flight a second alpha reload conflicts, but beta
// reloads concurrently without contention.
func TestFleetHandlerReloadScoping(t *testing.T) {
	dir := writeSpecDir(t, "alpha", "beta")
	gate := make(chan struct{})
	src := &gatedFleetSource{
		specDirSource: &specDirSource{dir: dir, opts: testServeOpts()},
		gate:          map[string]chan struct{}{"alpha": gate},
		entered:       make(chan string, 1),
	}
	_, h := newTestFleet(t, src, fleet.Config{}, serveConfig{}, "alpha", "beta")

	if rec := postFleetTranslate(h, "alpha", "how many employees are there"); rec.Code != http.StatusOK {
		t.Fatalf("activate alpha: %d %s", rec.Code, rec.Body)
	}

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postFleetReload(h, "alpha") }()
	<-src.entered // the reload now holds alpha's lock at the gate

	if rec := postFleetReload(h, "alpha"); rec.Code != http.StatusConflict {
		t.Fatalf("concurrent alpha reload = %d %s, want 409", rec.Code, rec.Body)
	}
	// The conflict is scoped: beta reloads fine in the middle of it.
	if rec := postFleetReload(h, "beta"); rec.Code != http.StatusOK {
		t.Fatalf("beta reload during alpha's = %d %s", rec.Code, rec.Body)
	}

	close(gate)
	rec := <-first
	if rec.Code != http.StatusOK {
		t.Fatalf("gated alpha reload = %d %s", rec.Code, rec.Body)
	}
	var out struct {
		Tenant     string  `json:"tenant"`
		Generation uint64  `json:"generation"`
		ElapsedMS  float64 `json:"elapsed_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "alpha" || out.Generation == 0 {
		t.Errorf("reload response = %+v", out)
	}
}

// TestFleetBurstSheds saturates one tenant's admission budget and
// proves the shed is tenant-scoped and deterministic: the overflow is
// refused with 429 and the configured Retry-After, the sibling keeps
// serving 200s, and the parked requests complete once released.
func TestFleetBurstSheds(t *testing.T) {
	dir := writeSpecDir(t, "alpha", "beta")
	src := &specDirSource{dir: dir, opts: testServeOpts()}
	reg, h := newTestFleet(t, src,
		fleet.Config{TenantInFlight: 1, TenantQueue: 1, RetryAfter: 7 * time.Second},
		serveConfig{Timeout: time.Minute}, "alpha", "beta")

	if rec := postFleetTranslate(h, "alpha", "how many employees are there"); rec.Code != http.StatusOK {
		t.Fatalf("activate alpha: %d %s", rec.Code, rec.Body)
	}

	// Pin alpha and park every admitted request inside retrieval.
	hnd, err := reg.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer hnd.Release()
	inj := faults.NewInjector(1)
	release := inj.Block(faults.Retrieval)
	defer release()
	hnd.Sys().SetFaultInjector(inj)

	parked := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { parked <- postFleetTranslate(h, "alpha", "who is the oldest employee") }()
	}
	waitFor(t, "alpha to saturate (1 slot + 1 queued)", func() bool {
		st := reg.Health().Tenants["alpha"].Admission
		return st.InFlight == 1 && st.Queued == 1
	})

	for i := 0; i < 3; i++ {
		rec := postFleetTranslate(h, "alpha", "who is the oldest employee")
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("overflow %d = %d %s, want 429", i, rec.Code, rec.Body)
		}
		if ra := rec.Header().Get("Retry-After"); ra != "7" {
			t.Fatalf("overflow %d Retry-After = %q, want \"7\"", i, ra)
		}
	}
	// The sibling's budget is untouched: beta activates and serves.
	if rec := postFleetTranslate(h, "beta", "how many employees are there"); rec.Code != http.StatusOK {
		t.Fatalf("beta during alpha's burst = %d %s", rec.Code, rec.Body)
	}

	release()
	for i := 0; i < 2; i++ {
		if rec := <-parked; rec.Code != http.StatusOK {
			t.Fatalf("parked request %d after release = %d %s", i, rec.Code, rec.Body)
		}
	}
	health := reg.Health()
	if n := health.Tenants["alpha"].Admission.ShedQueueFull; n != 3 {
		t.Errorf("alpha shed %d requests, want exactly 3", n)
	}
	if st := health.Tenants["beta"].Admission; st.ShedQueueFull != 0 || st.ShedDeadline != 0 {
		t.Errorf("beta shed requests during alpha's burst: %+v", st)
	}
}

const (
	serveFleetSpecEnv  = "GAR_FLEET_SPEC_DIR"
	serveFleetStateEnv = "GAR_FLEET_STATE_DIR"
)

// TestServeFleetServerHelper is the child body for the fleet restart
// test: the real runServe in fleet mode against directories passed in
// the environment.
func TestServeFleetServerHelper(t *testing.T) {
	specDir := os.Getenv(serveFleetSpecEnv)
	if specDir == "" {
		t.Skip("helper process body; run via TestServeFleetRestartSIGTERM")
	}
	runServe([]string{
		"-specdir", specDir,
		"-statedir", os.Getenv(serveFleetStateEnv),
		"-addr", "127.0.0.1:0", "-pool", "200",
	})
}

func translateFleetOver(t *testing.T, addr, tenant, question string) translateResponse {
	t.Helper()
	body := fmt.Sprintf(`{"question": %q}`, question)
	resp, err := http.Post("http://"+addr+"/db/"+tenant+"/translate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out translateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("translate %s status %d", tenant, resp.StatusCode)
	}
	return out
}

// TestServeFleetRestartSIGTERM is the fleet durability contract end to
// end: serve two tenants, translate on both, SIGTERM — every resident
// tenant's state flushes under {statedir}/{tenant}/ — then restart and
// warm-start each tenant to byte-identical answers at the same
// generation, with no retraining.
func TestServeFleetRestartSIGTERM(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("subprocess restart test skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	specDir := writeSpecDir(t, "alpha", "beta")
	stateDir := t.TempDir()
	env := []string{serveFleetSpecEnv + "=" + specDir, serveFleetStateEnv + "=" + stateDir}
	const question = "who is the oldest employee"

	cmd, addr, logs := serveChild(t, exe, "TestServeFleetServerHelper", env...)
	first := map[string]translateResponse{}
	for _, tenant := range []string{"alpha", "beta"} {
		first[tenant] = translateFleetOver(t, addr, tenant, question)
	}
	stopServeChild(t, cmd, logs)
	out := logs()
	if !strings.Contains(out, "fleet flushed and stopped") {
		t.Fatalf("no fleet flush on SIGTERM; logs:\n%s", out)
	}
	for _, tenant := range []string{"alpha", "beta"} {
		if !strings.Contains(out, "tenant "+tenant+" final checkpoint flushed") {
			t.Fatalf("tenant %s not flushed; logs:\n%s", tenant, out)
		}
		entries, err := os.ReadDir(filepath.Join(stateDir, tenant))
		if err != nil || len(entries) == 0 {
			t.Fatalf("tenant %s state empty after shutdown (err=%v)", tenant, err)
		}
	}

	cmd2, addr2, logs2 := serveChild(t, exe, "TestServeFleetServerHelper", env...)
	defer func() { _ = cmd2.Process.Kill() }()
	for _, tenant := range []string{"alpha", "beta"} {
		second := translateFleetOver(t, addr2, tenant, question)
		if second.SQL != first[tenant].SQL || second.Generation != first[tenant].Generation {
			t.Fatalf("restart changed %s: %q gen %d -> %q gen %d", tenant,
				first[tenant].SQL, first[tenant].Generation, second.SQL, second.Generation)
		}
	}
	if out := logs2(); !strings.Contains(out, "warm=true") {
		t.Fatalf("second start retrained instead of warm-starting; logs:\n%s", out)
	}
	stopServeChild(t, cmd2, logs2)
}

// TestRunCheckpointCLIMultiTenant drives the checkpoint verbs over a
// fleet state tree: list and verify walk every tenant subdirectory,
// report rows per tenant, flag per-tenant damage with exit 1, and
// prune prefixes its output with the tenant it cleaned.
func TestRunCheckpointCLIMultiTenant(t *testing.T) {
	dir := t.TempDir()
	sys, _, err := buildSystem(demoSpec(), serveStateOpts, "")
	if err != nil {
		t.Fatal(err)
	}
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"acme", "globex"} {
		st, err := checkpoint.OpenTenant(dir, tenant)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Write(m, sections); err != nil {
			t.Fatal(err)
		}
	}

	var out, errOut bytes.Buffer
	if code := runCheckpoint([]string{"list", "-statedir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("list exit %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, header := range []string{"tenant acme:", "tenant globex:"} {
		if !strings.Contains(text, header) {
			t.Fatalf("list missing %q:\n%s", header, text)
		}
	}

	// Damage one tenant's checkpoint: verify must localize the blame.
	name := filepath.Join(dir, "globex", fmt.Sprintf("gen-%020d.ckpt", m.Generation))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := runCheckpoint([]string{"verify", "-statedir", dir, "-o", "json"}, &out, &errOut); code != 1 {
		t.Fatalf("verify exit %d, want 1: %s", code, errOut.String())
	}
	var reports []checkpointReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("verify saw %d rows, want 2: %+v", len(reports), reports)
	}
	for _, r := range reports {
		switch r.Tenant {
		case "acme":
			if !r.Valid {
				t.Errorf("undamaged tenant flagged: %+v", r)
			}
		case "globex":
			if r.Valid {
				t.Errorf("damaged tenant passed verify: %+v", r)
			}
		default:
			t.Errorf("row with unexpected tenant: %+v", r)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := runCheckpoint([]string{"prune", "-statedir", dir, "-keep", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("prune exit %d: %s", code, errOut.String())
	}
	text = out.String()
	for _, prefix := range []string{"tenant acme: kept newest", "tenant globex: kept newest"} {
		if !strings.Contains(text, prefix) {
			t.Fatalf("prune output missing %q:\n%s", prefix, text)
		}
	}
}

// TestFleetHandlerColdPaths covers the surface a fleet shows when it
// cannot serve: a schema-only tenant activates to an empty state and
// answers 503, a full working set with every resident pinned sheds new
// tenants with 429, and a closed registry refuses with 503.
func TestFleetHandlerColdPaths(t *testing.T) {
	dir := writeSpecDir(t, "alpha")
	bare := demoSpec()
	bare.Samples = nil
	data, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "empty.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	src := &specDirSource{dir: dir, opts: testServeOpts()}
	reg, h := newTestFleet(t, src,
		fleet.Config{MaxActive: 1, RetryAfter: 2 * time.Second},
		serveConfig{}, "alpha", "empty")

	// A schema-only tenant activates cleanly but has nothing published:
	// 503 with a back-off hint, not an error.
	rec := postFleetTranslate(h, "empty", "how many employees are there")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("schema-only tenant = %d %s, want 503", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("schema-only 503 has no Retry-After")
	}

	// Pin the sole working-set slot; activating anyone else must shed.
	if rec := postFleetTranslate(h, "alpha", "how many employees are there"); rec.Code != http.StatusOK {
		t.Fatalf("activate alpha: %d %s", rec.Code, rec.Body)
	}
	hnd, err := reg.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	rec = postFleetTranslate(h, "empty", "how many employees are there")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated working set = %d %s, want 429", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("saturated Retry-After = %q, want \"2\"", ra)
	}
	hnd.Release()

	// tenantNames sees only *.json stems, sorted.
	names, err := tenantNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "empty"}; len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("tenantNames = %v, want %v", names, want)
	}
	if _, err := tenantNames(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("tenantNames on a missing directory succeeded")
	}

	// A closed registry refuses with 503 on every route that acquires.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := reg.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := postFleetTranslate(h, "alpha", "x"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("translate after shutdown = %d, want 503", rec.Code)
	}
	if rec := postFleetReload(h, "alpha"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("reload after shutdown = %d, want 503", rec.Code)
	}
}
