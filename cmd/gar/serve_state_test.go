package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/checkpoint"
)

var serveStateOpts = gar.Options{
	GeneralizeSize: 200, RetrievalK: 10, Seed: 1,
	EncoderEpochs: 12, RerankEpochs: 30,
}

// TestServeWarmStartHandler is the in-process restart: a trained
// server's checkpoint is recovered into a system that never ran
// Prepare or Train, and the warm handler answers /translate with the
// same SQL at the same generation while /healthz reports the
// checkpoint counters.
func TestServeWarmStartHandler(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := buildSystem(demoSpec(), serveStateOpts, "")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := cold.WriteCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	coldHandler := newServeHandler(cold, serveConfig{})

	warm, _, err := newSystem(demoSpec(), serveStateOpts)
	if err != nil {
		t.Fatal(err)
	}
	ck, skipped, err := warm.RecoverCheckpoint(st)
	if err != nil || ck == nil || len(skipped) != 0 {
		t.Fatalf("recover: ck=%v skipped=%v err=%v", ck, skipped, err)
	}
	ckptr := warm.NewCheckpointer(st, gar.CheckpointerConfig{Keep: 2})
	warmHandler := newServeHandler(warm, serveConfig{Ckpt: ckptr})

	for _, q := range []string{"who is the oldest employee", "how many employees are there"} {
		body := fmt.Sprintf(`{"question": %q}`, q)
		a := postTranslate(coldHandler, body)
		b := postTranslate(warmHandler, body)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("%q: status cold=%d warm=%d", q, a.Code, b.Code)
		}
		var ra, rb translateResponse
		if err := json.Unmarshal(a.Body.Bytes(), &ra); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b.Body.Bytes(), &rb); err != nil {
			t.Fatal(err)
		}
		if ra.SQL != rb.SQL || ra.Dialect != rb.Dialect {
			t.Fatalf("%q: warm answer %q, cold answer %q", q, rb.SQL, ra.SQL)
		}
		if rb.Generation != gen {
			t.Fatalf("%q: warm generation %d, want checkpointed %d", q, rb.Generation, gen)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	warmHandler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", rec.Code, rec.Body)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["checkpoint"]; !ok {
		t.Fatalf("healthz has no checkpoint section: %v", health)
	}
}

// TestServeAllCorruptCleanEmptyState: when every checkpoint is damaged
// and the spec has no samples to cold-build from, the server comes up
// on a clean empty state — /translate and /readyz answer 503, nothing
// panics, and the damage is reported, not swallowed.
func TestServeAllCorruptCleanEmptyState(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, fmt.Sprintf("gen-%020d.ckpt", 7))
	if err := os.WriteFile(name, []byte("GARCKPT1 but then trash"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	sys, _, err := newSystem(demoSpec(), serveStateOpts)
	if err != nil {
		t.Fatal(err)
	}
	ck, skipped, err := sys.RecoverCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	if ck != nil || len(skipped) != 1 {
		t.Fatalf("all-corrupt store: ck=%v skipped=%v", ck, skipped)
	}
	if sys.Ready() {
		t.Fatal("corrupt checkpoint marked the system ready")
	}

	h := newServeHandler(sys, serveConfig{Ckpt: sys.NewCheckpointer(st, gar.CheckpointerConfig{})})
	rec := postTranslate(h, `{"question": "how many employees are there"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("translate on empty state: %d, want 503", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, req)
	if ready.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on empty state: %d, want 503", ready.Code)
	}
}

const serveStateEnv = "GAR_SERVE_STATE_DIR"

// TestServeStateServerHelper is the child body for the restart test:
// it runs the real runServe (listen, signal handling, shutdown flush)
// against the state directory passed in the environment.
func TestServeStateServerHelper(t *testing.T) {
	dir := os.Getenv(serveStateEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestServeRestartSIGTERM")
	}
	runServe([]string{"-demo", "-addr", "127.0.0.1:0", "-statedir", dir, "-pool", "200"})
}

// serveChild starts a server subprocess — the named helper test with
// the given environment — and returns once it announces readiness,
// along with its address and a way to collect everything it logged.
func serveChild(t *testing.T, exe, helper string, env ...string) (cmd *exec.Cmd, addr string, logs func() string) {
	t.Helper()
	cmd = exec.Command(exe, "-test.run=^"+helper+"$", "-test.v")
	cmd.Env = append(os.Environ(), env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var buf bytes.Buffer
	logs = func() string { mu.Lock(); defer mu.Unlock(); return buf.String() }
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			buf.WriteString(line + "\n")
			mu.Unlock()
			if i := strings.Index(line, "ready on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len("ready on "):]):
				default:
				}
			}
		}
	}()

	select {
	case addr = <-addrc:
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("server never became ready; logs:\n%s", logs())
	}
	return cmd, addr, logs
}

// stopServeChild sends SIGTERM and waits for a clean exit.
func stopServeChild(t *testing.T, cmd *exec.Cmd, logs func() string) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly: %v; logs:\n%s", err, logs())
		}
	case <-time.After(time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("server ignored SIGTERM; logs:\n%s", logs())
	}
}

func translateOver(t *testing.T, addr, question string) translateResponse {
	t.Helper()
	body := fmt.Sprintf(`{"question": %q}`, question)
	resp, err := http.Post("http://"+addr+"/translate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out translateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("translate status %d", resp.StatusCode)
	}
	return out
}

// TestServeRestartSIGTERM is the end-to-end durability contract: serve,
// translate, SIGTERM, restart on the same -statedir — the second
// process warm-starts from the flushed checkpoint (no Prepare, no
// Train) and answers the same question identically.
func TestServeRestartSIGTERM(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("subprocess restart test skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const question = "who is the oldest employee"

	cmd, addr, logs := serveChild(t, exe, "TestServeStateServerHelper", serveStateEnv+"="+dir)
	first := translateOver(t, addr, question)
	stopServeChild(t, cmd, logs)
	if out := logs(); !strings.Contains(out, "final checkpoint flushed") {
		t.Fatalf("no final flush on SIGTERM; logs:\n%s", out)
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("state directory empty after shutdown (err=%v)", err)
	}

	cmd2, addr2, logs2 := serveChild(t, exe, "TestServeStateServerHelper", serveStateEnv+"="+dir)
	defer func() { _ = cmd2.Process.Kill() }()
	if out := logs2(); !strings.Contains(out, "warm start from checkpoint generation") {
		t.Fatalf("second start did not warm-start; logs:\n%s", out)
	}
	second := translateOver(t, addr2, question)
	if second.SQL != first.SQL || second.Dialect != first.Dialect {
		t.Fatalf("restart changed the answer: %q -> %q", first.SQL, second.SQL)
	}
	if second.Generation != first.Generation {
		t.Fatalf("restart changed the generation: %d -> %d", first.Generation, second.Generation)
	}
	stopServeChild(t, cmd2, logs2)
}

// TestRunCheckpointCLI drives the `gar checkpoint` verbs over a real
// state directory: list and verify see the valid generations, verify
// flags a damaged one with exit 1, and prune enforces retention.
func TestRunCheckpointCLI(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := buildSystem(demoSpec(), serveStateOpts, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteCheckpoint(st); err != nil {
		t.Fatal(err)
	}
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	m.Generation = 2
	if err := st.Write(m, sections); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := runCheckpoint([]string{"list", "-statedir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("list exit %d: %s", code, errOut.String())
	}
	if n := strings.Count(out.String(), "ok"); n != 2 {
		t.Fatalf("list saw %d valid checkpoints, want 2:\n%s", n, out.String())
	}

	// Damage the newest file in place: verify must flag it.
	name := filepath.Join(dir, fmt.Sprintf("gen-%020d.ckpt", 2))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := runCheckpoint([]string{"verify", "-statedir", dir, "-o", "json"}, &out, &errOut); code != 1 {
		t.Fatalf("verify exit %d, want 1: %s", code, errOut.String())
	}
	var reports []checkpointReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Valid || !reports[1].Valid {
		t.Fatalf("verify verdicts wrong: %+v", reports)
	}

	// Prune to one generation; the damaged newest survives by
	// generation order, which is exactly why verify exists.
	out.Reset()
	errOut.Reset()
	if code := runCheckpoint([]string{"prune", "-statedir", dir, "-keep", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("prune exit %d: %s", code, errOut.String())
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("prune left %d generations, want 1", len(entries))
	}

	// Usage errors exit 2.
	if code := runCheckpoint(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-verb exit %d, want 2", code)
	}
	if code := runCheckpoint([]string{"list"}, &out, &errOut); code != 2 {
		t.Fatalf("no-statedir exit %d, want 2", code)
	}
	if code := runCheckpoint([]string{"bogus", "-statedir", dir}, &out, &errOut); code != 2 {
		t.Fatalf("bad-verb exit %d, want 2", code)
	}
}

// TestBuildServingSystemPaths drives the startup decision tree
// directly: warm start from a valid checkpoint, fallback past a
// corrupt one, cold build when nothing is recoverable, clean empty
// state for a schema-only spec, and abandoned-temp cleanup.
func TestBuildServingSystemPaths(t *testing.T) {
	logf := func(format string, args ...any) { t.Logf("serve: "+format, args...) }

	// No statedir: plain cold build, no store.
	sys, st, warm, err := buildServingSystem("", demoSpec(), serveStateOpts, "", logf)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil || warm || !sys.Ready() {
		t.Fatalf("cold path: store=%v warm=%v ready=%v", st, warm, sys.Ready())
	}

	// Seed a state directory from that system, plus a corrupt newer
	// generation and an abandoned temp file.
	dir := t.TempDir()
	seed, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.WriteCheckpoint(seed)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, fmt.Sprintf("gen-%020d.ckpt", gen+1))
	if err := os.WriteFile(bad, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".ckpt-orphan.tmp")
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Statedir with a recoverable generation: warm start past the
	// corrupt file, temp swept.
	sys2, st2, warm2, err := buildServingSystem(dir, demoSpec(), serveStateOpts, "", logf)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == nil || !warm2 || !sys2.Ready() || sys2.Generation() != gen {
		t.Fatalf("warm path: store=%v warm=%v ready=%v gen=%d", st2, warm2, sys2.Ready(), sys2.Generation())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("abandoned temp not swept: %v", err)
	}

	// Statedir with nothing recoverable but samples in the spec: cold
	// build behind the store.
	sys3, st3, warm3, err := buildServingSystem(t.TempDir(), demoSpec(), serveStateOpts, "", logf)
	if err != nil {
		t.Fatal(err)
	}
	if st3 == nil || warm3 || !sys3.Ready() {
		t.Fatalf("cold-behind-store path: store=%v warm=%v ready=%v", st3, warm3, sys3.Ready())
	}

	// Schema-only spec and an empty statedir: clean empty state.
	bare := demoSpec()
	bare.Samples = nil
	sys4, st4, warm4, err := buildServingSystem(t.TempDir(), bare, serveStateOpts, "", logf)
	if err != nil {
		t.Fatal(err)
	}
	if st4 == nil || warm4 || sys4.Ready() {
		t.Fatalf("empty-state path: store=%v warm=%v ready=%v", st4, warm4, sys4.Ready())
	}
}

// TestCheckpointReportsText pins the human-readable list output: the
// empty message, the ok row and the INVALID row.
func TestCheckpointReportsText(t *testing.T) {
	var out bytes.Buffer
	printCheckpointReports(&out, nil)
	if !strings.Contains(out.String(), "no checkpoints") {
		t.Fatalf("empty listing = %q", out.String())
	}
	out.Reset()
	printCheckpointReports(&out, []checkpointReport{
		{Generation: 2, Size: 10, Valid: true, Database: "employee", Sections: 4},
		{Generation: 1, Size: 3, Error: "checkpoint: corrupt"},
	})
	text := out.String()
	if !strings.Contains(text, "ok") || !strings.Contains(text, "db=employee") {
		t.Fatalf("valid row missing: %q", text)
	}
	if !strings.Contains(text, "INVALID") || !strings.Contains(text, "corrupt") {
		t.Fatalf("invalid row missing: %q", text)
	}
}
