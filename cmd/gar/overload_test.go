package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/faults"
)

func testServeOpts() gar.Options {
	return gar.Options{
		GeneralizeSize: 200, RetrievalK: 10, Seed: 1,
		EncoderEpochs: 12, RerankEpochs: 30,
	}
}

func getJSON(t *testing.T, h http.Handler, path string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("GET %s: not JSON: %s", path, rec.Body)
	}
	return rec.Code, m
}

func postReload(h http.Handler) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeNotReady: before any snapshot is published the service must
// refuse work loudly — 503 everywhere a probe or client looks.
func TestServeNotReady(t *testing.T) {
	db := gar.NewDatabase("empty")
	db.AddTable("t", gar.Key("id"), gar.NumberColumn("id", "identifier"))
	sys, err := gar.New(db, gar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := newServeHandler(sys, serveConfig{})

	rec := postTranslate(h, `{"question": "anything"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("translate on unready system: status %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("unready translate shed without Retry-After")
	}

	code, body := getJSON(t, h, "/readyz")
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Errorf("readyz on unready system: %d %v", code, body)
	}
	code, body = getJSON(t, h, "/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "unavailable" {
		t.Errorf("healthz on unready system: %d %v", code, body)
	}
}

// TestServeReadyzHealthz checks the happy-path shape of both probes.
func TestServeReadyzHealthz(t *testing.T) {
	sys, _, err := buildSystem(demoSpec(), testServeOpts(), "")
	if err != nil {
		t.Fatal(err)
	}
	h := newServeHandler(sys, serveConfig{MaxInFlight: 4})

	code, body := getJSON(t, h, "/readyz")
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz: %d %v", code, body)
	}
	if body["generation"].(float64) < 1 {
		t.Errorf("readyz generation: %v", body["generation"])
	}

	code, body = getJSON(t, h, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	br := body["breaker"].(map[string]any)
	if br["state"] != "closed" {
		t.Errorf("healthz breaker state: %v", br["state"])
	}
	adm := body["admission"].(map[string]any)
	if adm["max_in_flight"].(float64) != 4 {
		t.Errorf("healthz admission: %v", adm)
	}
}

// TestServeHealthzDegraded: a tripped re-rank breaker keeps the service
// serving (readyz 200) but flips /healthz to degraded so operators see
// the reduced answer quality.
func TestServeHealthzDegraded(t *testing.T) {
	sys, _, err := buildSystem(demoSpec(), testServeOpts(), "")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(1).Fail(faults.Rerank, errors.New("reranker down"))
	sys.SetFaultInjector(inj)
	h := newServeHandler(sys, serveConfig{BreakerFailures: 1, BreakerCooldown: time.Hour})

	rec := postTranslate(h, `{"question": "how many employees are there"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded translate: status %d: %s", rec.Code, rec.Body)
	}
	var resp translateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("re-rank failure not flagged degraded")
	}

	code, body := getJSON(t, h, "/healthz")
	if code != http.StatusOK || body["status"] != "degraded" {
		t.Errorf("healthz with open breaker: %d %v", code, body)
	}
	if br := body["breaker"].(map[string]any); br["state"] != "open" {
		t.Errorf("healthz breaker: %v", br)
	}
	if code, body := getJSON(t, h, "/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Errorf("degraded service must stay ready: %d %v", code, body)
	}
}

// TestServeBurstSheds saturates the service deterministically (a fault
// gate parks admitted requests inside retrieval) and checks the
// admission contract: bounded in-flight work, every excess arrival shed
// immediately with 429 + Retry-After, and every admitted request served
// once the stall clears.
func TestServeBurstSheds(t *testing.T) {
	sys, _, err := buildSystem(demoSpec(), testServeOpts(), "")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(1)
	release := inj.Block(faults.Retrieval)
	defer release()
	sys.SetFaultInjector(inj)

	h := newServeHandler(sys, serveConfig{
		Timeout:     10 * time.Second,
		MaxInFlight: 2,
		MaxQueue:    2,
		RetryAfter:  3 * time.Second,
		NoBreaker:   true,
	})

	type result struct {
		code       int
		retryAfter string
	}
	results := make(chan result, 16)
	post := func() {
		rec := postTranslate(h, `{"question": "how many employees are there"}`)
		results <- result{rec.Code, rec.Header().Get("Retry-After")}
	}
	admission := func() map[string]any {
		_, body := getJSON(t, h, "/healthz")
		return body["admission"].(map[string]any)
	}

	// Fill both worker slots; the holders park inside retrieval.
	go post()
	go post()
	waitFor(t, "slot holders to park in retrieval", func() bool {
		return inj.Calls(faults.Retrieval) == 2
	})
	// Fill both queue slots.
	go post()
	go post()
	waitFor(t, "queue to fill", func() bool {
		return admission()["queued"].(float64) == 2
	})

	// Saturated: every further arrival must shed synchronously with
	// 429 and a Retry-After hint, without touching the pipeline.
	for i := 0; i < 6; i++ {
		go post()
	}
	for i := 0; i < 6; i++ {
		r := <-results
		if r.code != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d: status %d, want 429", i, r.code)
		}
		if r.retryAfter != "3" {
			t.Fatalf("shed %d: Retry-After %q, want \"3\"", i, r.retryAfter)
		}
	}
	if got := inj.Calls(faults.Retrieval); got != 2 {
		t.Fatalf("shed requests reached the pipeline: %d retrieval calls, want 2", got)
	}

	// Open the gate: all four admitted requests complete.
	release()
	for i := 0; i < 4; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("admitted request %d after release: status %d", i, r.code)
		}
	}

	adm := admission()
	if adm["admitted"].(float64) != 4 {
		t.Errorf("admitted: %v, want 4", adm["admitted"])
	}
	if adm["shed_queue_full"].(float64) != 6 {
		t.Errorf("shed_queue_full: %v, want 6", adm["shed_queue_full"])
	}
	if peak := adm["peak_in_flight"].(float64); peak > 2 {
		t.Errorf("peak_in_flight: %v, want <= 2", peak)
	}
	if adm["in_flight"].(float64) != 0 || adm["queued"].(float64) != 0 {
		t.Errorf("occupancy after drain: %v", adm)
	}
}

// TestServeReload: POST /reload swaps in a new generation with zero
// downtime, concurrent reloads are refused with 409, and an
// unconfigured or failing reload reports honestly.
func TestServeReload(t *testing.T) {
	sys, _, models, err := buildSystemModels(demoSpec(), testServeOpts(), "")
	if err != nil {
		t.Fatal(err)
	}
	h := newServeHandler(sys, serveConfig{
		Reload: func(ctx context.Context) error {
			_, err := sys.Swap(demoSpec().Samples, models)
			return err
		},
	})

	before := sys.Generation()
	rec := postReload(h)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Generation uint64 `json:"generation"`
		Pool       int    `json:"pool"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Generation != before+1 || out.Pool == 0 {
		t.Errorf("reload response: %+v (generation before: %d)", out, before)
	}
	if rec := postTranslate(h, `{"question": "how many employees are there"}`); rec.Code != http.StatusOK {
		t.Errorf("translate after reload: status %d", rec.Code)
	}

	// Method and configuration errors.
	req := httptest.NewRequest(http.MethodGet, "/reload", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	if mrec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /reload: status %d", mrec.Code)
	}
	if rec := postReload(newServeHandler(sys, serveConfig{})); rec.Code != http.StatusNotImplemented {
		t.Errorf("unconfigured reload: status %d", rec.Code)
	}
	failing := newServeHandler(sys, serveConfig{
		Reload: func(ctx context.Context) error { return errors.New("spec unreadable") },
	})
	if rec := postReload(failing); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("failing reload: status %d", rec.Code)
	}

	// A reload in progress makes a second one bounce with 409 instead
	// of queueing behind it.
	entered := make(chan struct{})
	proceed := make(chan struct{})
	blocking := newServeHandler(sys, serveConfig{
		Reload: func(ctx context.Context) error {
			close(entered)
			<-proceed
			return nil
		},
	})
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postReload(blocking) }()
	<-entered
	if rec := postReload(blocking); rec.Code != http.StatusConflict {
		t.Errorf("concurrent reload: status %d, want 409", rec.Code)
	}
	close(proceed)
	if rec := <-first; rec.Code != http.StatusOK {
		t.Errorf("blocked reload after release: status %d", rec.Code)
	}
}
