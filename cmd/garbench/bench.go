package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ltr"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/vector"
	"repro/internal/vindex"
)

// benchSamples and benchQuestions fix the translate-benchmark workload:
// the employee-database sample queries from the paper's running example
// and the NL questions asked against them.
func benchSamples() []string {
	return []string{
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT AVG(bonus) FROM evaluation",
		"SELECT COUNT(*) FROM employee",
		"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
		"SELECT city FROM employee",
	}
}

func benchQuestions() []string {
	return []string{
		"find the name of the employee who got the highest one time bonus",
		"which employees are older than 30",
		"what is the age of employees living in Austin",
		"how many employees live in each city",
		"what is the average bonus",
		"how many employees are there",
		"which shop has the most products",
		"who is the oldest employee",
		"list the cities employees live in",
	}
}

func benchExamples() ([]ltr.Example, error) {
	samples, questions := benchSamples(), benchQuestions()
	out := make([]ltr.Example, len(samples))
	for i := range samples {
		gold, err := sqlparse.Parse(samples[i])
		if err != nil {
			return nil, fmt.Errorf("bench sample %d: %w", i, err)
		}
		out[i] = ltr.Example{NL: questions[i], Gold: gold}
	}
	return out, nil
}

// benchStats is one measured configuration.
type benchStats struct {
	Ops         int     `json:"ops"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	QPS         float64 `json:"qps"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// benchReport is the BENCH_translate.json schema.
type benchReport struct {
	GOMAXPROCS  int        `json:"gomaxprocs"`
	PoolSize    int        `json:"pool_size"`
	RetrievalK  int        `json:"retrieval_k"`
	Questions   int        `json:"questions"`
	Iters       int        `json:"iters"`
	EqualOutput bool       `json:"equal_ranked_output"`
	Sequential  benchStats `json:"sequential"`
	Parallel    benchStats `json:"parallel"`
	Speedup     float64    `json:"speedup"`
	CacheMiss   benchStats `json:"cache_miss"`
	CacheHit    benchStats `json:"cache_hit"`
	HitSpeedup  float64    `json:"cache_hit_speedup"`
}

// measure times fn over iters passes of the question set, reporting
// latency percentiles, throughput and heap allocations per call.
func measure(iters int, questions []string, fn func(nl string)) benchStats {
	ops := iters * len(questions)
	lat := make([]float64, 0, ops)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, q := range questions {
			t0 := time.Now()
			fn(q)
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
		}
	}
	total := time.Since(start)
	runtime.ReadMemStats(&m1)
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	return benchStats{
		Ops:         ops,
		P50ms:       pct(0.50),
		P95ms:       pct(0.95),
		QPS:         float64(ops) / total.Seconds(),
		AllocsPerOp: (m1.Mallocs - m0.Mallocs) / uint64(ops),
	}
}

// legacyRank reproduces the pre-optimization second stage exactly: each
// candidate pays the full per-pair feature extraction — NL-side
// tokenization and both-side encoding included — once to order the
// list and a second time to report its score, as the pipeline did
// before NL-side preparation, precomputed dialect embeddings and
// single-pass scoring were introduced.
func legacyRank(pipe *ltr.Pipeline, nl string, hits []vindex.Hit) []ltr.Ranked {
	type scored struct {
		idx   int
		score float64
	}
	s := make([]scored, len(hits))
	for i, h := range hits {
		s[i] = scored{idx: i, score: pipe.Reranker.Score(nl, pipe.Pool[h.ID].Dialect)}
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].score > s[j-1].score; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]ltr.Ranked, 0, len(hits))
	for _, sc := range s {
		h := hits[sc.idx]
		c := pipe.Pool[h.ID]
		out = append(out, ltr.Ranked{
			ID:      h.ID,
			Score:   pipe.Reranker.Score(nl, c.Dialect), // legacy second pass
			Dialect: c.Dialect,
			SQL:     c.SQL,
		})
	}
	return out
}

func sameRanked(a, b []ltr.Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score || a[i].Dialect != b[i].Dialect {
			return false
		}
	}
	return true
}

// runTranslateBench builds one trained employee system, then measures
// the translate hot path four ways: the legacy sequential second stage
// versus the amortized/batched one (asserting byte-identical ranked
// output first), and a cache miss versus a cache hit on the full
// translation path. Results are printed and written to outPath as JSON.
//
//garlint:allow errlost -- the measured closures time warmed calls whose results are discarded by design; setup errors are checked before any measurement
func runTranslateBench(iters int, outPath string) error {
	if iters < 1 {
		iters = 1
	}
	opts := core.Options{
		GeneralizeSize: 2000,
		RetrievalK:     100,
		Seed:           42,
		EncoderEpochs:  12,
		RerankEpochs:   30,
	}
	db := schematest.Employee()
	sys := core.New(db, opts)
	samples := make([]*sqlast.Query, 0, len(benchSamples()))
	for i, s := range benchSamples() {
		q, err := sqlparse.Parse(s)
		if err != nil {
			return fmt.Errorf("bench sample %d: %w", i, err)
		}
		samples = append(samples, q)
	}
	examples, err := benchExamples()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "bench: preparing pool and training models...")
	sys.Prepare(samples)
	models, err := core.TrainModels(
		[]core.TrainingSet{{Sys: sys, Examples: examples}}, opts)
	if err != nil {
		return err
	}
	if err := sys.UseModels(models); err != nil {
		return err
	}

	// Two hand-assembled pipelines over one shared pool and index: the
	// sequential baseline has no precomputed dialect embeddings and one
	// worker; the parallel one is shaped exactly as core builds it.
	pool := sys.Pool()
	vecs := make([]vector.Vec, len(pool))
	index := vindex.NewFlat()
	for i, c := range pool {
		vecs[i] = models.Encoder.Encode(c.Dialect)
		index.Add(i, vecs[i])
	}
	base := &ltr.Pipeline{
		Encoder:  models.Encoder,
		Index:    index,
		Reranker: models.Reranker,
		Pool:     pool,
		K:        opts.RetrievalK,
		Workers:  1,
	}
	fast := &ltr.Pipeline{
		Encoder:  models.Encoder,
		Index:    index,
		Reranker: models.Reranker,
		Pool:     pool,
		K:        opts.RetrievalK,
		DialVecs: vecs,
	}

	ctx := context.Background()
	questions := benchQuestions()
	report := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PoolSize:   len(pool),
		RetrievalK: opts.RetrievalK,
		Questions:  len(questions),
		Iters:      iters,
	}

	// Throughput means nothing if the fast path returns different
	// answers: assert byte-identical ranked output before timing.
	report.EqualOutput = true
	for _, q := range questions {
		hits, err := base.RetrieveContext(ctx, q, 0)
		if err != nil {
			return err
		}
		want := legacyRank(base, q, hits)
		got, err := fast.RerankVecContext(ctx, q, nil, hits)
		if err != nil {
			return err
		}
		if !sameRanked(want, got) {
			report.EqualOutput = false
			return fmt.Errorf("bench: ranked output diverged for %q", q)
		}
	}

	fmt.Fprintln(os.Stderr, "bench: measuring sequential (legacy) path...")
	report.Sequential = measure(iters, questions, func(nl string) {
		hits, err := base.RetrieveContext(ctx, nl, 0)
		if err == nil {
			legacyRank(base, nl, hits)
		}
	})
	fmt.Fprintln(os.Stderr, "bench: measuring batched path...")
	report.Parallel = measure(iters, questions, func(nl string) {
		hits, err := fast.RetrieveContext(ctx, nl, 0)
		if err == nil {
			_, _ = fast.RerankVecContext(ctx, nl, nil, hits)
		}
	})
	report.Speedup = report.Parallel.QPS / report.Sequential.QPS

	// Cache miss vs hit on the full translation path (retrieval,
	// re-rank, value post-processing): the miss system never caches;
	// the hit system is warmed once per question first.
	missOpts, hitOpts := opts, opts
	missOpts.NoCache = true
	missSys := core.New(db, missOpts)
	missSys.Prepare(samples)
	if err := missSys.UseModels(models); err != nil {
		return err
	}
	hitSys := core.New(db, hitOpts)
	hitSys.Prepare(samples)
	if err := hitSys.UseModels(models); err != nil {
		return err
	}
	for _, q := range questions {
		if _, err := hitSys.TranslateContext(ctx, q); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "bench: measuring cache miss path...")
	report.CacheMiss = measure(iters, questions, func(nl string) {
		_, _ = missSys.TranslateContext(ctx, nl)
	})
	fmt.Fprintln(os.Stderr, "bench: measuring cache hit path...")
	report.CacheHit = measure(iters, questions, func(nl string) {
		_, _ = hitSys.TranslateContext(ctx, nl)
	})
	if report.CacheHit.P50ms > 0 {
		report.HitSpeedup = report.CacheMiss.P50ms / report.CacheHit.P50ms
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("translate bench: pool=%d k=%d gomaxprocs=%d\n",
		report.PoolSize, report.RetrievalK, report.GOMAXPROCS)
	fmt.Printf("  sequential: p50 %.2fms p95 %.2fms %.1f qps\n",
		report.Sequential.P50ms, report.Sequential.P95ms, report.Sequential.QPS)
	fmt.Printf("  batched:    p50 %.2fms p95 %.2fms %.1f qps (%.2fx)\n",
		report.Parallel.P50ms, report.Parallel.P95ms, report.Parallel.QPS, report.Speedup)
	fmt.Printf("  cache miss: p50 %.2fms   hit: p50 %.3fms (%.0fx)\n",
		report.CacheMiss.P50ms, report.CacheHit.P50ms, report.HitSpeedup)
	fmt.Printf("  written to %s\n", outPath)
	return nil
}
