package main

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/memgov"
	"repro/internal/schema/schematest"
	"repro/internal/spill"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// The generalize benchmark measures the resource-governed streaming
// machinery under pool-scale pressure: candidate records stream
// through a memgov-governed RAM buffer that overflows into rotating
// spill runs, and an external merge replays them. At each scale the
// replay must be byte-identical and complete (hash equality against
// the deterministic source), the accountant must never exceed its
// limit, and GC'd heap growth must stay near the budget — not near the
// data — proving the spill actually bounds RAM. A final end-to-end
// anchor builds the employee pool governed-with-spill and unbounded
// and asserts byte-identical candidates.

// genScales are the record counts of the scaling sweep.
var genScales = []int{1_000, 10_000, 100_000}

// genRunBytes rotates spill runs at this size so every scale exercises
// multi-run external merges.
const genRunBytes = 256 << 10

// genScaleStats is one scale's row in BENCH_generalize.json.
type genScaleStats struct {
	Records       int     `json:"records"`
	RecordBytes   int64   `json:"record_bytes"`
	BudgetBytes   int64   `json:"budget_bytes"`
	SpillRuns     int     `json:"spill_runs"`
	SpillBytes    int64   `json:"spill_bytes"`
	RecordsPerSec float64 `json:"records_per_sec"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	// BudgetPeak is the accountant's high-water mark; PeakHeapGrowth
	// the largest GC'd heap growth observed while streaming+merging.
	BudgetPeak      int64 `json:"budget_peak_bytes"`
	PeakHeapGrowth  int64 `json:"peak_heap_growth_bytes"`
	ReplayIdentical bool  `json:"replay_identical"`
}

// genPipelineStats is the end-to-end anchor block.
type genPipelineStats struct {
	Pool                 int     `json:"pool"`
	SpillFiles           int     `json:"spill_files"`
	SpillBytes           int64   `json:"spill_bytes"`
	ElapsedMS            float64 `json:"elapsed_ms"`
	IdenticalToUnbounded bool    `json:"identical_to_unbounded"`
}

type genReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Iters      int              `json:"iters"`
	Scales     []genScaleStats  `json:"scales"`
	Pipeline   genPipelineStats `json:"pipeline"`
}

// genRecord renders the i-th synthetic candidate record: SQL-shaped
// text of varied length, deterministic in (seed, i) so the source can
// be regenerated for hash comparison without retaining it in RAM.
func genRecord(rng *rand.Rand, i int) []byte {
	pad := make([]byte, 40+rng.Intn(160))
	for j := range pad {
		pad[j] = byte('a' + rng.Intn(26))
	}
	return []byte(fmt.Sprintf(
		"SELECT c%d, COUNT(*) FROM t%d WHERE label = '%s' GROUP BY c%d ORDER BY %d",
		i%97, i%13, pad, i%97, i))
}

// sourceHash streams the deterministic record sequence through one
// hash: the reference a replay must reproduce byte-for-byte.
func sourceHash(n int) (uint64, int64) {
	h := fnv.New64a()
	rng := rand.New(rand.NewSource(42))
	var total int64
	for i := 0; i < n; i++ {
		rec := genRecord(rng, i)
		hashRec(h, uint64(i), rec)
		total += int64(len(rec))
	}
	return h.Sum64(), total
}

// hashRec folds one (seq, payload) record into h.
//
//garlint:allow errlost -- hash.Hash.Write never returns an error by its documented contract
func hashRec(h hash.Hash64, seq uint64, payload []byte) {
	var seqb [8]byte
	for i := 7; i >= 0; i-- {
		seqb[i] = byte(seq)
		seq >>= 8
	}
	h.Write(seqb[:])
	h.Write(payload)
}

// runGeneralizeScale streams n records under a budget of a quarter of
// their total bytes, spilling through rotating runs in dir, then
// merge-replays and verifies hash equality. Returns the measured row.
func runGeneralizeScale(n int, dir string) (genScaleStats, error) {
	wantHash, totalBytes := sourceHash(n)
	budgetBytes := totalBytes / 4
	st := genScaleStats{Records: n, RecordBytes: totalBytes, BudgetBytes: budgetBytes}

	runtime.GC()
	var m0, m runtime.MemStats
	runtime.ReadMemStats(&m0)
	base := m0.HeapAlloc
	sampleEvery := n / 8
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	sample := func() {
		runtime.GC()
		runtime.ReadMemStats(&m)
		if g := int64(m.HeapAlloc) - int64(base); g > st.PeakHeapGrowth {
			st.PeakHeapGrowth = g
		}
	}

	budget := memgov.New("bench.generalize", budgetBytes)
	buf := budget.Child("buffer", budgetBytes/4).Hold()
	defer buf.Release()

	var (
		buffered [][]byte // seq-prefixed records held in RAM pre-spill
		runs     []string
		w        *spill.Writer
		spilling bool
	)
	flush := func(rec []byte) error {
		if w == nil {
			nw, err := spill.Create(dir, "bench", nil)
			if err != nil {
				return err
			}
			w = nw
		}
		if err := w.Append(rec); err != nil {
			return err
		}
		if w.Bytes() >= genRunBytes {
			path, err := w.Finish()
			if err != nil {
				return err
			}
			runs = append(runs, path)
			w = nil
		}
		return nil
	}

	start := time.Now()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		rec := spill.Record(uint64(i), genRecord(rng, i))
		if !spilling {
			if err := buf.Grow(int64(len(rec))); err == nil {
				buffered = append(buffered, rec)
				if i%sampleEvery == 0 {
					sample()
				}
				continue
			}
			spilling = true
			for _, b := range buffered {
				if err := flush(b); err != nil {
					return st, err
				}
			}
			buffered = nil
			buf.Release()
		}
		if err := flush(rec); err != nil {
			return st, err
		}
		if i%sampleEvery == 0 {
			sample()
		}
	}
	if w != nil {
		path, err := w.Finish()
		if err != nil {
			return st, err
		}
		runs = append(runs, path)
	}
	st.SpillRuns = len(runs)
	for _, p := range runs {
		if fi, err := os.Stat(p); err == nil {
			st.SpillBytes += fi.Size()
		}
	}

	// Merge replay: every record must come back, in order, unchanged.
	h := fnv.New64a()
	replayed := 0
	readers := make([]*spill.Reader, 0, len(runs))
	for _, p := range runs {
		r, err := spill.Open(p, nil)
		if err != nil {
			return st, err
		}
		defer r.Close()
		readers = append(readers, r)
	}
	merge := spill.NewMerge(readers...)
	for {
		seq, payload, err := merge.Next()
		if err != nil {
			break
		}
		hashRec(h, seq, payload)
		replayed++
		if replayed%sampleEvery == 0 {
			sample()
		}
	}
	for _, rec := range buffered {
		seq, payload, err := spill.SplitRecord(rec)
		if err != nil {
			return st, err
		}
		hashRec(h, seq, payload)
		replayed++
	}
	st.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	st.RecordsPerSec = float64(n) / (st.ElapsedMS / 1000)
	st.BudgetPeak = budget.Peak()
	st.ReplayIdentical = replayed == n && h.Sum64() == wantHash

	for _, p := range runs {
		if err := os.Remove(p); err != nil {
			return st, err
		}
	}

	if !st.ReplayIdentical {
		return st, fmt.Errorf("scale %d: replay diverged (%d of %d records, hash mismatch=%v)",
			n, replayed, n, h.Sum64() != wantHash)
	}
	if st.BudgetPeak > budgetBytes {
		return st, fmt.Errorf("scale %d: accountant overran its limit: peak %d > budget %d",
			n, st.BudgetPeak, budgetBytes)
	}
	// The RSS-vs-budget assertion: GC'd heap growth while streaming
	// must track the budget, not the data. Twice the budget plus fixed
	// harness slack is well below full in-RAM retention at every scale
	// that matters.
	if bound := 2*budgetBytes + 4<<20; st.PeakHeapGrowth > bound {
		return st, fmt.Errorf("scale %d: peak heap growth %d exceeds budget-derived bound %d (budget %d, data %d)",
			n, st.PeakHeapGrowth, bound, budgetBytes, totalBytes)
	}
	return st, nil
}

// runGeneralizePipeline is the end-to-end anchor: the employee pool
// built governed (tiny RAM buffer, forced spill) and unbounded must be
// byte-identical candidate-for-candidate.
func runGeneralizePipeline(dir string) (genPipelineStats, error) {
	var st genPipelineStats
	samples := make([]*sqlast.Query, 0, len(benchSamples()))
	for i, s := range benchSamples() {
		q, err := sqlparse.Parse(s)
		if err != nil {
			return st, fmt.Errorf("bench sample %d: %w", i, err)
		}
		samples = append(samples, q)
	}
	opts := core.Options{GeneralizeSize: 2000, RetrievalK: 100, Seed: 42, NoCache: true}
	plain := core.New(schematest.Employee(), opts)
	plain.Prepare(samples)

	govOpts := opts
	govOpts.MemBudget = 256 << 20
	govOpts.SpillDir = dir
	govOpts.SpillBufferBytes = 4096
	gov := core.New(schematest.Employee(), govOpts)
	start := time.Now()
	gov.Prepare(samples)
	st.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000

	ms := gov.MemStats()
	st.Pool = gov.PoolSize()
	st.SpillFiles = ms.SpillFiles
	st.SpillBytes = ms.SpillBytes
	if ms.SpillFiles == 0 {
		return st, fmt.Errorf("governed pipeline build never spilled")
	}
	if ms.Degraded {
		return st, fmt.Errorf("governed pipeline build degraded: %s", ms.DegradeReason)
	}

	a, b := plain.Pool(), gov.Pool()
	st.IdenticalToUnbounded = len(a) == len(b)
	for i := 0; st.IdenticalToUnbounded && i < len(a); i++ {
		st.IdenticalToUnbounded = a[i].SQL.String() == b[i].SQL.String() && a[i].Dialect == b[i].Dialect
	}
	if !st.IdenticalToUnbounded {
		return st, fmt.Errorf("governed pool diverged from unbounded pool (%d vs %d candidates)",
			len(b), len(a))
	}
	return st, nil
}

// runGeneralizeBench is the `-bench generalize` entry point: the
// scaling sweep (best of iters passes per scale) plus the end-to-end
// anchor, printed and written to outPath as JSON.
func runGeneralizeBench(iters int, outPath string) error {
	if iters < 1 {
		iters = 1
	}
	dir, err := os.MkdirTemp("", "garbench-spill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := genReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Iters: iters}
	for _, n := range genScales {
		fmt.Fprintf(os.Stderr, "bench: streaming %d records through budget+spill...\n", n)
		var best genScaleStats
		for it := 0; it < iters; it++ {
			st, err := runGeneralizeScale(n, filepath.Join(dir, fmt.Sprintf("s%d", n)))
			if err != nil {
				return err
			}
			if it == 0 || st.RecordsPerSec > best.RecordsPerSec {
				best = st
			}
		}
		report.Scales = append(report.Scales, best)
	}
	fmt.Fprintln(os.Stderr, "bench: building governed vs unbounded employee pool...")
	report.Pipeline, err = runGeneralizePipeline(filepath.Join(dir, "pipeline"))
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("generalize bench: gomaxprocs=%d iters=%d\n", report.GOMAXPROCS, report.Iters)
	for _, s := range report.Scales {
		fmt.Printf("  %7d records: %8.0f rec/s, %d runs (%d KiB spilled), budget %d KiB peak %d KiB, heap growth %d KiB\n",
			s.Records, s.RecordsPerSec, s.SpillRuns, s.SpillBytes>>10,
			s.BudgetBytes>>10, s.BudgetPeak>>10, s.PeakHeapGrowth>>10)
	}
	fmt.Printf("  pipeline: %d candidates, %d spill file(s), identical to unbounded: %v\n",
		report.Pipeline.Pool, report.Pipeline.SpillFiles, report.Pipeline.IdenticalToUnbounded)
	fmt.Printf("  written to %s\n", outPath)
	return nil
}
