package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/qualgate"
)

// baselineDiff is the artifact written when the quality gate fails: the
// freshly measured numbers next to every violation, so CI can upload
// one file that explains the failure without re-running the suite.
type baselineDiff struct {
	Current    *qualgate.Baseline   `json:"current"`
	Violations []qualgate.Violation `json:"violations"`
}

// runQualityBaseline measures the committed benchmark suites and either
// ratchets the baseline file (write=true) or gates against it. On gate
// failure the measured numbers and violations are written to diffPath
// and a non-nil error is returned.
func runQualityBaseline(baselinePath string, write bool, diffPath string) error {
	ctx := context.Background()
	fmt.Fprintln(os.Stderr, "qualgate: training and measuring committed suites...")
	cur, err := qualgate.MeasureAll(ctx)
	if err != nil {
		return err
	}
	printBaseline(cur)

	if write {
		if err := qualgate.Write(baselinePath, cur); err != nil {
			return err
		}
		fmt.Printf("qualgate: wrote baseline for %d suites to %s\n", len(cur.Databases), baselinePath)
		return nil
	}

	base, err := qualgate.Load(baselinePath)
	if err != nil {
		return fmt.Errorf("%w (run with -baseline -write to create it)", err)
	}
	violations := qualgate.Compare(base, cur, qualgate.DefaultThresholds())
	if len(violations) == 0 {
		fmt.Printf("qualgate: %d suites at or above the committed baseline\n", len(base.Databases))
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "qualgate: FAIL "+v.String())
	}
	if diffPath != "" {
		blob, merr := json.MarshalIndent(baselineDiff{Current: cur, Violations: violations}, "", "  ")
		if merr == nil {
			merr = os.WriteFile(diffPath, append(blob, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "qualgate: writing diff artifact: %v\n", merr)
		} else {
			fmt.Fprintf(os.Stderr, "qualgate: diff artifact written to %s\n", diffPath)
		}
	}
	return fmt.Errorf("quality gate: %d violation(s) against %s", len(violations), baselinePath)
}

func printBaseline(b *qualgate.Baseline) {
	names := make([]string, 0, len(b.Databases))
	for name := range b.Databases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		db := b.Databases[name]
		fmt.Printf("%s: pool=%d\n", name, db.Pool)
		fmt.Printf("  ltr:         top1 %d/%d  top%d %d/%d  p50 %.2fms p95 %.2fms\n",
			db.LTR.Top1, db.LTR.Questions, db.LTR.K, db.LTR.TopK, db.LTR.Questions,
			db.LTR.P50ms, db.LTR.P95ms)
		fmt.Printf("  exec-guided: top1 %d/%d  top%d %d/%d  p50 %.2fms p95 %.2fms\n",
			db.ExecGuided.Top1, db.ExecGuided.Questions, db.ExecGuided.K, db.ExecGuided.TopK,
			db.ExecGuided.Questions, db.ExecGuided.P50ms, db.ExecGuided.P95ms)
	}
}
