// Command garbench regenerates every table and figure of the GAR paper's
// evaluation section on the generated benchmarks and prints them in the
// paper's format. Experiment ids: table1, table3, table4, table5,
// table6, table7, table8, table9, fig9, fig10, fig11, fig12.
//
// Beyond the paper's artifacts, two extra experiments are available:
// "extensions" (the §VII future-work directions) and "rules" (the
// Algorithm 1 recomposition-rule ablation).
//
// Usage:
//
//	garbench [-scale small|full] [-exp id[,id...]] [-seed n]
//	garbench -baseline [-write]    # translation-quality gate / ratchet
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	scale := flag.String("scale", "small", "experiment scale: small or full")
	exp := flag.String("exp", "all", "comma-separated experiment ids (or 'all')")
	seed := flag.Int64("seed", 0, "override the benchmark seed (0 keeps the default)")
	bench := flag.String("bench", "", "run a micro-benchmark instead of experiments (id: translate, generalize)")
	iters := flag.Int("iters", 5, "benchmark iterations over the question set")
	benchOut := flag.String("benchout", "", "benchmark JSON output path (default BENCH_<id>.json)")
	baseline := flag.Bool("baseline", false, "run the translation-quality gate against the committed baseline")
	baselineFile := flag.String("baselinefile", "BASELINE_quality.json", "committed quality-baseline path")
	baselineWrite := flag.Bool("write", false, "with -baseline: ratchet the baseline file from current measurements")
	baselineDiffOut := flag.String("baselinediff", "BASELINE_quality_diff.json", "with -baseline: diff artifact written on gate failure")
	flag.Parse()

	if *baseline {
		if err := runQualityBaseline(*baselineFile, *baselineWrite, *baselineDiffOut); err != nil {
			fmt.Fprintf(os.Stderr, "qualgate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bench != "" {
		out := *benchOut
		if out == "" {
			out = "BENCH_" + *bench + ".json"
		}
		var err error
		switch *bench {
		case "translate":
			err = runTranslateBench(*iters, out)
		case "generalize":
			err = runGeneralizeBench(*iters, out)
		default:
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (want: translate, generalize)\n", *bench)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Small()
	if *scale == "full" {
		cfg = experiments.Full()
	}
	if *seed != 0 {
		cfg.Seed = *seed
		cfg.GAR.Seed = *seed
	}
	lab := experiments.NewLab(cfg)

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]

	type tableExp struct {
		id  string
		run func() (*report.Table, error)
	}
	type textExp struct {
		id  string
		run func() (string, error)
	}
	tables := []tableExp{
		{"table1", lab.Table1}, {"table3", lab.Table3}, {"table4", lab.Table4},
		{"table5", lab.Table5}, {"table6", lab.Table6}, {"table7", lab.Table7},
		{"table8", lab.Table8}, {"table9", lab.Table9}, {"fig10", lab.Fig10},
		{"extensions", lab.Extensions}, {"rules", lab.RuleAblation},
	}
	texts := []textExp{
		{"fig9", lab.Fig9}, {"fig11", lab.Fig11}, {"fig12", lab.Fig12},
	}
	order := []string{"table1", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9", "fig9", "fig10", "fig11", "fig12",
		"extensions", "rules"}

	for _, id := range order {
		if !all && !wanted[id] {
			continue
		}
		start := time.Now()
		done := false
		for _, e := range tables {
			if e.id == id {
				t, err := e.run()
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
					os.Exit(1)
				}
				fmt.Println(t.Render())
				done = true
			}
		}
		for _, e := range texts {
			if e.id == id {
				s, err := e.run()
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
					os.Exit(1)
				}
				fmt.Println(s)
				done = true
			}
		}
		if done {
			fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
