// Command covergate enforces per-package test-coverage floors. It runs
// `go test -cover` over the module, parses the per-package coverage
// percentages, and fails when any package with a committed floor has
// dropped more than the tolerance below it — so coverage can only
// ratchet up, never silently erode.
//
// The floors live in coverage_floors.json, a package-path → percentage
// map committed to the repository. Raise them with -write after adding
// tests:
//
//	covergate              # check against committed floors
//	covergate -write       # rewrite floors from current coverage
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// coverLine matches the per-package summary go test prints for tested
// packages, e.g. "ok  repro/internal/core 1.5s coverage: 74.5% of statements".
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func main() {
	floorsPath := flag.String("floors", "coverage_floors.json", "committed per-package coverage floors")
	write := flag.Bool("write", false, "rewrite the floors file from current coverage instead of checking")
	tolerance := flag.Float64("tolerance", 1.0, "allowed percentage-point slack below a floor")
	flag.Parse()

	measured, err := measureCoverage()
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(1)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "covergate: no coverage lines parsed from go test output")
		os.Exit(1)
	}

	if *write {
		if err := writeFloors(*floorsPath, measured); err != nil {
			fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("covergate: wrote floors for %d packages to %s\n", len(measured), *floorsPath)
		return
	}

	floors, err := readFloors(*floorsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v (run with -write to create it)\n", err)
		os.Exit(1)
	}

	var failures []string
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		floor := floors[pkg]
		got, ok := measured[pkg]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no coverage reported (floor %.1f%%) — package gone or tests no longer run", pkg, floor))
			continue
		}
		if got < floor-*tolerance {
			failures = append(failures, fmt.Sprintf("%s: coverage %.1f%% fell below floor %.1f%% (tolerance %.1fpt)", pkg, got, floor, *tolerance))
		}
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "covergate: FAIL "+f)
	}

	// New tested packages without a floor are surfaced (not failed) so
	// they get ratcheted in on the next -write.
	var unfloored []string
	for pkg := range measured {
		if _, ok := floors[pkg]; !ok {
			unfloored = append(unfloored, pkg)
		}
	}
	sort.Strings(unfloored)
	for _, pkg := range unfloored {
		fmt.Printf("covergate: note: %s (%.1f%%) has no floor — add it with -write\n", pkg, measured[pkg])
	}

	if len(failures) > 0 {
		os.Exit(1)
	}
	fmt.Printf("covergate: %d packages at or above their floors\n", len(floors))
}

// measureCoverage runs `go test -cover ./...` and returns coverage per
// package import path. Packages without test files or without
// statements are omitted.
func measureCoverage() (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-cover", "./...")
	out, err := cmd.Output()
	if err != nil {
		// go test exits non-zero when any test fails; coverage floors
		// are meaningless on a red suite, so surface the test output.
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go test failed:\n%s%s", out, ee.Stderr)
		}
		return nil, err
	}
	got := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		m := coverLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		got[m[1]] = pct
	}
	return got, sc.Err()
}

func readFloors(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	floors := map[string]float64{}
	if err := json.Unmarshal(blob, &floors); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return floors, nil
}

func writeFloors(path string, floors map[string]float64) error {
	blob, err := json.MarshalIndent(floors, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
