package checkpoint

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The SIGKILL crash matrix: a child process writes checkpoint
// generations in a loop through the real temp+fsync+rename path, and
// the parent kills it dead — no signal handler, no defer — at a
// randomized moment. Whatever instant the kill lands on, recovery over
// the surviving directory must find the newest fully-valid generation
// (or nothing, if the very first write died early) and must never
// accept a torn file or panic.

const crashEnv = "GAR_CHECKPOINT_CRASH_CHILD"

// TestCrashWriterHelper is the child body, only active when re-invoked
// by TestCrashRecoverySIGKILL; as a normal test it is a no-op.
func TestCrashWriterHelper(t *testing.T) {
	dir := os.Getenv(crashEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestCrashRecoverySIGKILL")
	}
	st, err := Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Write generations as fast as possible until killed. Payload size
	// varies per generation so kills land at different file offsets.
	for gen := uint64(1); ; gen++ {
		payload := strings.Repeat(fmt.Sprintf("state-%d|", gen), 1+int(gen%97))
		m := Manifest{Generation: gen, Database: "employee", CreatedUnix: int64(gen)}
		sections := []Section{
			{Name: "pool", Data: []byte(payload)},
			{Name: "vecs", Data: []byte(strings.Repeat("v", int(gen%257)))},
		}
		if err := st.Write(m, sections); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX kill semantics required")
	}
	if testing.Short() {
		t.Skip("subprocess crash matrix skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Randomized-but-reproducible kill delays: spread across the write
	// loop's warm-up and steady state so kills land mid-temp-write,
	// mid-fsync, mid-rename, and between writes.
	delays := []time.Duration{
		500 * time.Microsecond, 1100 * time.Microsecond, 2300 * time.Microsecond,
		4700 * time.Microsecond, 9500 * time.Microsecond, 19 * time.Millisecond,
		37 * time.Millisecond, 61 * time.Millisecond,
	}
	for i, delay := range delays {
		t.Run(fmt.Sprintf("kill-after-%s", delay), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run=^TestCrashWriterHelper$", "-test.v")
			cmd.Env = append(os.Environ(), crashEnv+"="+dir)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay + time.Duration(i)*300*time.Microsecond)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = cmd.Wait() // expected: killed

			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			ck, skipped, err := st.Recover(nil)
			if err != nil {
				t.Fatalf("Recover after SIGKILL: %v", err)
			}
			entries, err := st.List()
			if err != nil {
				t.Fatal(err)
			}
			if ck == nil {
				// Legitimate only when the kill beat the very first rename:
				// no completed file may exist.
				if len(entries) != len(skipped) {
					t.Fatalf("no checkpoint recovered but %d files exist (%d skipped)", len(entries), len(skipped))
				}
				return
			}
			// The recovered checkpoint must be the newest valid one: every
			// newer file on disk must be provably invalid (skipped).
			for _, e := range entries {
				if e.Generation <= ck.Manifest.Generation {
					continue
				}
				found := false
				for _, s := range skipped {
					if s.Path == e.Path {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("generation %d is newer than recovered %d and was not proven invalid",
						e.Generation, ck.Manifest.Generation)
				}
			}
			// Content integrity: the pool section must be exactly what the
			// writer produced for that generation.
			gen := ck.Manifest.Generation
			wantPool := strings.Repeat(fmt.Sprintf("state-%d|", gen), 1+int(gen%97))
			if got := string(ck.Section("pool")); got != wantPool {
				t.Fatalf("generation %d recovered with wrong pool (%d bytes, want %d)",
					gen, len(got), len(wantPool))
			}
			if got := len(ck.Section("vecs")); got != int(gen%257) {
				t.Fatalf("generation %d recovered with wrong vecs length %d", gen, got)
			}
			// With rename-last discipline, at most the in-flight generation
			// can be torn; everything the writer finished renaming must
			// validate. (Temp litter is fine — that's CleanTemp's job.)
			if _, err := st.CleanTemp(); err != nil {
				t.Fatalf("CleanTemp after crash: %v", err)
			}
		})
	}
}
