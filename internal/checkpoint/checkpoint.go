package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
)

// Format is the envelope format version this package writes. Decode
// rejects any other version with ErrIncompatible, so a newer process
// can change the layout without older readers half-loading it.
const Format = 1

// ErrCorrupt is wrapped by every integrity failure of Decode: a torn
// or truncated file, a bit flip, a manifest that contradicts the bytes
// around it. Recovery treats a corrupt checkpoint as absent and falls
// back to an older generation.
var ErrCorrupt = errors.New("checkpoint corrupt")

// ErrIncompatible is wrapped when a checkpoint is structurally intact
// but not loadable by this process — an unknown format version, or (at
// a higher layer) a snapshot for a different database. Recovery skips
// it the same way it skips corruption.
var ErrIncompatible = errors.New("checkpoint incompatible")

// The envelope layout, in file order:
//
//	magic                     8 bytes  "GARCKPT1"
//	manifest length           8 bytes  big-endian
//	manifest                  gob of Manifest
//	manifest CRC-64/ECMA      8 bytes  big-endian, over the gob bytes
//	section payloads          raw, in Manifest.Sections order
//
// Every section's length and CRC-64 live in the manifest, so one
// manifest read decides exactly which byte ranges are trustworthy; a
// file that disagrees with its manifest anywhere is rejected whole.
const magic = "GARCKPT1"

// maxManifestLen bounds the manifest allocation before any decoding: a
// real manifest is a few hundred bytes, so a larger claim is hostile or
// torn input, not a big checkpoint.
const maxManifestLen = 1 << 20

// maxSections bounds the section count a manifest may declare.
const maxSections = 64

// maxSectionName bounds one declared section name.
const maxSectionName = 128

var crcTable = crc64.MakeTable(crc64.ECMA)

// headerOverhead is the fixed non-manifest prefix: magic + length word.
const headerOverhead = len(magic) + 8

// SectionInfo describes one section in the manifest: its name, payload
// length and payload checksum.
type SectionInfo struct {
	Name   string
	Length int64
	CRC    uint64
}

// Manifest is the self-describing header of a checkpoint.
type Manifest struct {
	// FormatVersion is the envelope version (Format).
	FormatVersion int
	// Generation is the serving-snapshot generation the checkpoint
	// captures; it is also the file's identity in a Store.
	Generation uint64
	// Database names the database the snapshot serves; a restore onto a
	// system for a different database must refuse it.
	Database string
	// CreatedUnix is the wall-clock write time (seconds).
	CreatedUnix int64
	// Sections lists every payload in file order.
	Sections []SectionInfo
}

// Section is one named payload of a checkpoint.
type Section struct {
	Name string
	Data []byte
}

// Checkpoint is a fully validated decoded checkpoint: the manifest and
// every section payload, each proven against its manifest checksum.
type Checkpoint struct {
	Manifest Manifest
	sections map[string][]byte
}

// Section returns the named payload, or nil when the checkpoint has no
// such section.
func (c *Checkpoint) Section(name string) []byte { return c.sections[name] }

// SectionNames returns the section names in file order.
func (c *Checkpoint) SectionNames() []string {
	out := make([]string, len(c.Manifest.Sections))
	for i, s := range c.Manifest.Sections {
		out[i] = s.Name
	}
	return out
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("checkpoint: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Encode renders the manifest and sections as one envelope byte slice.
// The manifest's FormatVersion and Sections are filled in from the
// arguments; callers set Generation, Database and CreatedUnix.
func Encode(m Manifest, sections []Section) ([]byte, error) {
	m.FormatVersion = Format
	m.Sections = m.Sections[:0]
	total := 0
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > maxSectionName {
			return nil, fmt.Errorf("checkpoint: invalid section name %q", s.Name)
		}
		m.Sections = append(m.Sections, SectionInfo{
			Name:   s.Name,
			Length: int64(len(s.Data)),
			CRC:    crc64.Checksum(s.Data, crcTable),
		})
		total += len(s.Data)
	}
	if len(m.Sections) > maxSections {
		return nil, fmt.Errorf("checkpoint: %d sections exceed the format limit %d", len(m.Sections), maxSections)
	}

	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(&m); err != nil {
		return nil, fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	if mbuf.Len() > maxManifestLen {
		return nil, fmt.Errorf("checkpoint: manifest of %d bytes exceeds the format limit", mbuf.Len())
	}

	out := bytes.NewBuffer(make([]byte, 0, headerOverhead+mbuf.Len()+8+total))
	out.WriteString(magic)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(mbuf.Len()))
	out.Write(n[:])
	out.Write(mbuf.Bytes())
	binary.BigEndian.PutUint64(n[:], crc64.Checksum(mbuf.Bytes(), crcTable))
	out.Write(n[:])
	for _, s := range sections {
		out.Write(s.Data)
	}
	return out.Bytes(), nil
}

// Decode parses and fully validates an envelope: magic, bounded
// manifest, manifest checksum, section count/name/length sanity, and
// every section checksum. Any disagreement between the manifest and
// the bytes is ErrCorrupt; an unknown format version is
// ErrIncompatible. Decode never panics, for any input.
func Decode(data []byte) (*Checkpoint, error) {
	m, bodyOff, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	if len(m.Sections) > maxSections {
		return nil, corrupt("%d sections exceed the format limit %d", len(m.Sections), maxSections)
	}

	body := data[bodyOff:]
	ck := &Checkpoint{Manifest: *m, sections: make(map[string][]byte, len(m.Sections))}
	var off uint64
	for _, s := range m.Sections {
		if s.Name == "" || len(s.Name) > maxSectionName {
			return nil, corrupt("invalid section name %q", s.Name)
		}
		if _, dup := ck.sections[s.Name]; dup {
			return nil, corrupt("duplicate section %q", s.Name)
		}
		if s.Length < 0 || uint64(s.Length) > uint64(len(body))-off {
			return nil, corrupt("section %q claims %d bytes beyond the file: torn write", s.Name, s.Length)
		}
		payload := body[off : off+uint64(s.Length)]
		if crc64.Checksum(payload, crcTable) != s.CRC {
			return nil, corrupt("section %q checksum mismatch", s.Name)
		}
		ck.sections[s.Name] = payload
		off += uint64(s.Length)
	}
	if off != uint64(len(body)) {
		return nil, corrupt("%d trailing bytes beyond the declared sections", uint64(len(body))-off)
	}
	return ck, nil
}

// DecodeManifest validates the envelope up to and including the
// manifest checksum and returns the manifest alone, without touching
// (or verifying) the section payloads. It is the cheap path for
// listing and inspection; use Decode before trusting any payload.
func DecodeManifest(data []byte) (*Manifest, error) {
	m, _, err := decodeHeader(data)
	return m, err
}

// decodeHeader is the shared manifest prefix of Decode and
// DecodeManifest: it validates magic, manifest bounds, manifest
// checksum and format version, and returns the manifest plus the
// offset where the section payloads begin.
func decodeHeader(data []byte) (m *Manifest, bodyOff int, err error) {
	// gob is not hardened against hostile input; the manifest bytes are
	// checksummed before decoding, but CRC-64 is not cryptographic, so
	// a crafted stream could still reach the decoder. Contain it.
	defer func() {
		if rec := recover(); rec != nil {
			m, bodyOff, err = nil, 0, corrupt("malformed manifest: %v", rec)
		}
	}()
	if len(data) < headerOverhead+8 {
		return nil, 0, corrupt("file of %d bytes is shorter than the fixed header", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, corrupt("missing checkpoint magic")
	}
	mlen := binary.BigEndian.Uint64(data[len(magic):headerOverhead])
	if mlen == 0 || mlen > maxManifestLen {
		return nil, 0, corrupt("manifest length %d outside (0, %d]", mlen, maxManifestLen)
	}
	if mlen > uint64(len(data)-headerOverhead-8) {
		return nil, 0, corrupt("manifest length %d exceeds the file: torn or truncated write", mlen)
	}
	mbytes := data[headerOverhead : headerOverhead+int(mlen)]
	wantCRC := binary.BigEndian.Uint64(data[headerOverhead+int(mlen) : headerOverhead+int(mlen)+8])
	if crc64.Checksum(mbytes, crcTable) != wantCRC {
		return nil, 0, corrupt("manifest checksum mismatch")
	}
	var out Manifest
	if err := gob.NewDecoder(bytes.NewReader(mbytes)).Decode(&out); err != nil {
		return nil, 0, corrupt("manifest does not decode: %v", err)
	}
	if out.FormatVersion != Format {
		return nil, 0, fmt.Errorf("checkpoint: %w: format version %d, this build reads %d",
			ErrIncompatible, out.FormatVersion, Format)
	}
	return &out, headerOverhead + int(mlen) + 8, nil
}
