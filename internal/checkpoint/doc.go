// Package checkpoint persists the serving snapshot durably and
// recovers it correctly after any crash.
//
// A checkpoint is a single file: a self-describing envelope holding a
// gob manifest (format version, generation, database, per-section
// lengths and CRC-64/ECMA checksums) followed by raw named section
// payloads. The manifest is itself checksummed, so one read decides
// exactly which byte ranges are trustworthy; a file that disagrees
// with its manifest anywhere — torn tail, flipped bit, truncated
// header — fails Decode with ErrCorrupt and is treated as absent.
// Envelopes from a different format version fail with ErrIncompatible
// instead, so layout changes never half-load.
//
// Store manages a directory of such files, one per snapshot
// generation. Writes follow the temp+fsync+rename discipline (temp
// file in the same directory, fsync, atomic rename, directory fsync),
// so a crash at any instant leaves either the previous complete file
// or the new complete file — never a torn one under the final name.
// Recovery (Store.Recover) walks generations newest-first, fully
// validates each file and offers it to a caller-supplied acceptance
// check, falling back generation-by-generation past anything corrupt,
// incompatible or rejected; only an empty or wholly-invalid directory
// yields "start from clean state". Retention (Store.Prune) keeps the
// last N generations, and Store.CleanTemp sweeps temp files abandoned
// by interrupted writes.
//
// The package is deliberately generic — sections are named byte
// slices — so internal/core can layer the actual snapshot codecs
// (query pool, dialects, embeddings, trained models) on top without a
// dependency cycle, and the crash-consistency tests can exercise the
// format with tiny synthetic payloads. Filesystem fault points for
// those tests come from internal/faults (Store.SetFaultInjector).
package checkpoint
