package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

func writeGen(t *testing.T, st *Store, gen uint64, payload string) {
	t.Helper()
	m := Manifest{Generation: gen, Database: "employee", CreatedUnix: int64(1_700_000_000 + gen)}
	err := st.Write(m, []Section{{Name: "pool", Data: []byte(payload)}})
	if err != nil {
		t.Fatalf("Write gen %d: %v", gen, err)
	}
}

func TestStoreWriteListRead(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, gen := range []uint64{3, 1, 7} {
		writeGen(t, st, gen, fmt.Sprintf("pool-%d", gen))
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Generation != 7 || entries[1].Generation != 3 || entries[2].Generation != 1 {
		t.Fatalf("List order wrong: %+v", entries)
	}
	for _, e := range entries {
		if e.Size <= 0 {
			t.Fatalf("entry %d has no size", e.Generation)
		}
	}
	ck, err := st.ReadGeneration(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(ck.Section("pool")); got != "pool-3" {
		t.Fatalf("gen 3 pool = %q", got)
	}
	// Rewriting a generation replaces it atomically.
	writeGen(t, st, 3, "pool-3-v2")
	ck, err = st.ReadGeneration(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(ck.Section("pool")); got != "pool-3-v2" {
		t.Fatalf("rewritten gen 3 pool = %q", got)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestStoreListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, st, 5, "pool")
	for _, name := range []string{"notes.txt", ".ckpt-123.tmp", "gen-5.ckpt", "gen-x.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Generation != 5 {
		t.Fatalf("List = %+v, want only gen 5", entries)
	}
}

func TestRecoverFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, st, 1, "oldest")
	writeGen(t, st, 2, "good")
	writeGen(t, st, 3, "torn")
	writeGen(t, st, 4, "flipped")

	// Tear gen 3 (truncate) and flip a payload bit of gen 4.
	tear(t, st.Path(3))
	flip(t, st.Path(4), -1)

	ck, skipped, err := st.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Manifest.Generation != 2 {
		t.Fatalf("recovered %+v, want generation 2", ck)
	}
	if string(ck.Section("pool")) != "good" {
		t.Fatalf("recovered pool = %q", ck.Section("pool"))
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d files, want 2: %+v", len(skipped), skipped)
	}
	for _, s := range skipped {
		if !errors.Is(s.Err, ErrCorrupt) {
			t.Fatalf("skip reason untyped: %v", s.Err)
		}
	}
}

func TestRecoverAcceptCallbackFallsBack(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, st, 1, "old-schema")
	writeGen(t, st, 2, "new-schema")
	semantic := errors.New("wrong database")
	ck, skipped, err := st.Recover(func(c *Checkpoint) error {
		if string(c.Section("pool")) == "new-schema" {
			return semantic
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Manifest.Generation != 1 {
		t.Fatalf("recovered %+v, want generation 1", ck)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0].Err, semantic) {
		t.Fatalf("skipped = %+v", skipped)
	}
}

func TestRecoverEmptyAndAllCorrupt(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ck, skipped, err := st.Recover(nil)
	if err != nil || ck != nil || len(skipped) != 0 {
		t.Fatalf("empty dir: ck=%v skipped=%v err=%v", ck, skipped, err)
	}
	writeGen(t, st, 1, "a")
	writeGen(t, st, 2, "b")
	tear(t, st.Path(1))
	tear(t, st.Path(2))
	ck, skipped, err = st.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ck != nil {
		t.Fatalf("recovered a torn checkpoint: %+v", ck)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %+v", skipped)
	}
}

// TestRecoverRejectsRenamedGeneration catches a file whose name lies
// about the generation inside it.
func TestRecoverRejectsRenamedGeneration(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, st, 1, "honest")
	writeGen(t, st, 2, "renamed")
	if err := os.Rename(st.Path(2), st.Path(9)); err != nil {
		t.Fatal(err)
	}
	ck, skipped, err := st.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Manifest.Generation != 1 {
		t.Fatalf("recovered %+v, want honest generation 1", ck)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0].Err, ErrCorrupt) {
		t.Fatalf("skipped = %+v", skipped)
	}
	if _, err := st.ReadGeneration(9); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadGeneration accepted the lying file: %v", err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 5; gen++ {
		writeGen(t, st, gen, "p")
	}
	removed, err := st.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %v, want 3 paths", removed)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Generation != 5 || entries[1].Generation != 4 {
		t.Fatalf("after prune: %+v", entries)
	}
	// keep < 1 still keeps the newest; pruning an already-short dir is a no-op.
	if removed, err := st.Prune(0); err != nil || len(removed) != 1 {
		t.Fatalf("Prune(0) removed %v, err %v", removed, err)
	}
	entries, _ = st.List()
	if len(entries) != 1 || entries[0].Generation != 5 {
		t.Fatalf("Prune(0) must keep the newest: %+v", entries)
	}
	if removed, err := st.Prune(10); err != nil || len(removed) != 0 {
		t.Fatalf("over-long keep pruned %v, err %v", removed, err)
	}
}

func TestCleanTemp(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, st, 1, "keep")
	for _, name := range []string{".ckpt-111.tmp", ".ckpt-abandoned.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := st.CleanTemp()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want both temp files", removed)
	}
	if _, err := st.ReadGeneration(1); err != nil {
		t.Fatalf("CleanTemp damaged a real checkpoint: %v", err)
	}
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasPrefix(de.Name(), ".ckpt-") {
			t.Fatalf("temp file survived: %s", de.Name())
		}
	}
}

// TestWriteFaultMatrix runs the write path under every filesystem
// fault kind and proves the invariant: a failed or corrupted write
// never damages the previous good checkpoint, and recovery afterwards
// lands on a fully-valid generation without panicking.
func TestWriteFaultMatrix(t *testing.T) {
	matrix := []struct {
		name       string
		plan       faults.Plan
		stage      faults.Stage
		wantErr    bool // Write must report failure
		newVisible bool // gen 2 may be visible and valid afterwards
	}{
		{"short write", faults.Plan{Kind: faults.KindShortWrite, Bytes: 10}, faults.FSWrite, true, false},
		{"zero-byte write", faults.Plan{Kind: faults.KindShortWrite, Bytes: 0}, faults.FSWrite, true, false},
		{"write error", faults.Plan{Kind: faults.KindError}, faults.FSWrite, true, false},
		{"fsync error", faults.Plan{Kind: faults.KindError}, faults.FSSync, true, false},
		{"rename error", faults.Plan{Kind: faults.KindError}, faults.FSRename, true, false},
		// A bit flip "succeeds": the file lands under the final name but
		// must be caught by the checksum at read time.
		{"bit flip", faults.Plan{Kind: faults.KindBitFlip, Offset: 97}, faults.FSWrite, false, false},
	}
	for _, tc := range matrix {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			writeGen(t, st, 1, "previous good state")

			inj := faults.NewInjector(1)
			inj.Inject(tc.stage, tc.plan)
			st.SetFaultInjector(inj)
			m := Manifest{Generation: 2, Database: "employee"}
			err = st.Write(m, []Section{{Name: "pool", Data: []byte("next state")}})
			st.SetFaultInjector(nil)
			if tc.wantErr && err == nil {
				t.Fatal("faulted write reported success")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("silent-corruption write must not error: %v", err)
			}

			ck, skipped, rerr := st.Recover(nil)
			if rerr != nil {
				t.Fatalf("Recover: %v", rerr)
			}
			if ck == nil {
				t.Fatalf("previous good generation lost (skipped %+v)", skipped)
			}
			if ck.Manifest.Generation == 2 && !tc.newVisible {
				t.Fatal("recovery trusted the faulted write")
			}
			if ck.Manifest.Generation == 1 && string(ck.Section("pool")) != "previous good state" {
				t.Fatalf("previous generation damaged: %q", ck.Section("pool"))
			}
			// A failed write must not leave temp litter behind (the bit-flip
			// row renames successfully, so nothing to clean there either).
			if tmps, _ := filepath.Glob(filepath.Join(st.Dir(), ".ckpt-*.tmp")); len(tmps) != 0 {
				t.Fatalf("temp litter after faulted write: %v", tmps)
			}
		})
	}
}

// TestWriteFaultRecoverNeverPanics sweeps bit flips across many
// offsets; whatever lands on disk, recovery must return, not panic.
func TestWriteFaultRecoverNeverPanics(t *testing.T) {
	for off := 0; off < 400; off += 7 {
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.NewInjector(int64(off))
		inj.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: off})
		st.SetFaultInjector(inj)
		m := Manifest{Generation: 1, Database: "employee"}
		if err := st.Write(m, []Section{{Name: "pool", Data: []byte("state bytes to corrupt")}}); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		ck, _, err := st.Recover(nil)
		if err != nil {
			t.Fatalf("offset %d: Recover errored: %v", off, err)
		}
		if ck != nil && string(ck.Section("pool")) != "state bytes to corrupt" {
			t.Fatalf("offset %d: silently wrong pool %q", off, ck.Section("pool"))
		}
	}
}

// tear truncates a file to half its length, as a crash mid-write would.
func tear(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// flip XORs one bit of the file; -1 targets the last byte (payload).
func flip(t *testing.T, path string, at int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		at = len(data) + at
	}
	data[at] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
