package checkpoint

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func testSections() []Section {
	return []Section{
		{Name: "pool", Data: []byte("SELECT name FROM employee WHERE age > 'value'")},
		{Name: "vecs", Data: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{Name: "models", Data: bytes.Repeat([]byte("m"), 257)},
		{Name: "empty", Data: nil},
	}
}

func testManifest() Manifest {
	return Manifest{Generation: 42, Database: "employee", CreatedUnix: 1_700_000_000}
}

func encodeTest(t *testing.T) []byte {
	t.Helper()
	data, err := Encode(testManifest(), testSections())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}

// decodeNoPanic guards every hostile-input decode: corruption must
// surface as a typed error, never as a panic.
func decodeNoPanic(t *testing.T, data []byte) (ck *Checkpoint, err error) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("Decode panicked: %v", rec)
		}
	}()
	return Decode(data)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := encodeTest(t)
	ck, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	m := ck.Manifest
	if m.FormatVersion != Format || m.Generation != 42 || m.Database != "employee" || m.CreatedUnix != 1_700_000_000 {
		t.Fatalf("manifest mangled: %+v", m)
	}
	want := testSections()
	if len(m.Sections) != len(want) {
		t.Fatalf("section count = %d, want %d", len(m.Sections), len(want))
	}
	for i, s := range want {
		if m.Sections[i].Name != s.Name {
			t.Fatalf("section %d = %q, want %q (order must be preserved)", i, m.Sections[i].Name, s.Name)
		}
		if got := ck.Section(s.Name); !bytes.Equal(got, s.Data) {
			t.Fatalf("section %q = %q, want %q", s.Name, got, s.Data)
		}
	}
	if got := ck.Section("no-such"); got != nil {
		t.Fatalf("missing section returned %q", got)
	}
	names := ck.SectionNames()
	if len(names) != len(want) || names[0] != "pool" || names[3] != "empty" {
		t.Fatalf("SectionNames = %v", names)
	}
}

func TestDecodeManifestSkipsPayloads(t *testing.T) {
	data := encodeTest(t)
	// Corrupt a payload byte: DecodeManifest must not care, Decode must.
	data[len(data)-1] ^= 0xFF
	if _, err := DecodeManifest(data); err != nil {
		t.Fatalf("DecodeManifest rejected a payload-only corruption: %v", err)
	}
	if _, err := decodeNoPanic(t, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode accepted a corrupt payload: %v", err)
	}
}

func TestEncodeRejectsBadSections(t *testing.T) {
	if _, err := Encode(testManifest(), []Section{{Name: "", Data: nil}}); err == nil {
		t.Fatal("empty section name accepted")
	}
	if _, err := Encode(testManifest(), []Section{{Name: strings.Repeat("n", maxSectionName+1)}}); err == nil {
		t.Fatal("oversized section name accepted")
	}
	many := make([]Section, maxSections+1)
	for i := range many {
		many[i].Name = string(rune('a'+i%26)) + strings.Repeat("x", i/26)
	}
	if _, err := Encode(testManifest(), many); err == nil {
		t.Fatal("too many sections accepted")
	}
}

// TestDecodeTruncationMatrix truncates a valid envelope at every
// single offset: each prefix must be rejected with ErrCorrupt and must
// never panic.
func TestDecodeTruncationMatrix(t *testing.T) {
	data := encodeTest(t)
	for n := 0; n < len(data); n++ {
		_, err := decodeNoPanic(t, data[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes gave untyped error: %v", n, err)
		}
	}
}

// TestDecodeBitFlipMatrix flips one bit at every byte of the envelope.
// Each flip must either be rejected with a typed error or (never, for
// this layout, but tolerated in principle for gob's slack bytes)
// decode to exactly the original content — a silently wrong section is
// the one forbidden outcome.
func TestDecodeBitFlipMatrix(t *testing.T) {
	data := encodeTest(t)
	orig, err := Decode(data)
	if err != nil {
		t.Fatalf("baseline Decode: %v", err)
	}
	for i := range data {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 1 << (i % 8)
		ck, err := decodeNoPanic(t, flipped)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
				t.Fatalf("flip at byte %d gave untyped error: %v", i, err)
			}
			continue
		}
		for _, s := range orig.Manifest.Sections {
			if !bytes.Equal(ck.Section(s.Name), orig.Section(s.Name)) {
				t.Fatalf("flip at byte %d silently changed section %q", i, s.Name)
			}
		}
	}
}

func TestDecodeWrongVersionIsIncompatible(t *testing.T) {
	m := testManifest()
	m.FormatVersion = Format // Encode overwrites it; fake a future version below.
	data, err := Encode(m, testSections())
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the manifest with a bumped version by patching through the
	// public API: decode, bump, re-encode manually is overkill — instead
	// exercise the check by corrupting nothing and asserting current
	// version passes, then build a v2 envelope via encodeWithVersion.
	if _, err := Decode(data); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	v2 := encodeWithVersion(t, 99)
	_, err = decodeNoPanic(t, v2)
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("future format version error = %v, want ErrIncompatible", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("version mismatch must not read as corruption")
	}
}

// encodeWithVersion builds an otherwise-valid envelope claiming an
// arbitrary format version, bypassing Encode's version stamping.
func encodeWithVersion(t *testing.T, version int) []byte {
	t.Helper()
	data, err := encodeRaw(Manifest{FormatVersion: version, Generation: 1, Database: "db"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeTrailingGarbageRejected(t *testing.T) {
	data := append(encodeTest(t), "extra bytes"...)
	if _, err := decodeNoPanic(t, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestDecodeHostileManifests(t *testing.T) {
	cases := map[string][]byte{
		"empty":           nil,
		"magic only":      []byte(magic),
		"wrong magic":     bytes.Repeat([]byte("X"), 64),
		"huge manifest":   append([]byte(magic), bytes.Repeat([]byte{0xFF}, 16)...),
		"zero manifest":   append([]byte(magic), make([]byte, 16)...),
		"garbage gob":     hostileGob(t),
		"length overflow": hostileLength(t),
	}
	for name, data := range cases {
		_, err := decodeNoPanic(t, data)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
			t.Fatalf("%s: untyped error %v", name, err)
		}
	}
}

// hostileGob claims a plausible manifest length over garbage bytes,
// with a correct CRC so the garbage reaches the gob decoder.
func hostileGob(t *testing.T) []byte {
	t.Helper()
	garbage := bytes.Repeat([]byte{0x7F, 0x01, 0xFF}, 11)
	return frameManifestBytes(garbage)
}

// hostileLength declares sections whose lengths overflow the body.
func hostileLength(t *testing.T) []byte {
	t.Helper()
	data, err := encodeRaw(Manifest{
		FormatVersion: Format,
		Sections:      []SectionInfo{{Name: "s", Length: 1 << 40, CRC: 0}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeNegativeAndDuplicateSections(t *testing.T) {
	neg, err := encodeRaw(Manifest{
		FormatVersion: Format,
		Sections:      []SectionInfo{{Name: "s", Length: -5}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeNoPanic(t, neg); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative section length accepted: %v", err)
	}

	payload := []byte("dup")
	dup, err := encodeRaw(Manifest{
		FormatVersion: Format,
		Sections: []SectionInfo{
			{Name: "s", Length: 3, CRC: sectionCRC(payload)},
			{Name: "s", Length: 3, CRC: sectionCRC(payload)},
		},
	}, append(payload, payload...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeNoPanic(t, dup); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate section accepted: %v", err)
	}
}
