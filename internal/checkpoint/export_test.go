package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc64"
)

// Test-only raw encoders: build envelopes Encode refuses to, so the
// decoder's rejection paths (bad versions, lying section tables) can be
// exercised with otherwise well-formed framing.

// sectionCRC exposes the payload checksum for hand-built manifests.
func sectionCRC(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// frameManifestBytes wraps arbitrary bytes in valid magic + length +
// CRC framing, so they reach the gob decoder intact.
func frameManifestBytes(mbytes []byte) []byte {
	out := bytes.NewBuffer(nil)
	out.WriteString(magic)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(mbytes)))
	out.Write(n[:])
	out.Write(mbytes)
	binary.BigEndian.PutUint64(n[:], crc64.Checksum(mbytes, crcTable))
	out.Write(n[:])
	return out.Bytes()
}

// encodeRaw gob-encodes the manifest exactly as given — no version
// stamping, no section table recomputation — frames it, and appends
// the body verbatim.
func encodeRaw(m Manifest, body []byte) ([]byte, error) {
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(&m); err != nil {
		return nil, err
	}
	return append(frameManifestBytes(mbuf.Bytes()), body...), nil
}
