package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"

	"repro/internal/faults"
)

// fileName is the on-disk name of one checkpoint generation. The
// zero-padded decimal makes lexical order equal numeric order, so a
// directory listing is already generation-sorted.
const fileName = "gen-%020d.ckpt"

// tmpPattern is the os.CreateTemp pattern of in-progress writes; the
// leading dot keeps them out of casual globs and List.
const tmpPattern = ".ckpt-*.tmp"

var fileRE = regexp.MustCompile(`^gen-(\d{20})\.ckpt$`)

// Store manages a directory of checkpoint files, one per generation.
// All writes go through the temp+fsync+rename discipline, so the
// directory only ever contains complete files (modulo media
// corruption, which Decode catches) plus temp files from interrupted
// writes, which CleanTemp removes.
//
// A Store is safe for concurrent use by one writer and any readers;
// concurrent writers of the same generation last-write-win atomically.
type Store struct {
	dir string
	// inj, when set, fires at the filesystem fault points of every
	// write; see internal/faults. Test-harness hook.
	inj *faults.Injector
}

// Open creates the directory if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: opening state directory: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory.
func (st *Store) Dir() string { return st.dir }

// SetFaultInjector installs a fault injector fired at the FSWrite,
// FSSync and FSRename points of every subsequent write. Pass nil to
// disable. Intended for the crash-consistency test harness.
func (st *Store) SetFaultInjector(inj *faults.Injector) { st.inj = inj }

// Path returns the file path of a generation (whether or not it exists).
func (st *Store) Path(gen uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf(fileName, gen))
}

// Write encodes the checkpoint and persists it crash-safely under its
// generation's name: the envelope goes to a temp file in the same
// directory, is fsynced, renamed over the final name, and the
// directory is fsynced so the rename itself survives a crash. A
// failure at any point leaves the previous file for the generation (if
// any) untouched.
//
//garlint:allow ctxpass -- deliberately synchronous: the fsync/rename
// sequencing is the crash-safety contract and must run to completion;
// context.Background only feeds instantaneous test fault points
func (st *Store) Write(m Manifest, sections []Section) error {
	data, err := Encode(m, sections)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			discardTemp(tmp)
		}
	}()

	// The write fault point may truncate or corrupt the buffer; what it
	// returns is what reaches the disk, and its error is the write's.
	buf, ferr := st.inj.FireData(faults.FSWrite, data)
	if len(buf) > 0 {
		if _, werr := tmp.Write(buf); werr != nil {
			return fmt.Errorf("checkpoint: writing %s: %w", filepath.Base(tmp.Name()), werr)
		}
	}
	if ferr != nil {
		return fmt.Errorf("checkpoint: writing %s: %w", filepath.Base(tmp.Name()), ferr)
	}
	if err := st.inj.Fire(context.Background(), faults.FSSync); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", filepath.Base(tmp.Name()), err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", filepath.Base(tmp.Name()), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", filepath.Base(tmp.Name()), err)
	}
	if err := st.inj.Fire(context.Background(), faults.FSRename); err != nil {
		return fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	final := st.Path(m.Generation)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	tmp = nil // renamed away; nothing to clean up
	syncDir(st.dir)
	return nil
}

// discardTemp closes and removes a temp file after a failure that is
// already being reported.
//
//garlint:allow errlost -- best-effort cleanup on a path that is already failing; the original error is the one to surface
func discardTemp(f *os.File) {
	_ = f.Close()
	_ = os.Remove(f.Name())
}

// syncDir fsyncs a directory so a completed rename survives a crash.
//
//garlint:allow errlost -- durability hint after the rename has already landed; there is nothing left to unwind
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Entry is one checkpoint file found in the state directory. Presence
// in a listing says nothing about validity; use ReadGeneration or
// Recover to prove a file trustworthy.
type Entry struct {
	Generation uint64
	Path       string
	Size       int64
	ModTime    time.Time
}

// List returns every checkpoint file in the directory, newest
// generation first. Temp files and foreign names are ignored.
func (st *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing state directory: %w", err)
	}
	var out []Entry
	for _, de := range des {
		match := fileRE.FindStringSubmatch(de.Name())
		if match == nil || de.IsDir() {
			continue
		}
		gen, err := strconv.ParseUint(match[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Generation: gen, Path: filepath.Join(st.dir, de.Name())}
		if info, err := de.Info(); err == nil {
			e.Size = info.Size()
			e.ModTime = info.ModTime()
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Generation > out[j].Generation })
	return out, nil
}

// ReadFile reads and fully validates one checkpoint file.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	ck, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, filepath.Base(path))
	}
	return ck, nil
}

// ReadGeneration reads and fully validates the file of one generation.
func (st *Store) ReadGeneration(gen uint64) (*Checkpoint, error) {
	ck, err := ReadFile(st.Path(gen))
	if err != nil {
		return nil, err
	}
	if ck.Manifest.Generation != gen {
		return nil, corrupt("file %s carries generation %d", filepath.Base(st.Path(gen)), ck.Manifest.Generation)
	}
	return ck, nil
}

// Skipped records one checkpoint Recover had to pass over and why.
type Skipped struct {
	Path string
	Err  error
}

// Recover walks the directory newest-generation-first, fully validates
// each checkpoint and offers it to accept (nil accept accepts
// anything). The first checkpoint that both validates and is accepted
// wins; everything that fails — corrupt envelope, incompatible
// version, a semantic rejection from accept — is recorded in skipped
// and the walk falls back one generation. A nil *Checkpoint with a nil
// error means the directory holds nothing recoverable: the caller
// starts from a clean empty state.
func (st *Store) Recover(accept func(*Checkpoint) error) (*Checkpoint, []Skipped, error) {
	entries, err := st.List()
	if err != nil {
		return nil, nil, err
	}
	var skipped []Skipped
	for _, e := range entries {
		ck, err := ReadFile(e.Path)
		if err == nil && ck.Manifest.Generation != e.Generation {
			err = corrupt("file %s carries generation %d", filepath.Base(e.Path), ck.Manifest.Generation)
		}
		if err == nil && accept != nil {
			err = accept(ck)
		}
		if err != nil {
			skipped = append(skipped, Skipped{Path: e.Path, Err: err})
			continue
		}
		return ck, skipped, nil
	}
	return nil, skipped, nil
}

// Prune removes all but the newest keep generations and returns the
// removed paths. keep < 1 is treated as 1: pruning never deletes the
// newest checkpoint.
func (st *Store) Prune(keep int) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := st.List()
	if err != nil {
		return nil, err
	}
	var removed []string
	var firstErr error
	for _, e := range entries[min(keep, len(entries)):] {
		if err := os.Remove(e.Path); err != nil {
			if firstErr == nil && !errors.Is(err, fs.ErrNotExist) {
				firstErr = fmt.Errorf("checkpoint: pruning: %w", err)
			}
			continue
		}
		removed = append(removed, e.Path)
	}
	return removed, firstErr
}

// CleanTemp removes temp files abandoned by interrupted writes and
// returns the removed paths. Run it at startup, before any new write
// can have a temp file legitimately in flight.
func (st *Store) CleanTemp() ([]string, error) {
	tmps, err := filepath.Glob(filepath.Join(st.dir, tmpPattern))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scanning temp files: %w", err)
	}
	var removed []string
	var firstErr error
	for _, p := range tmps {
		if err := os.Remove(p); err != nil {
			if firstErr == nil && !errors.Is(err, fs.ErrNotExist) {
				firstErr = fmt.Errorf("checkpoint: cleaning temp files: %w", err)
			}
			continue
		}
		removed = append(removed, p)
	}
	return removed, firstErr
}
