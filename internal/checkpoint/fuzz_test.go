package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeeds are real envelopes (and near-misses) that seed both fuzz
// targets, so coverage starts at the interesting boundaries instead of
// random noise.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	real, err := Encode(
		Manifest{Generation: 7, Database: "employee", CreatedUnix: 1_700_000_000},
		[]Section{
			{Name: "pool", Data: []byte("SELECT name FROM employee WHERE age > 'value'")},
			{Name: "vecs", Data: bytes.Repeat([]byte{0xAB}, 64)},
		},
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add(real[:len(real)/2])
	f.Add(real[:headerOverhead])
	f.Add([]byte(magic))
	f.Add([]byte{})
	flipped := append([]byte(nil), real...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	if v99, err := encodeRaw(Manifest{FormatVersion: 99, Generation: 1}, nil); err == nil {
		f.Add(v99)
	}
}

// FuzzDecode asserts the decoder's contract on arbitrary input: never
// panic, never allocate unboundedly, and fail only with the two typed
// sentinels — anything it does accept must re-encode to a decodable
// envelope with identical content.
func FuzzDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Round-trip what was accepted: re-encoding the decoded content
		// must produce an envelope that decodes back to the same sections.
		sections := make([]Section, 0, len(ck.Manifest.Sections))
		for _, s := range ck.Manifest.Sections {
			sections = append(sections, Section{Name: s.Name, Data: ck.Section(s.Name)})
		}
		re, err := Encode(ck.Manifest, sections)
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		ck2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		for _, s := range ck.Manifest.Sections {
			if !bytes.Equal(ck.Section(s.Name), ck2.Section(s.Name)) {
				t.Fatalf("section %q changed across the round trip", s.Name)
			}
		}
	})
}

// FuzzDecodeManifest asserts the cheap header path obeys the same
// contract and never disagrees with the full decoder about the header.
func FuzzDecodeManifest(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
				t.Fatalf("untyped manifest error: %v", err)
			}
			// The full decoder must reject anything the header path rejects.
			if _, derr := Decode(data); derr == nil {
				t.Fatal("Decode accepted what DecodeManifest rejected")
			}
			return
		}
		if m.FormatVersion != Format {
			t.Fatalf("accepted manifest with version %d", m.FormatVersion)
		}
		if len(m.Sections) > maxSections {
			// Decode enforces this bound; the header path may pass it
			// through, but the full decoder must still reject.
			if _, derr := Decode(data); derr == nil {
				t.Fatal("Decode accepted an over-long section table")
			}
		}
	})
}
