package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrTenantName reports a tenant name that cannot be used as a state
// subdirectory.
var ErrTenantName = errors.New("checkpoint: invalid tenant name")

// ValidTenantName reports whether name is usable as one path element of
// a multi-tenant state tree. Tenant names arrive from URLs and end up
// on the filesystem, so the rule is deliberately strict: ASCII letters,
// digits, '-', '_' and non-leading '.', at most 128 bytes. Everything
// that could escape the tree (separators, "..", hidden names) is
// rejected. The literal name "feedback" is reserved: single-tenant
// serving keeps its feedback WAL at {statedir}/feedback, so a tenant
// by that name would collide with the log tree.
func ValidTenantName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	if name == "feedback" {
		return false
	}
	if strings.HasPrefix(name, ".") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// OpenTenant opens (creating it if needed) the per-tenant store
// {root}/{name} of a multi-tenant state tree.
func OpenTenant(root, name string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("checkpoint: empty state directory for tenant %q", name)
	}
	if !ValidTenantName(name) {
		return nil, fmt.Errorf("%w: %q", ErrTenantName, name)
	}
	return Open(filepath.Join(root, name))
}

// ListTenants returns, sorted, the tenant names of a multi-tenant state
// tree: every subdirectory of root whose name is a valid tenant name.
// A root that does not exist lists empty — a fleet that has never
// flushed simply has no tenants on disk yet.
func ListTenants(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing tenants: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && ValidTenantName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
