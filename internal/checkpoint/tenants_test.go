package checkpoint_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

// TestValidTenantName pins the filesystem-safety rule for names that
// arrive from URLs: only plain ASCII path elements survive.
func TestValidTenantName(t *testing.T) {
	valid := []string{"a", "spider", "Spider-2.0", "db_01", "x.y"}
	for _, name := range valid {
		if !checkpoint.ValidTenantName(name) {
			t.Errorf("ValidTenantName(%q) = false, want true", name)
		}
	}
	invalid := []string{
		"", ".", "..", ".hidden", "a/b", `a\b`, "a b", "naïve", "a:b",
		"feedback", // reserved: the single-tenant feedback WAL directory
		strings.Repeat("x", 129),
	}
	for _, name := range invalid {
		if checkpoint.ValidTenantName(name) {
			t.Errorf("ValidTenantName(%q) = true, want false", name)
		}
	}
}

// TestOpenTenant covers the per-tenant store constructor and its two
// refusals: no root, and a name that could escape the tree.
func TestOpenTenant(t *testing.T) {
	root := t.TempDir()
	st, err := checkpoint.OpenTenant(root, "acme")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil || len(entries) != 0 {
		t.Fatalf("fresh tenant store: entries=%v err=%v", entries, err)
	}
	if fi, err := os.Stat(filepath.Join(root, "acme")); err != nil || !fi.IsDir() {
		t.Fatalf("tenant subdirectory not created: %v", err)
	}

	if _, err := checkpoint.OpenTenant("", "acme"); err == nil {
		t.Fatal("empty root accepted")
	}
	if _, err := checkpoint.OpenTenant(root, "../escape"); !errors.Is(err, checkpoint.ErrTenantName) {
		t.Fatalf("traversal name error = %v, want ErrTenantName", err)
	}
}

// TestListTenants pins the tree walk: valid subdirectories sorted,
// files and invalid names skipped, and a never-flushed root listing
// empty without error.
func TestListTenants(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"globex", "acme", ".hidden"} {
		if err := os.Mkdir(filepath.Join(root, name), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// A stray file is not a tenant.
	if err := os.WriteFile(filepath.Join(root, "gen-1.ckpt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := checkpoint.ListTenants(root)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"acme", "globex"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("ListTenants = %v, want %v", names, want)
	}

	names, err = checkpoint.ListTenants(filepath.Join(root, "never-flushed"))
	if err != nil || names != nil {
		t.Fatalf("nonexistent root: names=%v err=%v, want nil, nil", names, err)
	}
}
