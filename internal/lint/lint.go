// Package lint implements a minimal go/analysis-style framework and the
// repository's custom analyzers. The cmd/garlint driver runs them under
// `go vet -vettool` via the unitchecker protocol; linttest runs them
// over source fixtures in unit tests.
//
// Analyzers:
//
//	nopanic  — no panic in library packages outside Must* helpers
//	ctxpass  — no context.Background()/TODO() where a context is in scope
//	mustonly — Must* helpers callable only from tests and wrappers
//	snaponce — an atomic.Pointer snapshot is Load()ed exactly once per
//	           function and the loaded value, never the pointer, is
//	           passed down (the single-generation serving invariant)
//	lockhold — no blocking operation (channel send/recv, select without
//	           default, time.Sleep, file or network I/O) while a
//	           sync.Mutex or RWMutex is held
//	goexit   — every `go` statement is joined: a WaitGroup, a done
//	           channel, or a ctx.Done() cancellation path
//	errlost  — no discarded error values: neither `_ =` assignments nor
//	           bare call statements may drop an error
//
// A function can opt out of one analyzer with a directive in its doc
// comment. The reason after " -- " is mandatory — a directive without
// one (or naming an unknown analyzer) is itself a diagnostic, so every
// exemption documents why it is safe:
//
//	//garlint:allow ctxpass -- compatibility wrapper, see RetrieveContext
//	func (r *Retriever) Retrieve(q string) []int { ... }
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// Analyzer is one static check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer; it is also its flag name under
	// `go vet -vettool` and the argument of //garlint:allow.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package and reports findings via Pass.Reportf.
	Run func(*Pass)
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoPanic, CtxPass, MustOnly, SnapOnce, LockHold, GoExit, ErrLost}
}

// Pass carries one package's parsed and typechecked form through one
// analyzer run and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Diags accumulates the findings in report order.
	Diags []Diagnostic
	// Suppressed counts findings (or whole-function skips) waved off by
	// an applicable //garlint:allow directive during this pass.
	Suppressed int
}

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Diags = append(p.Diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether doc carries a //garlint:allow directive for
// this pass's analyzer, counting the suppression when it does. The
// directive's reason is validated separately by Run, so a reasonless
// directive still suppresses — and still fails the build through its
// own diagnostic.
func (p *Pass) Allowed(doc *ast.CommentGroup) bool {
	if !Allowed(p.Analyzer.Name, doc) {
		return false
	}
	p.Suppressed++
	return true
}

// IsTestFile reports whether the file is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// NewInfo allocates a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Result is the outcome of one Run: the combined diagnostics of every
// analyzer (plus directive-hygiene findings under the pseudo-analyzer
// "allow") and the suppression tally per analyzer.
type Result struct {
	Diags []Diagnostic
	// Suppressed maps analyzer name → findings or function skips waved
	// off by //garlint:allow directives. Analyzers with zero
	// suppressions are absent.
	Suppressed map[string]int
}

// Run typechecks nothing — the caller provides pkg/info — and executes
// every analyzer in order, then validates the //garlint:allow
// directives themselves (every directive must name known analyzers and
// carry a reason), returning the combined result.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) Result {
	res := Result{Suppressed: map[string]int{}}
	for _, a := range analyzers {
		p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		a.Run(p)
		res.Diags = append(res.Diags, p.Diags...)
		if p.Suppressed > 0 {
			res.Suppressed[a.Name] += p.Suppressed
		}
	}
	res.Diags = append(res.Diags, CheckDirectives(fset, files)...)
	return res
}

// AllowDirective is the required comment prefix of an exemption.
const AllowDirective = "//garlint:allow"

// parseAllow splits one comment line into the analyzer names and the
// free-form reason of an allow directive. ok is false when the line is
// not a directive at all. The reason separator is " -- " (canonical) or
// " // ".
func parseAllow(text string) (names []string, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, AllowDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		reason = strings.TrimSpace(rest[i+2:])
		rest = rest[:i]
	} else if i := strings.Index(rest, "//"); i >= 0 {
		reason = strings.TrimSpace(rest[i+2:])
		rest = rest[:i]
	}
	return strings.Fields(rest), reason, true
}

// Allowed reports whether the doc comment carries a
// "//garlint:allow <name>" directive for the analyzer.
func Allowed(analyzer string, doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		names, _, ok := parseAllow(c.Text)
		if !ok {
			continue
		}
		for _, name := range names {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// CheckDirectives validates every //garlint:allow directive of the
// files: each must name at least one known analyzer, only known
// analyzers, and carry a non-empty reason after " -- ". Violations are
// reported under the pseudo-analyzer "allow", so a sloppy exemption
// fails the build exactly like the finding it would hide.
func CheckDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "allow",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				names, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				if len(names) == 0 {
					report(c.Pos(), "allow directive names no analyzer")
					continue
				}
				for _, name := range names {
					if !known[name] {
						report(c.Pos(), "allow directive names unknown analyzer %q", name)
					}
				}
				if reason == "" {
					report(c.Pos(), "allow directive for %s is missing its reason (use %s %s -- <why this is safe>)",
						strings.Join(names, ", "), AllowDirective, strings.Join(names, " "))
				}
			}
		}
	}
	return out
}

// isMustName reports whether name follows the Must* convention: the
// "Must" prefix followed by nothing or a non-lowercase rune, so
// "MustParse" and "Must" qualify but "Mustard" does not.
func isMustName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Must")
	if !ok {
		return false
	}
	return rest == "" || !unicode.IsLower(rune(rest[0]))
}

// funcDecls yields the function declarations of a file that have bodies.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			out = append(out, fn)
		}
	}
	return out
}
