// Package lint implements a minimal go/analysis-style framework and the
// repository's custom analyzers. The cmd/garlint driver runs them under
// `go vet -vettool` via the unitchecker protocol; linttest runs them
// over source fixtures in unit tests.
//
// Analyzers:
//
//	nopanic  — no panic in library packages outside Must* helpers
//	ctxpass  — no context.Background()/TODO() where a context is in scope
//	mustonly — Must* helpers callable only from tests and wrappers
//
// A function can opt out of one analyzer with a directive in its doc
// comment, which doubles as documentation of why the exemption is safe:
//
//	//garlint:allow ctxpass -- compatibility wrapper, see RetrieveContext
//	func (r *Retriever) Retrieve(q string) []int { ... }
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// Analyzer is one static check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer; it is also its flag name under
	// `go vet -vettool` and the argument of //garlint:allow.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package and reports findings via Pass.Reportf.
	Run func(*Pass)
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoPanic, CtxPass, MustOnly}
}

// Pass carries one package's parsed and typechecked form through one
// analyzer run and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Diags accumulates the findings in report order.
	Diags []Diagnostic
}

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Diags = append(p.Diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// NewInfo allocates a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Run typechecks nothing — the caller provides pkg/info — and executes
// every analyzer in order, returning the combined diagnostics.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		a.Run(p)
		out = append(out, p.Diags...)
	}
	return out
}

// Allowed reports whether the doc comment carries a
// "//garlint:allow <name>" directive for the analyzer. Everything after
// " -- " is a free-form justification and is ignored.
func Allowed(analyzer string, doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//garlint:allow")
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		if i := strings.Index(rest, "--"); i >= 0 {
			rest = rest[:i]
		}
		for _, name := range strings.Fields(rest) {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// isMustName reports whether name follows the Must* convention: the
// "Must" prefix followed by nothing or a non-lowercase rune, so
// "MustParse" and "Must" qualify but "Mustard" does not.
func isMustName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Must")
	if !ok {
		return false
	}
	return rest == "" || !unicode.IsLower(rune(rest[0]))
}

// funcDecls yields the function declarations of a file that have bodies.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			out = append(out, fn)
		}
	}
	return out
}
