package lint

import (
	"go/ast"
	"go/types"
)

// CtxPass enforces context propagation. A function that already
// receives a context.Context must thread it instead of minting a fresh
// root with context.Background() or context.TODO() — a fresh root
// silently severs cancellation and deadlines. Outside such functions a
// bare Background/TODO is still suspect in library code: only main
// packages, test files and explicitly documented compatibility wrappers
// ("//garlint:allow ctxpass") may create root contexts.
var CtxPass = &Analyzer{
	Name: "ctxpass",
	Doc:  "forbid context.Background/TODO where a context should be threaded",
	Run:  runCtxPass,
}

func runCtxPass(p *Pass) {
	for _, f := range p.Files {
		test := p.IsTestFile(f)
		for _, fn := range funcDecls(f) {
			hasCtx := receivesContext(p, fn)
			allowed := p.Allowed(fn.Doc)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := contextRootCall(p, call)
				if name == "" {
					return true
				}
				switch {
				case hasCtx && !allowed:
					p.Reportf(call.Pos(), "%s receives a context.Context but calls context.%s; thread the parameter",
						fn.Name.Name, name)
				case !hasCtx && !allowed && !test && p.Pkg.Name() != "main":
					p.Reportf(call.Pos(), "context.%s in library function %s; accept a context.Context parameter",
						name, fn.Name.Name)
				}
				return true
			})
		}
	}
}

// receivesContext reports whether the function has a context.Context
// parameter.
func receivesContext(p *Pass, fn *ast.FuncDecl) bool {
	obj, ok := p.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// contextRootCall returns "Background" or "TODO" when the call creates
// a root context via the context package, and "" otherwise.
func contextRootCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fnObj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "context" {
		return ""
	}
	if name := fnObj.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}
