package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids panic in library code. The translation path is built
// around graceful degradation (internal/core recovers per stage), so a
// panic anywhere else is a latent crash: library functions must return
// errors instead. Exempt are main packages, test files, functions whose
// name carries the Must* convention, the fault-injection package (whose
// whole job is to blow up) and functions with a
// "//garlint:allow nopanic" directive.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in library packages outside Must* helpers",
	Run:  runNoPanic,
}

func runNoPanic(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	if path := p.Pkg.Path(); path == "faults" || strings.HasSuffix(path, "/faults") {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, fn := range funcDecls(f) {
			if isMustName(fn.Name.Name) || p.Allowed(fn.Doc) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
					return true // a local function shadowing the name
				}
				name := fn.Name.Name
				p.Reportf(call.Pos(), "panic in library function %s; return an error or rename to Must%s",
					name, strings.ToUpper(name[:1])+name[1:])
				return true
			})
		}
	}
}
