package lint_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func docComment(lines ...string) *ast.CommentGroup {
	g := &ast.CommentGroup{}
	for _, l := range lines {
		g.List = append(g.List, &ast.Comment{Text: l})
	}
	return g
}

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestNoPanic(t *testing.T) {
	linttest.Run(t, lint.NoPanic, fixture("nopanic", "lib"))
}

func TestNoPanicMainExempt(t *testing.T) {
	linttest.Run(t, lint.NoPanic, fixture("nopanic", "mainpkg"))
}

func TestNoPanicFaultsExempt(t *testing.T) {
	linttest.Run(t, lint.NoPanic, fixture("nopanic", "faults"))
}

func TestCtxPass(t *testing.T) {
	linttest.Run(t, lint.CtxPass, fixture("ctxpass", "lib"))
}

func TestCtxPassMain(t *testing.T) {
	linttest.Run(t, lint.CtxPass, fixture("ctxpass", "mainpkg"))
}

func TestMustOnly(t *testing.T) {
	linttest.Run(t, lint.MustOnly, fixture("mustonly", "lib"))
}

func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"nopanic", "ctxpass", "mustonly"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}

func TestAllowedDirective(t *testing.T) {
	// Allowed is exercised end-to-end by the fixtures; this covers the
	// parsing corners directly.
	cases := []struct {
		text     string
		analyzer string
		want     bool
	}{
		{"//garlint:allow nopanic", "nopanic", true},
		{"//garlint:allow nopanic ctxpass", "ctxpass", true},
		{"//garlint:allow nopanic -- reason mentioning ctxpass", "ctxpass", false},
		{"//garlint:allow", "nopanic", false},
		{"// garlint:allow nopanic", "nopanic", false}, // not a directive: space after //
		{"//garlint:allownopanic", "nopanic", false},
	}
	for _, c := range cases {
		doc := docComment(c.text)
		if got := lint.Allowed(c.analyzer, doc); got != c.want {
			t.Errorf("Allowed(%q, %q) = %v, want %v", c.analyzer, c.text, got, c.want)
		}
	}
	if lint.Allowed("nopanic", nil) {
		t.Error("Allowed with nil doc should be false")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "nopanic", Message: "panic in library function f"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got := d.String(); !strings.Contains(got, "x.go:3:7") || !strings.Contains(got, "[nopanic]") {
		t.Errorf("String() = %q", got)
	}
}
