package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func docComment(lines ...string) *ast.CommentGroup {
	g := &ast.CommentGroup{}
	for _, l := range lines {
		g.List = append(g.List, &ast.Comment{Text: l})
	}
	return g
}

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestNoPanic(t *testing.T) {
	linttest.Run(t, lint.NoPanic, fixture("nopanic", "lib"))
}

func TestNoPanicMainExempt(t *testing.T) {
	linttest.Run(t, lint.NoPanic, fixture("nopanic", "mainpkg"))
}

func TestNoPanicFaultsExempt(t *testing.T) {
	linttest.Run(t, lint.NoPanic, fixture("nopanic", "faults"))
}

func TestCtxPass(t *testing.T) {
	linttest.Run(t, lint.CtxPass, fixture("ctxpass", "lib"))
}

func TestCtxPassMain(t *testing.T) {
	linttest.Run(t, lint.CtxPass, fixture("ctxpass", "mainpkg"))
}

func TestMustOnly(t *testing.T) {
	linttest.Run(t, lint.MustOnly, fixture("mustonly", "lib"))
}

func TestSnapOnce(t *testing.T) {
	linttest.Run(t, lint.SnapOnce, fixture("snaponce", "lib"))
}

func TestLockHold(t *testing.T) {
	linttest.Run(t, lint.LockHold, fixture("lockhold", "lib"))
}

func TestGoExit(t *testing.T) {
	linttest.Run(t, lint.GoExit, fixture("goexit", "lib"))
}

func TestErrLost(t *testing.T) {
	linttest.Run(t, lint.ErrLost, fixture("errlost", "lib"))
}

func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"nopanic", "ctxpass", "mustonly", "snaponce", "lockhold", "goexit", "errlost"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}

func TestAllowedDirective(t *testing.T) {
	// Allowed is exercised end-to-end by the fixtures; this covers the
	// parsing corners directly.
	cases := []struct {
		text     string
		analyzer string
		want     bool
	}{
		{"//garlint:allow nopanic", "nopanic", true},
		{"//garlint:allow nopanic ctxpass", "ctxpass", true},
		{"//garlint:allow nopanic -- reason mentioning ctxpass", "ctxpass", false},
		{"//garlint:allow nopanic // legacy separator mentioning ctxpass", "ctxpass", false},
		{"//garlint:allow", "nopanic", false},
		{"// garlint:allow nopanic", "nopanic", false}, // not a directive: space after //
		{"//garlint:allownopanic", "nopanic", false},
	}
	for _, c := range cases {
		doc := docComment(c.text)
		if got := lint.Allowed(c.analyzer, doc); got != c.want {
			t.Errorf("Allowed(%q, %q) = %v, want %v", c.analyzer, c.text, got, c.want)
		}
	}
	if lint.Allowed("nopanic", nil) {
		t.Error("Allowed with nil doc should be false")
	}
}

// parseSrc typechecks an inline dependency-free source string.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := lint.NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

func TestCheckDirectives(t *testing.T) {
	const src = `package p

//garlint:allow nopanic
func a() { panic("suppressed but flagged for the missing reason") }

//garlint:allow bogus -- not an analyzer
func b() {}

//garlint:allow
func c() {}

//garlint:allow ctxpass nopanic -- a reasoned multi-name directive is fine
func d() {}
`
	fset, files, _, _ := parseSrc(t, src)
	diags := lint.CheckDirectives(fset, files)
	wants := []string{
		"missing its reason",
		`unknown analyzer "bogus"`,
		"names no analyzer",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d directive diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
	for i, d := range diags {
		if d.Analyzer != "allow" {
			t.Errorf("diag %d analyzer = %q, want \"allow\"", i, d.Analyzer)
		}
		if !strings.Contains(d.Message, wants[i]) {
			t.Errorf("diag %d = %q, want it to contain %q", i, d.Message, wants[i])
		}
	}
}

func TestRunCountsSuppressions(t *testing.T) {
	const src = `package p

//garlint:allow nopanic -- fixture: panic is the point here
func f() { panic("waved off") }

func g() { panic("reported") }
`
	fset, files, pkg, info := parseSrc(t, src)
	res := lint.Run(fset, files, pkg, info, []*lint.Analyzer{lint.NoPanic})
	if len(res.Diags) != 1 || !strings.Contains(res.Diags[0].Message, "panic in library function g") {
		t.Fatalf("Diags = %v, want the one finding in g", res.Diags)
	}
	if res.Suppressed["nopanic"] != 1 {
		t.Errorf("Suppressed[nopanic] = %d, want 1", res.Suppressed["nopanic"])
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "nopanic", Message: "panic in library function f"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got := d.String(); !strings.Contains(got, "x.go:3:7") || !strings.Contains(got, "[nopanic]") {
		t.Errorf("String() = %q", got)
	}
}
