package lint

import (
	"go/ast"
	"go/types"
)

// SnapOnce enforces the single-generation serving invariant from the
// copy-on-write snapshot design: a request-path function must observe
// exactly one published snapshot, so an atomic.Pointer must be
// .Load()ed once and the loaded value — never the pointer — passed
// down. Two loads in one function (or a load inside a loop) can
// straddle a concurrent Swap and mix generations; handing the pointer
// itself to a callee invites the callee to re-load. Functions that also
// CompareAndSwap the same pointer are exempt — a CAS retry loop
// re-loads by design — as are test files and functions carrying a
// "//garlint:allow snaponce" directive.
var SnapOnce = &Analyzer{
	Name: "snaponce",
	Doc:  "load an atomic.Pointer snapshot exactly once and pass the value, not the pointer",
	Run:  runSnapOnce,
}

func runSnapOnce(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, fn := range funcDecls(f) {
			if p.Allowed(fn.Doc) {
				continue
			}
			checkSnapOnce(p, fn)
		}
	}
}

// checkSnapOnce analyzes one function body.
func checkSnapOnce(p *Pass, fn *ast.FuncDecl) {
	// loads[key] collects the Load call sites per receiver expression;
	// cas[key] marks receivers the function CompareAndSwaps (retry
	// loops re-load legitimately).
	loads := map[string][]*ast.CallExpr{}
	inLoop := map[*ast.CallExpr]bool{}
	cas := map[string]bool{}

	var walk func(n ast.Node, loop bool)
	walk = func(n ast.Node, loop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.ForStmt:
				if x.Init != nil {
					walk(x.Init, loop)
				}
				walk(x.Body, true)
				return false
			case *ast.RangeStmt:
				walk(x.Body, true)
				return false
			case *ast.FuncLit:
				// A closure is its own request scope (it may run once
				// per call); analyze it independently of the enclosing
				// loop context.
				return false
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || !isAtomicPointer(p, sel.X) {
					break
				}
				key := types.ExprString(sel.X)
				switch sel.Sel.Name {
				case "Load":
					loads[key] = append(loads[key], x)
					inLoop[x] = loop
				case "CompareAndSwap", "Swap":
					cas[key] = true
				}
			}
			return true
		})
	}
	walk(fn.Body, false)

	// Passing the pointer down: any call argument whose type is
	// atomic.Pointer[T] or *atomic.Pointer[T].
	ast.Inspect(fn.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if isAtomicPointer(p, arg) {
				p.Reportf(arg.Pos(), "%s passes the atomic pointer %s down; pass the Load()ed snapshot value instead",
					fn.Name.Name, types.ExprString(arg))
			}
		}
		return true
	})

	for key, sites := range loads {
		if cas[key] {
			continue
		}
		if len(sites) > 1 {
			for _, site := range sites[1:] {
				p.Reportf(site.Pos(), "%s loads snapshot %s %d times; a request must observe one generation — load once and pass the value down",
					fn.Name.Name, key, len(sites))
			}
			continue
		}
		if inLoop[sites[0]] {
			p.Reportf(sites[0].Pos(), "%s loads snapshot %s inside a loop; each iteration may observe a different generation — load once before the loop",
				fn.Name.Name, key)
		}
	}
}

// isAtomicPointer reports whether the expression's type is
// sync/atomic.Pointer[T] (or a pointer to one).
func isAtomicPointer(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
