// Package linttest runs lint analyzers over source fixtures, in the
// style of go/analysis/analysistest: every fixture line that should
// trigger a finding carries a `// want "regexp"` comment, and the test
// fails on any unmatched expectation or unexpected diagnostic.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe locates a want comment; quotedRe then extracts its patterns,
// so `// want "a" "b"` expects two findings on the line.
var (
	wantRe   = regexp.MustCompile(`want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// expectation is one `// want` pattern at a fixture line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run typechecks the fixture package in dir, executes the analyzer and
// compares its diagnostics against the fixture's want comments. The
// package is typechecked with the source importer, so fixtures may
// import standard-library packages. The fixture's import path is
// "fixture/<base(dir)>", which lets path-sensitive analyzers (e.g.
// nopanic's faults exemption) be exercised by directory naming.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		wants = append(wants, collectWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	info := lint.NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // collect every error via the returned one
	}
	pkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("linttest: typechecking %s: %v", dir, err)
	}

	diags := lint.Run(fset, files, pkg, info, []*lint.Analyzer{a}).Diags
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses the `// want "..."` comments of a file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
				unquoted, err := strconv.Unquote(`"` + q[1] + `"`)
				if err != nil {
					t.Fatalf("linttest: bad want pattern %q: %v", q[1], err)
				}
				re, err := regexp.Compile(unquoted)
				if err != nil {
					t.Fatalf("linttest: bad want regexp %q: %v", unquoted, err)
				}
				pos := fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return out
}

// consume marks the first unmatched expectation on the diagnostic's
// line whose pattern matches, and reports whether one was found.
func consume(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
