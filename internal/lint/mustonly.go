package lint

import (
	"go/ast"
)

// MustOnly restricts Must* helpers (which panic on failure by
// convention) to contexts where a panic is acceptable: test files,
// other Must* wrappers, package-level variable initializers, and
// functions documented as generators with "//garlint:allow mustonly".
// Everywhere else the non-panicking variant must be used and its error
// handled.
var MustOnly = &Analyzer{
	Name: "mustonly",
	Doc:  "restrict Must* helpers to tests, wrappers and generators",
	Run:  runMustOnly,
}

func runMustOnly(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		// Only function bodies are walked: a Must* call in a
		// package-level var initializer runs once at startup, where a
		// panic is an acceptable configuration failure.
		for _, fn := range funcDecls(f) {
			if isMustName(fn.Name.Name) || p.Allowed(fn.Doc) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee string
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callee = fun.Name
				case *ast.SelectorExpr:
					callee = fun.Sel.Name
				default:
					return true
				}
				if isMustName(callee) {
					p.Reportf(call.Pos(), "call to %s in %s; use the error-returning variant outside tests",
						callee, fn.Name.Name)
				}
				return true
			})
		}
	}
}
