package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold forbids blocking operations while a sync.Mutex or RWMutex is
// held: channel sends and receives, select without a default case,
// time.Sleep, WaitGroup/Cond waits, and file or network I/O through the
// standard library. A goroutine parked inside a critical section stalls
// every other goroutine contending for the lock — in a serving stack
// that converts one slow request into a convoy. The tracking is
// intra-procedural: Lock/Unlock pairs (including `defer Unlock`) are
// followed through straight-line code, branches, and loops; a lock
// released on one terminating branch stays held on the fall-through
// path. Calls into non-stdlib functions are not assumed blocking, so a
// deliberately held lock around an opaque call (a serialized writer,
// say) stays clean. Test files and functions with a
// "//garlint:allow lockhold" directive are exempt.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "forbid blocking operations (channel ops, selects, sleeps, I/O) while a mutex is held",
	Run:  runLockHold,
}

func runLockHold(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, fn := range funcDecls(f) {
			if p.Allowed(fn.Doc) {
				continue
			}
			c := &lockChecker{p: p, fn: fn}
			c.body(fn.Body)
		}
	}
}

// lockState maps a held lock's receiver expression (e.g. "s.mu") to the
// position of the Lock call that acquired it.
type lockState map[string]token.Pos

func (ls lockState) clone() lockState {
	cp := make(lockState, len(ls))
	for k, v := range ls {
		cp[k] = v
	}
	return cp
}

// names renders the held set for diagnostics, sorted for determinism.
func (ls lockState) names() string {
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

type lockChecker struct {
	p  *Pass
	fn *ast.FuncDecl
}

// body analyzes one function (or function-literal) body from an empty
// lock state. Nested function literals are analyzed as their own
// scopes: a closure does not run under the locks of the point where it
// is written.
func (c *lockChecker) body(b *ast.BlockStmt) {
	c.block(b.List, lockState{})
	ast.Inspect(b, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != b {
			c.block(lit.Body.List, lockState{})
			return false
		}
		return true
	})
}

// block runs the statements sequentially against held, reporting
// whether the path terminates (return/branch).
func (c *lockChecker) block(stmts []ast.Stmt, held lockState) bool {
	for _, s := range stmts {
		if c.stmt(s, held) {
			return true
		}
	}
	return false
}

func (c *lockChecker) stmt(s ast.Stmt, held lockState) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if key, op, ok := c.mutexOp(call); ok {
				if op == "Lock" || op == "RLock" {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return false
			}
		}
		c.exprs(held, x.X)
	case *ast.SendStmt:
		if len(held) > 0 {
			c.report(x.Pos(), held, "channel send")
		}
		c.exprs(held, x.Chan, x.Value)
	case *ast.AssignStmt:
		c.exprs(held, x.Rhs...)
		c.exprs(held, x.Lhs...)
	case *ast.IncDecStmt:
		c.exprs(held, x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(held, vs.Values...)
				}
			}
		}
	case *ast.DeferStmt:
		// Deferred code runs at return; a deferred Unlock means the
		// lock is (intentionally) held for the rest of the function,
		// which the current state already reflects.
		return false
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks; only the
		// argument expressions evaluate here and now.
		c.exprs(held, x.Call.Args...)
	case *ast.ReturnStmt:
		c.exprs(held, x.Results...)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return c.block(x.List, held)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, held)
	case *ast.IfStmt:
		if x.Init != nil {
			c.stmt(x.Init, held)
		}
		c.exprs(held, x.Cond)
		thenHeld := held.clone()
		thenTerm := c.block(x.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = c.stmt(x.Else, elseHeld)
		}
		mergeHeld(held, thenHeld, thenTerm, elseHeld, elseTerm)
		return thenTerm && elseTerm && x.Else != nil
	case *ast.ForStmt:
		if x.Init != nil {
			c.stmt(x.Init, held)
		}
		c.exprs(held, x.Cond)
		c.block(x.Body.List, held.clone()) // loop bodies are assumed lock-balanced
	case *ast.RangeStmt:
		c.exprs(held, x.X)
		c.block(x.Body.List, held.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, held)
		}
		c.exprs(held, x.Tag)
		c.caseBodies(x.Body, held)
	case *ast.TypeSwitchStmt:
		c.caseBodies(x.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(x) {
			c.report(x.Pos(), held, "select without default")
		}
		for _, cl := range x.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				// The comm op itself was judged at select level; the
				// case bodies run after it completes.
				c.block(comm.Body, held.clone())
			}
		}
	}
	return false
}

// caseBodies analyzes each case clause of a switch against a private
// copy of the held set.
func (c *lockChecker) caseBodies(body *ast.BlockStmt, held lockState) {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			c.exprs(held, cc.List...)
			c.block(cc.Body, held.clone())
		}
	}
}

// mergeHeld folds the two branch outcomes back into held: a lock is
// still held after the branch only if every non-terminating path kept
// it (terminating paths do not reach the code after the branch).
func mergeHeld(held, a lockState, aTerm bool, b lockState, bTerm bool) {
	var keep lockState
	switch {
	case aTerm && bTerm:
		return // both paths left; held stays as the entry state
	case aTerm:
		keep = b
	case bTerm:
		keep = a
	default:
		keep = lockState{}
		for k, v := range a {
			if _, ok := b[k]; ok {
				keep[k] = v
			}
		}
	}
	for k := range held {
		if _, ok := keep[k]; !ok {
			delete(held, k)
		}
	}
	for k, v := range keep {
		if _, ok := held[k]; !ok {
			held[k] = v
		}
	}
}

// exprs scans expressions for blocking operations while locks are held.
// Function literals are skipped — they run later, in their own scope.
func (c *lockChecker) exprs(held lockState, es ...ast.Expr) {
	if len(held) == 0 {
		return
	}
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					c.report(x.Pos(), held, "channel receive")
				}
			case *ast.CallExpr:
				if what := c.blockingCall(x); what != "" {
					c.report(x.Pos(), held, what)
				}
			}
			return true
		})
	}
}

func (c *lockChecker) report(pos token.Pos, held lockState, what string) {
	c.p.Reportf(pos, "%s while %s is held in %s; release the lock before blocking",
		what, held.names(), c.fn.Name.Name)
}

// mutexOp resolves a call to (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex (directly or promoted through embedding), returning the
// receiver expression key and the method name.
func (c *lockChecker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fnObj, okFn := c.p.Info.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return "", "", false
	}
	sig, okSig := fnObj.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, okPtr := t.(*types.Pointer); okPtr {
		t = ptr.Elem()
	}
	named, okNamed := t.(*types.Named)
	if !okNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if name := obj.Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// blockingFuncs lists known-blocking package-level stdlib functions.
var blockingFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "ReadDir": true,
		"Remove": true, "RemoveAll": true, "Rename": true,
		"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
		"Stat": true, "Lstat": true, "Truncate": true,
	},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true},
	"net/http": {"Get": true, "Post": true, "PostForm": true, "Head": true},
	"io":       {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "ReadFull": true, "WriteString": true},
}

// blockingMethods lists known-blocking methods by receiver type.
var blockingMethods = map[string]map[string]bool{
	"sync.WaitGroup": {"Wait": true},
	"sync.Cond":      {"Wait": true},
	"os.File": {
		"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
		"Sync": true, "Close": true, "Seek": true,
	},
	"net/http.Client": {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true},
	"os/exec.Cmd":     {"Run": true, "Wait": true, "Output": true, "CombinedOutput": true, "Start": false},
}

// blockingCall describes a call to a known-blocking stdlib function, or
// returns "" when the call is not known to block.
func (c *lockChecker) blockingCall(call *ast.CallExpr) string {
	var fnObj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fnObj, _ = c.p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fnObj, _ = c.p.Info.Uses[fun.Sel].(*types.Func)
	}
	if fnObj == nil || fnObj.Pkg() == nil {
		return ""
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if names, ok := blockingFuncs[fnObj.Pkg().Path()]; ok && names[fnObj.Name()] {
			return "call to " + fnObj.Pkg().Path() + "." + fnObj.Name()
		}
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	recv := obj.Pkg().Path() + "." + obj.Name()
	if names, ok := blockingMethods[recv]; ok && names[fnObj.Name()] {
		return "call to (" + recv + ")." + fnObj.Name()
	}
	return ""
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}
