// Package faults mirrors the repository's fault-injection package,
// which is exempt from nopanic by import path.
package faults

// Crash panics on purpose; the whole package is exempt.
func Crash() {
	panic("injected fault")
}
