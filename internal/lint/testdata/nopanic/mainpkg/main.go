// Package main is exempt from nopanic: a command may crash on startup
// misconfiguration.
package main

func main() {
	panic("fine in main packages")
}
