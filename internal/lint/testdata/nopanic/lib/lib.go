// Package lib exercises the nopanic analyzer in a library package.
package lib

import "fmt"

// Parse is a plain library function: its panics are findings.
func Parse(s string) int {
	if s == "" {
		panic("empty input") // want "panic in library function Parse"
	}
	return len(s)
}

// MustParse follows the Must* convention and may panic.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// nested panics inside closures are attributed to the enclosing
// declaration, so a non-Must function cannot hide one in a literal.
func nested() func() {
	return func() {
		panic("boom") // want "panic in library function nested"
	}
}

//garlint:allow nopanic -- invariant violation is unrecoverable here
func checked(x int) {
	if x < 0 {
		panic("negative")
	}
}

// shadowed calls a local function named panic, which is fine.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}

// Report uses fmt so the fixture has a real import.
func Report() string { return fmt.Sprint(MustParse("x"), nested(), checked) }
