package lib

// Test files are exempt from nopanic.
func testHelper() {
	panic("fine in tests")
}
