// Package lib exercises the lockhold analyzer: no blocking operation
// while a sync.Mutex or RWMutex is held.
package lib

import (
	"io"
	"os"
	"sync"
	"time"
)

type Q struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Put is the blessed shape: release before the send.
func (q *Q) Put(v int) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- v
}

// SendHeld parks on a channel send inside the critical section.
func (q *Q) SendHeld(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want "channel send while q.mu is held in SendHeld"
}

// RecvHeld parks on a receive inside the critical section.
func (q *Q) RecvHeld() int {
	q.mu.Lock()
	v := <-q.ch // want "channel receive while q.mu is held in RecvHeld"
	q.mu.Unlock()
	return v
}

// SleepHeld sleeps with the lock held.
func (q *Q) SleepHeld() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep while q.mu is held in SleepHeld"
	q.mu.Unlock()
}

// SelectHeld parks in a default-less select.
func (q *Q) SelectHeld() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "select without default while q.mu is held in SelectHeld"
	case <-q.ch:
	}
}

// TrySend cannot park: the select has a default case.
func (q *Q) TrySend(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// EarlyUnlock releases only on the error path; the fall-through still
// holds the lock when it reaches the send.
func (q *Q) EarlyUnlock(fail bool) {
	q.mu.Lock()
	if fail {
		q.mu.Unlock()
		return
	}
	q.ch <- 1 // want "channel send while q.mu is held in EarlyUnlock"
	q.mu.Unlock()
}

// BranchUnlock releases on every path before blocking.
func (q *Q) BranchUnlock(fail bool) {
	q.mu.Lock()
	if fail {
		q.mu.Unlock()
	} else {
		q.mu.Unlock()
	}
	q.ch <- 1
}

// WriteHeld does file I/O inside the critical section.
func (q *Q) WriteHeld(f *os.File, b []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, err := f.Write(b) // want "call to \\(os.File\\).Write while q.mu is held in WriteHeld"
	return err
}

// WaitHeld joins a WaitGroup with the lock held.
func (q *Q) WaitHeld(wg *sync.WaitGroup) {
	q.mu.Lock()
	wg.Wait() // want "call to \\(sync.WaitGroup\\).Wait while q.mu is held in WaitHeld"
	q.mu.Unlock()
}

// CloseLater's deferred closure and Spawn's goroutine run outside the
// spawner's critical section, so their channel ops are clean.
func (q *Q) CloseLater() {
	q.mu.Lock()
	defer func() { q.ch <- 0 }()
	q.mu.Unlock()
}

func (q *Q) Spawn(done chan struct{}) {
	q.mu.Lock()
	go func() {
		q.ch <- 1
		close(done)
	}()
	q.mu.Unlock()
}

type R struct {
	mu sync.RWMutex
	ch chan int
}

// ReadPark blocks under a read lock, which stalls writers just the same.
func (r *R) ReadPark() int {
	r.mu.RLock()
	v := <-r.ch // want "channel receive while r.mu is held in ReadPark"
	r.mu.RUnlock()
	return v
}

//garlint:allow lockhold -- serialized writer by design; single caller, bounded queue
func (q *Q) Flush(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v
}

func sink(int)   {}
func helper() {}

// Switches, loops and labels: the held set follows every body.
func (q *Q) Branches(mode int, items []int) {
	q.mu.Lock()
	switch mode {
	case 0:
		q.ch <- 0 // want "channel send while q.mu is held in Branches"
	case 1:
		helper()
	}
	var v any = mode
	switch v.(type) {
	case int:
		time.Sleep(time.Millisecond) // want "call to time.Sleep while q.mu is held in Branches"
	}
	for i := 0; i < len(items); i++ {
		q.ch <- i // want "channel send while q.mu is held in Branches"
	}
	for range items {
		helper()
	}
loop:
	for {
		break loop
	}
	var n = len(items)
	sink(n)
	q.mu.Unlock()
}

// GoArgs evaluates the spawn arguments in the spawner, lock held.
func (q *Q) GoArgs(done chan struct{}) {
	q.mu.Lock()
	go func(v int) {
		sink(v)
		close(done)
	}(<-q.ch) // want "channel receive while q.mu is held in GoArgs"
	q.mu.Unlock()
}

// BothLock acquires on both branches; the lock is held at the join.
func (q *Q) BothLock(fail bool) {
	if fail {
		q.mu.Lock()
	} else {
		q.mu.Lock()
	}
	q.ch <- 1 // want "channel send while q.mu is held in BothLock"
	q.mu.Unlock()
}

// notMutex has a Lock method but is not a sync mutex: ignored.
type notMutex struct{}

func (notMutex) Lock()   {}
func (notMutex) Unlock() {}

func (q *Q) CustomLock(m notMutex) {
	m.Lock()
	q.ch <- 1
	m.Unlock()
}

// CondWait parks on a condition variable while holding another mutex.
func (q *Q) CondWait(c *sync.Cond) {
	q.mu.Lock()
	c.Wait() // want "call to \\(sync.Cond\\).Wait while q.mu is held in CondWait"
	q.mu.Unlock()
}

// InitIf threads the held set through an if with an init statement.
func (q *Q) InitIf(probe func() bool) {
	q.mu.Lock()
	if ok := probe(); ok {
		q.n++
	}
	q.mu.Unlock()
}

// SwitchInit threads the held set through a switch init statement.
func (q *Q) SwitchInit(mode int) {
	q.mu.Lock()
	switch m := mode + 1; m {
	case 1:
		time.Sleep(time.Millisecond) // want "call to time.Sleep while q.mu is held in SwitchInit"
	}
	q.mu.Unlock()
}

// BothReturn terminates on both branches; nothing follows the if.
func (q *Q) BothReturn(fail bool) {
	q.mu.Lock()
	if fail {
		q.mu.Unlock()
		return
	} else {
		q.mu.Unlock()
		return
	}
}

// ElseReturn keeps the lock on the fall-through branch only.
func (q *Q) ElseReturn(fail bool) {
	q.mu.Lock()
	if !fail {
		q.n++
	} else {
		q.mu.Unlock()
		return
	}
	q.ch <- 1 // want "channel send while q.mu is held in ElseReturn"
	q.mu.Unlock()
}

// Closure builds a func value under the lock; its body runs later,
// outside the critical section.
func (q *Q) Closure() func() {
	q.mu.Lock()
	f := func() { q.ch <- 1 }
	q.mu.Unlock()
	return f
}

// VarCall invokes a plain func value: unknown, assumed non-blocking.
func (q *Q) VarCall(fn func()) {
	q.mu.Lock()
	fn()
	q.mu.Unlock()
}

// ReadHeld drains a reader inside the critical section.
func (q *Q) ReadHeld(r io.Reader) {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, _ = io.ReadAll(r) // want "call to io.ReadAll while q.mu is held in ReadHeld"
}

// W's Lock field shadows the method name with a plain func value.
type W struct {
	mu   sync.Mutex
	Lock func()
}

func (w *W) FieldLock() {
	w.mu.Lock()
	w.Lock()
	w.mu.Unlock()
}

// CondLocker locks through the sync.Locker interface, which the
// analyzer does not model.
func CondLocker(c *sync.Cond) {
	c.L.Lock()
	c.L.Unlock()
}

func (q *Q) bump() { q.n++ }

// MethodCalls invokes non-blocking methods while held: the universe
// error receiver and the package-local receiver are both ignored.
func (q *Q) MethodCalls(err error) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.bump()
	return err.Error()
}
