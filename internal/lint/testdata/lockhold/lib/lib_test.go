package lib

import "time"

// Test files are exempt: a sleep under the lock here is not a finding.
func (q *Q) sleepLockedForTest() {
	q.mu.Lock()
	time.Sleep(time.Millisecond)
	q.mu.Unlock()
}
