// Package lib exercises the goexit analyzer: every spawned goroutine
// needs an observable join path.
package lib

import (
	"context"
	"sync"
)

// Fan joins its workers through a WaitGroup.
func Fan(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Async signals completion on a result channel.
func Async() <-chan int {
	ch := make(chan int, 1)
	go func() { ch <- 42 }()
	return ch
}

// Watch is lifetime-bound: it parks on ctx.Done().
func Watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Drain terminates when the spawner closes the channel it ranges over.
func Drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Start hands the callee a context, which is its cancellation path.
func Start(ctx context.Context) {
	go loop(ctx)
}

func loop(ctx context.Context) { <-ctx.Done() }

func spin() {}

// Orphan's goroutine has no join path at all.
func Orphan() {
	go func() { // want "goroutine in Orphan has no join path"
		spin()
	}()
}

// NamedOrphan spawns a named function with no lifetime handle among the
// arguments.
func NamedOrphan() {
	go spin() // want "goroutine in NamedOrphan has no join path"
}

//garlint:allow goexit -- detached best-effort warmup, bounded by process lifetime
func Warm() {
	go spin()
}

func worker(ch chan int) {
	for range ch {
	}
}

// Feed hands the callee the channel it drains; closing it joins.
func Feed(ch chan int) {
	go worker(ch)
}

func pump(ch *chan int) { close(*ch) }

// FeedPtr passes a pointer to the channel; still a join handle.
func FeedPtr(ch *chan int) {
	go pump(ch)
}

// SliceOrphan ranges over a slice, which is not a join path.
func SliceOrphan(items []int) {
	go func() { // want "goroutine in SliceOrphan has no join path"
		for range items {
		}
	}()
}

// Signal closes a done channel from the goroutine: that is its join.
func Signal(done chan struct{}) {
	go func() {
		spin()
		close(done)
	}()
}

// Nested spawns from inside a goroutine; each go statement is judged
// at its own site, and neither has a join path.
func Nested() {
	go func() { // want "goroutine in Nested has no join path"
		go spin() // want "goroutine in Nested has no join path"
	}()
}
