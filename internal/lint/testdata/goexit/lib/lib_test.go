package lib

// Test files are exempt: a detached goroutine here is not a finding.
func orphanInTest() {
	go spin()
}
