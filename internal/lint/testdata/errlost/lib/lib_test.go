package lib

import "os"

// Test files are exempt: discarded errors here are not findings.
func dropInTest(path string) {
	_ = os.Remove(path)
}
