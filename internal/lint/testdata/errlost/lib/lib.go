// Package lib exercises the errlost analyzer: no error may be dropped
// via _ or an unchecked call statement.
package lib

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Write handles its error; nothing to report.
func Write(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// Dropped discards the error with a blank assignment.
func Dropped(path string, b []byte) {
	_ = os.WriteFile(path, b, 0o644) // want "error discarded with _ in Dropped"
}

// TupleDrop discards the error half of a multi-value result.
func TupleDrop(f *os.File, b []byte) int {
	n, _ := f.Write(b) // want "error from f.Write discarded with _ in TupleDrop"
	return n
}

// Unchecked drops a returned error on the floor.
func Unchecked(f *os.File) {
	f.Close() // want "result of f.Close contains an error that is never checked in Unchecked"
}

// Say prints to stdout and stderr; fmt's Print family is excluded by
// contract.
func Say(v any) {
	fmt.Println(v)
	fmt.Fprintf(os.Stderr, "%v\n", v)
}

// Build uses in-memory writers whose errors are nil by contract.
func Build(parts []string) string {
	var sb strings.Builder
	var buf bytes.Buffer
	for _, p := range parts {
		sb.WriteString(p)
		buf.WriteString(p)
	}
	return sb.String() + buf.String()
}

// ReadAll's deferred Close is out of scope: deferred calls have no
// receiver for the result by construction.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

//garlint:allow errlost -- best-effort cleanup, failure only delays GC
func Cleanup(path string) {
	_ = os.Remove(path)
}

func act() error { return nil }
func quiet()     {}

// BareCalls drops errors from plain and tuple-returning statements.
func BareCalls(f *os.File, b []byte) {
	act()       // want "result of act contains an error that is never checked in BareCalls"
	f.Write(b)  // want "result of f.Write contains an error that is never checked in BareCalls"
	quiet()     // no result at all: fine
}

// VarDrop discards an error value, not just a call result.
func VarDrop() {
	e := act()
	_ = e // want "error discarded with _ in VarDrop"
}

// PairDrop discards one error in a one-to-one multi-assignment.
func PairDrop() int {
	n, _ := 1, act() // want "error discarded with _ in PairDrop"
	return n
}

// FuncVar drops the error from a func-typed variable call.
func FuncVar() {
	fn := act
	fn() // want "result of fn contains an error that is never checked in FuncVar"
}

// LitCall drops the error from an immediately-invoked literal.
func LitCall() {
	func() error { return nil }() // want "result of call contains an error that is never checked in LitCall"
}

// NonErrorBlanks are fine: nothing error-typed is discarded.
func NonErrorBlanks(m map[string]int, buf *bytes.Buffer, a, b int) (int, int) {
	_, ok := m["k"]
	_ = ok
	n, _ := buf.WriteString("x")
	_ = n
	a, b = b, a
	return a, b
}

// ByteDrop discards a contract-nil error: excluded even through _.
func ByteDrop(buf *bytes.Buffer) {
	_ = buf.WriteByte('x')
}

// AnonIface drops an error from a method on an anonymous interface.
func AnonIface(c interface{ Close() error }) {
	c.Close() // want "result of c.Close contains an error that is never checked in AnonIface"
}
