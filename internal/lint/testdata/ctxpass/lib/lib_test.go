package lib

import "context"

// Test files may create root contexts freely — but only in functions
// that do not already receive one.
func helper() context.Context {
	return context.Background()
}

// helperCtx still must thread the parameter even in a test file.
func helperCtx(ctx context.Context) context.Context {
	return context.TODO() // want "helperCtx receives a context.Context but calls context.TODO"
}
