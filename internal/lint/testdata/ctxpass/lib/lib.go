// Package lib exercises the ctxpass analyzer in a library package.
package lib

import (
	"context"
	"time"
)

// Lookup receives a context but mints a fresh root: both calls are
// findings regardless of package kind.
func Lookup(ctx context.Context, key string) string {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want "Lookup receives a context.Context but calls context.Background"
	defer cancel()
	_ = context.TODO() // want "Lookup receives a context.Context but calls context.TODO"
	_ = c
	return key
}

// Threaded does it right: derives from the parameter.
func Threaded(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return c.Err()
}

// bare has no context parameter, so a root context in a library
// function is still a finding.
func bare() context.Context {
	return context.Background() // want "context.Background in library function bare"
}

//garlint:allow ctxpass -- compatibility wrapper over the context variant
func Compat(key string) string {
	return LookupCtx(context.Background(), key)
}

// LookupCtx is the context-threading variant Compat wraps.
func LookupCtx(ctx context.Context, key string) string {
	_ = ctx
	return key
}

// Derive only calls non-root context constructors: clean.
func Derive(ctx context.Context) context.Context {
	return context.WithValue(ctx, struct{}{}, 1)
}

// Clock calls a non-context selector function: ignored.
func Clock(ctx context.Context) time.Time {
	_ = ctx
	return time.Now()
}
