// Package main may create root contexts at the program entry point.
package main

import "context"

func main() {
	run(context.Background())
}

// run receives a context, so even in package main it must thread it.
func run(ctx context.Context) {
	_ = context.Background() // want "run receives a context.Context but calls context.Background"
	_ = ctx
}
