package lib

// Test files are exempt: double loads here are not findings.
func (s *System) doubleLoadInTest() (int, int) {
	return s.state.Load().gen, s.state.Load().gen
}
