// Package lib exercises the snaponce analyzer: atomic.Pointer
// snapshots must be loaded once per request path and passed by value.
package lib

import "sync/atomic"

type state struct{ gen int }

// System mirrors the serving stack's copy-on-write layout.
type System struct {
	state atomic.Pointer[state]
}

func use(st *state) int { return st.gen }

// Serve is the blessed shape: one Load, value passed down.
func (s *System) Serve() int {
	st := s.state.Load()
	return use(st)
}

// DoubleLoad observes two generations in one request.
func (s *System) DoubleLoad() int {
	a := s.state.Load()
	b := s.state.Load() // want "DoubleLoad loads snapshot s.state 2 times"
	return a.gen + b.gen
}

// LoopLoad may observe a different generation each iteration.
func (s *System) LoopLoad(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += s.state.Load().gen // want "LoopLoad loads snapshot s.state inside a loop"
	}
	return total
}

// CASRetry re-loads in a retry loop; the CompareAndSwap on the same
// pointer exempts it.
func (s *System) CASRetry() {
	for {
		cur := s.state.Load()
		next := &state{gen: cur.gen + 1}
		if s.state.CompareAndSwap(cur, next) {
			return
		}
	}
}

func reload(p *atomic.Pointer[state]) *state { return p.Load() }

// PassDown hands the pointer itself to a callee, inviting a re-load.
func (s *System) PassDown() *state {
	return reload(&s.state) // want "PassDown passes the atomic pointer &s.state down"
}

//garlint:allow snaponce -- administrative dump, sampling two generations is intended
func (s *System) Dump() (int, int) {
	return s.state.Load().gen, s.state.Load().gen
}

// RangeLoad may observe a different generation each iteration.
func (s *System) RangeLoad(items []int) int {
	total := 0
	for range items {
		total += s.state.Load().gen // want "RangeLoad loads snapshot s.state inside a loop"
	}
	return total
}

// Indirect loads through a pointer to the atomic pointer: one load,
// clean, and exercises the pointer-receiver shape.
func Indirect(ap *atomic.Pointer[state]) int {
	return ap.Load().gen
}

// Closure is its own request scope; one load per invocation.
func (s *System) Closure() func() int {
	return func() int { return s.state.Load().gen }
}

type box struct{ v int }

// Other calls a method on a non-atomic receiver: ignored.
func (s *System) Other(b *box) int {
	return b.get() + s.state.Load().gen
}

func (b *box) get() int { return b.v }

// AnonLoad calls Load on an anonymous interface: not an atomic pointer.
func AnonLoad(src interface{ Load() *state }) int {
	return src.Load().gen
}
