// Package lib exercises the mustonly analyzer.
package lib

import "strconv"

// MustAtoi is a Must* helper; by convention it panics on failure.
func MustAtoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Sum calls a Must* helper from plain library code: a finding.
func Sum(a, b string) int {
	return MustAtoi(a) + MustAtoi(b) // want "call to MustAtoi in Sum" "call to MustAtoi in Sum"
}

// MustSum is itself a Must* wrapper, so its Must* calls are fine.
func MustSum(a, b string) int {
	return MustAtoi(a) + MustAtoi(b)
}

//garlint:allow mustonly -- code generator, inputs are compile-time constants
func generate() []int {
	return []int{MustAtoi("1"), MustAtoi("2")}
}

// defaultLimit shows the package-level initializer exemption: the call
// runs once at startup where a panic is an acceptable config failure.
var defaultLimit = MustAtoi("64")

// Limit exposes the var so the fixture compiles without unused errors.
func Limit() int { return defaultLimit + len(generate()) }

// MustLoad panics on failure; calling it bare from Fetch is a finding.
func MustLoad() int { return 1 }

func Fetch() int {
	return MustLoad() + func() int { return 0 }() // want "call to MustLoad in Fetch"
}

type loader struct{}

// MustOpen panics on failure by convention.
func (loader) MustOpen() int { return 2 }

// Open calls a Must* method through a selector: a finding.
func Open(l loader) int {
	return l.MustOpen() // want "call to MustOpen in Open"
}
