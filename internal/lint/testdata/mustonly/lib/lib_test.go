package lib

// Test files may call Must* helpers freely.
func testHelper() int {
	return MustAtoi("42")
}
