package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoExit requires every spawned goroutine to have a join path the
// spawner (or a supervisor) can observe: a sync.WaitGroup Done, a send
// on or close of a channel, or a context.Done() subscription that bounds
// its lifetime. A goroutine with none of these is fire-and-forget — it
// can outlive shutdown, leak, or swallow a failure nobody waits for.
// Deliberate detachment must be declared with a
// "//garlint:allow goexit -- reason" directive on the enclosing
// function. For `go f(args...)` calls of named functions the analyzer
// accepts a context.Context or channel argument as the join path, since
// the body is out of intra-procedural reach.
var GoExit = &Analyzer{
	Name: "goexit",
	Doc:  "require every go statement to be joined via WaitGroup, channel, or context lifetime",
	Run:  runGoExit,
}

func runGoExit(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, fn := range funcDecls(f) {
			if p.Allowed(fn.Doc) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goJoined(p, g.Call) {
					p.Reportf(g.Pos(), "goroutine in %s has no join path (WaitGroup, channel, or ctx.Done()); add one or declare fire-and-forget with %s goexit -- <reason>",
						fn.Name.Name, AllowDirective)
				}
				return true
			})
		}
	}
}

// goJoined reports whether the spawned call has an observable join path.
func goJoined(p *Pass, call *ast.CallExpr) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return funcLitJoined(p, lit)
	}
	// Named function: the body is out of reach, so accept a lifetime
	// handle among the arguments — a context or a channel the callee can
	// signal on or be cancelled through.
	for _, arg := range call.Args {
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if isContextType(tv.Type) || isChanType(tv.Type) {
			return true
		}
	}
	return false
}

// funcLitJoined scans a goroutine body for a join signal: wg.Done(),
// close(ch), a channel send, or a receive/select on a Done() channel.
// Nested goroutines are judged at their own go statements.
func funcLitJoined(p *Pass, lit *ast.FuncLit) bool {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			joined = true
		case *ast.UnaryExpr:
			// Receiving at all means the goroutine parks on a channel
			// the spawner side controls — most commonly <-ctx.Done()
			// or a work queue whose close terminates it.
			if x.Op == token.ARROW {
				joined = true
			}
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					joined = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					joined = true
				}
			}
		case *ast.RangeStmt:
			// range over a channel terminates when the spawner closes it.
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil && isChanType(tv.Type) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// isChanType reports whether t is (or points to) a channel type.
func isChanType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
