package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrLost forbids discarding errors. An error assigned to the blank
// identifier or returned by a call used as a bare statement vanishes —
// in a serving stack that hides failed fsyncs, dropped checkpoints and
// half-applied state transitions. The error must be handled, returned,
// or the discard declared safe with "//garlint:allow errlost -- reason"
// on the enclosing function. Calls whose errors are nil by documented
// contract are excluded: fmt Print/Fprint variants and methods on
// bytes.Buffer and strings.Builder. Deferred and go calls are out of
// scope (the result has no receiver there by construction), as are test
// files.
var ErrLost = &Analyzer{
	Name: "errlost",
	Doc:  "forbid discarding errors via _ assignment or unchecked call statements",
	Run:  runErrLost,
}

func runErrLost(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, fn := range funcDecls(f) {
			if p.Allowed(fn.Doc) {
				continue
			}
			checkErrLost(p, fn)
		}
	}
}

func checkErrLost(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok || errExcluded(p, call) {
				break
			}
			if returnsError(p, call) {
				p.Reportf(call.Pos(), "result of %s contains an error that is never checked in %s; handle it or return it",
					calleeName(call), fn.Name.Name)
			}
		case *ast.AssignStmt:
			checkBlankErr(p, fn, x)
		}
		return true
	})
}

// checkBlankErr reports error-typed results assigned to the blank
// identifier, in both `x, _ := f()` (one call, tuple result) and
// one-to-one `_ = expr` forms.
func checkBlankErr(p *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || errExcluded(p, call) {
			return
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error from %s discarded with _ in %s; handle it or declare the discard with %s errlost -- <reason>",
					calleeName(call), fn.Name.Name, AllowDirective)
			}
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := as.Rhs[i]
		tv, ok := p.Info.Types[rhs]
		if !ok || tv.Type == nil || !isErrorType(tv.Type) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && errExcluded(p, call) {
			continue
		}
		p.Reportf(lhs.Pos(), "error discarded with _ in %s; handle it or declare the discard with %s errlost -- <reason>",
			fn.Name.Name, AllowDirective)
	}
}

// returnsError reports whether the call produces at least one
// error-typed result.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

// errExcluded reports whether the call's error is nil by documented
// contract: fmt's Print/Fprint family and methods on bytes.Buffer or
// strings.Builder.
func errExcluded(p *Pass, call *ast.CallExpr) bool {
	var fnObj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fnObj, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fnObj, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if fnObj == nil {
		return false
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		if fnObj.Pkg() != nil && fnObj.Pkg().Path() == "fmt" {
			name := fnObj.Name()
			return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
		}
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	recv := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return recv == "bytes.Buffer" || recv == "strings.Builder"
}

// calleeName renders the called function for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return "call"
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
