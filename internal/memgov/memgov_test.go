package memgov

import (
	"errors"
	"sync"
	"testing"
)

func TestReserveRelease(t *testing.T) {
	b := New("root", 100)
	if err := b.Reserve(60); err != nil {
		t.Fatalf("reserve 60: %v", err)
	}
	if got := b.Used(); got != 60 {
		t.Fatalf("used = %d, want 60", got)
	}
	if err := b.Reserve(41); err == nil {
		t.Fatal("reserve past the limit succeeded")
	} else if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("denial is %v, want ErrBudgetExceeded", err)
	}
	// A denial must not leave a partial charge behind.
	if got := b.Used(); got != 60 {
		t.Fatalf("used after denial = %d, want 60", got)
	}
	if err := b.Reserve(40); err != nil {
		t.Fatalf("reserve exactly to the limit: %v", err)
	}
	b.Release(100)
	if got := b.Used(); got != 0 {
		t.Fatalf("used after release = %d, want 0", got)
	}
	if got := b.Peak(); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("denied = %d, want 1", got)
	}
}

func TestHierarchyChargesEveryLevel(t *testing.T) {
	root := New("process", 1000)
	tenant := root.Child("tenant", 300)
	op := tenant.Child("op", 0) // bounded only by ancestors

	if err := op.Reserve(200); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	for _, tc := range []struct {
		b    *Budget
		want int64
	}{{op, 200}, {tenant, 200}, {root, 200}} {
		if got := tc.b.Used(); got != tc.want {
			t.Fatalf("%s used = %d, want %d", tc.b.Name(), got, tc.want)
		}
	}

	// The tenant limit denies even though op and root would accept, and
	// the rollback must undo the op-level charge.
	err := op.Reserve(150)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("denial is %v, want *BudgetError", err)
	}
	if be.Budget != "tenant" {
		t.Fatalf("denying level = %q, want tenant", be.Budget)
	}
	if be.Requested != 150 || be.Limit != 300 || be.Used != 200 {
		t.Fatalf("denial detail = %+v", be)
	}
	if got := op.Used(); got != 200 {
		t.Fatalf("op used after rollback = %d, want 200", got)
	}
	if got := root.Used(); got != 200 {
		t.Fatalf("root used after rollback = %d, want 200", got)
	}
	if got := tenant.Denied(); got != 1 {
		t.Fatalf("tenant denied = %d, want 1", got)
	}
	if got := op.Denied(); got != 0 {
		t.Fatalf("op denied = %d, want 0 (it did not refuse)", got)
	}

	op.Release(200)
	if got := root.Used(); got != 0 {
		t.Fatalf("root used after release = %d, want 0", got)
	}
}

func TestEffectiveLimit(t *testing.T) {
	root := New("process", 1000)
	tenant := root.Child("tenant", 300)
	op := tenant.Child("op", 0)
	if got := op.EffectiveLimit(); got != 300 {
		t.Fatalf("effective = %d, want 300", got)
	}
	if got := New("meter", 0).EffectiveLimit(); got != 0 {
		t.Fatalf("unlimited effective = %d, want 0", got)
	}
	if got := root.Child("big", 5000).EffectiveLimit(); got != 1000 {
		t.Fatalf("parent-bounded effective = %d, want 1000", got)
	}
}

func TestNilBudgetIsInert(t *testing.T) {
	var b *Budget
	if err := b.Reserve(1 << 40); err != nil {
		t.Fatalf("nil reserve: %v", err)
	}
	b.Release(1 << 40)
	if b.Child("x", 10) != nil {
		t.Fatal("nil.Child must stay nil")
	}
	if b.Stats() != nil {
		t.Fatal("nil.Stats must be nil")
	}
	if b.Used() != 0 || b.Peak() != 0 || b.Denied() != 0 || b.Limit() != 0 {
		t.Fatal("nil gauges must read zero")
	}
	r := b.Hold()
	if r != nil {
		t.Fatal("nil.Hold must be nil")
	}
	if err := r.Grow(100); err != nil {
		t.Fatalf("nil reservation grow: %v", err)
	}
	r.Release()
	if r.Bytes() != 0 {
		t.Fatal("nil reservation bytes must be 0")
	}
}

func TestReservationReleaseIdempotent(t *testing.T) {
	b := New("root", 100)
	r := b.Hold()
	if err := r.Grow(30); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := r.Grow(30); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := r.Grow(50); err == nil {
		t.Fatal("grow past the limit succeeded")
	}
	if got := r.Bytes(); got != 60 {
		t.Fatalf("reservation bytes = %d, want 60", got)
	}
	r.Release()
	r.Release() // second release must be a no-op
	if got := b.Used(); got != 0 {
		t.Fatalf("used after double release = %d, want 0", got)
	}
	if err := r.Grow(10); err != nil {
		t.Fatalf("grow after release: %v", err)
	}
	r.Release()
	if got := b.Used(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	b := New("root", 100)
	b.Release(50) // imbalanced, but must not wedge the budget
	if got := b.Used(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
	if err := b.Reserve(100); err != nil {
		t.Fatalf("reserve after clamp: %v", err)
	}
}

func TestStats(t *testing.T) {
	b := New("tenant", 100)
	if err := b.Reserve(70); err != nil {
		t.Fatal(err)
	}
	b.Release(30)
	if err := b.Reserve(200); err == nil {
		t.Fatal("want denial")
	}
	s := b.Stats()
	if s.Name != "tenant" || s.Limit != 100 || s.Used != 40 || s.Peak != 70 || s.Denied != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestConcurrentReserve hammers one hierarchy from many goroutines:
// accounting must stay exact (every success paired with a release ends
// at zero) and usage may only overshoot the limit by the bytes of
// reservations in flight (add-then-check briefly charges before a
// denial rolls back).
func TestConcurrentReserve(t *testing.T) {
	root := New("process", 1<<20)
	tenants := []*Budget{
		root.Child("a", 1<<18),
		root.Child("b", 1<<18),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := tenants[w%len(tenants)]
			r := b.Hold()
			for i := 0; i < 2000; i++ {
				if err := r.Grow(512); err == nil && i%3 == 0 {
					r.Release()
					r = b.Hold()
				}
				if u := b.Used(); u > b.Limit()+8*512 {
					t.Errorf("tenant over limit: %d > %d", u, b.Limit())
					return
				}
			}
			r.Release()
		}(w)
	}
	wg.Wait()
	if got := root.Used(); got != 0 {
		t.Fatalf("root used after all releases = %d, want 0", got)
	}
	for _, tb := range tenants {
		if got := tb.Used(); got != 0 {
			t.Fatalf("%s used = %d, want 0", tb.Name(), got)
		}
	}
}
