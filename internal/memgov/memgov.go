// Package memgov is the hierarchical byte-budget accountant behind
// resource-governed pool construction and serving.
//
// A Budget tracks reserved bytes against an optional limit and chains
// to a parent, forming a process → per-tenant → per-operation tree:
// the serve process owns the root (sized by -memlimit), each fleet
// tenant gets a child share, and individual operations (a pool build's
// RAM buffer, an embedding batch) charge grandchildren. Reserve walks
// the ancestor chain charging every level; if any level would exceed
// its limit the whole reservation is rolled back and a *BudgetError
// (matching ErrBudgetExceeded via errors.Is) identifies the level that
// refused. Callers treat a denial as a signal — spill to disk, stop
// growing, skip a cache insert — never as a fatal condition.
//
// memgov is an accountant, not an allocator: callers estimate the
// bytes a structure retains and must pair every successful Reserve
// with a Release. The Reservation helper keeps that pairing honest
// for multi-step builds. A nil *Budget is fully inert (every method
// is a cheap no-op), so unbudgeted configurations pay nothing.
package memgov

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExceeded is the sentinel matched by errors.Is for any
// reservation denied by a budget limit.
var ErrBudgetExceeded = errors.New("memgov: budget exceeded")

// BudgetError reports a denied reservation: which budget in the chain
// refused, how much was asked for, and its usage at the time.
type BudgetError struct {
	Budget    string // name of the level that denied
	Requested int64
	Used      int64 // bytes reserved at that level when denied
	Limit     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("memgov: budget %q exceeded: requested %d with %d/%d used",
		e.Budget, e.Requested, e.Used, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Budget is one level of the accounting tree. The zero value is not
// usable; construct with New or Child. All methods are safe for
// concurrent use and safe on a nil receiver.
type Budget struct {
	name   string
	parent *Budget
	limit  int64 // <= 0 means unlimited at this level
	used   atomic.Int64
	peak   atomic.Int64
	denied atomic.Uint64
}

// New creates a root budget. limit <= 0 means this level never denies
// (useful as a pure meter).
func New(name string, limit int64) *Budget {
	return &Budget{name: name, limit: limit}
}

// Child creates a sub-budget whose reservations also charge b and its
// ancestors. limit <= 0 bounds the child only by its ancestors. On a
// nil receiver Child returns nil, so an unbudgeted tree stays inert
// all the way down.
func (b *Budget) Child(name string, limit int64) *Budget {
	if b == nil {
		return nil
	}
	return &Budget{name: name, parent: b, limit: limit}
}

// Name returns the budget's name ("" on nil).
func (b *Budget) Name() string {
	if b == nil {
		return ""
	}
	return b.name
}

// Limit returns this level's own limit (0 on nil or unlimited).
func (b *Budget) Limit() int64 {
	if b == nil || b.limit <= 0 {
		return 0
	}
	return b.limit
}

// EffectiveLimit returns the tightest limit on the ancestor chain
// including this level, or 0 if every level is unlimited.
func (b *Budget) EffectiveLimit() int64 {
	var min int64
	for cur := b; cur != nil; cur = cur.parent {
		if cur.limit > 0 && (min == 0 || cur.limit < min) {
			min = cur.limit
		}
	}
	return min
}

// Reserve charges n bytes at this level and every ancestor. If any
// level would exceed its limit, nothing is charged anywhere and the
// returned *BudgetError names the refusing level. n <= 0 and nil
// receivers succeed trivially.
func (b *Budget) Reserve(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	for cur := b; cur != nil; cur = cur.parent {
		used := cur.used.Add(n)
		if cur.limit > 0 && used > cur.limit {
			cur.used.Add(-n)
			cur.denied.Add(1)
			for r := b; r != cur; r = r.parent {
				r.used.Add(-n)
			}
			return &BudgetError{Budget: cur.name, Requested: n, Used: used - n, Limit: cur.limit}
		}
		cur.bumpPeak(used)
	}
	return nil
}

func (b *Budget) bumpPeak(used int64) {
	for {
		p := b.peak.Load()
		if used <= p || b.peak.CompareAndSwap(p, used) {
			return
		}
	}
}

// Release returns n bytes to this level and every ancestor. Callers
// must release exactly what they reserved; the accountant clamps at
// zero defensively but an imbalance is a caller bug.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	for cur := b; cur != nil; cur = cur.parent {
		if cur.used.Add(-n) < 0 {
			// Clamp: better a zeroed meter than a budget that
			// permanently denies because of a double release.
			cur.used.Store(0)
		}
	}
}

// Used returns the bytes currently reserved at this level.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of reserved bytes at this level.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Denied returns how many reservations this level has refused.
func (b *Budget) Denied() uint64 {
	if b == nil {
		return 0
	}
	return b.denied.Load()
}

// Stats is a point-in-time gauge snapshot, shaped for /healthz.
type Stats struct {
	Name   string `json:"name"`
	Limit  int64  `json:"limit"` // 0 = unlimited at this level
	Used   int64  `json:"used"`
	Peak   int64  `json:"peak"`
	Denied uint64 `json:"denied"`
}

// Stats snapshots the budget's gauges; nil on a nil receiver.
func (b *Budget) Stats() *Stats {
	if b == nil {
		return nil
	}
	return &Stats{
		Name:   b.name,
		Limit:  b.Limit(),
		Used:   b.used.Load(),
		Peak:   b.peak.Load(),
		Denied: b.denied.Load(),
	}
}

// Reservation accumulates charges against one budget and releases
// them as a unit, keeping Reserve/Release pairing honest across
// multi-step builds (pool bytes grow candidate by candidate; the
// snapshot releases everything when replaced). Grow and Release are
// safe for concurrent use and safe on a nil receiver.
type Reservation struct {
	b     *Budget
	bytes atomic.Int64
}

// Hold opens an empty reservation against b. On a nil budget it
// returns nil; all Reservation methods tolerate a nil receiver.
func (b *Budget) Hold() *Reservation {
	if b == nil {
		return nil
	}
	return &Reservation{b: b}
}

// Grow reserves n more bytes. A denial leaves the reservation's
// previous charges intact.
func (r *Reservation) Grow(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	if err := r.b.Reserve(n); err != nil {
		return err
	}
	r.bytes.Add(n)
	return nil
}

// Bytes returns the bytes currently held.
func (r *Reservation) Bytes() int64 {
	if r == nil {
		return 0
	}
	return r.bytes.Load()
}

// Shrink returns n bytes of the held reservation to the budget,
// keeping the rest held. Callers use it to un-account one element of a
// multi-step build that failed after its reservation.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.bytes.Add(-n)
	r.b.Release(n)
}

// Release returns everything held to the budget. Idempotent: the held
// count swaps to zero atomically, so deferred cleanup can overlap
// explicit handoff paths safely, and the reservation stays usable for
// further Grow calls.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.b.Release(r.bytes.Swap(0))
}
