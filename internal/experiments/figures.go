package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/hardness"
	"repro/internal/report"
	"repro/internal/userstudy"
)

// Fig9 reproduces the overall-accuracy bar chart on SPIDER and GEO for
// the five systems.
func (l *Lab) Fig9() (string, error) {
	var sb strings.Builder
	for _, bench := range []string{"spider", "geo"} {
		gar, err := l.GARResult("gar", bench)
		if err != nil {
			return "", err
		}
		bars := []report.Bar{{Label: "GAR", Value: gar.Overall()}}
		for _, name := range []string{"GAP", "SMBOP", "RAT-SQL", "BRIDGE"} {
			res := l.Baseline(bench, name)
			bars = append(bars, report.Bar{Label: name, Value: res.Overall()})
		}
		label := map[string]string{"spider": "SPIDER", "geo": "GEO"}[bench]
		sb.WriteString(report.BarChart("Fig 9: Translation accuracy on "+label, bars, 40))
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Fig10 reproduces the average response time by difficulty for the five
// systems (online inference only; all models pre-loaded, candidate
// pools pre-generated).
func (l *Lab) Fig10() (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig 10: Average response time on the SPIDER validation set (microseconds)",
		Columns: []string{"Model", "Easy", "Medium", "Hard", "Extra Hard"},
	}
	gar, err := l.GARResult("gar", "spider")
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name string
		lat  map[hardness.Level]time.Duration
	}{{"GAR", gar.AvgLatencyByLevel()}}
	for _, name := range []string{"GAP", "SMBOP", "RAT-SQL", "BRIDGE"} {
		rows = append(rows, struct {
			name string
			lat  map[hardness.Level]time.Duration
		}{name, l.Baseline("spider", name).AvgLatencyByLevel()})
	}
	for _, row := range rows {
		cells := []any{row.name}
		for _, lvl := range hardness.Levels {
			cells = append(cells, fmt.Sprintf("%d", row.lat[lvl].Microseconds()))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig11 reproduces the GAR-J comparison: translation accuracy on QBEN,
// SPIDER and GEO for GAR-J, GAR and the four baselines.
func (l *Lab) Fig11() (string, error) {
	var sb strings.Builder
	for _, bench := range []string{"qben", "spider", "geo"} {
		garj, err := l.GARResult("garj", bench)
		if err != nil {
			return "", err
		}
		gar, err := l.GARResult("gar", bench)
		if err != nil {
			return "", err
		}
		bars := []report.Bar{
			{Label: "GAR-J", Value: garj.Overall()},
			{Label: "GAR", Value: gar.Overall()},
		}
		for _, name := range []string{"GAP", "SMBOP", "RAT-SQL", "BRIDGE"} {
			res := l.Baseline(bench, name)
			bars = append(bars, report.Bar{Label: name, Value: res.Overall()})
		}
		label := map[string]string{"qben": "QBEN", "spider": "SPIDER", "geo": "GEO"}[bench]
		sb.WriteString(report.BarChart("Fig 11: Translation accuracy on "+label, bars, 40))
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Fig12 reproduces the user-study box plot: simulated annotation time
// per schema-size bucket over the benchmarks' databases.
func (l *Lab) Fig12() (string, error) {
	var tasks []userstudy.DatabaseTask
	add := func(bench string) error {
		b, err := l.bench(bench)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(b.DBs))
		for name := range b.DBs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bundle := b.DBs[name]
			samples := 0
			// Sample-query counts: the number of items on the database
			// across the benchmark's splits.
			for _, it := range b.Train {
				if it.DB == name {
					samples++
				}
			}
			for _, it := range b.Val {
				if it.DB == name {
					samples++
				}
			}
			for _, it := range b.Samples {
				if it.DB == name {
					samples++
				}
			}
			tasks = append(tasks, userstudy.DatabaseTask{
				Name:          name,
				Tables:        len(bundle.Schema.Tables),
				JoinPaths:     len(bundle.Schema.JoinAnnotations),
				SampleQueries: samples,
			})
		}
		return nil
	}
	for _, bench := range []string{"spider", "geo", "qben"} {
		if err := add(bench); err != nil {
			return "", err
		}
	}
	// Synthetic larger schemas fill the 6-10 bucket, which the generated
	// benchmarks (2-4 tables) do not reach.
	for i := 0; i < 8; i++ {
		tasks = append(tasks, userstudy.DatabaseTask{
			Name: fmt.Sprintf("wide_%d", i), Tables: 6 + i%5, JoinPaths: 5 + i%4, SampleQueries: 40,
		})
	}
	obs := userstudy.Run(tasks, userstudy.Config{Seed: l.Cfg.Seed})
	var rows []report.BoxStats
	for _, b := range userstudy.Buckets(obs) {
		if len(b.Minutes) == 0 {
			continue
		}
		rows = append(rows, report.BoxStatsOf(b.Label, b.Minutes))
	}
	return report.BoxPlot("Fig 12: User study (simulated): annotation time in minutes", rows, 50), nil
}
