package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/experiments"
)

// tinyConfig keeps the full experiment suite runnable inside a test.
func tinyConfig() experiments.Config {
	return experiments.Config{
		Spider: datasets.SpiderConfig{TrainDBs: 3, ValDBs: 2, TrainPerDB: 25, ValPerDB: 12, Seed: 11},
		Geo:    datasets.GeoConfig{Train: 40, Val: 5, Test: 20, Seed: 12},
		MTTEQL: datasets.MTTEQLConfig{N: 40, VariantsPerDB: 1, Seed: 13},
		QBEN:   datasets.QBENConfig{DBs: 2, SamplesPerDB: 12, TestPerDB: 8, Seed: 14},
		GAR: core.Options{
			GeneralizeSize: 1200,
			RetrievalK:     30,
			Seed:           21,
			EncoderEpochs:  8,
			RerankEpochs:   12,
		},
		Seed: 7,
	}
}

func TestFullExperimentSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the complete experiment suite")
	}
	lab := experiments.NewLab(tinyConfig())

	// Table 3 must cover all four benchmarks.
	t3, err := lab.Table3()
	if err != nil {
		t.Fatal(err)
	}
	rendered := t3.Render()
	for _, want := range []string{"GEO", "SPIDER", "MT-TEQL", "QBEN"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("Table 3 missing %s:\n%s", want, rendered)
		}
	}

	// Table 4: GAR must beat every baseline overall, and its accuracy
	// must decay less from easy to extra-hard than the baselines'.
	if _, err := lab.Table4(); err != nil {
		t.Fatal(err)
	}
	gar, err := lab.GARResult("gar", "spider")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"GAP", "SMBOP", "RAT-SQL", "BRIDGE"} {
		base := lab.Baseline("spider", name)
		if gar.Overall() <= base.Overall() {
			t.Errorf("GAR (%.3f) does not beat %s (%.3f)", gar.Overall(), name, base.Overall())
		}
	}

	// Table 6: precision must be monotone and MRR ≥ P@1.
	if _, err := lab.Table6(); err != nil {
		t.Fatal(err)
	}
	if gar.PrecisionAt(1) > gar.PrecisionAt(3) || gar.PrecisionAt(3) > gar.PrecisionAt(10) {
		t.Error("precision not monotone in K")
	}
	if gar.MRR() < gar.PrecisionAt(1) {
		t.Error("MRR below P@1")
	}

	// Table 7: GAP and RAT-SQL must be N/A on MT-TEQL; GAR runs.
	t7, err := lab.Table7()
	if err != nil {
		t.Fatal(err)
	}
	r7 := t7.Render()
	if !strings.Contains(r7, "N/A") {
		t.Errorf("Table 7 lacks N/A rows:\n%s", r7)
	}
	mtGar, err := lab.GARResult("gar", "mtteql")
	if err != nil {
		t.Fatal(err)
	}
	if mtGar.Overall() <= lab.Baseline("mtteql", "SMBOP").Overall() {
		t.Errorf("GAR (%.3f) should beat SMBOP on MT-TEQL", mtGar.Overall())
	}

	// Table 8: both ablations must hurt.
	if _, err := lab.Table8(); err != nil {
		t.Fatal(err)
	}
	noDialect, err := lab.GARResult("nodialect", "spider")
	if err != nil {
		t.Fatal(err)
	}
	noRerank, err := lab.GARResult("norerank", "spider")
	if err != nil {
		t.Fatal(err)
	}
	if noDialect.Overall() >= gar.Overall() {
		t.Errorf("dialect ablation did not hurt: %.3f vs %.3f", noDialect.Overall(), gar.Overall())
	}
	if noRerank.Overall() >= gar.Overall() {
		t.Errorf("re-ranking ablation did not hurt: %.3f vs %.3f", noRerank.Overall(), gar.Overall())
	}

	// Fig 11 / Table 9: on QBEN, GAR-J must clearly beat GAR and the
	// baselines (the join-annotation headline).
	qbenJ, err := lab.GARResult("garj", "qben")
	if err != nil {
		t.Fatal(err)
	}
	qbenGar, err := lab.GARResult("gar", "qben")
	if err != nil {
		t.Fatal(err)
	}
	if qbenJ.Overall() <= qbenGar.Overall() {
		t.Errorf("GAR-J (%.3f) does not beat GAR (%.3f) on QBEN", qbenJ.Overall(), qbenGar.Overall())
	}
	for _, name := range []string{"GAP", "SMBOP", "RAT-SQL", "BRIDGE"} {
		if qbenJ.Overall() <= lab.Baseline("qben", name).Overall() {
			t.Errorf("GAR-J does not beat %s on QBEN", name)
		}
	}

	// Remaining artifacts render without error.
	if _, err := lab.Table1(); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Table5(); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Table9(); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Fig9(); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Fig10(); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Fig11(); err != nil {
		t.Fatal(err)
	}
	fig12, err := lab.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig12, "Table/DB") {
		t.Errorf("Fig 12 malformed:\n%s", fig12)
	}
}

func TestLabCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := experiments.NewLab(tinyConfig())
	a, err := lab.GARResult("gar", "geo")
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.GARResult("gar", "geo")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("results not cached")
	}
	if lab.Baseline("geo", "SMBOP") != lab.Baseline("geo", "SMBOP") {
		t.Error("baseline results not cached")
	}
	if lab.Baseline("geo", "NOPE") != nil {
		t.Error("unknown baseline should be nil")
	}
}

func TestExtensionsAndRuleAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := experiments.NewLab(tinyConfig())

	ext, err := lab.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	rendered := ext.Render()
	for _, want := range []string{"GAR", "schema components", "backbone"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("extensions table missing %q:\n%s", want, rendered)
		}
	}
	if len(ext.Rows) != 3 {
		t.Errorf("extensions rows = %d, want 3", len(ext.Rows))
	}

	rules, err := lab.RuleAblation()
	if err != nil {
		t.Fatal(err)
	}
	r := rules.Render()
	for _, want := range []string{"all rules", "w/o Rule 1", "w/o Rule 2", "w/o Rule 3"} {
		if !strings.Contains(r, want) {
			t.Errorf("rule ablation missing %q:\n%s", want, r)
		}
	}
}
