// Package experiments implements every table and figure of the paper's
// evaluation (§V): a Lab builds the four benchmarks, trains GAR, GAR-J,
// the ablations and the four baselines, caches the per-split results,
// and renders each artifact as a report table or chart. The bench
// harness (bench_test.go) and the garbench CLI both drive this package.
package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
)

// Config scales the experiment suite.
type Config struct {
	// Spider / Geo / MTTEQL / QBEN size the generated benchmarks.
	Spider datasets.SpiderConfig
	Geo    datasets.GeoConfig
	MTTEQL datasets.MTTEQLConfig
	QBEN   datasets.QBENConfig
	// GAR are the system options (pool size, k, epochs, seed).
	GAR core.Options
	// Seed drives benchmark generation.
	Seed int64
}

// Small returns the laptop-scale configuration used by tests and the
// default bench run: everything is scaled down from the paper's sizes
// but preserves the split structure.
func Small() Config {
	return Config{
		Spider: datasets.SpiderConfig{TrainDBs: 6, ValDBs: 3, TrainPerDB: 40, ValPerDB: 25, Seed: 11},
		Geo:    datasets.GeoConfig{Train: 80, Val: 8, Test: 40, Seed: 12},
		MTTEQL: datasets.MTTEQLConfig{N: 120, VariantsPerDB: 2, Seed: 13},
		QBEN:   datasets.QBENConfig{DBs: 4, SamplesPerDB: 16, TestPerDB: 10, Seed: 14},
		GAR: core.Options{
			GeneralizeSize: 4000,
			RetrievalK:     60,
			Seed:           21,
			EncoderEpochs:  10,
			RerankEpochs:   16,
		},
		Seed: 7,
	}
}

// Full returns the larger configuration for the complete benchmark
// harness run (closer to the paper's proportions; minutes of runtime).
func Full() Config {
	cfg := Small()
	cfg.Spider = datasets.SpiderConfig{TrainDBs: 12, ValDBs: 6, TrainPerDB: 50, ValPerDB: 40, Seed: 11}
	cfg.Geo = datasets.GeoConfig{Train: 150, Val: 12, Test: 70, Seed: 12}
	cfg.MTTEQL = datasets.MTTEQLConfig{N: 400, VariantsPerDB: 3, Seed: 13}
	cfg.QBEN = datasets.QBENConfig{DBs: 7, SamplesPerDB: 20, TestPerDB: 12, Seed: 14}
	cfg.GAR.GeneralizeSize = 6000
	cfg.GAR.RetrievalK = 80
	return cfg
}

// Lab lazily builds and caches benchmarks, trained systems and results.
type Lab struct {
	Cfg Config

	benches map[string]*datasets.Benchmark
	runners map[string]*eval.GARRunner
	results map[string]*eval.Result
	lexicon *baselines.Lexicon
}

// NewLab creates an empty lab for the configuration.
func NewLab(cfg Config) *Lab {
	return &Lab{
		Cfg:     cfg,
		benches: map[string]*datasets.Benchmark{},
		runners: map[string]*eval.GARRunner{},
		results: map[string]*eval.Result{},
	}
}

// Spider returns the SPIDER-like benchmark, building it on first use.
func (l *Lab) Spider() *datasets.Benchmark {
	if b, ok := l.benches["spider"]; ok {
		return b
	}
	b := datasets.SpiderLike(l.Cfg.Spider)
	l.benches["spider"] = b
	return b
}

// Geo returns the GEO-like benchmark.
func (l *Lab) Geo() *datasets.Benchmark {
	if b, ok := l.benches["geo"]; ok {
		return b
	}
	b := datasets.GeoLike(l.Cfg.Geo)
	l.benches["geo"] = b
	return b
}

// MTTEQL returns the MT-TEQL-like benchmark derived from Spider.
func (l *Lab) MTTEQL() *datasets.Benchmark {
	if b, ok := l.benches["mtteql"]; ok {
		return b
	}
	b := datasets.MTTEQLLike(l.Spider(), l.Cfg.MTTEQL)
	l.benches["mtteql"] = b
	return b
}

// QBEN returns the QBEN-like benchmark.
func (l *Lab) QBEN() *datasets.Benchmark {
	if b, ok := l.benches["qben"]; ok {
		return b
	}
	b := datasets.QBENLike(l.Cfg.QBEN)
	l.benches["qben"] = b
	return b
}

// Lexicon returns the baseline cue lexicon trained on Spider's train
// split (the shared pre-training of the four baseline models).
func (l *Lab) Lexicon() *baselines.Lexicon {
	if l.lexicon == nil {
		l.lexicon = eval.TrainBaselineLexicon(l.Spider())
	}
	return l.lexicon
}

// runner returns a cached GAR runner. variant selects the system
// flavour ("gar", "garj", "nodialect", "norerank"); trainBench and
// evalBench name lab benchmarks.
func (l *Lab) runner(variant, trainBench, evalBench string) (*eval.GARRunner, error) {
	key := variant + "/" + trainBench + "/" + evalBench
	if r, ok := l.runners[key]; ok {
		return r, nil
	}
	opts := l.Cfg.GAR
	switch variant {
	case "gar":
	case "garj":
		opts.JoinAnnotations = true
	case "nodialect":
		opts.NoDialect = true
	case "norerank":
		opts.NoRerank = true
	default:
		return nil, fmt.Errorf("experiments: unknown variant %q", variant)
	}
	tb, err := l.bench(trainBench)
	if err != nil {
		return nil, err
	}
	eb, err := l.bench(evalBench)
	if err != nil {
		return nil, err
	}
	r, err := eval.NewGARRunner(tb, eb, opts)
	if err != nil {
		return nil, err
	}
	// MT-TEQL's test databases are unpublished: no system sees their
	// content (Table 7's setting).
	r.HideContent = evalBench == "mtteql"
	l.runners[key] = r
	return r, nil
}

func (l *Lab) bench(name string) (*datasets.Benchmark, error) {
	switch name {
	case "spider":
		return l.Spider(), nil
	case "geo":
		return l.Geo(), nil
	case "mtteql":
		return l.MTTEQL(), nil
	case "qben":
		return l.QBEN(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown benchmark %q (want spider, geo, mtteql or qben)", name)
	}
}

// evalItems returns the evaluation split of a benchmark: Spider uses
// its validation set, the others their test sets.
func (l *Lab) evalItems(name string) ([]datasets.Item, error) {
	b, err := l.bench(name)
	if err != nil {
		return nil, err
	}
	if name == "spider" {
		return b.Val, nil
	}
	return b.Test, nil
}

// sampleMode returns the §V-A3 sample protocol for a benchmark.
func sampleMode(bench string) eval.SampleMode {
	switch bench {
	case "mtteql":
		return eval.SamplesAreGolds
	case "qben":
		return eval.SamplesGiven
	default:
		return eval.SamplesFromGeneralization
	}
}

// trainBenchFor returns which benchmark trains the models for an
// evaluation benchmark: QBEN and MT-TEQL train on Spider's train split
// (per the paper); Spider and GEO train on their own.
func trainBenchFor(bench string) string {
	switch bench {
	case "mtteql", "qben":
		return "spider"
	default:
		return bench
	}
}

// GARResult evaluates a GAR variant on a benchmark, cached.
func (l *Lab) GARResult(variant, bench string) (*eval.Result, error) {
	key := "res/" + variant + "/" + bench
	if r, ok := l.results[key]; ok {
		return r, nil
	}
	runner, err := l.runner(variant, trainBenchFor(bench), bench)
	if err != nil {
		return nil, err
	}
	name := map[string]string{
		"gar": "GAR", "garj": "GAR-J",
		"nodialect": "GAR w/o Dialect Builder", "norerank": "GAR w/o Re-ranking",
	}[variant]
	items, err := l.evalItems(bench)
	if err != nil {
		return nil, err
	}
	res, err := runner.Evaluate(name, items, sampleMode(bench))
	if err != nil {
		return nil, err
	}
	l.results[key] = res
	return res, nil
}

// BaselineResults evaluates the four baselines on a benchmark, cached.
// MT-TEQL hides database content (its test databases are unpublished),
// making GAP and RAT-SQL N/A, as in Table 7.
func (l *Lab) BaselineResults(bench string) []*eval.Result {
	hide := bench == "mtteql"
	b, err := l.bench(bench)
	if err != nil {
		// Unknown benchmark: no results, mirroring Baseline's nil-on-
		// missing contract instead of panicking.
		return nil
	}
	items, err := l.evalItems(bench)
	if err != nil {
		return nil
	}
	var out []*eval.Result
	for _, m := range baselines.All(l.Lexicon()) {
		mkey := "base/" + bench + "/" + m.Name()
		if r, ok := l.results[mkey]; ok {
			out = append(out, r)
			continue
		}
		r := eval.EvaluateBaseline(m, b, items, hide)
		l.results[mkey] = r
		out = append(out, r)
	}
	return out
}

// Baseline returns one baseline's cached result on a benchmark.
func (l *Lab) Baseline(bench, name string) *eval.Result {
	for _, r := range l.BaselineResults(bench) {
		if r.System == name {
			return r
		}
	}
	return nil
}
