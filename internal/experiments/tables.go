package experiments

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/hardness"
	"repro/internal/report"
)

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Table1 reproduces the motivating Table 1: GAP and SMBOP translation
// accuracy on SPIDER by difficulty level.
func (l *Lab) Table1() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 1: Translation accuracy on SPIDER by SQL difficulty levels",
		Columns: []string{"Model", "Easy", "Medium", "Hard", "Extra Hard", "Overall"},
	}
	for _, name := range []string{"GAP", "SMBOP"} {
		res := l.Baseline("spider", name)
		by := res.ByLevel()
		t.AddRow(name, f3(by[hardness.Easy]), f3(by[hardness.Medium]),
			f3(by[hardness.Hard]), f3(by[hardness.ExtraHard]), f3(res.Overall()))
	}
	return t, nil
}

// Table3 reproduces the benchmark statistics table.
func (l *Lab) Table3() (*report.Table, error) {
	t := &report.Table{
		Title: "Table 3: The statistics of NLIDB benchmarks (generated)",
		Columns: []string{"Benchmark", "Split", "DBs", "AvgTables/DB", "Queries",
			"Nested", "ORDER BY", "GROUP BY", "Compound"},
	}
	add := func(bench, split string, b *datasets.Benchmark, items []datasets.Item) {
		if len(items) == 0 {
			return
		}
		st := datasets.StatsOf(b, items)
		t.AddRow(bench, split, st.Databases, fmt.Sprintf("%.2f", st.AvgTables),
			st.Queries, st.Nested, st.OrderBy, st.GroupBy, st.Compound)
	}
	geo := l.Geo()
	add("GEO", "train", geo, geo.Train)
	add("GEO", "val", geo, geo.Val)
	add("GEO", "test", geo, geo.Test)
	sp := l.Spider()
	add("SPIDER", "train", sp, sp.Train)
	add("SPIDER", "val", sp, sp.Val)
	mt := l.MTTEQL()
	add("MT-TEQL", "test", mt, mt.Test)
	qb := l.QBEN()
	add("QBEN", "samples", qb, qb.Samples)
	add("QBEN", "test", qb, qb.Test)
	return t, nil
}

// Table4 reproduces the SPIDER validation breakdown: the five systems by
// difficulty plus execution accuracy.
func (l *Lab) Table4() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 4: Breakdown results on the SPIDER validation set",
		Columns: []string{"Model", "Easy", "Medium", "Hard", "Extra Hard", "Overall", "Exec."},
	}
	gar, err := l.GARResult("gar", "spider")
	if err != nil {
		return nil, err
	}
	rows := []*eval.Result{gar}
	for _, name := range []string{"SMBOP", "BRIDGE", "GAP", "RAT-SQL"} {
		rows = append(rows, l.Baseline("spider", name))
	}
	for _, res := range rows {
		by := res.ByLevel()
		t.AddRow(res.System, f3(by[hardness.Easy]), f3(by[hardness.Medium]),
			f3(by[hardness.Hard]), f3(by[hardness.ExtraHard]), f3(res.Overall()), f3(res.Exec()))
	}
	return t, nil
}

// Table5 reproduces the clause-type breakdown on SPIDER.
func (l *Lab) Table5() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 5: Translation accuracy on SPIDER by SQL clause types",
		Columns: []string{"Model", "Nested", "Negation", "ORDERBY", "GROUPBY", "Others"},
	}
	gar, err := l.GARResult("gar", "spider")
	if err != nil {
		return nil, err
	}
	rows := []*eval.Result{gar}
	for _, name := range []string{"GAP", "SMBOP", "RAT-SQL", "BRIDGE"} {
		rows = append(rows, l.Baseline("spider", name))
	}
	for _, res := range rows {
		by := res.ByTag()
		t.AddRow(res.System, f3(by["Nested"]), f3(by["Negation"]),
			f3(by["ORDERBY"]), f3(by["GROUPBY"]), f3(by["Others"]))
	}
	return t, nil
}

// Table6 reproduces GAR's precision and MRR on SPIDER and GEO.
func (l *Lab) Table6() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 6: Precision and MRR values of GAR",
		Columns: []string{"Dataset", "MRR", "Precision@1", "Precision@3", "Precision@10"},
	}
	for _, bench := range []string{"spider", "geo"} {
		res, err := l.GARResult("gar", bench)
		if err != nil {
			return nil, err
		}
		label := map[string]string{"spider": "SPIDER", "geo": "GEO"}[bench]
		t.AddRow(label, f3(res.MRR()), f3(res.PrecisionAt(1)), f3(res.PrecisionAt(3)), f3(res.PrecisionAt(10)))
	}
	return t, nil
}

// Table7 reproduces the MT-TEQL results: GAR with the SPIDER validation
// set as samples versus SMBOP and BRIDGE; GAP and RAT-SQL are N/A since
// the test databases (content) are not published.
func (l *Lab) Table7() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 7: Translation results on the MT-TEQL test subset",
		Columns: []string{"Model", "Overall", "Exec."},
	}
	gar, err := l.GARResult("gar", "mtteql")
	if err != nil {
		return nil, err
	}
	t.AddRow("GAR + SPIDER validation set", f3(gar.Overall()), f3(gar.Exec()))
	for _, name := range []string{"SMBOP", "BRIDGE", "GAP", "RAT-SQL"} {
		res := l.Baseline("mtteql", name)
		if res.NA() {
			t.AddRow(name, "N/A", "N/A")
			continue
		}
		t.AddRow(name, f3(res.Overall()), f3(res.Exec()))
	}
	return t, nil
}

// Table8 reproduces the ablation study: full GAR, w/o dialect builder,
// w/o re-ranking model, with the per-stage miss counts.
func (l *Lab) Table8() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 8: The ablation study of GAR on the SPIDER validation set",
		Columns: []string{"Model", "Retrieval Miss", "Re-ranking Miss", "Overall"},
	}
	base, err := l.GARResult("gar", "spider")
	if err != nil {
		return nil, err
	}
	noDialect, err := l.GARResult("nodialect", "spider")
	if err != nil {
		return nil, err
	}
	noRerank, err := l.GARResult("norerank", "spider")
	if err != nil {
		return nil, err
	}
	_, retr, rer := base.MissCounts()
	t.AddRow("Base Model (GAR)", retr, rer, f3(base.Overall()))
	_, retr, rer = noDialect.MissCounts()
	t.AddRow("w/o Dialect Builder", retr, rer, f3(noDialect.Overall()))
	_, retr, _ = noRerank.MissCounts()
	t.AddRow("w/o Re-ranking Model", retr, "N/A", f3(noRerank.Overall()))
	return t, nil
}

// Table9 reproduces the per-stage error analysis for GAR and GAR-J on
// the three benchmarks.
func (l *Lab) Table9() (*report.Table, error) {
	t := &report.Table{
		Title: "Table 9: Error analysis on each step of GAR/GAR-J",
		Columns: []string{"Dataset", "Prep GAR", "Prep GAR-J",
			"Retrieval GAR", "Retrieval GAR-J", "Re-rank GAR", "Re-rank GAR-J"},
	}
	for _, bench := range []string{"spider", "geo", "qben"} {
		gar, err := l.GARResult("gar", bench)
		if err != nil {
			return nil, err
		}
		garj, err := l.GARResult("garj", bench)
		if err != nil {
			return nil, err
		}
		p1, r1, k1 := gar.MissCounts()
		p2, r2, k2 := garj.MissCounts()
		label := map[string]string{"spider": "SPIDER", "geo": "GEO", "qben": "QBEN"}[bench]
		t.AddRow(label, p1, p2, r1, r2, k1, k2)
	}
	return t, nil
}
