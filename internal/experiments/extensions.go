package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/generalize"
	"repro/internal/norm"
	"repro/internal/report"
)

// Extensions evaluates the paper's two future-work directions (§VII) on
// the SPIDER validation set next to plain GAR: schema-derived component
// augmentation and backbone-augmented samples. This goes beyond the
// paper's reported experiments; the paper only sketches both ideas.
func (l *Lab) Extensions() (*report.Table, error) {
	t := &report.Table{
		Title:   "Extensions (paper §VII future work) on the SPIDER validation set",
		Columns: []string{"Variant", "Overall", "Prep Miss", "Retrieval Miss", "Re-rank Miss"},
	}
	base, err := l.GARResult("gar", "spider")
	if err != nil {
		return nil, err
	}
	addRow := func(name string, res *eval.Result) {
		p, r, k := res.MissCounts()
		t.AddRow(name, f3(res.Overall()), p, r, k)
	}
	addRow("GAR", base)

	runner, err := l.runner("gar", "spider", "spider")
	if err != nil {
		return nil, err
	}
	// Schema augmentation.
	augRunner := *runner
	augRunner.SchemaAugment = true
	augRes, err := augRunner.Evaluate("GAR + schema components", l.Spider().Val, eval.SamplesFromGeneralization)
	if err != nil {
		return nil, err
	}
	addRow(augRes.System, augRes)

	// Backbone augmentation with the strongest baseline.
	bbRunner := *runner
	bbRunner.Backbone = baselines.NewBRIDGE(l.Lexicon())
	bbRes, err := bbRunner.Evaluate("GAR + BRIDGE backbone", l.Spider().Val, eval.SamplesFromGeneralization)
	if err != nil {
		return nil, err
	}
	addRow(bbRes.System, bbRes)
	return t, nil
}

// RuleAblation reports what each recomposition rule contributes: the
// generalizer runs on one SPIDER validation database with each rule
// disabled in turn, recording pool composition and gold coverage. This
// is the design-choice ablation DESIGN.md calls out for Algorithm 1.
func (l *Lab) RuleAblation() (*report.Table, error) {
	t := &report.Table{
		Title: "Generalizer recomposition-rule ablation (one SPIDER validation database)",
		Columns: []string{"Rules", "Pool", "Gold Coverage", "Rejected Join",
			"Rejected Syntactic", "Rejected Bind", "Iterations"},
	}
	bench := l.Spider()
	dbName := datasets.DBNames(bench.Val)[0]
	bundle := bench.DBs[dbName]
	golds := datasets.GoldQueries(bench.Val, dbName)
	goldCanon := map[string]bool{}
	for _, g := range golds {
		c := g.Clone()
		if err := bundle.Schema.Bind(c); err == nil {
			g = c
		}
		goldCanon[norm.Canonical(g)] = true
	}

	variants := []struct {
		name  string
		rules generalize.RuleSet
	}{
		{"all rules", generalize.AllRules()},
		{"w/o Rule 1 (join)", ruleOff(func(r *generalize.RuleSet) { r.Join = false })},
		{"w/o Rule 2 (syntactic)", ruleOff(func(r *generalize.RuleSet) { r.Syntactic = false })},
		{"w/o Rule 3 (frequency)", ruleOff(func(r *generalize.RuleSet) { r.Frequency = false })},
	}
	for _, v := range variants {
		res := generalize.Generalize(bundle.Schema, golds, generalize.Config{
			TargetSize: l.Cfg.GAR.GeneralizeSize,
			Seed:       l.Cfg.GAR.Seed,
			Rules:      v.rules,
		})
		covered := 0
		poolCanon := map[string]bool{}
		for _, q := range res.Queries {
			poolCanon[norm.Canonical(q)] = true
		}
		for c := range goldCanon {
			if poolCanon[c] {
				covered++
			}
		}
		t.AddRow(v.name, len(res.Queries),
			fmt.Sprintf("%d/%d", covered, len(goldCanon)),
			res.Stats.RejectedJoinRule, res.Stats.RejectedSyntactic,
			res.Stats.RejectedBind, res.Stats.Iterations)
	}
	return t, nil
}

func ruleOff(mod func(*generalize.RuleSet)) generalize.RuleSet {
	r := generalize.AllRules()
	mod(&r)
	return r
}
