package report_test

import (
	"strings"
	"testing"

	"repro/internal/report"
)

func TestTableRender(t *testing.T) {
	tbl := &report.Table{Title: "T", Columns: []string{"A", "LongHeader"}}
	tbl.AddRow("x", 1)
	tbl.AddRow("longer-cell", 0.5)
	out := tbl.Render()
	if !strings.HasPrefix(out, "T\n") {
		t.Errorf("title missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, two rows
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d: %q", len(lines), out)
	}
	// Column alignment: the second column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "LongHeader")
	if !strings.HasPrefix(lines[3][idx:], "1") {
		t.Errorf("misaligned row: %q", lines[3])
	}
	if !strings.HasPrefix(lines[4][idx:], "0.500") {
		t.Errorf("float formatting wrong: %q", lines[4])
	}
}

func TestBarChart(t *testing.T) {
	out := report.BarChart("title", []report.Bar{
		{Label: "a", Value: 1.0},
		{Label: "bb", Value: 0.5},
	}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines: %q", out)
	}
	long := strings.Count(lines[1], "#")
	short := strings.Count(lines[2], "#")
	if long != 10 || short != 5 {
		t.Errorf("bar scaling wrong: %d and %d", long, short)
	}
	if !strings.Contains(lines[1], "1.000") || !strings.Contains(lines[2], "0.500") {
		t.Errorf("values missing: %q", out)
	}
}

func TestBoxStatsOf(t *testing.T) {
	s := report.BoxStatsOf("x", []float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("five-number summary wrong: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles wrong: %+v", s)
	}
	single := report.BoxStatsOf("y", []float64{7})
	if single.Min != 7 || single.Median != 7 || single.Max != 7 {
		t.Errorf("singleton summary wrong: %+v", single)
	}
}

func TestBoxPlot(t *testing.T) {
	rows := []report.BoxStats{
		{Label: "a", Min: 0, Q1: 1, Median: 2, Q3: 3, Max: 4},
		{Label: "b", Min: 2, Q1: 4, Median: 6, Q3: 8, Max: 10},
	}
	out := report.BoxPlot("plot", rows, 20)
	if !strings.Contains(out, "|") || !strings.Contains(out, "=") {
		t.Errorf("box plot glyphs missing: %q", out)
	}
	if !strings.Contains(out, "(med 2.0)") || !strings.Contains(out, "(med 6.0)") {
		t.Errorf("medians missing: %q", out)
	}
}
