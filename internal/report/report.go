// Package report renders experiment results as aligned ASCII tables and
// simple text charts (bars and box plots), one per table/figure of the
// paper.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal ASCII bar chart scaled to maxWidth
// characters; values are annotated numerically.
func BarChart(title string, bars []Bar, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	maxVal := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		n := 0
		if maxVal > 0 {
			n = int(b.Value / maxVal * float64(maxWidth))
		}
		fmt.Fprintf(&sb, "%s  %s %.3f\n", pad(b.Label, labelW), strings.Repeat("#", n), b.Value)
	}
	return sb.String()
}

// BoxStats summarizes a sample for a box plot row.
type BoxStats struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
}

// BoxStatsOf computes the five-number summary of values (which must be
// non-empty and may arrive unsorted).
func BoxStatsOf(label string, values []float64) BoxStats {
	sorted := append([]float64(nil), values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	q := func(p float64) float64 {
		if len(sorted) == 1 {
			return sorted[0]
		}
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			return sorted[lo]*(1-frac) + sorted[lo+1]*frac
		}
		return sorted[lo]
	}
	return BoxStats{
		Label: label, Min: sorted[0], Q1: q(0.25), Median: q(0.5),
		Q3: q(0.75), Max: sorted[len(sorted)-1],
	}
}

// BoxPlot renders box-plot rows on a shared numeric axis.
func BoxPlot(title string, rows []BoxStats, width int) string {
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	labelW := 0
	for _, r := range rows {
		if r.Max > maxVal {
			maxVal = r.Max
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	col := func(v float64) int {
		c := int(v / maxVal * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, r := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i := col(r.Min); i <= col(r.Max); i++ {
			line[i] = '-'
		}
		for i := col(r.Q1); i <= col(r.Q3); i++ {
			line[i] = '='
		}
		line[col(r.Median)] = '|'
		fmt.Fprintf(&sb, "%s  %s  (med %.1f)\n", pad(r.Label, labelW), string(line), r.Median)
	}
	return sb.String()
}
