package baselines_test

import (
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/engine"
	"repro/internal/norm"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func trainItems() []baselines.TrainItem {
	db := schematest.Employee()
	mk := func(nl, sql string) baselines.TrainItem {
		return baselines.TrainItem{DB: db, NL: nl, Gold: sqlparse.MustParse(sql)}
	}
	return []baselines.TrainItem{
		mk("what are the names of all employees", "SELECT name FROM employee"),
		mk("how many employees are there", "SELECT COUNT(*) FROM employee"),
		mk("which employees are older than 30", "SELECT name FROM employee WHERE age > 30"),
		mk("who is the oldest employee", "SELECT name FROM employee ORDER BY age DESC LIMIT 1"),
		mk("how many employees live in each city", "SELECT city, COUNT(*) FROM employee GROUP BY city"),
		mk("what is the average age of employees", "SELECT AVG(age) FROM employee"),
		mk("what is the total bonus paid", "SELECT SUM(bonus) FROM evaluation"),
		mk("who is the youngest employee", "SELECT name FROM employee ORDER BY age LIMIT 1"),
		mk("find the name of the employee who got the highest one time bonus",
			"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"),
		mk("employees with a bonus above the average bonus",
			"SELECT name FROM employee WHERE employee_id IN (SELECT employee_id FROM evaluation)"),
		// Additional pairs so the cue statistics separate; the real
		// benchmarks provide hundreds of training pairs per split.
		mk("count the shops", "SELECT COUNT(*) FROM shop"),
		mk("how many evaluations are there", "SELECT COUNT(*) FROM evaluation"),
		mk("how many shops are there", "SELECT COUNT(*) FROM shop"),
		mk("list the shop names", "SELECT shop_name FROM shop"),
		mk("show the location of each shop", "SELECT location FROM shop"),
		mk("which employees live in Madrid", "SELECT name FROM employee WHERE city = 'Madrid'"),
		mk("show shops in the Center district", "SELECT shop_name FROM shop WHERE district = 'Center'"),
		mk("employees younger than 40", "SELECT name FROM employee WHERE age < 40"),
		mk("shops with more than 100 products", "SELECT shop_name FROM shop WHERE number_products > 100"),
		mk("which shop has the most products", "SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1"),
		mk("what is the largest bonus", "SELECT MAX(bonus) FROM evaluation"),
		mk("what is the smallest bonus", "SELECT MIN(bonus) FROM evaluation"),
		mk("number of shops in each district", "SELECT district, COUNT(*) FROM shop GROUP BY district"),
		mk("districts with more than 2 shops", "SELECT district FROM shop GROUP BY district HAVING COUNT(*) > 2"),
		mk("list employee names sorted by age", "SELECT name FROM employee ORDER BY age"),
	}
}

func employeeContent() *engine.Instance {
	in := engine.NewInstance(schematest.Employee())
	n, s := engine.Num, engine.Str
	in.MustInsert("employee", n(1), s("George"), n(45), s("Madrid"))
	in.MustInsert("employee", n(2), s("John"), n(32), s("Austin"))
	in.MustInsert("evaluation", n(1), s("2017"), n(3200))
	in.MustInsert("evaluation", n(2), s("2017"), n(4100))
	return in
}

func TestLexiconLearnsCues(t *testing.T) {
	lex := baselines.TrainLexicon(trainItems())
	if p := lex.FlagProb("order", "who is the oldest employee", schematest.Employee()); p < 0.5 {
		t.Errorf("order cue not learned: %v", p)
	}
	if p := lex.FlagProb("order", "what are the names of all employees", schematest.Employee()); p > 0.5 {
		t.Errorf("spurious order cue: %v", p)
	}
	if p := lex.FlagProb("group", "how many employees live in each city", schematest.Employee()); p < 0.5 {
		t.Errorf("group cue not learned: %v", p)
	}
	if p := lex.FlagProb("aggCount", "how many employees are there", schematest.Employee()); p < 0.5 {
		t.Errorf("count cue not learned: %v", p)
	}
}

func TestBaselinesTranslateEasyQueries(t *testing.T) {
	lex := baselines.TrainLexicon(trainItems())
	db := schematest.Employee()
	content := employeeContent()
	gold := sqlparse.MustParse("SELECT COUNT(*) FROM employee")
	for _, m := range baselines.All(lex) {
		pred := m.Translate(db, content, "how many employees are there")
		if pred == nil {
			t.Errorf("%s failed on an easy query", m.Name())
			continue
		}
		if !norm.ExactMatch(pred, gold) {
			t.Errorf("%s mistranslated easy count: %s", m.Name(), pred)
		}
	}
}

func TestFig1Mistranslations(t *testing.T) {
	// The paper's Fig. 1: GAP decodes "the most records", SMBOP decodes
	// "the largest total", on a superlative over a join.
	lex := baselines.TrainLexicon(trainItems())
	db := schematest.Employee()
	content := employeeContent()
	nl := "find the name of the employee who got the highest one time bonus"
	gold := sqlparse.MustParse(
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1")

	gap := baselines.NewGAP(lex).Translate(db, content, nl)
	if gap == nil {
		t.Fatal("GAP produced nothing")
	}
	if norm.ExactMatch(gap, gold) {
		t.Errorf("GAP should mistranslate Fig. 1: %s", gap)
	}
	if !strings.Contains(gap.String(), "GROUP BY") || !strings.Contains(gap.String(), "COUNT(*)") {
		t.Errorf("GAP should group and count: %s", gap)
	}

	smbop := baselines.NewSMBOP(lex).Translate(db, content, nl)
	if smbop == nil {
		t.Fatal("SMBOP produced nothing")
	}
	if !strings.Contains(smbop.String(), "SUM(") {
		t.Errorf("SMBOP should sum the bonus: %s", smbop)
	}
}

func TestRATSQLNeedsContent(t *testing.T) {
	lex := baselines.TrainLexicon(trainItems())
	db := schematest.Employee()
	if q := baselines.NewRATSQL(lex).Translate(db, nil, "how many employees are there"); q != nil {
		t.Error("RAT-SQL must be N/A without content")
	}
	if q := baselines.NewGAP(lex).Translate(db, nil, "how many employees are there"); q != nil {
		t.Error("GAP must be N/A without content")
	}
	if q := baselines.NewSMBOP(lex).Translate(db, nil, "how many employees are there"); q == nil {
		t.Error("SMBOP must work without content")
	}
	if q := baselines.NewBRIDGE(lex).Translate(db, nil, "how many employees are there"); q == nil {
		t.Error("BRIDGE must work without content")
	}
}

func TestBRIDGEValueLinking(t *testing.T) {
	lex := baselines.TrainLexicon(append(trainItems(), baselines.TrainItem{
		DB: schematest.Employee(), NL: "which employees live in Madrid",
		Gold: sqlparse.MustParse("SELECT name FROM employee WHERE city = 'Madrid'"),
	}))
	pred := baselines.NewBRIDGE(lex).Translate(schematest.Employee(), employeeContent(),
		"which employees live in Austin")
	if pred == nil {
		t.Fatal("BRIDGE produced nothing")
	}
	s := pred.String()
	if !strings.Contains(s, "city") || !strings.Contains(strings.ToLower(s), "austin") {
		t.Errorf("BRIDGE value linking failed: %s", s)
	}
}

func TestSMBOPFailsExtraHard(t *testing.T) {
	lex := baselines.TrainLexicon(append(trainItems(),
		baselines.TrainItem{
			DB: schematest.Employee(),
			NL: "for each city of employees older than 30 having more than 2 employees show the city with the most employees",
			Gold: sqlparse.MustParse(`SELECT city FROM employee WHERE age > 30
				GROUP BY city HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 1`),
		}))
	pred := baselines.NewSMBOP(lex).Translate(schematest.Employee(), employeeContent(),
		"for each city of employees older than 30 having more than 2 employees show the city with the most employees")
	if pred == nil {
		t.Fatal("SMBOP returned nil instead of a trivial query")
	}
	// The extra-hard bailout produces a trivially simple query.
	if strings.Contains(pred.String(), "GROUP BY") || strings.Contains(pred.String(), "HAVING") {
		t.Errorf("SMBOP extra-hard bailout did not trigger: %s", pred)
	}
}

func TestFig7WrongFKEdge(t *testing.T) {
	// Two FK edges exist between flights and airports; synthesis models
	// take the first declared one, which for arriving flights is wrong
	// in direction-specific questions.
	db := schematest.Flights()
	lex := baselines.TrainLexicon([]baselines.TrainItem{
		{DB: db, NL: "which city has most number of arriving flights", Gold: sqlparse.MustParse(
			`SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport
			 GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1`)},
		{DB: db, NL: "which city has the most departing flights", Gold: sqlparse.MustParse(
			`SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport
			 GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1`)},
	})
	in := engine.NewInstance(db)
	in.MustInsert("airports", engine.Str("Austin"), engine.Str("AUS"), engine.Str("Bergstrom"), engine.Str("USA"))
	pred := baselines.NewSMBOP(lex).Translate(db, in, "which city has most number of arriving flights")
	if pred == nil {
		t.Skip("SMBOP bailed out; edge preference untestable here")
	}
	if strings.Contains(pred.String(), "destAirport") && !strings.Contains(pred.String(), "sourceAirport") {
		t.Logf("model picked the right edge by luck: %s", pred)
	}
}

func TestPredictionsBindOrNil(t *testing.T) {
	lex := baselines.TrainLexicon(trainItems())
	db := schematest.Employee()
	content := employeeContent()
	queries := []string{
		"how many employees are there",
		"which employees are older than 30",
		"who is the oldest employee",
		"what is the average age of employees",
		"cities with more than 2 employees",
		"employees with a bonus above the average bonus",
		"show names of employees in Austin or Madrid",
	}
	for _, m := range baselines.All(lex) {
		for _, nl := range queries {
			pred := m.Translate(db, content, nl)
			if pred == nil {
				continue
			}
			if err := db.Bind(pred.Clone()); err != nil {
				t.Errorf("%s produced unbound query for %q: %s: %v", m.Name(), nl, pred, err)
			}
			var _ = sqlast.ExprString // keep import
		}
	}
}
