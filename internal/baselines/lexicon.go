package baselines

import (
	"math"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/text"
)

// structFlags describes the coarse structure of a SQL query — the part
// a seq2seq decoder has to get right before any slot filling.
type structFlags struct {
	Agg           sqlast.AggFunc // "" for none
	CountStar     bool
	CountDistinct bool
	Where         bool
	TwoPreds      bool
	Group         bool
	Having        bool
	Order         bool
	Desc          bool
	Limit1        bool
	Nested        bool
	Compound      bool
	Join          bool
	Distinct      bool
}

// flagsOf extracts structure flags from a gold query.
func flagsOf(q *sqlast.Query) structFlags {
	s := q.Select
	f := structFlags{
		Where:    s.Where != nil,
		TwoPreds: len(sqlast.Predicates(s.Where)) > 1,
		Group:    len(s.GroupBy) > 0,
		Having:   s.Having != nil,
		Order:    len(s.OrderBy) > 0,
		Limit1:   s.Limit == 1,
		Compound: q.IsCompound(),
		Join:     len(s.From.Joins) > 0,
		Distinct: s.Distinct,
	}
	if len(s.OrderBy) > 0 {
		f.Desc = s.OrderBy[0].Desc
	}
	for _, it := range s.Items {
		if a, ok := it.Expr.(*sqlast.Agg); ok {
			f.Agg = a.Func
			if a.Arg.IsStar() {
				f.CountStar = true
			}
			if a.Distinct {
				f.CountDistinct = true
			}
		}
	}
	sqlast.WalkExprs(s.Where, func(e sqlast.Expr) {
		switch e.(type) {
		case *sqlast.In, *sqlast.Exists, *sqlast.Subquery:
			f.Nested = true
		}
	})
	return f
}

// Lexicon is the trainable cue model: per-flag naive-Bayes token
// statistics estimated from (NL, gold) training pairs. It is shared by
// all four baselines, as the underlying pre-trained encoders are in the
// paper.
type Lexicon struct {
	total     int
	flagCount map[string]int
	// tokenFlag[flag][token] = count of token in examples with flag.
	tokenFlag map[string]map[string]int
	tokenAll  map[string]int
}

// flagNames enumerates the predicted binary flags.
var flagNames = []string{
	"where", "twoPreds", "group", "having", "order", "desc", "limit1",
	"nested", "compound", "join", "distinct",
	"aggCount", "aggSum", "aggAvg", "aggMin", "aggMax", "countStar",
	"countDistinct",
}

func boolFlags(f structFlags) map[string]bool {
	return map[string]bool{
		"where": f.Where, "twoPreds": f.TwoPreds, "group": f.Group,
		"having": f.Having, "order": f.Order, "desc": f.Desc,
		"limit1": f.Limit1, "nested": f.Nested, "compound": f.Compound,
		"join": f.Join, "distinct": f.Distinct,
		"aggCount": f.Agg == sqlast.Count, "aggSum": f.Agg == sqlast.Sum,
		"aggAvg": f.Agg == sqlast.Avg, "aggMin": f.Agg == sqlast.Min,
		"aggMax": f.Agg == sqlast.Max, "countStar": f.CountStar,
		"countDistinct": f.CountDistinct,
	}
}

// TrainItem is one supervised pair for lexicon training.
type TrainItem struct {
	DB   *schema.Database
	NL   string
	Gold *sqlast.Query
}

// TrainLexicon estimates the cue statistics from training pairs.
// Tokens that name schema elements (tables, columns) are excluded from
// the cue features: they indicate *which* columns to use, not *what
// structure* the query has, and letting them vote on structure flags
// only adds small-sample noise.
func TrainLexicon(items []TrainItem) *Lexicon {
	lex := &Lexicon{
		flagCount: map[string]int{},
		tokenFlag: map[string]map[string]int{},
		tokenAll:  map[string]int{},
	}
	for _, name := range flagNames {
		lex.tokenFlag[name] = map[string]int{}
	}
	for _, it := range items {
		lex.total++
		flags := boolFlags(flagsOf(it.Gold))
		toks := cueTokens(it.NL, it.DB)
		for _, t := range toks {
			lex.tokenAll[t]++
		}
		for name, on := range flags {
			if !on {
				continue
			}
			lex.flagCount[name]++
			for _, t := range toks {
				lex.tokenFlag[name][t]++
			}
		}
	}
	return lex
}

// cueTokens returns the distinct non-schema content tokens of an NL
// query.
func cueTokens(nl string, db *schema.Database) []string {
	vocab := schemaVocab(db)
	seen := map[string]bool{}
	var out []string
	for _, t := range text.CanonTokens(nl) {
		if seen[t] || vocab[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// schemaVocab collects the stemmed annotation tokens of a schema.
func schemaVocab(db *schema.Database) map[string]bool {
	if db == nil {
		return nil
	}
	vocab := map[string]bool{}
	for _, t := range db.Tables {
		for _, tok := range text.CanonTokens(t.NL()) {
			vocab[tok] = true
		}
		for _, c := range t.Columns {
			for _, tok := range text.CanonTokens(c.NL()) {
				vocab[tok] = true
			}
		}
	}
	return vocab
}

// FlagProb returns the posterior probability of the flag given the NL
// query under the naive-Bayes cue model. db filters out schema words.
func (l *Lexicon) FlagProb(flag, nl string, db *schema.Database) float64 {
	if l.total == 0 {
		return 0
	}
	prior := float64(l.flagCount[flag]+1) / float64(l.total+2)
	logOdds := math.Log(prior / (1 - prior))
	nFlag := l.flagCount[flag]
	for _, t := range cueTokens(nl, db) {
		all := l.tokenAll[t]
		if all == 0 {
			continue
		}
		withFlag := l.tokenFlag[flag][t]
		// P(t|flag) vs P(t|¬flag), smoothed toward the token's global
		// rate with m pseudo-counts so flags with few (or zero)
		// training examples stay uninformative instead of defaulting
		// to 1/2.
		const m = 5.0
		p0 := float64(all+1) / float64(l.total+2)
		pFlag := (float64(withFlag) + m*p0) / (float64(nFlag) + m)
		pNot := (float64(all-withFlag) + m*p0) / (float64(l.total-nFlag) + m)
		logOdds += math.Log(pFlag / pNot)
	}
	return 1 / (1 + math.Exp(-logOdds))
}

// Predict thresholds the flag posteriors into a structure prediction.
func (l *Lexicon) Predict(nl string, db *schema.Database) structFlags {
	p := func(flag string) bool { return l.FlagProb(flag, nl, db) > 0.5 }
	f := structFlags{
		Where:    p("where"),
		TwoPreds: p("twoPreds"),
		Group:    p("group"),
		Having:   p("having"),
		Order:    p("order"),
		Desc:     p("desc"),
		Limit1:   p("limit1"),
		Nested:   p("nested"),
		Compound: p("compound"),
		Join:     p("join"),
		Distinct: p("distinct"),
	}
	bestAgg, bestP := sqlast.AggFunc(""), 0.5
	for _, cand := range []struct {
		flag string
		fn   sqlast.AggFunc
	}{
		{"aggCount", sqlast.Count}, {"aggSum", sqlast.Sum},
		{"aggAvg", sqlast.Avg}, {"aggMin", sqlast.Min}, {"aggMax", sqlast.Max},
	} {
		if prob := l.FlagProb(cand.flag, nl, db); prob > bestP {
			bestAgg, bestP = cand.fn, prob
		}
	}
	f.Agg = bestAgg
	f.CountStar = f.Agg == sqlast.Count && l.FlagProb("countStar", nl, db) > 0.5
	f.CountDistinct = f.Agg == sqlast.Count && !f.CountStar && l.FlagProb("countDistinct", nl, db) > 0.5
	return f
}
