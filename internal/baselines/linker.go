// Package baselines implements four simplified stand-ins for the
// machine-learning NL2SQL systems the paper compares against: GAP,
// SMBOP, RAT-SQL and BRIDGE. The real systems are large PyTorch
// seq2seq/grammar decoders; these substitutes share their architecture
// at the level the experiments care about — they *synthesize* SQL
// bottom-up from the NL query and the schema (rather than ranking a
// candidate pool the way GAR does) via (1) lexical schema linking,
// (2) a trainable cue lexicon that predicts the query structure, and
// (3) per-model assembly policies that reproduce each system's
// characteristic behaviours (GAP's dropped join conditions, SMBOP's
// aggregate confusion and extra-hard failures, RAT-SQL's content-
// dependent linking, BRIDGE's value linking). Because they synthesize
// rather than rank, their accuracy decays with structural complexity —
// the degradation pattern of Table 1/Table 4.
package baselines

import (
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/text"
)

// linkScore is a schema element matched against the NL query.
type linkScore struct {
	table  *schema.Table
	column *schema.Column // nil for a table-level match
	// score is the projection-relevant lexical score; valBoost is the
	// additional evidence from matched cell values, which points at a
	// filter column rather than a projection.
	score    float64
	valBoost float64
}

// total is the combined evidence used for filter-column choice.
func (l linkScore) total() float64 { return l.score + l.valBoost }

// linker scores schema elements against NL tokens by annotation overlap
// (the stand-in for relation-aware schema linking). withContent enables
// cell-value matching, which RAT-SQL and GAP rely on.
type linker struct {
	db          *schema.Database
	content     *engine.Instance
	withContent bool
}

// linkColumns returns all columns scored against the NL query, best
// first. Scores combine word overlap on annotations with character
// trigram similarity (partial-word matches).
func (l *linker) linkColumns(nl string) []linkScore {
	nlToks := text.CanonTokens(nl)
	nlGrams := map[string]bool{}
	for _, t := range nlToks {
		for _, g := range text.CharNGrams(t, 3) {
			nlGrams[g] = true
		}
	}
	var out []linkScore
	for _, t := range l.db.Tables {
		tableBoost := overlap(text.CanonTokens(t.NL()), nlToks)
		for _, c := range t.Columns {
			if isIDLike(c.Name) {
				// Key columns are reached through FK paths, never via
				// lexical linking; their annotations name the *other*
				// entity and only mislead the linker.
				continue
			}
			colToks := text.CanonTokens(c.NL())
			ls := linkScore{table: t, column: c}
			ls.score = 2*overlap(colToks, nlToks) + 0.5*tableBoost
			ls.score += 0.5 * gramOverlap(colToks, nlGrams)
			// Questions lead with the requested column ("the goals of
			// players sorted by age"), so an early first mention favors
			// the projection role.
			if pos := firstMention(colToks, nlToks); pos >= 0 && len(nlToks) > 1 {
				ls.score += 0.4 * (1 - float64(pos)/float64(len(nlToks)))
			}
			if l.withContent && l.content != nil && c.Type == schema.Text {
				if l.valueMentioned(t, c, nl) {
					ls.valBoost = 1.5
				}
			}
			if ls.total() > 0 {
				out = append(out, ls)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	return out
}

// firstMention returns the index of the earliest NL token matching any
// column token, or -1.
func firstMention(colToks, nlToks []string) int {
	set := map[string]bool{}
	for _, t := range colToks {
		set[t] = true
	}
	for i, t := range nlToks {
		if set[t] {
			return i
		}
	}
	return -1
}

// linkTables scores tables against the query.
func (l *linker) linkTables(nl string) []linkScore {
	nlToks := text.CanonTokens(nl)
	var out []linkScore
	for _, t := range l.db.Tables {
		s := overlap(text.CanonTokens(t.NL()), nlToks)
		for _, c := range t.Columns {
			s += 0.3 * overlap(text.CanonTokens(c.NL()), nlToks)
		}
		out = append(out, linkScore{table: t, score: s})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	return out
}

// valueMentioned reports whether any cell value of the column occurs in
// the NL query.
func (l *linker) valueMentioned(t *schema.Table, c *schema.Column, nl string) bool {
	td := l.content.Tables[strings.ToLower(t.Name)]
	if td == nil {
		return false
	}
	ci := -1
	for i, name := range td.Columns {
		if strings.EqualFold(name, c.Name) {
			ci = i
			break
		}
	}
	if ci < 0 {
		return false
	}
	lower := " " + strings.ToLower(nl) + " "
	for _, row := range td.Rows {
		v := row[ci]
		if v.Null || v.IsNum || v.Str == "" {
			continue
		}
		if strings.Contains(lower, strings.ToLower(v.Str)) {
			return true
		}
	}
	return false
}

func isIDLike(name string) bool {
	ln := strings.ToLower(name)
	return strings.HasSuffix(ln, "_id") || ln == "uid" || ln == "uid1" || ln == "uid2" || ln == "id"
}

func overlap(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	set := map[string]bool{}
	for _, t := range b {
		set[t] = true
	}
	hits := 0.0
	for _, t := range a {
		if set[t] {
			hits++
		}
	}
	return hits / float64(len(a))
}

func gramOverlap(tokens []string, grams map[string]bool) float64 {
	total, hit := 0, 0
	for _, t := range tokens {
		for _, g := range text.CharNGrams(t, 3) {
			total++
			if grams[g] {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// fkPath finds a join path between two tables: the FK edge connecting
// them directly, or a two-hop path through a bridge table. preferFirst
// reproduces the characteristic failure of synthesis models on multiple
// FK edges between the same table pair (the paper's Fig. 7
// source/destination airport case): the first declared edge is taken,
// right or wrong.
func fkPath(db *schema.Database, a, b *schema.Table) ([]*schema.Table, []schema.ForeignKey) {
	for _, fk := range db.ForeignKeys {
		if strings.EqualFold(fk.FromTable, a.Name) && strings.EqualFold(fk.ToTable, b.Name) ||
			strings.EqualFold(fk.FromTable, b.Name) && strings.EqualFold(fk.ToTable, a.Name) {
			return []*schema.Table{a, b}, []schema.ForeignKey{fk}
		}
	}
	// Two-hop through a middle table.
	for _, fk1 := range db.ForeignKeys {
		for _, fk2 := range db.ForeignKeys {
			if fk1.FromTable != fk2.FromTable {
				continue
			}
			mid := db.Table(fk1.FromTable)
			if mid == nil {
				continue
			}
			if strings.EqualFold(fk1.ToTable, a.Name) && strings.EqualFold(fk2.ToTable, b.Name) {
				return []*schema.Table{a, mid, b}, []schema.ForeignKey{fk1, fk2}
			}
		}
	}
	return nil, nil
}
