package baselines

import (
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Model is one baseline NL2SQL system.
type Model struct {
	lex *Lexicon
	pol policy
}

// Name returns the model's display name.
func (m *Model) Name() string { return m.pol.name }

// NeedsContent reports whether the model requires database content for
// schema linking (GAP and RAT-SQL): such models cannot run on
// benchmarks that hide the test databases (Table 7's N/A rows).
func (m *Model) NeedsContent() bool { return m.pol.needsContent }

// Translate synthesizes a SQL prediction for the NL query on the given
// database. content may be nil for models that do not need it; a nil
// return is a failed translation.
func (m *Model) Translate(db *schema.Database, content *engine.Instance, nl string) *sqlast.Query {
	if m.pol.needsContent && content == nil {
		return nil
	}
	s := newSynthesizer(db, content, m.pol)
	return s.translate(nl, m.lex.Predict(nl, db))
}

// NewGAP builds the GAP-like baseline: content-dependent schema linking
// and the "most records" decoding of superlatives over joins (Fig. 1).
func NewGAP(lex *Lexicon) *Model {
	return &Model{lex: lex, pol: policy{
		name:         "GAP",
		needsContent: true,
		supJoin:      "count",
		wrongFKBias:  true,
		valueLinking: true,
	}}
}

// NewSMBOP builds the SMBOP-like baseline: bottom-up decoding that sums
// instead of ordering (Fig. 1) and bails out to a trivial query on
// extra-hard structures (the response-time drop of Fig. 10).
func NewSMBOP(lex *Lexicon) *Model {
	return &Model{lex: lex, pol: policy{
		name:          "SMBOP",
		supJoin:       "sum",
		failExtraHard: true,
		wrongFKBias:   true,
		valueLinking:  true,
	}}
}

// NewRATSQL builds the RAT-SQL-like baseline: relation-aware linking
// that depends on database content, grammar decoding without set
// operators.
func NewRATSQL(lex *Lexicon) *Model {
	return &Model{lex: lex, pol: policy{
		name:         "RAT-SQL",
		needsContent: true,
		supJoin:      "order",
		noCompound:   true,
		wrongFKBias:  true,
		valueLinking: true,
	}}
}

// NewBRIDGE builds the BRIDGE-like baseline: sequential decoding with
// strong cell-value linking and no content requirement at train time.
func NewBRIDGE(lex *Lexicon) *Model {
	return &Model{lex: lex, pol: policy{
		name:         "BRIDGE",
		supJoin:      "order",
		valueLinking: true,
		wrongFKBias:  true,
	}}
}

// All builds the four baselines sharing one trained lexicon, in the
// paper's reporting order.
func All(lex *Lexicon) []*Model {
	return []*Model{NewSMBOP(lex), NewBRIDGE(lex), NewGAP(lex), NewRATSQL(lex)}
}
