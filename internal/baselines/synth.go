package baselines

import (
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/text"
	"repro/internal/values"
)

// policy encodes one baseline's characteristic assembly behaviour.
type policy struct {
	name string
	// needsContent marks models whose schema linking requires database
	// content (GAP, RAT-SQL) — they are N/A on benchmarks that hide it.
	needsContent bool
	// supJoin is how the model handles a superlative over a join (the
	// paper's Fig. 1): "order" decodes it correctly, "count" decodes
	// "the most records" (GAP), "sum" decodes "the largest total"
	// (SMBOP).
	supJoin string
	// failExtraHard makes the model emit a trivial (wrong) query when
	// the predicted structure stacks too many components (SMBOP's
	// behaviour on Extra Hard queries).
	failExtraHard bool
	// noCompound disables set operators (RAT-SQL-like decoding).
	noCompound bool
	// valueLinking anchors WHERE columns on linked cell values
	// (BRIDGE's distinctive strength).
	valueLinking bool
	// wrongFKBias picks the first declared FK edge between two tables
	// even when several exist (Fig. 7's source/destination confusion).
	// All synthesis models share it; kept as a knob for tests.
	wrongFKBias bool
}

// synthesizer assembles one SQL query from the predicted structure and
// the linked schema elements.
type synthesizer struct {
	db      *schema.Database
	content *engine.Instance
	pol     policy
	lk      *linker
	vlink   *values.Linker
}

func newSynthesizer(db *schema.Database, content *engine.Instance, pol policy) *synthesizer {
	s := &synthesizer{db: db, content: content, pol: pol}
	s.lk = &linker{db: db, content: content, withContent: pol.needsContent || pol.valueLinking}
	if pol.valueLinking {
		s.vlink = values.NewLinker(db, content)
	} else {
		s.vlink = values.NewLinker(db, nil)
	}
	return s
}

// translate synthesizes the SQL prediction for one NL query. A nil
// result means the model failed to produce a query.
func (s *synthesizer) translate(nl string, f structFlags) *sqlast.Query {
	cols := s.lk.linkColumns(nl)
	if len(cols) == 0 {
		// Fall back to the best-linked table's first data column.
		tabs := s.lk.linkTables(nl)
		if len(tabs) == 0 {
			return nil
		}
		t := tabs[0].table
		for _, c := range t.Columns {
			cols = append(cols, linkScore{table: t, column: c, score: 0})
			break
		}
	}
	proj := cols[0]
	mainT := proj.table

	// BRIDGE-style value linking: a mentioned cell value forces a
	// filter on its column even when the cue model missed it.
	if s.pol.valueLinking && !f.Where {
		for _, v := range s.vlink.Extract(nl) {
			if !v.IsNum && len(v.Columns) > 0 {
				f.Where = true
				break
			}
		}
	}

	// Extra-hard bailout: SMBOP-like models emit a trivial query when
	// too many components stack up.
	if s.pol.failExtraHard && componentLoad(f) >= 5 {
		return &sqlast.Query{Select: &sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: s.colRef(mainT, firstDataColumn(mainT))}},
			From:  sqlast.From{Tables: []sqlast.TableRef{{Name: mainT.Name}}},
		}}
	}

	sel := &sqlast.Select{Distinct: f.Distinct}
	from := sqlast.From{Tables: []sqlast.TableRef{{Name: mainT.Name}}}

	// Join: when the structure demands one, or the linked columns span
	// two tables, connect via an FK path (first declared edge wins —
	// the Fig. 7 failure mode on ambiguous edges).
	var joinedT *schema.Table
	if f.Join || secondTable(cols, mainT) != nil {
		other := secondTable(cols, mainT)
		if other == nil && f.Join {
			other = s.mentionedTable(nl, mainT)
		}
		if other != nil {
			if path, fks := fkPath(s.db, mainT, other); path != nil {
				from = sqlast.From{}
				for _, t := range path {
					from.Tables = append(from.Tables, sqlast.TableRef{Name: t.Name})
				}
				for _, fk := range fks {
					from.Joins = append(from.Joins, sqlast.JoinCond{
						Left:  sqlast.ColumnRef{Table: fk.ToTable, Column: fk.ToColumn},
						Right: sqlast.ColumnRef{Table: fk.FromTable, Column: fk.FromColumn},
					})
				}
				// Printed FROM order must match join order: the path
				// starts at mainT.
				joinedT = path[len(path)-1]
			}
		}
	}
	sel.From = from

	// Projection.
	switch {
	case f.Agg != "" && f.CountStar:
		sel.Items = []sqlast.SelectItem{{Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}}}
	case f.Agg == sqlast.Count:
		// COUNT over a column: the best-linked column, DISTINCT when
		// the cue model saw a distinct marker.
		arg := s.colRef(proj.table, proj.column)
		sel.Items = []sqlast.SelectItem{{Expr: &sqlast.Agg{Func: sqlast.Count, Distinct: f.CountDistinct, Arg: arg}}}
	case f.Agg != "":
		numCol := s.numericColumn(cols, mainT, joinedT)
		if numCol == nil {
			sel.Items = []sqlast.SelectItem{{Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}}}
		} else {
			sel.Items = []sqlast.SelectItem{{Expr: &sqlast.Agg{Func: f.Agg, Arg: numCol}}}
		}
	default:
		sel.Items = []sqlast.SelectItem{{Expr: s.colRef(proj.table, proj.column)}}
	}

	// WHERE.
	if f.Where {
		if pred := s.wherePredicate(nl, cols, proj, f.TwoPreds); pred != nil {
			sel.Where = pred
		}
	}

	// Nested predicate (IN-subquery through an FK, or scalar compare).
	if f.Nested {
		s.addNested(sel, nl, mainT)
	}

	// GROUP BY + HAVING + superlative shapes.
	if f.Group {
		gcol := s.groupColumn(cols, proj)
		if gcol != nil {
			sel.GroupBy = []*sqlast.ColumnRef{gcol}
			if f.Limit1 && f.Order {
				sel.OrderBy = []sqlast.OrderItem{{
					Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
					Desc: true,
				}}
				sel.Limit = 1
			} else if f.Agg == sqlast.Count || f.CountStar {
				sel.Items = append(sel.Items[:0],
					sqlast.SelectItem{Expr: &sqlast.ColumnRef{Table: gcol.Table, Column: gcol.Column}},
					sqlast.SelectItem{Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}})
			}
			if f.Having {
				sel.Having = &sqlast.Binary{
					Op: ">",
					L:  &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
					R:  sqlast.NumberLitOf(s.havingThreshold(nl)),
				}
			}
		}
	}

	// Superlative / ordering without grouping.
	if f.Order && len(sel.OrderBy) == 0 {
		key := s.orderKey(cols, mainT, joinedT, proj, nl)
		if key != nil {
			if joinedT != nil && f.Limit1 && s.pol.supJoin != "order" {
				// The characteristic mistranslations of Fig. 1.
				switch s.pol.supJoin {
				case "count":
					sel.GroupBy = []*sqlast.ColumnRef{s.fkGroupKey(joinedT, mainT)}
					sel.OrderBy = []sqlast.OrderItem{{
						Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
						Desc: true,
					}}
				case "sum":
					sel.GroupBy = []*sqlast.ColumnRef{s.fkGroupKey(joinedT, mainT)}
					sel.OrderBy = []sqlast.OrderItem{{
						Expr: &sqlast.Agg{Func: sqlast.Sum, Arg: key},
						Desc: true,
					}}
				}
				sel.Limit = 1
			} else {
				sel.OrderBy = []sqlast.OrderItem{{Expr: key, Desc: f.Desc}}
				if f.Limit1 {
					sel.Limit = 1
				}
			}
		}
	}

	q := &sqlast.Query{Select: sel}

	// Compound.
	if f.Compound && !s.pol.noCompound {
		if right := s.compoundRight(nl, sel); right != nil {
			q.Op = sqlast.Union
			if strings.Contains(strings.ToLower(nl), "also appear") ||
				strings.Contains(strings.ToLower(nl), "intersect") {
				q.Op = sqlast.Intersect
			}
			if strings.Contains(strings.ToLower(nl), "exclud") ||
				strings.Contains(strings.ToLower(nl), "but not") ||
				strings.Contains(strings.ToLower(nl), "leave out") {
				q.Op = sqlast.Except
			}
			q.Right = right
		}
	}

	if err := s.db.Bind(q); err != nil {
		return nil
	}
	return q
}

// componentLoad counts stacked structure components (the extra-hard
// proxy).
func componentLoad(f structFlags) int {
	n := 0
	for _, on := range []bool{f.Where, f.TwoPreds, f.Group, f.Having,
		f.Order, f.Limit1, f.Nested, f.Compound, f.Join} {
		if on {
			n++
		}
	}
	return n
}

func firstDataColumn(t *schema.Table) *schema.Column {
	for _, c := range t.Columns {
		if !strings.HasSuffix(strings.ToLower(c.Name), "_id") && !strings.EqualFold(c.Name, "uid") {
			return c
		}
	}
	return t.Columns[0]
}

func (s *synthesizer) colRef(t *schema.Table, c *schema.Column) *sqlast.ColumnRef {
	return &sqlast.ColumnRef{Table: t.Name, Column: c.Name}
}

// secondTable finds a column on a different table that carries
// *distinctive* evidence: at least one of its annotation tokens is not
// provided by any column of the main table. Generic words ("name",
// "city") that the main table also offers must not trigger a join.
func secondTable(cols []linkScore, main *schema.Table) *schema.Table {
	mainToks := map[string]bool{}
	for _, mc := range main.Columns {
		for _, t := range text.CanonTokens(mc.NL()) {
			mainToks[t] = true
		}
	}
	for _, c := range cols {
		if c.table == main || c.score <= 0.8 || c.column == nil {
			continue
		}
		distinctive := false
		for _, t := range text.CanonTokens(c.column.NL()) {
			if !mainToks[t] {
				distinctive = true
				break
			}
		}
		if distinctive {
			return c.table
		}
	}
	return nil
}

// mentionedTable finds a second table whose own name is mentioned in
// the NL query (a join target named without any of its columns, as in
// "players enrolled in the teams").
func (s *synthesizer) mentionedTable(nl string, main *schema.Table) *schema.Table {
	nlToks := text.CanonTokens(nl)
	for _, t := range s.db.Tables {
		if t == main {
			continue
		}
		if overlap(text.CanonTokens(t.NL()), nlToks) >= 0.99 {
			return t
		}
	}
	return nil
}

// numericColumn picks the best-linked numeric column for aggregates.
func (s *synthesizer) numericColumn(cols []linkScore, main, joined *schema.Table) *sqlast.ColumnRef {
	for _, c := range cols {
		if c.column != nil && c.column.Type == schema.Number &&
			(c.table == main || c.table == joined) &&
			!strings.HasSuffix(strings.ToLower(c.column.Name), "_id") {
			return s.colRef(c.table, c.column)
		}
	}
	return nil
}

// wherePredicate builds the filter from linked columns and NL values.
func (s *synthesizer) wherePredicate(nl string, cols []linkScore, proj linkScore, two bool) sqlast.Expr {
	vals := s.vlink.Extract(nl)
	pred := s.onePredicate(nl, cols, proj, vals, nil)
	if pred == nil {
		return nil
	}
	if two {
		if second := s.onePredicate(nl, cols, proj, vals, pred); second != nil {
			op := "AND"
			if strings.Contains(strings.ToLower(nl), " or ") {
				op = "OR"
			}
			return &sqlast.Binary{Op: op, L: pred, R: second}
		}
	}
	return pred
}

func (s *synthesizer) onePredicate(nl string, cols []linkScore, proj linkScore, vals []values.NLValue, used sqlast.Expr) sqlast.Expr {
	usedStr := ""
	if used != nil {
		usedStr = sqlast.ExprString(used)
	}
	// Prefer a text column whose cell values match the NL.
	for _, v := range vals {
		if v.IsNum {
			continue
		}
		for _, ref := range v.Columns {
			t, c := s.db.Column(ref.Table, ref.Column)
			if c == nil || !tableInScope(cols, t) {
				continue
			}
			p := &sqlast.Binary{Op: "=", L: s.colRef(t, c), R: &sqlast.Lit{Kind: sqlast.StringLit, Text: v.Text}}
			if sqlast.ExprString(p) != usedStr {
				return p
			}
		}
	}
	// Numeric comparison with an NL number.
	for _, v := range vals {
		if !v.IsNum {
			continue
		}
		for _, c := range cols {
			if c.column == nil || c.column.Type != schema.Number {
				continue
			}
			op := s.compareOp(nl)
			p := &sqlast.Binary{Op: op, L: s.colRef(c.table, c.column), R: &sqlast.Lit{Kind: sqlast.NumberLit, Text: v.Text}}
			if sqlast.ExprString(p) != usedStr {
				return p
			}
		}
	}
	// Fallback: equality on the second-best linked text column with a
	// quoted or capitalized NL token.
	for _, c := range cols {
		if c.column == nil || c.column == proj.column || c.column.Type != schema.Text {
			continue
		}
		valText := firstValueText(vals)
		if valText == "" {
			return nil
		}
		p := &sqlast.Binary{Op: "=", L: s.colRef(c.table, c.column), R: &sqlast.Lit{Kind: sqlast.StringLit, Text: valText}}
		if sqlast.ExprString(p) != usedStr {
			return p
		}
	}
	return nil
}

func firstValueText(vals []values.NLValue) string {
	for _, v := range vals {
		if !v.IsNum {
			return v.Text
		}
	}
	return ""
}

func tableInScope(cols []linkScore, t *schema.Table) bool {
	for _, c := range cols {
		if c.table == t {
			return true
		}
	}
	return false
}

func (s *synthesizer) compareOp(nl string) string {
	ls := strings.ToLower(nl)
	switch {
	case strings.Contains(ls, "at least"):
		return ">="
	case strings.Contains(ls, "at most"):
		return "<="
	case strings.Contains(ls, "more than"), strings.Contains(ls, "greater"),
		strings.Contains(ls, "over "), strings.Contains(ls, "above"):
		return ">"
	case strings.Contains(ls, "less than"), strings.Contains(ls, "under "),
		strings.Contains(ls, "below"), strings.Contains(ls, "fewer"):
		return "<"
	case strings.Contains(ls, "not "):
		return "!="
	default:
		return "="
	}
}

// addNested attaches an IN-subquery (through an FK) or a scalar
// comparison when the cue model predicts nesting.
func (s *synthesizer) addNested(sel *sqlast.Select, nl string, mainT *schema.Table) {
	ls := strings.ToLower(nl)
	// "above the average X" → scalar compare.
	if strings.Contains(ls, "average") || strings.Contains(ls, "mean") {
		if num := firstNumericColumn(mainT); num != nil {
			sub := &sqlast.Query{Select: &sqlast.Select{
				Items: []sqlast.SelectItem{{Expr: &sqlast.Agg{Func: sqlast.Avg, Arg: s.colRef(mainT, num)}}},
				From:  sqlast.From{Tables: []sqlast.TableRef{{Name: mainT.Name}}},
			}}
			op := ">"
			if strings.Contains(ls, "below") || strings.Contains(ls, "under") {
				op = "<"
			}
			pred := &sqlast.Binary{Op: op, L: s.colRef(mainT, num), R: &sqlast.Subquery{Q: sub}}
			sel.Where = conjoin(sel.Where, pred)
		}
		return
	}
	// Membership through an FK edge.
	for _, fk := range s.db.ForeignKeys {
		if !strings.EqualFold(fk.ToTable, mainT.Name) {
			continue
		}
		inner := s.db.Table(fk.FromTable)
		if inner == nil {
			continue
		}
		sub := &sqlast.Query{Select: &sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Table: inner.Name, Column: fk.FromColumn}}},
			From:  sqlast.From{Tables: []sqlast.TableRef{{Name: inner.Name}}},
		}}
		negate := strings.Contains(ls, "no ") || strings.Contains(ls, "without")
		pred := &sqlast.In{
			X:      &sqlast.ColumnRef{Table: mainT.Name, Column: fk.ToColumn},
			Sub:    sub,
			Negate: negate,
		}
		sel.Where = conjoin(sel.Where, pred)
		return
	}
}

func conjoin(a, b sqlast.Expr) sqlast.Expr {
	if a == nil {
		return b
	}
	return &sqlast.Binary{Op: "AND", L: a, R: b}
}

func firstNumericColumn(t *schema.Table) *schema.Column {
	for _, c := range t.Columns {
		if c.Type == schema.Number && !strings.HasSuffix(strings.ToLower(c.Name), "_id") &&
			!strings.EqualFold(c.Name, "uid") {
			return c
		}
	}
	return nil
}

func (s *synthesizer) groupColumn(cols []linkScore, proj linkScore) *sqlast.ColumnRef {
	if proj.column != nil && proj.column.Type == schema.Text {
		return s.colRef(proj.table, proj.column)
	}
	for _, c := range cols {
		if c.column != nil && c.column.Type == schema.Text {
			return s.colRef(c.table, c.column)
		}
	}
	return nil
}

func (s *synthesizer) havingThreshold(nl string) int {
	for _, t := range text.Tokenize(nl) {
		if n, err := strconv.Atoi(t); err == nil && n > 0 && n < 100 {
			return n
		}
	}
	return 1
}

// orderKey picks the ordering key: (1) a linked column other than the
// projection, (2) the projection itself when it is text and strongly
// linked (alphabetical listings order by the selected column), (3) any
// numeric column as a last resort.
func (s *synthesizer) orderKey(cols []linkScore, main, joined *schema.Table, proj linkScore, nl string) *sqlast.ColumnRef {
	inScope := func(t *schema.Table) bool { return t == main || t == joined }
	for _, c := range cols {
		if c.column == nil || !inScope(c.table) || c.column == proj.column {
			continue
		}
		if c.score < 1.0 {
			continue
		}
		return s.colRef(c.table, c.column)
	}
	if proj.column != nil && proj.column.Type == schema.Text &&
		(strings.Contains(strings.ToLower(nl), "alphabetical") || proj.score >= 2) {
		return s.colRef(proj.table, proj.column)
	}
	for _, t := range []*schema.Table{joined, main} {
		if t == nil {
			continue
		}
		if c := firstNumericColumn(t); c != nil {
			return s.colRef(t, c)
		}
	}
	return nil
}

// fkGroupKey is the column the mistranslating models group by: the FK
// column of the joined table (matching the paper's Fig. 1 examples,
// which group by T2.employee_id).
func (s *synthesizer) fkGroupKey(joined, main *schema.Table) *sqlast.ColumnRef {
	for _, fk := range s.db.ForeignKeys {
		if strings.EqualFold(fk.FromTable, joined.Name) && strings.EqualFold(fk.ToTable, main.Name) {
			return &sqlast.ColumnRef{Table: joined.Name, Column: fk.FromColumn}
		}
	}
	return &sqlast.ColumnRef{Table: joined.Name, Column: joined.Columns[0].Name}
}

// compoundRight builds the right side of a set operation: the same
// projection with the second predicate.
func (s *synthesizer) compoundRight(nl string, left *sqlast.Select) *sqlast.Query {
	right := left.Clone()
	right.GroupBy, right.Having, right.OrderBy, right.Limit = nil, nil, nil, 0
	if b, ok := right.Where.(*sqlast.Binary); ok && (b.Op == "AND" || b.Op == "OR") {
		right.Where = b.R
		if lb, ok2 := left.Where.(*sqlast.Binary); ok2 {
			left.Where = lb.L
		}
		return &sqlast.Query{Select: right}
	}
	return nil
}
