package userstudy_test

import (
	"testing"

	"repro/internal/userstudy"
)

func tasks() []userstudy.DatabaseTask {
	var out []userstudy.DatabaseTask
	for i := 0; i < 10; i++ {
		out = append(out,
			userstudy.DatabaseTask{Name: "small", Tables: 1 + i%2, JoinPaths: 0, SampleQueries: 10},
			userstudy.DatabaseTask{Name: "mid", Tables: 3 + i%3, JoinPaths: 2, SampleQueries: 25},
			userstudy.DatabaseTask{Name: "big", Tables: 6 + i%5, JoinPaths: 5, SampleQueries: 40},
		)
	}
	return out
}

func TestRunDeterministic(t *testing.T) {
	a := userstudy.Run(tasks(), userstudy.Config{Seed: 1})
	b := userstudy.Run(tasks(), userstudy.Config{Seed: 1})
	if len(a) != len(b) {
		t.Fatal("different observation counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic observations")
		}
	}
	c := userstudy.Run(tasks(), userstudy.Config{Seed: 2})
	same := true
	for i := range a {
		if a[i].Minutes != c[i].Minutes {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical times")
	}
}

func TestMonotoneBuckets(t *testing.T) {
	// The Fig. 12 shape: median annotation time grows with schema size.
	obs := userstudy.Run(tasks(), userstudy.Config{Seed: 3})
	buckets := userstudy.Buckets(obs)
	if len(buckets) != 3 {
		t.Fatalf("expected 3 buckets, got %d", len(buckets))
	}
	medians := make([]float64, 3)
	for i, b := range buckets {
		if len(b.Minutes) == 0 {
			t.Fatalf("bucket %s empty", b.Label)
		}
		medians[i] = median(b.Minutes)
	}
	if !(medians[0] < medians[1] && medians[1] < medians[2]) {
		t.Errorf("medians not monotone: %v", medians)
	}
	if medians[0] <= 0 {
		t.Errorf("non-positive annotation time: %v", medians)
	}
}

func TestParticipantsAssigned(t *testing.T) {
	obs := userstudy.Run(tasks(), userstudy.Config{Seed: 4, Participants: 10})
	seen := map[int]bool{}
	for _, o := range obs {
		if o.Participant < 0 || o.Participant >= 10 {
			t.Fatalf("participant out of range: %d", o.Participant)
		}
		seen[o.Participant] = true
	}
	if len(seen) != 10 {
		t.Errorf("databases not distributed across participants: %d", len(seen))
	}
}

func median(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
