// Package userstudy simulates the annotation-cost user study of Fig. 12:
// ten participants annotate the join semantics of benchmark databases,
// and the completion time is recorded per schema-size bucket. The real
// study cannot be re-run offline; the simulation draws per-participant
// completion times from a cost model — a base cost per database plus a
// cost per table, per join path and per sample query, with
// multiplicative noise per participant — which reproduces the figure's
// content: the monotone growth of median annotation minutes with schema
// size (~3 min for 1-2 tables, ~7 for 3-5, ~13 for 6-10) and the spread
// across participants.
package userstudy

import (
	"math"
	"math/rand"
)

// Config parameterizes the simulated study.
type Config struct {
	Participants int // default 10, matching the paper
	Seed         int64
	// Cost model (minutes).
	BaseMinutes     float64 // default 1.5
	PerTable        float64 // default 1.1
	PerJoinPath     float64 // default 0.8
	PerSampleQuery  float64 // default 0.05
	NoiseSigma      float64 // lognormal σ per participant; default 0.25
	SkillSpreadSigy float64 // per-participant skill factor σ; default 0.2
}

func (c *Config) fill() {
	if c.Participants <= 0 {
		c.Participants = 10
	}
	if c.BaseMinutes == 0 {
		c.BaseMinutes = 1.0
	}
	if c.PerTable == 0 {
		c.PerTable = 1.1
	}
	if c.PerJoinPath == 0 {
		c.PerJoinPath = 0.8
	}
	if c.PerSampleQuery == 0 {
		c.PerSampleQuery = 0.01
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.25
	}
	if c.SkillSpreadSigy == 0 {
		c.SkillSpreadSigy = 0.2
	}
}

// DatabaseTask describes one database to annotate.
type DatabaseTask struct {
	Name          string
	Tables        int
	JoinPaths     int
	SampleQueries int
}

// Observation is one recorded completion.
type Observation struct {
	Participant int
	Database    string
	Tables      int
	Minutes     float64
}

// Run simulates the study: the databases are distributed equally among
// the participants (as in the paper), each annotating their share.
func Run(tasks []DatabaseTask, cfg Config) []Observation {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	skill := make([]float64, cfg.Participants)
	for i := range skill {
		skill[i] = math.Exp(rng.NormFloat64() * cfg.SkillSpreadSigy)
	}
	var out []Observation
	for i, task := range tasks {
		p := i % cfg.Participants
		mean := cfg.BaseMinutes +
			cfg.PerTable*float64(task.Tables) +
			cfg.PerJoinPath*float64(task.JoinPaths) +
			cfg.PerSampleQuery*float64(task.SampleQueries)
		noise := math.Exp(rng.NormFloat64() * cfg.NoiseSigma)
		out = append(out, Observation{
			Participant: p,
			Database:    task.Name,
			Tables:      task.Tables,
			Minutes:     mean * skill[p] * noise,
		})
	}
	return out
}

// Bucket is a schema-size bucket of Fig. 12.
type Bucket struct {
	Label   string
	MinT    int
	MaxT    int
	Minutes []float64
}

// Buckets groups observations into the paper's three schema-size
// buckets (1-2, 3-5, 6-10 tables).
func Buckets(obs []Observation) []Bucket {
	buckets := []Bucket{
		{Label: "#1~2 Table/DB", MinT: 1, MaxT: 2},
		{Label: "#3~5 Table/DB", MinT: 3, MaxT: 5},
		{Label: "#6~10 Table/DB", MinT: 6, MaxT: 10},
	}
	for _, o := range obs {
		for i := range buckets {
			if o.Tables >= buckets[i].MinT && o.Tables <= buckets[i].MaxT {
				buckets[i].Minutes = append(buckets[i].Minutes, o.Minutes)
			}
		}
	}
	return buckets
}
