package transcache_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/transcache"
)

func TestHitMissAndStats(t *testing.T) {
	c := transcache.New[string](4)
	if _, ok := c.Get(1, "a"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put(1, "a", "va")
	got, ok := c.Get(1, "a")
	if !ok || got != "va" {
		t.Fatalf("Get = %q, %v; want va, true", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := transcache.New[int](8)
	c.Put(1, "q", 42)
	if _, ok := c.Get(2, "q"); ok {
		t.Fatal("entry from generation 1 must not serve generation 2")
	}
	// The stale entry is evicted, not resurrected for its old generation.
	if _, ok := c.Get(1, "q"); ok {
		t.Fatal("stale entry must be evicted on the mismatching lookup")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 0 {
		t.Errorf("stats after staleness eviction = %+v", st)
	}
	// A fresh Put under the new generation serves again.
	c.Put(2, "q", 43)
	if v, ok := c.Get(2, "q"); !ok || v != 43 {
		t.Fatalf("Get after re-put = %d, %v", v, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	c := transcache.New[int](3)
	c.Put(1, "a", 1)
	c.Put(1, "b", 2)
	c.Put(1, "c", 3)
	// Touch "a" so "b" is the least recently used.
	if _, ok := c.Get(1, "a"); !ok {
		t.Fatal("a must hit")
	}
	c.Put(1, "d", 4)
	if _, ok := c.Get(1, "b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(1, k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if st := c.Stats(); st.Len != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := transcache.New[int](2)
	c.Put(1, "k", 1)
	c.Put(1, "k", 2)
	if st := c.Stats(); st.Len != 1 {
		t.Fatalf("replacing put grew the cache: %+v", st)
	}
	if v, _ := c.Get(1, "k"); v != 2 {
		t.Errorf("got %d, want replaced value 2", v)
	}
}

func TestPurge(t *testing.T) {
	c := transcache.New[int](4)
	c.Put(1, "a", 1)
	c.Put(1, "b", 2)
	c.Purge()
	if st := c.Stats(); st.Len != 0 || st.Evictions != 2 {
		t.Errorf("stats after purge = %+v", st)
	}
	if _, ok := c.Get(1, "a"); ok {
		t.Error("purged entry must miss")
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *transcache.Cache[int]
	c.Put(1, "k", 1)
	if _, ok := c.Get(1, "k"); ok {
		t.Error("nil cache must never hit")
	}
	c.Purge()
	if st := c.Stats(); st != (transcache.Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
	if transcache.New[int](0) != nil {
		t.Error("capacity < 1 must construct the disabled (nil) cache")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := transcache.New[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%100)
				c.Put(uint64(i%3), key, i)
				c.Get(uint64(i%3), key)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Len > 64 {
		t.Errorf("cache exceeded capacity: %+v", st)
	}
}

// TestGenerationContinuityAcrossRestart models the warm-start path: a
// restored system adopts the checkpoint's generation (internal/core
// takes the max of the live and restored generation), so entries cached
// before a restart-shaped generation jump stay unservable and the cache
// works normally at the adopted generation — including backwards jumps,
// which must also invalidate rather than resurrect.
func TestGenerationContinuityAcrossRestart(t *testing.T) {
	c := transcache.New[string](8)
	c.Put(3, "q", "pre-restart")

	// Restore adopted a much later generation: the old entry never hits.
	const adopted = 17
	if _, ok := c.Get(adopted, "q"); ok {
		t.Fatal("pre-restart entry served at the adopted generation")
	}
	c.Put(adopted, "q", "post-restart")
	if v, ok := c.Get(adopted, "q"); !ok || v != "post-restart" {
		t.Fatalf("Get at adopted generation = %q, %v", v, ok)
	}

	// A backwards jump (older checkpoint restored after the cache saw a
	// newer generation) is equally stale — never resurrected.
	if _, ok := c.Get(adopted-1, "q"); ok {
		t.Fatal("newer entry served at an older generation")
	}
	st := c.Stats()
	if st.Len != 0 {
		t.Fatalf("stale entries linger after mismatched lookups: %+v", st)
	}
}
