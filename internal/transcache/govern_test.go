package transcache_test

import (
	"testing"

	"repro/internal/memgov"
	"repro/internal/transcache"
)

// sized values make the accounting arithmetic exact: each entry costs
// len(key) + 96 overhead + n value bytes.
func sizeOf(n int64) int64 { return n }

// TestGovernAccounting pins the byte accounting contract: every live
// entry's estimated size is reserved against the budget, and every
// eviction path — replacement, capacity, generation staleness, Purge —
// returns exactly what it reserved.
func TestGovernAccounting(t *testing.T) {
	b := memgov.New("cache", 1<<20)
	c := transcache.New[int64](4)
	c.Govern(b, sizeOf)

	const entry = 1 + 96 + 100 // key "a", overhead, value size
	c.Put(1, "a", 100)
	if st := c.Stats(); st.Bytes != entry || b.Used() != entry {
		t.Fatalf("one entry: cache bytes %d, budget used %d, want %d", st.Bytes, b.Used(), entry)
	}

	// Replacing a key releases the old reservation before the new one.
	c.Put(1, "a", 200)
	want := int64(1 + 96 + 200)
	if st := c.Stats(); st.Bytes != want || b.Used() != want {
		t.Fatalf("replaced entry: cache bytes %d, budget used %d, want %d", st.Bytes, b.Used(), want)
	}

	// A stale-generation hit evicts and refunds.
	if _, ok := c.Get(2, "a"); ok {
		t.Fatal("stale generation must miss")
	}
	if st := c.Stats(); st.Bytes != 0 || b.Used() != 0 {
		t.Fatalf("stale eviction leaked: cache bytes %d, budget used %d", st.Bytes, b.Used())
	}

	// Capacity eviction refunds the victim.
	for i := int64(0); i < 5; i++ {
		c.Put(3, string(rune('a'+i)), 10)
	}
	st := c.Stats()
	if st.Len != 4 {
		t.Fatalf("capacity 4 holds %d entries", st.Len)
	}
	if st.Bytes != b.Used() || st.Bytes != 4*(1+96+10) {
		t.Fatalf("capacity churn: cache bytes %d, budget used %d", st.Bytes, b.Used())
	}

	c.Purge()
	if st := c.Stats(); st.Bytes != 0 || b.Used() != 0 {
		t.Fatalf("purge leaked: cache bytes %d, budget used %d", st.Bytes, b.Used())
	}
}

// TestGovernBudgetPressure pins the shed-don't-fail contract: when the
// budget refuses an insert the cache evicts LRU entries until the new
// entry fits, and if even an empty cache cannot fit it the insert is
// dropped and counted — never an error, never an overrun.
func TestGovernBudgetPressure(t *testing.T) {
	// Room for exactly two 100-byte-value entries (197 each).
	b := memgov.New("cache", 420)
	c := transcache.New[int64](16)
	c.Govern(b, sizeOf)

	c.Put(1, "a", 100)
	c.Put(1, "b", 100)
	if st := c.Stats(); st.Len != 2 {
		t.Fatalf("two entries should fit: %+v", st)
	}

	// "a" is LRU; inserting "c" must shed it.
	c.Put(1, "c", 100)
	if _, ok := c.Get(1, "a"); ok {
		t.Fatal("LRU entry survived budget pressure")
	}
	if _, ok := c.Get(1, "c"); !ok {
		t.Fatal("new entry lost under budget pressure")
	}
	st := c.Stats()
	if st.Len != 2 || st.Bytes > 420 || b.Used() > 420 {
		t.Fatalf("budget overrun: %+v, used %d", st, b.Used())
	}

	// An entry larger than the whole budget is dropped, not stored;
	// survivors keep serving.
	c.Put(1, "huge", 4096)
	st = c.Stats()
	if st.Denied == 0 {
		t.Errorf("oversized insert not counted as denied: %+v", st)
	}
	if _, ok := c.Get(1, "huge"); ok {
		t.Fatal("oversized entry stored despite budget")
	}
	if b.Used() > 420 {
		t.Fatalf("budget overrun after denied insert: %d", b.Used())
	}

	// Replacing a key with an oversized value drops the key entirely
	// rather than keeping a stale value under the new generation.
	c.Put(2, "c", 4096)
	if _, ok := c.Get(2, "c"); ok {
		t.Fatal("oversized replacement stored")
	}
	if _, ok := c.Get(1, "c"); ok {
		t.Fatal("stale value survived a denied replacement")
	}
	if st := c.Stats(); st.Bytes != b.Used() {
		t.Fatalf("accounting diverged: cache %d, budget %d", st.Bytes, b.Used())
	}
}

// TestGovernReplaceUnderPressure pins the replacement corner: growing
// the LRU entry in place must shed its *neighbors* (never the entry
// being replaced), and a replacement that cannot fit even after
// shedding everything else drops the key rather than resurrecting the
// stale value.
func TestGovernReplaceUnderPressure(t *testing.T) {
	b := memgov.New("cache", 420)
	c := transcache.New[int64](16)
	c.Govern(b, sizeOf)

	c.Put(1, "a", 100)
	c.Put(1, "b", 100)
	// "a" is the LRU tail; growing it to 250 bytes forces the shed loop
	// to skip over "a" itself and evict "b".
	c.Put(1, "a", 250)
	if got, ok := c.Get(1, "a"); !ok || got != 250 {
		t.Fatalf("grown entry = %d, %v; want 250, true", got, ok)
	}
	if _, ok := c.Get(1, "b"); ok {
		t.Fatal("neighbor survived a shed that required its bytes")
	}
	if used := b.Used(); used != 1+96+250 {
		t.Fatalf("budget used %d after in-place growth", used)
	}

	// Growing past the whole budget drops the key outright.
	c.Put(1, "a", 4096)
	if _, ok := c.Get(1, "a"); ok {
		t.Fatal("stale value served after an impossible replacement")
	}
	st := c.Stats()
	if st.Denied == 0 || st.Len != 0 || b.Used() != 0 {
		t.Fatalf("denied replacement leaked: %+v, used %d", st, b.Used())
	}
}

// TestGovernNilCache pins that governance on the nil (disabled) cache
// is inert, like every other nil-cache operation.
func TestGovernNilCache(t *testing.T) {
	var c *transcache.Cache[int64]
	c.Govern(memgov.New("cache", 100), sizeOf)
	c.Put(1, "a", 10)
	if st := c.Stats(); st != (transcache.Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
