// Package transcache is a generation-keyed LRU cache for the
// translation hot path. Every entry is stamped with the pool generation
// (internal/core bumps it on Prepare and Swap) that produced it, and a
// lookup only hits when the caller's current generation matches — so a
// hot reload invalidates the whole cache implicitly, with no
// flush-coordination between the swap and in-flight readers, and a
// stale entry can never be served across a snapshot swap.
//
// A nil *Cache is valid and never hits: Get misses, Put drops, Stats is
// zero. That lets callers disable caching by simply not constructing
// one.
package transcache

import (
	"sync"

	"repro/internal/memgov"
)

// Stats is a point-in-time counter snapshot of a cache.
type Stats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found nothing (including entries
	// rejected because their generation was stale).
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by capacity pressure, budget
	// pressure or generation staleness.
	Evictions uint64 `json:"evictions"`
	// Len is the current number of live entries.
	Len int `json:"size"`
	// Capacity is the maximum number of entries.
	Capacity int `json:"capacity"`
	// Bytes is the accounted size of the live entries (0 ungoverned).
	Bytes int64 `json:"bytes"`
	// Denied counts inserts dropped because the budget refused them
	// even after the cache evicted everything else.
	Denied uint64 `json:"denied"`
}

// entry is one cached value with its intrusive LRU links.
type entry[V any] struct {
	key        string
	gen        uint64
	val        V
	bytes      int64
	prev, next *entry[V]
}

// Cache is a fixed-capacity LRU keyed by (generation, string). It is
// safe for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*entry[V]
	// head is most-recently used, tail least-recently used.
	head, tail *entry[V]

	// budget/sizeOf, when installed by Govern, account each entry's
	// estimated bytes; bytes is the cache's live total.
	budget *memgov.Budget
	sizeOf func(V) int64
	bytes  int64

	hits, misses, evictions, denied uint64
}

// New builds a cache bounded to capacity entries. A capacity below 1
// returns nil — the valid never-hitting cache — so callers can pass a
// "disabled" size straight through.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		return nil
	}
	return &Cache[V]{capacity: capacity, items: make(map[string]*entry[V], capacity)}
}

// Get returns the value cached under key for the given generation. An
// entry written by an older (or newer) generation is treated as a miss
// and evicted on the spot.
func (c *Cache[V]) Get(gen uint64, key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	if e.gen != gen {
		c.remove(e)
		c.evictions++
		c.misses++
		return zero, false
	}
	c.moveToFront(e)
	c.hits++
	return e.val, true
}

// Govern installs byte accounting against budget: each entry's
// estimated size (sizeOf plus key overhead) is reserved on insert and
// released on eviction. When the budget refuses an insert, the cache
// sheds least-recently-used entries until the reservation fits; if it
// empties first the insert is dropped and counted in Stats.Denied — a
// cache entry is never worth failing a request over. Install before
// the first Put; existing entries are not retro-accounted.
func (c *Cache[V]) Govern(budget *memgov.Budget, sizeOf func(V) int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget, c.sizeOf = budget, sizeOf
}

// entryBytes estimates one entry's accounted size; 0 when ungoverned,
// so the budget path costs nothing until Govern installs it.
func (c *Cache[V]) entryBytes(key string, val V) int64 {
	if c.sizeOf == nil {
		return 0
	}
	return int64(len(key)) + 96 + c.sizeOf(val)
}

// reserveEvicting reserves sz against the budget, shedding LRU entries
// (never keep) until it fits or nothing is left to shed. Callers hold
// mu.
func (c *Cache[V]) reserveEvicting(sz int64, keep *entry[V]) bool {
	for {
		if c.budget.Reserve(sz) == nil {
			c.bytes += sz
			return true
		}
		victim := c.tail
		if victim != nil && victim == keep {
			victim = victim.prev
		}
		if victim == nil {
			return false
		}
		c.remove(victim)
		c.evictions++
	}
}

// Put stores the value under key for the given generation, replacing
// any existing entry for the key and evicting least-recently used
// entries under capacity or budget pressure.
func (c *Cache[V]) Put(gen uint64, key string, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sz := c.entryBytes(key, val)
	if e, ok := c.items[key]; ok {
		c.budget.Release(e.bytes)
		c.bytes -= e.bytes
		e.bytes = 0
		if !c.reserveEvicting(sz, e) {
			c.remove(e)
			c.evictions++
			c.denied++
			return
		}
		e.gen, e.val, e.bytes = gen, val, sz
		c.moveToFront(e)
		return
	}
	if !c.reserveEvicting(sz, nil) {
		c.denied++
		return
	}
	e := &entry[V]{key: key, gen: gen, val: val, bytes: sz}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.capacity {
		c.remove(c.tail)
		c.evictions++
	}
}

// Purge drops every entry, keeping the counters.
func (c *Cache[V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions += uint64(len(c.items))
	c.budget.Release(c.bytes)
	c.bytes = 0
	c.items = make(map[string]*entry[V], c.capacity)
	c.head, c.tail = nil, nil
}

// Stats returns a snapshot of the cache counters. A nil cache reports
// the zero Stats.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       len(c.items),
		Capacity:  c.capacity,
		Bytes:     c.bytes,
		Denied:    c.denied,
	}
}

// pushFront links e as the most-recently-used entry. Callers hold mu.
func (c *Cache[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// remove unlinks e, drops it from the map and returns its accounted
// bytes to the budget. Callers hold mu.
func (c *Cache[V]) remove(e *entry[V]) {
	c.budget.Release(e.bytes)
	c.bytes -= e.bytes
	e.bytes = 0
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(c.items, e.key)
}

// moveToFront marks e most-recently used. Callers hold mu.
func (c *Cache[V]) moveToFront(e *entry[V]) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
}
