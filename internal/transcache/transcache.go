// Package transcache is a generation-keyed LRU cache for the
// translation hot path. Every entry is stamped with the pool generation
// (internal/core bumps it on Prepare and Swap) that produced it, and a
// lookup only hits when the caller's current generation matches — so a
// hot reload invalidates the whole cache implicitly, with no
// flush-coordination between the swap and in-flight readers, and a
// stale entry can never be served across a snapshot swap.
//
// A nil *Cache is valid and never hits: Get misses, Put drops, Stats is
// zero. That lets callers disable caching by simply not constructing
// one.
package transcache

import "sync"

// Stats is a point-in-time counter snapshot of a cache.
type Stats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found nothing (including entries
	// rejected because their generation was stale).
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by capacity pressure or
	// generation staleness.
	Evictions uint64 `json:"evictions"`
	// Len is the current number of live entries.
	Len int `json:"size"`
	// Capacity is the maximum number of entries.
	Capacity int `json:"capacity"`
}

// entry is one cached value with its intrusive LRU links.
type entry[V any] struct {
	key        string
	gen        uint64
	val        V
	prev, next *entry[V]
}

// Cache is a fixed-capacity LRU keyed by (generation, string). It is
// safe for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*entry[V]
	// head is most-recently used, tail least-recently used.
	head, tail *entry[V]

	hits, misses, evictions uint64
}

// New builds a cache bounded to capacity entries. A capacity below 1
// returns nil — the valid never-hitting cache — so callers can pass a
// "disabled" size straight through.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		return nil
	}
	return &Cache[V]{capacity: capacity, items: make(map[string]*entry[V], capacity)}
}

// Get returns the value cached under key for the given generation. An
// entry written by an older (or newer) generation is treated as a miss
// and evicted on the spot.
func (c *Cache[V]) Get(gen uint64, key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	if e.gen != gen {
		c.remove(e)
		c.evictions++
		c.misses++
		return zero, false
	}
	c.moveToFront(e)
	c.hits++
	return e.val, true
}

// Put stores the value under key for the given generation, replacing
// any existing entry for the key and evicting the least-recently used
// entry when the cache is full.
func (c *Cache[V]) Put(gen uint64, key string, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.gen, e.val = gen, val
		c.moveToFront(e)
		return
	}
	e := &entry[V]{key: key, gen: gen, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.capacity {
		c.remove(c.tail)
		c.evictions++
	}
}

// Purge drops every entry, keeping the counters.
func (c *Cache[V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions += uint64(len(c.items))
	c.items = make(map[string]*entry[V], c.capacity)
	c.head, c.tail = nil, nil
}

// Stats returns a snapshot of the cache counters. A nil cache reports
// the zero Stats.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       len(c.items),
		Capacity:  c.capacity,
	}
}

// pushFront links e as the most-recently-used entry. Callers hold mu.
func (c *Cache[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// remove unlinks e and drops it from the map. Callers hold mu.
func (c *Cache[V]) remove(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(c.items, e.key)
}

// moveToFront marks e most-recently used. Callers hold mu.
func (c *Cache[V]) moveToFront(e *entry[V]) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
}
