package vector_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func TestDotNormCosine(t *testing.T) {
	a := vector.Vec{1, 0, 0}
	b := vector.Vec{0, 1, 0}
	if vector.Dot(a, b) != 0 {
		t.Error("orthogonal dot should be 0")
	}
	if vector.Cosine(a, a) != 1 {
		t.Error("self cosine should be 1")
	}
	if vector.Cosine(a, vector.Vec{0, 0, 0}) != 0 {
		t.Error("zero-vector cosine should be 0")
	}
	if n := vector.Norm(vector.Vec{3, 4, 0}); n != 5 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestNormalizeProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			v := make(vector.Vec, 8)
			for i := range v {
				v[i] = rng.Float32()*4 - 2
			}
			vals[0] = reflect.ValueOf(v)
		},
	}
	if err := quick.Check(func(v vector.Vec) bool {
		n0 := vector.Norm(v)
		vector.Normalize(v)
		n := vector.Norm(v)
		if n0 == 0 {
			return n == 0
		}
		return math.Abs(float64(n)-1) < 1e-4
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestAxpyScaleClone(t *testing.T) {
	a := vector.Vec{1, 2}
	b := vector.Clone(a)
	vector.Axpy(a, 2, vector.Vec{1, 1})
	if a[0] != 3 || a[1] != 4 {
		t.Errorf("Axpy wrong: %v", a)
	}
	if b[0] != 1 || b[1] != 2 {
		t.Error("Clone shares storage")
	}
	vector.Scale(a, 0.5)
	if a[0] != 1.5 || a[1] != 2 {
		t.Errorf("Scale wrong: %v", a)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var vecs []vector.Vec
	// Two well-separated blobs.
	for i := 0; i < 50; i++ {
		vecs = append(vecs, vector.Vec{float32(rng.NormFloat64()*0.1 + 5), 0})
	}
	for i := 0; i < 50; i++ {
		vecs = append(vecs, vector.Vec{float32(rng.NormFloat64()*0.1 - 5), 0})
	}
	_, assign := vector.KMeans(vecs, 2, 20, 7)
	first := assign[0]
	for i := 1; i < 50; i++ {
		if assign[i] != first {
			t.Fatal("first blob split across clusters")
		}
	}
	second := assign[50]
	if second == first {
		t.Fatal("blobs merged")
	}
	for i := 51; i < 100; i++ {
		if assign[i] != second {
			t.Fatal("second blob split across clusters")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if c, a := vector.KMeans(nil, 3, 5, 1); c != nil || a != nil {
		t.Error("empty input should return nil")
	}
	vecs := []vector.Vec{{1, 0}, {0, 1}}
	c, a := vector.KMeans(vecs, 5, 5, 1)
	if len(c) != 2 || len(a) != 2 {
		t.Errorf("k > n should clamp: %d centroids", len(c))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var vecs []vector.Vec
	for i := 0; i < 30; i++ {
		vecs = append(vecs, vector.Vec{rng.Float32(), rng.Float32()})
	}
	_, a1 := vector.KMeans(vecs, 4, 10, 9)
	_, a2 := vector.KMeans(vecs, 4, 10, 9)
	if !reflect.DeepEqual(a1, a2) {
		t.Error("KMeans not deterministic for fixed seed")
	}
}
