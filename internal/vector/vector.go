// Package vector provides dense float32 vector operations and a small
// k-means implementation, used by the retrieval encoder and the IVF
// vector index.
package vector

import (
	"math"
	"math/rand"
)

// Vec is a dense vector.
type Vec []float32

// New returns a zero vector of the given dimension.
func New(dim int) Vec { return make(Vec, dim) }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b Vec) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a Vec) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Normalize scales a to unit norm in place and returns it. The zero
// vector stays zero.
func Normalize(a Vec) Vec {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return a
}

// Cosine returns the cosine similarity; zero when either vector is zero.
func Cosine(a, b Vec) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Axpy computes a += alpha*x in place.
func Axpy(a Vec, alpha float32, x Vec) {
	for i := range a {
		a[i] += alpha * x[i]
	}
}

// Scale multiplies a by alpha in place.
func Scale(a Vec, alpha float32) {
	for i := range a {
		a[i] *= alpha
	}
}

// Clone returns a copy of a.
func Clone(a Vec) Vec {
	out := make(Vec, len(a))
	copy(out, a)
	return out
}

// KMeans clusters the vectors into k centroids with Lloyd's algorithm.
// It returns the centroids and the assignment of each vector. When there
// are fewer vectors than k, the number of centroids is reduced.
func KMeans(vecs []Vec, k, iters int, seed int64) ([]Vec, []int) {
	if len(vecs) == 0 || k <= 0 {
		return nil, nil
	}
	if k > len(vecs) {
		k = len(vecs)
	}
	dim := len(vecs[0])
	rng := rand.New(rand.NewSource(seed))

	// Initialize with distinct random points.
	perm := rng.Perm(len(vecs))
	centroids := make([]Vec, k)
	for i := 0; i < k; i++ {
		centroids[i] = Clone(vecs[perm[i]])
	}
	assign := make([]int, len(vecs))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, float32(math.MaxFloat32)
			for c, cent := range centroids {
				d := sqDist(v, cent)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([]Vec, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = New(dim)
		}
		for i, v := range vecs {
			Axpy(sums[assign[i]], 1, v)
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random point.
				centroids[c] = Clone(vecs[rng.Intn(len(vecs))])
				continue
			}
			Scale(sums[c], 1/float32(counts[c]))
			centroids[c] = sums[c]
		}
	}
	return centroids, assign
}

func sqDist(a, b Vec) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
