package qualgate

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBaseline() *Baseline {
	return &Baseline{
		Version: BaselineVersion,
		Seed:    42,
		Databases: map[string]DBBaseline{
			"employee": {
				Pool:       34,
				LTR:        Metrics{Questions: 9, Top1: 9, TopK: 9, K: 5, P50ms: 10, P95ms: 20},
				ExecGuided: Metrics{Questions: 9, Top1: 9, TopK: 9, K: 5, P50ms: 12, P95ms: 24},
			},
			"flights": {
				Pool:       19,
				LTR:        Metrics{Questions: 7, Top1: 6, TopK: 7, K: 5, P50ms: 8, P95ms: 16},
				ExecGuided: Metrics{Questions: 7, Top1: 6, TopK: 6, K: 5, P50ms: 9, P95ms: 18},
			},
		},
	}
}

// clone returns a deep copy so tests can mutate "current" freely.
func clone(b *Baseline) *Baseline {
	out := *b
	out.Databases = make(map[string]DBBaseline, len(b.Databases))
	for k, v := range b.Databases {
		out.Databases[k] = v
	}
	return &out
}

func violationSet(t *testing.T, vs []Violation) map[string]bool {
	t.Helper()
	set := make(map[string]bool, len(vs))
	for _, v := range vs {
		set[v.Database+"/"+v.Metric] = true
	}
	return set
}

func TestCompareCleanPass(t *testing.T) {
	base := sampleBaseline()
	if vs := Compare(base, clone(base), DefaultThresholds()); len(vs) != 0 {
		t.Fatalf("identical baselines must pass, got %v", vs)
	}
}

// TestCompareDetectsRankerRegression is the gate's reason to exist: a
// deliberate ranker regression (what an inverted scoring function would
// produce — gold falls out of the top slots) must fail the comparison.
func TestCompareDetectsRankerRegression(t *testing.T) {
	base := sampleBaseline()
	cur := clone(base)
	db := cur.Databases["employee"]
	db.LTR.Top1 = 2
	db.LTR.TopK = 5
	db.ExecGuided.Top1 = 2
	db.ExecGuided.TopK = 5
	cur.Databases["employee"] = db

	vs := Compare(base, cur, DefaultThresholds())
	set := violationSet(t, vs)
	for _, want := range []string{
		"employee/ltr.top1", "employee/ltr.topk",
		"employee/exec_guided.top1", "employee/exec_guided.topk",
	} {
		if !set[want] {
			t.Errorf("missing violation %s in %v", want, vs)
		}
	}
	if set["flights/ltr.top1"] {
		t.Errorf("untouched suite must not be flagged: %v", vs)
	}
}

func TestCompareAccuracyTolerance(t *testing.T) {
	base := sampleBaseline()
	cur := clone(base)
	db := cur.Databases["employee"]
	db.LTR.Top1--
	cur.Databases["employee"] = db

	if vs := Compare(base, cur, Thresholds{AccuracyTolerance: 1, LatencyFactor: 3, LatencyGraceMS: 250}); len(vs) != 0 {
		t.Fatalf("one-question drop within tolerance 1 must pass, got %v", vs)
	}
	if vs := Compare(base, cur, DefaultThresholds()); len(vs) != 1 || vs[0].Metric != "ltr.top1" {
		t.Fatalf("default zero tolerance must flag the drop, got %v", vs)
	}
}

func TestCompareLatencyLeniency(t *testing.T) {
	base := sampleBaseline()

	// Within the absolute grace: 10ms baseline, 200ms current — over 3×
	// but under the 250ms grace floor, so slow CI hardware passes.
	cur := clone(base)
	db := cur.Databases["employee"]
	db.LTR.P50ms = 200
	cur.Databases["employee"] = db
	if vs := Compare(base, cur, DefaultThresholds()); len(vs) != 0 {
		t.Fatalf("p50 under the grace floor must pass, got %v", vs)
	}

	// Beyond both factor and grace: fails.
	db.LTR.P50ms = 300
	cur.Databases["employee"] = db
	vs := Compare(base, cur, DefaultThresholds())
	if len(vs) != 1 || vs[0].Metric != "ltr.p50" {
		t.Fatalf("p50 beyond max(3x, 250ms) must fail, got %v", vs)
	}

	// Large baseline: the multiplicative bound takes over above the grace.
	big := clone(base)
	db = big.Databases["employee"]
	db.LTR.P50ms = 200
	big.Databases["employee"] = db
	cur = clone(big)
	db.LTR.P50ms = 599
	cur.Databases["employee"] = db
	if vs := Compare(big, cur, DefaultThresholds()); len(vs) != 0 {
		t.Fatalf("p50 within 3x of a 200ms baseline must pass, got %v", vs)
	}
	db.LTR.P50ms = 601
	cur.Databases["employee"] = db
	if vs := Compare(big, cur, DefaultThresholds()); len(vs) != 1 {
		t.Fatalf("p50 beyond 3x of a 200ms baseline must fail, got %v", vs)
	}
}

func TestComparePoolShrinkAndMissingSuite(t *testing.T) {
	base := sampleBaseline()
	cur := clone(base)
	db := cur.Databases["employee"]
	db.Pool = 20
	cur.Databases["employee"] = db
	delete(cur.Databases, "flights")

	set := violationSet(t, Compare(base, cur, DefaultThresholds()))
	if !set["employee/pool"] {
		t.Error("pool shrink not flagged")
	}
	if !set["flights/suite"] {
		t.Error("missing suite not flagged")
	}
}

func TestCompareQuestionsChanged(t *testing.T) {
	base := sampleBaseline()
	cur := clone(base)
	db := cur.Databases["employee"]
	db.LTR.Questions = 12
	db.LTR.Top1 = 3 // would look like a drop; must not be double-reported
	cur.Databases["employee"] = db

	vs := Compare(base, cur, DefaultThresholds())
	if len(vs) != 1 || vs[0].Metric != "ltr.questions" {
		t.Fatalf("size change must yield exactly one violation, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "-write") {
		t.Errorf("size-change violation should point at -write: %q", vs[0].Detail)
	}
}

func TestCompareExecGuidedInvariant(t *testing.T) {
	base := sampleBaseline()
	cur := clone(base)
	db := cur.Databases["flights"]
	db.ExecGuided.Top1 = 5 // below current LTR's 6
	cur.Databases["flights"] = db

	set := violationSet(t, Compare(base, cur, DefaultThresholds()))
	if !set["flights/invariant"] {
		t.Error("exec-guided top-1 below LTR-only must violate the invariant")
	}
	// exec_guided.top1 also dropped vs baseline — both findings expected.
	if !set["flights/exec_guided.top1"] {
		t.Error("accuracy drop must also be flagged")
	}
}

func TestCompareNewSuiteInCurrentIsAllowed(t *testing.T) {
	base := sampleBaseline()
	cur := clone(base)
	cur.Databases["concerts"] = DBBaseline{Pool: 10}
	if vs := Compare(base, cur, DefaultThresholds()); len(vs) != 0 {
		t.Fatalf("a new suite not yet in the baseline must pass, got %v", vs)
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	want := sampleBaseline()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Compare(want, got, DefaultThresholds()); len(vs) != 0 {
		t.Fatalf("round-tripped baseline diverged: %v", vs)
	}
	if got.Seed != want.Seed || got.Version != want.Version {
		t.Fatalf("header diverged: %+v vs %+v", got, want)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(blob), "\n") {
		t.Error("baseline file must end with a newline for clean diffs")
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := sampleBaseline()
	b.Version = BaselineVersion + 1
	if err := Write(path, b); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("want schema-version error, got %v", err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Database: "employee", Metric: "ltr.top1", Detail: "dropped"}
	if got := v.String(); got != "employee: ltr.top1: dropped" {
		t.Fatalf("unexpected format %q", got)
	}
}

// TestCommittedBaselineParses guards the committed artifact itself: the
// repo-root BASELINE_quality.json must load under the current schema and
// satisfy the exec-guided invariant on its own numbers.
func TestCommittedBaselineParses(t *testing.T) {
	b, err := Load(filepath.Join("..", "..", "BASELINE_quality.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Databases) == 0 {
		t.Fatal("committed baseline has no suites")
	}
	for name, db := range b.Databases {
		if db.ExecGuided.Top1 < db.LTR.Top1 {
			t.Errorf("%s: committed exec-guided top-1 %d below LTR %d", name, db.ExecGuided.Top1, db.LTR.Top1)
		}
		if db.LTR.Questions == 0 || db.Pool == 0 {
			t.Errorf("%s: committed baseline looks empty: %+v", name, db)
		}
	}
}

// TestMeasureSuiteEmployee is the end-to-end check of the measurement
// harness itself: the employee suite trains from seed and the measured
// numbers satisfy the committed baseline's shape — full question count,
// non-degenerate accuracy, and the exec-guided top-1 invariant.
func TestMeasureSuiteEmployee(t *testing.T) {
	var employee *Suite
	for _, s := range Suites() {
		if s.Name == "employee" {
			s := s
			employee = &s
		}
	}
	if employee == nil {
		t.Fatal("employee suite missing from Suites()")
	}
	db, err := MeasureSuite(context.Background(), *employee)
	if err != nil {
		t.Fatal(err)
	}
	if db.Pool == 0 {
		t.Fatal("measured pool is empty")
	}
	for name, m := range map[string]Metrics{"ltr": db.LTR, "exec_guided": db.ExecGuided} {
		if m.Questions != len(employee.Questions) {
			t.Errorf("%s: measured %d questions, suite has %d", name, m.Questions, len(employee.Questions))
		}
		if m.Top1 == 0 || m.TopK < m.Top1 || m.K != 5 {
			t.Errorf("%s: degenerate accuracy %+v", name, m)
		}
		if m.P50ms <= 0 || m.P95ms < m.P50ms {
			t.Errorf("%s: implausible latency percentiles %+v", name, m)
		}
	}
	if db.ExecGuided.Top1 < db.LTR.Top1 {
		t.Errorf("exec-guided top-1 %d below LTR %d", db.ExecGuided.Top1, db.LTR.Top1)
	}
}
