package qualgate

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ltr"
	"repro/internal/norm"
	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Suite is one committed benchmark: a schema fixture, its sample
// queries (the generalization input) and the NL questions whose gold
// query is the aligned sample.
type Suite struct {
	Name      string
	DB        *schema.Database
	Samples   []string
	Questions []string
	// JoinAnnotations turns on GAR-J verbalization; the flights suite
	// needs it to keep the two airport join directions apart.
	JoinAnnotations bool
}

// Seed is the deterministic training seed every measurement runs
// under. Committed into the baseline so the numbers are reproducible.
const Seed = 42

// topK is the rank depth of the TopK metric.
const topK = 5

// measureIters is how many passes over the question set feed the
// latency percentiles. Accuracy is identical across passes (the
// pipeline is deterministic), so only latency benefits from more.
const measureIters = 3

// Suites returns the committed benchmark suites: the paper's employee
// running example and the Fig. 7 flights scenario with join
// annotations.
func Suites() []Suite {
	return []Suite{
		{
			Name: "employee",
			DB:   schematest.Employee(),
			Samples: []string{
				"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
				"SELECT name FROM employee WHERE age > 30",
				"SELECT age FROM employee WHERE city = 'Austin'",
				"SELECT city, COUNT(*) FROM employee GROUP BY city",
				"SELECT AVG(bonus) FROM evaluation",
				"SELECT COUNT(*) FROM employee",
				"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
				"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
				"SELECT city FROM employee",
			},
			Questions: []string{
				"find the name of the employee who got the highest one time bonus",
				"which employees are older than 30",
				"what is the age of employees living in Austin",
				"how many employees live in each city",
				"what is the average bonus",
				"how many employees are there",
				"which shop has the most products",
				"who is the oldest employee",
				"list the cities employees live in",
			},
		},
		{
			Name: "flights",
			DB:   schematest.Flights(),
			Samples: []string{
				"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
				"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
				"SELECT COUNT(*) FROM flights",
				"SELECT city FROM airports",
				"SELECT airportName FROM airports WHERE city = 'Austin'",
				"SELECT airline FROM airlines WHERE country = 'USA'",
				"SELECT COUNT(*) FROM airports",
			},
			Questions: []string{
				"which city has the most arriving flights",
				"which city has the most departing flights",
				"how many flights are there",
				"list all airport cities",
				"what are the names of airports in Austin",
				"which airlines are from the USA",
				"how many airports are there",
			},
			JoinAnnotations: true,
		},
	}
}

// measureOptions are the per-suite system options: small but fully
// trained, mirroring the repository's end-to-end test configuration so
// the gate's cost stays in CI range. Caching is off — every measured
// pass pays the complete pipeline.
func measureOptions(s Suite) core.Options {
	return core.Options{
		GeneralizeSize:  300,
		RetrievalK:      10,
		Seed:            Seed,
		EncoderEpochs:   12,
		RerankEpochs:    40,
		NoCache:         true,
		JoinAnnotations: s.JoinAnnotations,
	}
}

// MeasureSuite prepares and trains one suite once, then measures the
// benchmark twice from the same models: LTR-only and with
// execution-guided reranking enabled.
func MeasureSuite(ctx context.Context, s Suite) (DBBaseline, error) {
	samples := make([]*sqlast.Query, len(s.Samples))
	examples := make([]ltr.Example, len(s.Samples))
	for i, raw := range s.Samples {
		q, err := sqlparse.Parse(raw)
		if err != nil {
			return DBBaseline{}, fmt.Errorf("qualgate: %s sample %d: %w", s.Name, i, err)
		}
		samples[i] = q
		examples[i] = ltr.Example{NL: s.Questions[i], Gold: q}
	}

	opts := measureOptions(s)
	sys := core.New(s.DB, opts)
	sys.Prepare(samples)
	models, err := core.TrainModels([]core.TrainingSet{{Sys: sys, Examples: examples}}, opts)
	if err != nil {
		return DBBaseline{}, fmt.Errorf("qualgate: %s: training: %w", s.Name, err)
	}
	if err := sys.UseModels(models); err != nil {
		return DBBaseline{}, fmt.Errorf("qualgate: %s: %w", s.Name, err)
	}

	// The exec-guided system shares the trained models; Prepare is
	// deterministic under the same options, so both systems serve the
	// identical pool and the two measurements differ only in stage 4.
	eopts := opts
	eopts.ExecGuide = true
	esys := core.New(s.DB, eopts)
	esys.Prepare(samples)
	if err := esys.UseModels(models); err != nil {
		return DBBaseline{}, fmt.Errorf("qualgate: %s (exec-guided): %w", s.Name, err)
	}

	out := DBBaseline{Pool: sys.PoolSize()}
	if out.LTR, err = measureSystem(ctx, sys, s, samples); err != nil {
		return DBBaseline{}, err
	}
	if out.ExecGuided, err = measureSystem(ctx, esys, s, samples); err != nil {
		return DBBaseline{}, err
	}
	return out, nil
}

// measureSystem runs every question measureIters times, reporting
// accuracy from the first pass (the pipeline is deterministic) and
// latency percentiles over all passes.
func measureSystem(ctx context.Context, sys *core.System, s Suite, golds []*sqlast.Query) (Metrics, error) {
	m := Metrics{Questions: len(s.Questions), K: topK}
	lat := make([]float64, 0, measureIters*len(s.Questions))
	for it := 0; it < measureIters; it++ {
		for i, nl := range s.Questions {
			t0 := time.Now()
			tr, err := sys.TranslateContext(ctx, nl)
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
			if err != nil {
				return Metrics{}, fmt.Errorf("qualgate: %s: translating %q: %w", s.Name, nl, err)
			}
			if it > 0 {
				continue
			}
			gold := sys.BindGold(golds[i])
			if tr.Top != nil && norm.ExactMatch(tr.Top.SQL, gold) {
				m.Top1++
			}
			for r := 0; r < len(tr.Ranked) && r < topK; r++ {
				if norm.ExactMatch(tr.Ranked[r].SQL, gold) {
					m.TopK++
					break
				}
			}
		}
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	m.P50ms = pct(0.50)
	m.P95ms = pct(0.95)
	return m, nil
}

// MeasureAll measures every committed suite into a complete baseline.
func MeasureAll(ctx context.Context) (*Baseline, error) {
	b := &Baseline{Version: BaselineVersion, Seed: Seed, Databases: map[string]DBBaseline{}}
	for _, s := range Suites() {
		db, err := MeasureSuite(ctx, s)
		if err != nil {
			return nil, err
		}
		b.Databases[s.Name] = db
	}
	return b, nil
}
