// Package qualgate is the translation-quality ratchet: it measures
// top-1/top-k accuracy and translate latency of the committed benchmark
// suites, persists them as a committed baseline (BASELINE_quality.json),
// and fails the build when a change regresses accuracy or inflates
// latency beyond a leniency threshold.
//
// The design mirrors cmd/covergate's coverage floors: the baseline is a
// small committed JSON file, `garbench -baseline` checks the current
// tree against it, and `garbench -baseline -write` ratchets it after a
// deliberate improvement. Accuracy is compared exactly — training is
// seeded and deterministic, so any accuracy delta is a real behavior
// change, not noise. Latency is compared leniently (a multiplicative
// factor plus an absolute grace) because CI machines vary.
//
// Each suite is measured twice from one trained model set: once with
// the plain LTR pipeline and once with execution-guided reranking on,
// so the gate also enforces the invariant that execution guidance never
// costs top-1 accuracy on the committed benchmark.
package qualgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Metrics is one measured pipeline configuration over one suite.
type Metrics struct {
	// Questions is the benchmark size; Top1 and TopK count questions
	// whose gold query matched the first candidate / any of the first K.
	Questions int `json:"questions"`
	Top1      int `json:"top1"`
	TopK      int `json:"topk"`
	K         int `json:"k"`
	// P50ms and P95ms are translate-latency percentiles over the
	// measured passes (cache disabled, so every pass pays full cost).
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
}

// DBBaseline is the committed quality record of one benchmark suite.
type DBBaseline struct {
	// Pool is the generalized candidate-pool size, recorded so a pool
	// regression (rule loss) is visible in the baseline diff.
	Pool int `json:"pool"`
	// LTR is the pipeline as shipped (retrieval + re-rank + values);
	// ExecGuided adds the execution-guided fourth stage.
	LTR        Metrics `json:"ltr"`
	ExecGuided Metrics `json:"exec_guided"`
}

// Baseline is the BASELINE_quality.json schema.
type Baseline struct {
	// Version guards the schema; Seed is the training seed every
	// measurement runs under, committed so the numbers are reproducible.
	Version   int                   `json:"version"`
	Seed      int64                 `json:"seed"`
	Databases map[string]DBBaseline `json:"databases"`
}

// BaselineVersion is the current schema version.
const BaselineVersion = 1

// Thresholds controls how leniently Compare treats each metric.
type Thresholds struct {
	// AccuracyTolerance is how many matched questions a configuration
	// may lose before failing. Zero: training is deterministic, any
	// drop is a real regression.
	AccuracyTolerance int
	// LatencyFactor and LatencyGraceMS bound p50 latency: a suite fails
	// only above max(baseline.P50ms × LatencyFactor, LatencyGraceMS),
	// so slow CI hardware does not flake the gate.
	LatencyFactor  float64
	LatencyGraceMS float64
}

// DefaultThresholds are the gate's committed settings: exact accuracy,
// 3× / 250ms latency leniency.
func DefaultThresholds() Thresholds {
	return Thresholds{AccuracyTolerance: 0, LatencyFactor: 3.0, LatencyGraceMS: 250}
}

// Violation is one failed comparison, formatted for gate output.
type Violation struct {
	Database string `json:"database"`
	Metric   string `json:"metric"`
	Detail   string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Database, v.Metric, v.Detail)
}

// Load reads a committed baseline file.
func Load(path string) (*Baseline, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(blob, &b); err != nil {
		return nil, fmt.Errorf("qualgate: parse %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("qualgate: %s has schema version %d, this build expects %d (regenerate with -write)",
			path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// Write persists a baseline with stable formatting for clean diffs.
func Write(path string, b *Baseline) error {
	blob, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Compare checks a freshly measured baseline against the committed one
// and returns every violation: accuracy drops beyond the tolerance,
// p50 latency beyond the leniency bound, a shrunken candidate pool, a
// suite that disappeared, and the exec-guided ≥ LTR top-1 invariant on
// the current numbers. Violations are sorted for stable output.
func Compare(base, cur *Baseline, t Thresholds) []Violation {
	var out []Violation
	add := func(db, metric, format string, args ...any) {
		out = append(out, Violation{Database: db, Metric: metric, Detail: fmt.Sprintf(format, args...)})
	}

	names := make([]string, 0, len(base.Databases))
	for name := range base.Databases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Databases[name]
		c, ok := cur.Databases[name]
		if !ok {
			add(name, "suite", "benchmark suite no longer measured (baseline expects it)")
			continue
		}
		if c.Pool < b.Pool {
			add(name, "pool", "candidate pool shrank from %d to %d", b.Pool, c.Pool)
		}
		compareMetrics(name, "ltr", b.LTR, c.LTR, t, add)
		compareMetrics(name, "exec_guided", b.ExecGuided, c.ExecGuided, t, add)
		// The tentpole invariant, checked on current numbers so it holds
		// even when the committed baseline predates a pipeline change:
		// executing candidates must never cost top-1 accuracy.
		if c.ExecGuided.Top1 < c.LTR.Top1 {
			add(name, "invariant", "exec-guided top-1 %d/%d fell below LTR-only %d/%d",
				c.ExecGuided.Top1, c.ExecGuided.Questions, c.LTR.Top1, c.LTR.Questions)
		}
	}
	return out
}

func compareMetrics(db, cfg string, b, c Metrics, t Thresholds,
	add func(db, metric, format string, args ...any)) {
	if c.Questions != b.Questions {
		add(db, cfg+".questions", "benchmark size changed from %d to %d (regenerate the baseline with -write)",
			b.Questions, c.Questions)
		// Accuracy counts are incomparable across different sizes.
		return
	}
	if c.Top1 < b.Top1-t.AccuracyTolerance {
		add(db, cfg+".top1", "accuracy dropped from %d/%d to %d/%d",
			b.Top1, b.Questions, c.Top1, c.Questions)
	}
	if c.TopK < b.TopK-t.AccuracyTolerance {
		add(db, cfg+".topk", "top-%d accuracy dropped from %d/%d to %d/%d",
			b.K, b.TopK, b.Questions, c.TopK, c.Questions)
	}
	limit := b.P50ms * t.LatencyFactor
	if limit < t.LatencyGraceMS {
		limit = t.LatencyGraceMS
	}
	if c.P50ms > limit {
		add(db, cfg+".p50", "p50 latency %.2fms exceeds %.2fms (baseline %.2fms × %.1f, grace %.0fms)",
			c.P50ms, limit, b.P50ms, t.LatencyFactor, t.LatencyGraceMS)
	}
}
