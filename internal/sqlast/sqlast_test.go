package sqlast_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// randomQuery generates a random valid query for property tests by
// assembling clauses from small pools.
func randomQuery(rng *rand.Rand) *sqlast.Query {
	cols := []string{"a", "b", "c"}
	col := func() *sqlast.ColumnRef {
		return &sqlast.ColumnRef{Table: "t", Column: cols[rng.Intn(len(cols))]}
	}
	s := &sqlast.Select{From: sqlast.From{Tables: []sqlast.TableRef{{Name: "t"}}}}
	s.Items = append(s.Items, sqlast.SelectItem{Expr: col()})
	if rng.Intn(2) == 0 {
		s.Items = append(s.Items, sqlast.SelectItem{Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}})
	}
	if rng.Intn(2) == 0 {
		s.Where = &sqlast.Binary{Op: ">", L: col(), R: sqlast.NumberLitOf(rng.Intn(100))}
		if rng.Intn(2) == 0 {
			s.Where = &sqlast.Binary{Op: "AND", L: s.Where,
				R: &sqlast.Binary{Op: "=", L: col(), R: &sqlast.Lit{Kind: sqlast.StringLit, Text: "x"}}}
		}
	}
	if rng.Intn(3) == 0 {
		s.GroupBy = []*sqlast.ColumnRef{col()}
	}
	if rng.Intn(3) == 0 {
		s.OrderBy = []sqlast.OrderItem{{Expr: col(), Desc: rng.Intn(2) == 0}}
		if rng.Intn(2) == 0 {
			s.Limit = 1 + rng.Intn(5)
		}
	}
	q := &sqlast.Query{Select: s}
	if rng.Intn(4) == 0 {
		q.Op = sqlast.Union
		q.Right = &sqlast.Query{Select: &sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: col()}},
			From:  sqlast.From{Tables: []sqlast.TableRef{{Name: "t"}}},
		}}
	}
	return q
}

var queryGenCfg = &quick.Config{
	MaxCount: 300,
	Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(randomQuery(rng))
	},
}

// TestPrintParseRoundTripProperty: printing any generated query and
// re-parsing it yields the identical printed form (a parser/printer
// fixed point).
func TestPrintParseRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(q *sqlast.Query) bool {
		printed := q.String()
		re, err := sqlparse.Parse(printed)
		if err != nil {
			t.Logf("reparse failed for %q: %v", printed, err)
			return false
		}
		return re.String() == printed
	}, queryGenCfg); err != nil {
		t.Error(err)
	}
}

// TestCloneIndependenceProperty: mutating a clone never changes the
// original's printed form.
func TestCloneIndependenceProperty(t *testing.T) {
	if err := quick.Check(func(q *sqlast.Query) bool {
		before := q.String()
		c := q.Clone()
		sqlast.MaskValues(c)
		c.Select.Items = nil
		c.Select.Limit = 99
		return q.String() == before
	}, queryGenCfg); err != nil {
		t.Error(err)
	}
}

// TestFingerprintInvarianceProperty: a query and its clone share a
// fingerprint; masking values does not change it.
func TestFingerprintInvarianceProperty(t *testing.T) {
	if err := quick.Check(func(q *sqlast.Query) bool {
		c := q.Clone()
		sqlast.MaskValues(c)
		return sqlast.Fingerprint(q) == sqlast.Fingerprint(c)
	}, queryGenCfg); err != nil {
		t.Error(err)
	}
}

func TestSetOpString(t *testing.T) {
	if sqlast.Union.String() != "UNION" || sqlast.Intersect.String() != "INTERSECT" ||
		sqlast.Except.String() != "EXCEPT" || sqlast.SetNone.String() != "" {
		t.Error("SetOp names wrong")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		expr sqlast.Expr
		want string
	}{
		{&sqlast.ColumnRef{Table: "t", Column: "a"}, "t.a"},
		{&sqlast.ColumnRef{Column: "*"}, "*"},
		{&sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}, "COUNT(*)"},
		{&sqlast.Agg{Func: sqlast.Sum, Distinct: true, Arg: &sqlast.ColumnRef{Column: "a"}}, "SUM(DISTINCT a)"},
		{&sqlast.Lit{Kind: sqlast.StringLit, Text: "x"}, "'x'"},
		{sqlast.Placeholder(), "'value'"},
		{sqlast.NumberLitOf(7), "7"},
	}
	for _, c := range cases {
		if got := sqlast.ExprString(c.expr); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestPrintParenthesizesOrUnderAnd(t *testing.T) {
	// A AND (B OR C) must print with parentheses to re-parse equally.
	q := sqlparse.MustParse("SELECT a FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
	s := q.String()
	if !strings.Contains(s, "(") {
		t.Errorf("OR under AND not parenthesized: %s", s)
	}
	re := sqlparse.MustParse(s)
	if re.String() != s {
		t.Errorf("round trip broken: %s vs %s", s, re)
	}
}

func TestBlocksAndIsCompound(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t")
	if q.IsCompound() || len(q.Blocks()) != 1 {
		t.Error("simple query misclassified")
	}
	var nilQ *sqlast.Query
	if nilQ.IsCompound() {
		t.Error("nil query is compound")
	}
	if nilQ.Clone() != nil {
		t.Error("nil clone not nil")
	}
}

func TestWalkQueriesCoversDerivedTables(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM (SELECT a FROM t WHERE b IN (SELECT c FROM s)) AS x")
	count := 0
	sqlast.WalkQueries(q, func(*sqlast.Query) { count++ })
	if count != 3 {
		t.Errorf("WalkQueries visited %d queries, want 3", count)
	}
}

func TestPredicatesNil(t *testing.T) {
	if sqlast.Predicates(nil) != nil {
		t.Error("Predicates(nil) should be nil")
	}
}
