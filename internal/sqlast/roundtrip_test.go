package sqlast_test

import (
	"fmt"
	"testing"

	"repro/internal/generalize"
	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlcheck"
	"repro/internal/sqlparse"
)

// roundtripSamples are the seed sets the generalizer grows into pools.
// Together they exercise every printable construct: joins, aggregates,
// grouping, ordering, subqueries, set operations and compound keys.
func roundtripSamples(db *schema.Database) []*sqlast.Query {
	var srcs []string
	switch db.Name {
	case "flight_2":
		srcs = []string{
			"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
			"SELECT airline FROM airlines WHERE country = 'USA'",
			"SELECT COUNT(*) FROM flights",
			"SELECT airportName FROM airports WHERE city = 'Denver'",
			"SELECT T1.airline FROM airlines AS T1 JOIN flights AS T2 ON T1.uid = T2.airline WHERE T2.sourceAirport = 'AHD'",
			"SELECT country FROM airlines UNION SELECT country FROM airports",
			"SELECT airline FROM airlines WHERE uid IN (SELECT airline FROM flights)",
		}
	default:
		srcs = []string{
			"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
			"SELECT name FROM employee WHERE age > 30",
			"SELECT age FROM employee WHERE city = 'Austin'",
			"SELECT city, COUNT(*) FROM employee GROUP BY city",
			"SELECT AVG(bonus) FROM evaluation",
			"SELECT city FROM employee GROUP BY city HAVING COUNT(*) > 2",
			"SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee)",
			"SELECT name FROM employee UNION SELECT shop_name FROM shop",
			"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
			"SELECT name FROM employee WHERE age > 30 AND city = 'Austin'",
			"SELECT T2.bonus FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id WHERE T1.name = 'John'",
			"SELECT location FROM shop WHERE number_products > 50",
		}
	}
	out := make([]*sqlast.Query, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, sqlparse.MustParse(s))
	}
	return out
}

// TestPoolRoundTrip is the printer/parser contract over real workloads:
// for every query the generalizer can put in a candidate pool,
// print→parse→print is a fixed point, and the semantic analyzer reaches
// the same verdict on the original tree and on its reparse. A drift in
// either would mean persisted pools (gar prepare writes printed SQL)
// change meaning when reloaded.
func TestPoolRoundTrip(t *testing.T) {
	dbs := []*schema.Database{schematest.Employee(), schematest.Flights()}
	for _, db := range dbs {
		t.Run(db.Name, func(t *testing.T) {
			res := generalize.Generalize(db, roundtripSamples(db), generalize.Config{
				TargetSize: 400,
				MaxStall:   5000,
				Seed:       42,
				Rules:      generalize.AllRules(),
			})
			if len(res.Queries) < 25 {
				t.Fatalf("pool too small to be meaningful: %d queries", len(res.Queries))
			}
			checker := sqlcheck.New(db)
			for i, q := range res.Queries {
				first := q.String()
				q2, err := sqlparse.Parse(first)
				if err != nil {
					t.Fatalf("pool[%d]: printed query does not reparse: %v\n%s", i, err, first)
				}
				if second := q2.String(); second != first {
					t.Fatalf("pool[%d]: print not a fixed point:\n first: %s\nsecond: %s", i, first, second)
				}
				if want, got := verdict(checker, q), verdict(checker, q2); want != got {
					t.Fatalf("pool[%d]: sqlcheck verdict changed across round trip:\nquery: %s\n want: %s\n  got: %s",
						i, first, want, got)
				}
			}
			t.Logf("%s: %d pool queries round-tripped with stable verdicts", db.Name, len(res.Queries))
		})
	}
}

// verdict canonicalizes an analyzer run for comparison: every diagnostic
// with rule, severity and message, in rule order.
func verdict(a *sqlcheck.Analyzer, q *sqlast.Query) string {
	diags := a.Check(q)
	if len(diags) == 0 {
		return "clean"
	}
	out := ""
	for _, d := range diags {
		out += fmt.Sprintf("%s;", d.String())
	}
	return out
}
