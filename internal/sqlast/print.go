package sqlast

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the query as SQL text.
func (q *Query) String() string {
	var b strings.Builder
	printQuery(&b, q)
	return b.String()
}

// String renders the SELECT block as SQL text.
func (s *Select) String() string {
	var b strings.Builder
	printSelect(&b, s)
	return b.String()
}

func printQuery(b *strings.Builder, q *Query) {
	printSelect(b, q.Select)
	if q.Op != SetNone {
		b.WriteByte(' ')
		b.WriteString(q.Op.String())
		b.WriteByte(' ')
		printQuery(b, q.Right)
	}
}

func printSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		printExpr(b, it.Expr)
	}
	b.WriteString(" FROM ")
	printFrom(b, &s.From)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		printExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, c)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		printExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit > 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(s.Limit))
	}
}

func printFrom(b *strings.Builder, f *From) {
	for i, t := range f.Tables {
		if i > 0 {
			b.WriteString(" JOIN ")
		}
		printTableRef(b, t)
		if i > 0 {
			j := f.Joins[i-1]
			b.WriteString(" ON ")
			printExpr(b, &j.Left)
			b.WriteString(" = ")
			printExpr(b, &j.Right)
		}
	}
}

func printTableRef(b *strings.Builder, t TableRef) {
	if t.Sub != nil {
		b.WriteByte('(')
		printQuery(b, t.Sub)
		b.WriteByte(')')
	} else {
		b.WriteString(t.Name)
	}
	if t.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(t.Alias)
	}
}

func printExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			b.WriteString(x.Table)
			b.WriteByte('.')
		}
		b.WriteString(x.Column)
	case *Agg:
		b.WriteString(string(x.Func))
		b.WriteByte('(')
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		printExpr(b, x.Arg)
		b.WriteByte(')')
	case *Lit:
		switch x.Kind {
		case StringLit:
			b.WriteByte('\'')
			b.WriteString(x.Text)
			b.WriteByte('\'')
		case PlaceholderLit:
			b.WriteByte('\'')
			b.WriteString(PlaceholderValue)
			b.WriteByte('\'')
		default:
			b.WriteString(x.Text)
		}
	case *Binary:
		// Parenthesize OR under AND explicitly; the parser produces a
		// left-deep shape, so re-print conservatively.
		printOperand(b, x.L, x.Op)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		printOperand(b, x.R, x.Op)
	case *Not:
		b.WriteString("NOT ")
		printExpr(b, x.X)
	case *Between:
		printExpr(b, x.X)
		if x.Negate {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		printExpr(b, x.Lo)
		b.WriteString(" AND ")
		printExpr(b, x.Hi)
	case *In:
		printExpr(b, x.X)
		if x.Negate {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		printQuery(b, x.Sub)
		b.WriteByte(')')
	case *Exists:
		if x.Negate {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		printQuery(b, x.Sub)
		b.WriteByte(')')
	case *Subquery:
		b.WriteByte('(')
		printQuery(b, x.Q)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<?expr %T>", e)
	}
}

// printOperand parenthesizes an OR operand appearing under an AND so the
// printed text re-parses with the same structure.
func printOperand(b *strings.Builder, e Expr, parentOp string) {
	if bin, ok := e.(*Binary); ok && parentOp == "AND" && bin.Op == "OR" {
		b.WriteByte('(')
		printExpr(b, e)
		b.WriteByte(')')
		return
	}
	printExpr(b, e)
}

// ExprString renders a single expression as SQL text.
func ExprString(e Expr) string {
	var b strings.Builder
	printExpr(&b, e)
	return b.String()
}
