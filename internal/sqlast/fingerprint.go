package sqlast

import "strings"

// ResolveAliases rewrites the query in place so that every column
// reference is qualified with its underlying table name rather than an
// alias, and removes the aliases. After resolution two queries that
// differ only in alias naming print identically. Aliases of derived
// tables are kept, since there is no underlying name to substitute.
func ResolveAliases(q *Query) {
	resolveQuery(q, nil)
}

func resolveQuery(q *Query, outer map[string]string) {
	for cur := q; cur != nil; cur = cur.Right {
		resolveSelect(cur.Select, outer)
		if cur.Op == SetNone {
			break
		}
	}
}

func resolveSelect(s *Select, outer map[string]string) {
	if s == nil {
		return
	}
	scope := make(map[string]string, len(s.From.Tables)+len(outer))
	for k, v := range outer {
		scope[k] = v
	}
	for i := range s.From.Tables {
		t := &s.From.Tables[i]
		if t.Sub != nil {
			resolveQuery(t.Sub, scope)
			if t.Alias != "" {
				scope[strings.ToLower(t.Alias)] = t.Alias
			}
			continue
		}
		if t.Alias != "" {
			scope[strings.ToLower(t.Alias)] = t.Name
			t.Alias = ""
		}
	}
	rewrite := func(c *ColumnRef) {
		if c.Table == "" {
			return
		}
		if name, ok := scope[strings.ToLower(c.Table)]; ok {
			c.Table = name
		}
	}
	rewriteExpr := func(e Expr) {
		WalkExprs(e, func(n Expr) {
			if c, ok := n.(*ColumnRef); ok {
				rewrite(c)
			}
		})
	}
	for _, it := range s.Items {
		rewriteExpr(it.Expr)
	}
	for i := range s.From.Joins {
		rewrite(&s.From.Joins[i].Left)
		rewrite(&s.From.Joins[i].Right)
	}
	for _, g := range s.GroupBy {
		rewrite(g)
	}
	for _, o := range s.OrderBy {
		rewriteExpr(o.Expr)
	}
	// Predicate subqueries may correlate with this block's tables, so the
	// scope is passed down.
	rewriteExpr(s.Where)
	rewriteExpr(s.Having)
	resolvePredSubqueries(s.Where, scope)
	resolvePredSubqueries(s.Having, scope)
}

func resolvePredSubqueries(e Expr, scope map[string]string) {
	switch x := e.(type) {
	case *Binary:
		resolvePredSubqueries(x.L, scope)
		resolvePredSubqueries(x.R, scope)
	case *Not:
		resolvePredSubqueries(x.X, scope)
	case *In:
		resolveQuery(x.Sub, scope)
	case *Exists:
		resolveQuery(x.Sub, scope)
	case *Subquery:
		resolveQuery(x.Q, scope)
	}
}

// Fingerprint returns a canonical string identifying the query's
// structure: aliases resolved, identifiers lower-cased and literal values
// masked. Two queries with equal fingerprints are component-identical up
// to literal values.
func Fingerprint(q *Query) string {
	c := q.Clone()
	ResolveAliases(c)
	MaskValues(c)
	return strings.ToLower(c.String())
}

// ValuedFingerprint is like Fingerprint but keeps literal values, so it
// distinguishes queries that differ only in constants.
func ValuedFingerprint(q *Query) string {
	c := q.Clone()
	ResolveAliases(c)
	return strings.ToLower(c.String())
}

// Equal reports whether two queries are structurally identical up to
// aliases and literal values.
func Equal(a, b *Query) bool { return Fingerprint(a) == Fingerprint(b) }
