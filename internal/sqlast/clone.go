package sqlast

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	if q == nil {
		return nil
	}
	return &Query{Select: q.Select.Clone(), Op: q.Op, Right: q.Right.Clone()}
}

// Clone returns a deep copy of the SELECT block.
func (s *Select) Clone() *Select {
	if s == nil {
		return nil
	}
	out := &Select{
		Distinct: s.Distinct,
		Where:    CloneExpr(s.Where),
		Having:   CloneExpr(s.Having),
		Limit:    s.Limit,
	}
	for _, it := range s.Items {
		out.Items = append(out.Items, SelectItem{Expr: CloneExpr(it.Expr)})
	}
	out.From = From{}
	for _, t := range s.From.Tables {
		out.From.Tables = append(out.From.Tables, TableRef{Name: t.Name, Alias: t.Alias, Sub: t.Sub.Clone()})
	}
	for _, j := range s.From.Joins {
		out.From.Joins = append(out.From.Joins, JoinCond{Left: j.Left, Right: j.Right})
	}
	for _, g := range s.GroupBy {
		c := *g
		out.GroupBy = append(out.GroupBy, &c)
	}
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	return out
}

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		c := *x
		return &c
	case *Agg:
		a := &Agg{Func: x.Func, Distinct: x.Distinct}
		if x.Arg != nil {
			arg := *x.Arg
			a.Arg = &arg
		}
		return a
	case *Lit:
		l := *x
		return &l
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Not:
		return &Not{X: CloneExpr(x.X)}
	case *Between:
		return &Between{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Negate: x.Negate}
	case *In:
		return &In{X: CloneExpr(x.X), Sub: x.Sub.Clone(), Negate: x.Negate}
	case *Exists:
		return &Exists{Sub: x.Sub.Clone(), Negate: x.Negate}
	case *Subquery:
		return &Subquery{Q: x.Q.Clone()}
	default:
		return nil
	}
}
