package sqlast

// WalkQueries calls fn on q and on every subquery nested anywhere inside
// it (compound right-hand sides, predicate subqueries, derived tables).
func WalkQueries(q *Query, fn func(*Query)) {
	if q == nil {
		return
	}
	fn(q)
	walkSelectQueries(q.Select, fn)
	WalkQueries(q.Right, fn)
}

func walkSelectQueries(s *Select, fn func(*Query)) {
	if s == nil {
		return
	}
	for _, t := range s.From.Tables {
		WalkQueries(t.Sub, fn)
	}
	walkExprQueries(s.Where, fn)
	walkExprQueries(s.Having, fn)
}

func walkExprQueries(e Expr, fn func(*Query)) {
	switch x := e.(type) {
	case *Binary:
		walkExprQueries(x.L, fn)
		walkExprQueries(x.R, fn)
	case *Not:
		walkExprQueries(x.X, fn)
	case *Between:
		walkExprQueries(x.Lo, fn)
		walkExprQueries(x.Hi, fn)
	case *In:
		WalkQueries(x.Sub, fn)
	case *Exists:
		WalkQueries(x.Sub, fn)
	case *Subquery:
		WalkQueries(x.Q, fn)
	}
}

// WalkExprs calls fn on every expression node reachable from e, in
// pre-order, without descending into subqueries.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Agg:
		if x.Arg != nil {
			fn(x.Arg)
		}
	case *Binary:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *Not:
		WalkExprs(x.X, fn)
	case *Between:
		WalkExprs(x.X, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *In:
		WalkExprs(x.X, fn)
	}
}

// SelectColumns returns every column reference mentioned anywhere in the
// SELECT block, excluding subqueries. Asterisks are included.
func SelectColumns(s *Select) []*ColumnRef {
	var cols []*ColumnRef
	add := func(e Expr) {
		if c, ok := e.(*ColumnRef); ok {
			cols = append(cols, c)
		}
	}
	for _, it := range s.Items {
		WalkExprs(it.Expr, add)
	}
	WalkExprs(s.Where, add)
	for _, g := range s.GroupBy {
		cols = append(cols, g)
	}
	WalkExprs(s.Having, add)
	for _, o := range s.OrderBy {
		WalkExprs(o.Expr, add)
	}
	for i := range s.From.Joins {
		cols = append(cols, &s.From.Joins[i].Left, &s.From.Joins[i].Right)
	}
	return cols
}

// QueryColumns returns every column reference in the query including all
// nested subqueries.
func QueryColumns(q *Query) []*ColumnRef {
	var cols []*ColumnRef
	WalkQueries(q, func(sub *Query) {
		cols = append(cols, SelectColumns(sub.Select)...)
	})
	return cols
}

// Predicates returns the atomic predicates of a boolean expression,
// flattening AND/OR connectives.
func Predicates(e Expr) []Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Binary:
		if x.Op == "AND" || x.Op == "OR" {
			return append(Predicates(x.L), Predicates(x.R)...)
		}
	}
	return []Expr{e}
}

// MaskValues replaces every literal in the query (including nested
// subqueries) with the placeholder literal, except LIMIT counts, which are
// structural. The query is modified in place.
func MaskValues(q *Query) {
	WalkQueries(q, func(sub *Query) {
		maskExpr(sub.Select.Where)
		maskExpr(sub.Select.Having)
	})
}

func maskExpr(e Expr) {
	WalkExprs(e, func(n Expr) {
		switch x := n.(type) {
		case *Binary:
			if l, ok := x.L.(*Lit); ok {
				mask(l)
			}
			if r, ok := x.R.(*Lit); ok {
				mask(r)
			}
		case *Between:
			if l, ok := x.Lo.(*Lit); ok {
				mask(l)
			}
			if h, ok := x.Hi.(*Lit); ok {
				mask(h)
			}
		}
	})
}

func mask(l *Lit) {
	l.Kind = PlaceholderLit
	l.Text = PlaceholderValue
}
