package sqlast_test

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func TestResolveAliasesDerivedTable(t *testing.T) {
	q := sqlparse.MustParse("SELECT sub.a FROM (SELECT T1.a FROM t AS T1) AS sub")
	sqlast.ResolveAliases(q)
	s := q.String()
	// The inner alias resolves to the base table; the derived table's
	// alias is kept (there is no underlying name to substitute).
	if strings.Contains(s, "T1") {
		t.Errorf("inner alias not resolved: %s", s)
	}
	if !strings.Contains(s, "AS sub") {
		t.Errorf("derived-table alias must be kept: %s", s)
	}
}

func TestMaskValuesBetweenAndNested(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t WHERE b BETWEEN 1 AND 9 AND c IN (SELECT d FROM s WHERE e = 'x')")
	sqlast.MaskValues(q)
	s := q.String()
	if strings.Contains(s, "1") || strings.Contains(s, "9") || strings.Contains(s, "'x'") {
		t.Errorf("literals not masked: %s", s)
	}
	if got := strings.Count(s, "'value'"); got != 3 {
		t.Errorf("expected 3 placeholders, got %d: %s", got, s)
	}
}

func TestSelectColumnsIncludesJoinsAndHaving(t *testing.T) {
	q := sqlparse.MustParse(`SELECT t.a FROM t JOIN s ON t.id = s.tid
		GROUP BY t.a HAVING COUNT(*) > 2 ORDER BY t.b`)
	cols := sqlast.SelectColumns(q.Select)
	names := map[string]bool{}
	for _, c := range cols {
		names[c.Column] = true
	}
	for _, want := range []string{"a", "id", "tid", "b"} {
		if !names[want] {
			t.Errorf("SelectColumns missing %q (have %v)", want, names)
		}
	}
}

func TestWalkExprsBetweenAndNot(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t WHERE NOT (b BETWEEN 1 AND 2)")
	var lits int
	sqlast.WalkExprs(q.Select.Where, func(e sqlast.Expr) {
		if _, ok := e.(*sqlast.Lit); ok {
			lits++
		}
	})
	if lits != 2 {
		t.Errorf("WalkExprs saw %d literals, want 2", lits)
	}
}

func TestValuedFingerprintKeepsValues(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t WHERE b = 'Spain'")
	vf := sqlast.ValuedFingerprint(q)
	if !strings.Contains(vf, "spain") {
		t.Errorf("valued fingerprint lost the literal: %s", vf)
	}
	f := sqlast.Fingerprint(q)
	if strings.Contains(f, "spain") {
		t.Errorf("fingerprint kept the literal: %s", f)
	}
}

func TestCloneExprAllNodes(t *testing.T) {
	exprs := []string{
		"SELECT a FROM t WHERE b NOT BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE NOT b = 1",
		"SELECT a FROM t WHERE EXISTS (SELECT c FROM s)",
		"SELECT a FROM t WHERE b NOT IN (SELECT c FROM s)",
		"SELECT a FROM t WHERE b > (SELECT MAX(c) FROM s)",
		"SELECT COUNT(DISTINCT a) FROM t",
	}
	for _, src := range exprs {
		q := sqlparse.MustParse(src)
		c := q.Clone()
		if c.String() != q.String() {
			t.Errorf("clone differs for %q: %s", src, c)
		}
		// Mutating the clone must not touch the original.
		sqlast.MaskValues(c)
		if q.String() != sqlparse.MustParse(src).String() {
			t.Errorf("clone shares nodes for %q", src)
		}
	}
	if sqlast.CloneExpr(nil) != nil {
		t.Error("CloneExpr(nil) should be nil")
	}
}

func TestQueryColumnsDerivedTables(t *testing.T) {
	q := sqlparse.MustParse("SELECT x.a FROM (SELECT a, b FROM t WHERE c = 1) AS x WHERE x.a > 2")
	cols := sqlast.QueryColumns(q)
	names := map[string]bool{}
	for _, c := range cols {
		names[c.Column] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !names[want] {
			t.Errorf("QueryColumns missing %q", want)
		}
	}
}

func TestEqualAndPlaceholderHelpers(t *testing.T) {
	a := sqlparse.MustParse("SELECT a FROM t WHERE b = 'x'")
	b := sqlparse.MustParse("SELECT a FROM t WHERE b = 'y'")
	if !sqlast.Equal(a, b) {
		t.Error("value-masked equality failed")
	}
	p := sqlast.Placeholder()
	if p.Kind != sqlast.PlaceholderLit || p.Text != sqlast.PlaceholderValue {
		t.Errorf("Placeholder() wrong: %+v", p)
	}
	star := &sqlast.ColumnRef{Column: "*"}
	if !star.IsStar() {
		t.Error("IsStar failed")
	}
	var nilRef *sqlast.ColumnRef
	if nilRef.IsStar() {
		t.Error("nil IsStar should be false")
	}
}

func TestOrderByMultiKeyPrint(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t ORDER BY b DESC, c")
	want := "SELECT a FROM t ORDER BY b DESC, c"
	if got := q.String(); got != want {
		t.Errorf("multi-key order print: %q", got)
	}
}
