// Package sqlast defines the abstract syntax tree for the SQL subset used
// by GAR, together with printing, cloning, traversal and structural
// comparison. The subset mirrors the SPIDER benchmark grammar: single-block
// SELECT queries with joins, filtering, grouping, having, ordering and
// limits, composed with UNION/INTERSECT/EXCEPT, and nested subqueries in
// predicates.
package sqlast

import "strconv"

// SetOp is a compound-query operator.
type SetOp int

// Set operators. SetNone marks a plain (non-compound) query.
const (
	SetNone SetOp = iota
	Union
	Intersect
	Except
)

// String returns the SQL keyword for the operator.
func (op SetOp) String() string {
	switch op {
	case Union:
		return "UNION"
	case Intersect:
		return "INTERSECT"
	case Except:
		return "EXCEPT"
	default:
		return ""
	}
}

// Query is a full SQL query: a SELECT block optionally combined with
// another query by a set operator. Compound queries associate to the
// right, matching the parser.
type Query struct {
	Select *Select
	Op     SetOp  // SetNone when the query is a single block
	Right  *Query // non-nil iff Op != SetNone
}

// Select is a single SELECT block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     From
	Where    Expr // nil when absent
	GroupBy  []*ColumnRef
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // 0 when absent; the subset only uses positive limits
}

// SelectItem is one projection in the select list.
type SelectItem struct {
	Expr Expr // *ColumnRef or *Agg
}

// From is the FROM clause: a base table followed by zero or more
// equi-joins. Joins[i] connects Tables[i+1] to the tables before it.
type From struct {
	Tables []TableRef
	Joins  []JoinCond
}

// TableRef names a base table or a derived table (subquery) with an
// optional alias.
type TableRef struct {
	Name  string // empty when Sub != nil
	Alias string
	Sub   *Query // derived table, rare in the subset
}

// JoinCond is the ON condition of an equi-join.
type JoinCond struct {
	Left  ColumnRef
	Right ColumnRef
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr // *ColumnRef or *Agg
	Desc bool
}

// Expr is a SQL expression node.
type Expr interface{ isExpr() }

// ColumnRef names a column, optionally qualified by a table name or
// alias. Column "*" denotes the asterisk.
type ColumnRef struct {
	Table  string // table name or alias; may be empty
	Column string
}

// AggFunc is an aggregate function name.
type AggFunc string

// Aggregate functions of the subset.
const (
	Count AggFunc = "COUNT"
	Sum   AggFunc = "SUM"
	Avg   AggFunc = "AVG"
	Min   AggFunc = "MIN"
	Max   AggFunc = "MAX"
)

// Agg is an aggregate application such as COUNT(DISTINCT t.c) or COUNT(*).
type Agg struct {
	Func     AggFunc
	Distinct bool
	Arg      *ColumnRef
}

// LitKind classifies a literal.
type LitKind int

// Literal kinds. PlaceholderLit is the masked value used after value
// masking in the generalization step.
const (
	NumberLit LitKind = iota
	StringLit
	PlaceholderLit
)

// Lit is a literal value.
type Lit struct {
	Kind LitKind
	Text string // source text; for PlaceholderLit the canonical text is "value"
}

// Binary is a binary operation. Op is one of the comparison operators
// (= != < <= > >=), LIKE, NOT LIKE, or the logical connectives AND / OR.
type Binary struct {
	Op string
	L  Expr
	R  Expr
}

// Not negates a predicate.
type Not struct{ X Expr }

// Between is X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X      Expr
	Lo, Hi Expr
	Negate bool
}

// In is X [NOT] IN (subquery).
type In struct {
	X      Expr
	Sub    *Query
	Negate bool
}

// Exists is [NOT] EXISTS (subquery).
type Exists struct {
	Sub    *Query
	Negate bool
}

// Subquery is a scalar subquery used as an operand, e.g.
// bonus = (SELECT MAX(bonus) FROM evaluation).
type Subquery struct{ Q *Query }

func (*ColumnRef) isExpr() {}
func (*Agg) isExpr()       {}
func (*Lit) isExpr()       {}
func (*Binary) isExpr()    {}
func (*Not) isExpr()       {}
func (*Between) isExpr()   {}
func (*In) isExpr()        {}
func (*Exists) isExpr()    {}
func (*Subquery) isExpr()  {}

// NumberLitOf builds a numeric literal node from an integer.
func NumberLitOf(n int) *Lit { return &Lit{Kind: NumberLit, Text: strconv.Itoa(n)} }

// PlaceholderValue is the canonical masked-literal text.
const PlaceholderValue = "value"

// Placeholder returns a fresh masked-literal node.
func Placeholder() *Lit { return &Lit{Kind: PlaceholderLit, Text: PlaceholderValue} }

// IsStar reports whether the column reference is an asterisk.
func (c *ColumnRef) IsStar() bool { return c != nil && c.Column == "*" }

// IsCompound reports whether the query uses a set operator.
func (q *Query) IsCompound() bool { return q != nil && q.Op != SetNone }

// Blocks returns all SELECT blocks of the query in left-to-right order,
// not descending into predicate subqueries.
func (q *Query) Blocks() []*Select {
	var out []*Select
	for cur := q; cur != nil; cur = cur.Right {
		out = append(out, cur.Select)
		if cur.Op == SetNone {
			break
		}
	}
	return out
}
