// Package engine implements a small in-memory relational engine that
// executes the SQL subset of package sqlast against tabular data. GAR
// uses it to measure execution accuracy: the predicted and the gold query
// are both executed and their result multisets compared. The engine is a
// straightforward tree-walking interpreter — nested-loop joins, hash
// grouping — which is ample for benchmark-sized tables.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a SQL value: NULL, a number, or a string.
type Value struct {
	Null  bool
	IsNum bool
	Num   float64
	Str   string
}

// Null value singleton-ish constructor.
func NullValue() Value { return Value{Null: true} }

// Num builds a numeric value.
func Num(f float64) Value { return Value{IsNum: true, Num: f} }

// Str builds a string value.
func Str(s string) Value { return Value{Str: s} }

// String renders the value for result display and comparison keys.
func (v Value) String() string {
	switch {
	case v.Null:
		return "NULL"
	case v.IsNum:
		// Trim trailing zeros so 3 and 3.0 compare equal.
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	default:
		return v.Str
	}
}

// Equal reports SQL equality. NULL never equals anything; strings compare
// case-insensitively (matching how SPIDER's execution comparison treats
// text values).
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return false
	}
	if v.IsNum && o.IsNum {
		return v.Num == o.Num
	}
	if v.IsNum != o.IsNum {
		// Numeric strings compare numerically with numbers.
		a, aok := v.asNum()
		b, bok := o.asNum()
		if aok && bok {
			return a == b
		}
		return false
	}
	return strings.EqualFold(v.Str, o.Str)
}

// Compare returns -1, 0 or 1; NULL sorts before everything.
func (v Value) Compare(o Value) int {
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	a, aok := v.asNum()
	b, bok := o.asNum()
	if aok && bok {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	x, y := strings.ToLower(v.Str), strings.ToLower(o.Str)
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

func (v Value) asNum() (float64, bool) {
	if v.Null {
		return 0, false
	}
	if v.IsNum {
		return v.Num, true
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
	return f, err == nil
}

// Like implements SQL LIKE with % and _ wildcards, case-insensitively.
func (v Value) Like(pattern Value) bool {
	if v.Null || pattern.Null {
		return false
	}
	return likeMatch(strings.ToLower(v.String()), strings.ToLower(pattern.String()))
}

func likeMatch(s, p string) bool {
	// Dynamic programming over the pattern; patterns are short.
	n, m := len(s), len(p)
	dp := make([]bool, n+1)
	dp[0] = true
	for j := 0; j < m; j++ {
		c := p[j]
		if c == '%' {
			for i := 1; i <= n; i++ {
				dp[i] = dp[i] || dp[i-1]
			}
			continue
		}
		prevDiag := dp[0]
		dp[0] = false
		for i := 1; i <= n; i++ {
			cur := dp[i]
			dp[i] = prevDiag && (c == '_' || s[i-1] == c)
			prevDiag = cur
		}
	}
	return dp[n]
}

// errorf builds engine errors with a uniform prefix.
func errorf(format string, args ...any) error {
	return fmt.Errorf("engine: "+format, args...)
}
