package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/schema/schematest"
	"repro/internal/sqlparse"
)

func benchInstance() *engine.Instance {
	in := engine.NewInstance(schematest.Employee())
	n, s := engine.Num, engine.Str
	for i := 0; i < 200; i++ {
		in.MustInsert("employee", n(float64(i)), s("Name"), n(float64(20+i%40)), s("City"))
		in.MustInsert("evaluation", n(float64(i)), s("2017"), n(float64(100*i%5000)))
	}
	return in
}

// BenchmarkExecJoinGroup measures the nested-loop join plus grouping
// path of the engine.
func BenchmarkExecJoinGroup(b *testing.B) {
	in := benchInstance()
	q := sqlparse.MustParse(`SELECT T1.city, COUNT(*) FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecSubquery measures correlated IN-subquery evaluation.
func BenchmarkExecSubquery(b *testing.B) {
	in := benchInstance()
	q := sqlparse.MustParse(`SELECT name FROM employee WHERE employee_id IN
		(SELECT employee_id FROM evaluation WHERE bonus > 1000)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}
