package engine_test

import (
	"math/rand"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

// refLike is a reference implementation of SQL LIKE via regexp.
func refLike(s, pattern string) bool {
	var re strings.Builder
	re.WriteString("(?is)^")
	for _, r := range pattern {
		switch r {
		case '%':
			re.WriteString(".*")
		case '_':
			re.WriteString(".")
		default:
			re.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	re.WriteString("$")
	return regexp.MustCompile(re.String()).MatchString(s)
}

// TestLikeMatchesReference checks the engine's DP LIKE matcher against
// the regexp reference on random strings and patterns.
func TestLikeMatchesReference(t *testing.T) {
	alphabet := []byte("ab%_")
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			mk := func(n int, allowWild bool) string {
				var b []byte
				for i := 0; i < n; i++ {
					c := alphabet[rng.Intn(len(alphabet))]
					if !allowWild && (c == '%' || c == '_') {
						c = 'a'
					}
					b = append(b, c)
				}
				return string(b)
			}
			vals[0] = reflect.ValueOf(mk(rng.Intn(8), false))
			vals[1] = reflect.ValueOf(mk(rng.Intn(6), true))
		},
	}
	if err := quick.Check(func(s, pattern string) bool {
		got := engine.Str(s).Like(engine.Str(pattern))
		want := refLike(s, pattern)
		if got != want {
			t.Logf("Like(%q, %q) = %v, want %v", s, pattern, got, want)
		}
		return got == want
	}, cfg); err != nil {
		t.Error(err)
	}
}

// randomRows builds random small result sets for comparison properties.
func randomRows(rng *rand.Rand) *engine.Result {
	n := rng.Intn(5)
	res := &engine.Result{}
	for i := 0; i < n; i++ {
		res.Rows = append(res.Rows, []engine.Value{
			engine.Num(float64(rng.Intn(3))),
			engine.Str(string(rune('a' + rng.Intn(3)))),
		})
	}
	return res
}

// TestResultsEqualProperties: reflexive and symmetric, and permutation
// invariant when unordered.
func TestResultsEqualProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(randomRows(rng))
			vals[1] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(func(a *engine.Result, seed int64) bool {
		if !engine.ResultsEqual(a, a, true) || !engine.ResultsEqual(a, a, false) {
			return false
		}
		// Shuffle a copy: unordered comparison must still hold.
		rng := rand.New(rand.NewSource(seed))
		b := &engine.Result{Rows: append([][]engine.Value(nil), a.Rows...)}
		rng.Shuffle(len(b.Rows), func(i, j int) { b.Rows[i], b.Rows[j] = b.Rows[j], b.Rows[i] })
		if !engine.ResultsEqual(a, b, false) {
			return false
		}
		return engine.ResultsEqual(a, b, false) == engine.ResultsEqual(b, a, false)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestValueCompareProperties: Compare is antisymmetric and consistent
// with Equal for non-null values.
func TestValueCompareProperties(t *testing.T) {
	mkValue := func(rng *rand.Rand) engine.Value {
		switch rng.Intn(3) {
		case 0:
			return engine.Num(float64(rng.Intn(5)))
		case 1:
			return engine.Str(string(rune('a' + rng.Intn(4))))
		default:
			return engine.Str(string(rune('0' + rng.Intn(5)))) // numeric string
		}
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(mkValue(rng))
			vals[1] = reflect.ValueOf(mkValue(rng))
		},
	}
	if err := quick.Check(func(a, b engine.Value) bool {
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Equal(b) != b.Equal(a) {
			return false
		}
		// Equal implies Compare == 0 (numeric strings compare numerically
		// in both).
		if a.Equal(b) && a.Compare(b) != 0 {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestSetOpProperties: INTERSECT ⊆ both sides; EXCEPT ∩ right = ∅;
// UNION ⊇ both sides — checked through the engine itself.
func TestSetOpProperties(t *testing.T) {
	in := employeeInstance()
	union := exec(t, in, "SELECT city FROM employee UNION SELECT location FROM shop")
	inter := exec(t, in, "SELECT city FROM employee INTERSECT SELECT location FROM shop")
	except := exec(t, in, "SELECT city FROM employee EXCEPT SELECT location FROM shop")
	left := exec(t, in, "SELECT DISTINCT city FROM employee")

	has := func(res *engine.Result, v string) bool {
		for _, r := range res.Rows {
			if strings.EqualFold(r[0].String(), v) {
				return true
			}
		}
		return false
	}
	for _, r := range inter.Rows {
		if !has(union, r[0].String()) || !has(left, r[0].String()) {
			t.Errorf("INTERSECT row %v outside operands", r)
		}
		if has(except, r[0].String()) {
			t.Errorf("row %v in both INTERSECT and EXCEPT", r)
		}
	}
	for _, r := range left.Rows {
		if !has(union, r[0].String()) {
			t.Errorf("UNION missing left row %v", r)
		}
	}
	if len(inter.Rows)+len(except.Rows) != len(left.Rows) {
		t.Errorf("INTERSECT (%d) + EXCEPT (%d) != DISTINCT left (%d)",
			len(inter.Rows), len(except.Rows), len(left.Rows))
	}
}
