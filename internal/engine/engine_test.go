package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/schema/schematest"
	"repro/internal/sqlparse"
)

// employeeInstance populates the Fig. 1 schema with a small data set.
func employeeInstance() *engine.Instance {
	in := engine.NewInstance(schematest.Employee())
	n, s := engine.Num, engine.Str
	in.MustInsert("employee", n(1), s("George"), n(45), s("Madrid"))
	in.MustInsert("employee", n(2), s("John"), n(32), s("Austin"))
	in.MustInsert("employee", n(3), s("Alice"), n(28), s("Austin"))
	in.MustInsert("employee", n(4), s("Bob"), n(51), s("Bristol"))
	in.MustInsert("shop", n(1), s("FNAC"), s("Madrid"), s("Center"), n(120), s("Carla"))
	in.MustInsert("shop", n(2), s("Corner"), s("Austin"), s("South"), n(45), s("Dan"))
	in.MustInsert("hiring", n(1), n(1), s("2015"), s("T"))
	in.MustInsert("hiring", n(2), n(2), s("2018"), s("F"))
	in.MustInsert("hiring", n(2), n(3), s("2019"), s("T"))
	in.MustInsert("evaluation", n(1), s("2016"), n(2000))
	in.MustInsert("evaluation", n(1), s("2017"), n(3200))
	in.MustInsert("evaluation", n(2), s("2017"), n(4100))
	in.MustInsert("evaluation", n(3), s("2018"), n(1500))
	return in
}

func exec(t *testing.T, in *engine.Instance, sql string) *engine.Result {
	t.Helper()
	res, err := in.Exec(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func flatten(res *engine.Result) []string {
	var out []string
	for _, r := range res.Rows {
		for _, v := range r {
			out = append(out, v.String())
		}
	}
	return out
}

func wantRows(t *testing.T, res *engine.Result, want ...string) {
	t.Helper()
	got := flatten(res)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row value %d: got %v, want %v", i, got, want)
		}
	}
}

func TestSimpleSelect(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT name FROM employee WHERE age > 40 ORDER BY age")
	wantRows(t, res, "George", "Bob")
}

func TestPaperGoldQuery(t *testing.T) {
	// "Find the name of the employee who got the highest one time bonus."
	in := employeeInstance()
	res := exec(t, in, `SELECT T1.name FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		ORDER BY T2.bonus DESC LIMIT 1`)
	wantRows(t, res, "John") // John's single 4100 beats George's best 3200
}

func TestPaperIncorrectVariantsDiffer(t *testing.T) {
	// The GAP-style mistranslation (most evaluation records) returns
	// George, demonstrating that execution accuracy distinguishes them.
	in := employeeInstance()
	gap := exec(t, in, `SELECT T1.name FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		GROUP BY T2.employee_id ORDER BY COUNT(*) DESC LIMIT 1`)
	wantRows(t, gap, "George")
	smbop := exec(t, in, `SELECT T1.name FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		GROUP BY T2.employee_id ORDER BY SUM(T2.bonus) DESC LIMIT 1`)
	wantRows(t, smbop, "George") // George's total 5200 beats John's 4100
}

func TestAggregates(t *testing.T) {
	in := employeeInstance()
	wantRows(t, exec(t, in, "SELECT COUNT(*) FROM employee"), "4")
	wantRows(t, exec(t, in, "SELECT COUNT(DISTINCT city) FROM employee"), "3")
	wantRows(t, exec(t, in, "SELECT SUM(bonus) FROM evaluation"), "10800")
	wantRows(t, exec(t, in, "SELECT AVG(bonus) FROM evaluation"), "2700")
	wantRows(t, exec(t, in, "SELECT MAX(bonus), MIN(bonus) FROM evaluation"), "4100", "1500")
}

func TestEmptyAggregates(t *testing.T) {
	in := employeeInstance()
	wantRows(t, exec(t, in, "SELECT COUNT(*) FROM employee WHERE age > 100"), "0")
	wantRows(t, exec(t, in, "SELECT MAX(age) FROM employee WHERE age > 100"), "NULL")
	wantRows(t, exec(t, in, "SELECT SUM(age) FROM employee WHERE age > 100"), "NULL")
}

func TestGroupByHaving(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT city, COUNT(*) FROM employee GROUP BY city HAVING COUNT(*) > 1")
	wantRows(t, res, "Austin", "2")
}

func TestGroupByOrderByAggregate(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT employee_id FROM evaluation GROUP BY employee_id ORDER BY SUM(bonus) DESC LIMIT 1")
	wantRows(t, res, "1")
}

func TestDistinct(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT DISTINCT city FROM employee ORDER BY city")
	wantRows(t, res, "Austin", "Bristol", "Madrid")
}

func TestSetOps(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT city FROM employee INTERSECT SELECT location FROM shop")
	if len(res.Rows) != 2 {
		t.Fatalf("INTERSECT rows = %d, want 2 (%v)", len(res.Rows), flatten(res))
	}
	res = exec(t, in, "SELECT city FROM employee EXCEPT SELECT location FROM shop")
	wantRows(t, res, "Bristol")
	res = exec(t, in, "SELECT location FROM shop UNION SELECT district FROM shop")
	if len(res.Rows) != 4 {
		t.Fatalf("UNION rows = %d, want 4 (%v)", len(res.Rows), flatten(res))
	}
}

func TestInSubquery(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, `SELECT name FROM employee WHERE employee_id IN
		(SELECT employee_id FROM evaluation WHERE bonus > 3000) ORDER BY name`)
	wantRows(t, res, "George", "John")
	res = exec(t, in, `SELECT name FROM employee WHERE employee_id NOT IN
		(SELECT employee_id FROM evaluation) ORDER BY name`)
	wantRows(t, res, "Bob")
}

func TestScalarSubquery(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee) ORDER BY name")
	wantRows(t, res, "Bob", "George")
}

func TestCorrelatedExists(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, `SELECT name FROM employee AS T1 WHERE EXISTS
		(SELECT * FROM evaluation AS T2 WHERE T2.employee_id = T1.employee_id AND T2.bonus > 3000)
		ORDER BY name`)
	wantRows(t, res, "George", "John")
}

func TestLikeBetween(t *testing.T) {
	in := employeeInstance()
	wantRows(t, exec(t, in, "SELECT name FROM employee WHERE name LIKE '%o%' ORDER BY name"),
		"Bob", "George", "John")
	wantRows(t, exec(t, in, "SELECT name FROM employee WHERE name LIKE '_ob'"), "Bob")
	wantRows(t, exec(t, in, "SELECT name FROM employee WHERE age BETWEEN 30 AND 50 ORDER BY name"),
		"George", "John")
	wantRows(t, exec(t, in, "SELECT name FROM employee WHERE age NOT BETWEEN 30 AND 50 ORDER BY name"),
		"Alice", "Bob")
}

func TestMultiJoin(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, `SELECT T3.shop_name FROM employee AS T1
		JOIN hiring AS T2 ON T1.employee_id = T2.employee_id
		JOIN shop AS T3 ON T2.shop_id = T3.shop_id
		WHERE T1.name = 'Alice'`)
	wantRows(t, res, "Corner")
}

func TestSelectStar(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT * FROM shop WHERE shop_id = 1")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 6 {
		t.Fatalf("SELECT * shape wrong: %v", res.Rows)
	}
	res = exec(t, in, "SELECT shop.* FROM shop JOIN hiring ON shop.shop_id = hiring.shop_id WHERE hiring.employee_id = 3")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 6 {
		t.Fatalf("SELECT shop.* shape wrong: %v", res.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	in := employeeInstance()
	res := exec(t, in, "SELECT city FROM (SELECT city FROM employee GROUP BY city) AS sub ORDER BY city")
	wantRows(t, res, "Austin", "Bristol", "Madrid")
}

func TestResultsEqual(t *testing.T) {
	a := &engine.Result{Rows: [][]engine.Value{{engine.Num(1)}, {engine.Num(2)}}}
	b := &engine.Result{Rows: [][]engine.Value{{engine.Num(2)}, {engine.Num(1)}}}
	if !engine.ResultsEqual(a, b, false) {
		t.Error("unordered multiset comparison failed")
	}
	if engine.ResultsEqual(a, b, true) {
		t.Error("ordered comparison should fail")
	}
	c := &engine.Result{Rows: [][]engine.Value{{engine.Num(1)}, {engine.Num(1)}}}
	if engine.ResultsEqual(a, c, false) {
		t.Error("multiset with different multiplicities should differ")
	}
}

func TestExecErrors(t *testing.T) {
	in := employeeInstance()
	for _, src := range []string{
		"SELECT nosuch FROM employee",
		"SELECT name FROM nosuch",
		"SELECT name FROM employee UNION SELECT name, age FROM employee",
	} {
		if _, err := in.Exec(sqlparse.MustParse(src)); err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}

func TestValueSemantics(t *testing.T) {
	if !engine.Num(3).Equal(engine.Str("3")) {
		t.Error("numeric string should equal number")
	}
	if engine.NullValue().Equal(engine.NullValue()) {
		t.Error("NULL = NULL must be false")
	}
	if !engine.Str("Austin").Equal(engine.Str("austin")) {
		t.Error("string equality should be case-insensitive")
	}
	if engine.Num(1).Compare(engine.NullValue()) != 1 {
		t.Error("NULL should sort first")
	}
}
