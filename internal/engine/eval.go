package engine

import (
	"strconv"
	"strings"

	"repro/internal/sqlast"
)

// evalValue evaluates a value expression on a tuple. grp is non-nil when
// the expression is evaluated in a grouped context, enabling aggregates.
func (in *Instance) evalValue(e sqlast.Expr, row *env, grp *group) (Value, error) {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if x.IsStar() {
			return Value{}, errorf("'*' outside COUNT")
		}
		v, ok := row.lookup(key(x.Table, x.Column))
		if !ok {
			return Value{}, errorf("unbound column %s.%s", x.Table, x.Column)
		}
		return v, nil
	case *sqlast.Lit:
		switch x.Kind {
		case sqlast.NumberLit:
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return Value{}, errorf("bad number %q", x.Text)
			}
			return Num(f), nil
		default:
			return Str(x.Text), nil
		}
	case *sqlast.Agg:
		if grp == nil {
			return Value{}, errorf("aggregate %s outside grouped context", x.Func)
		}
		return in.evalAgg(x, grp)
	case *sqlast.Subquery:
		res, err := in.execQuery(x.Q, row)
		if err != nil {
			return Value{}, err
		}
		if len(res.Rows) == 0 {
			return NullValue(), nil
		}
		if len(res.Rows[0]) != 1 {
			return Value{}, errorf("scalar subquery returns %d columns", len(res.Rows[0]))
		}
		return res.Rows[0][0], nil
	default:
		return Value{}, errorf("unexpected expression %T in value position", e)
	}
}

func (in *Instance) evalAgg(a *sqlast.Agg, grp *group) (Value, error) {
	var vals []Value
	for _, r := range grp.rows {
		if a.Arg.IsStar() {
			vals = append(vals, Num(1))
			continue
		}
		v, ok := r.lookup(key(a.Arg.Table, a.Arg.Column))
		if !ok {
			return Value{}, errorf("unbound aggregate column %s.%s", a.Arg.Table, a.Arg.Column)
		}
		if v.Null {
			continue // SQL aggregates skip NULLs
		}
		vals = append(vals, v)
	}
	if a.Distinct {
		seen := map[string]bool{}
		uniq := vals[:0]
		for _, v := range vals {
			k := strings.ToLower(v.String())
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, v)
			}
		}
		vals = uniq
	}
	switch a.Func {
	case sqlast.Count:
		return Num(float64(len(vals))), nil
	case sqlast.Sum, sqlast.Avg:
		if len(vals) == 0 {
			return NullValue(), nil
		}
		total := 0.0
		for _, v := range vals {
			f, ok := v.asNum()
			if !ok {
				return Value{}, errorf("%s over non-numeric value %q", a.Func, v)
			}
			total += f
		}
		if a.Func == sqlast.Avg {
			return Num(total / float64(len(vals))), nil
		}
		return Num(total), nil
	case sqlast.Min, sqlast.Max:
		if len(vals) == 0 {
			return NullValue(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := v.Compare(best)
			if a.Func == sqlast.Min && c < 0 || a.Func == sqlast.Max && c > 0 {
				best = v
			}
		}
		return best, nil
	default:
		return Value{}, errorf("unknown aggregate %q", a.Func)
	}
}

// evalPred evaluates a boolean condition on a tuple.
func (in *Instance) evalPred(e sqlast.Expr, row *env, grp *group) (bool, error) {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case "AND":
			l, err := in.evalPred(x.L, row, grp)
			if err != nil || !l {
				return false, err
			}
			return in.evalPred(x.R, row, grp)
		case "OR":
			l, err := in.evalPred(x.L, row, grp)
			if err != nil {
				return false, err
			}
			if l {
				return true, nil
			}
			return in.evalPred(x.R, row, grp)
		}
		lv, err := in.evalValue(x.L, row, grp)
		if err != nil {
			return false, err
		}
		rv, err := in.evalValue(x.R, row, grp)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case "=":
			return lv.Equal(rv), nil
		case "!=":
			if lv.Null || rv.Null {
				return false, nil
			}
			return !lv.Equal(rv), nil
		case "<", "<=", ">", ">=":
			if lv.Null || rv.Null {
				return false, nil
			}
			c := lv.Compare(rv)
			switch x.Op {
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			default:
				return c >= 0, nil
			}
		case "LIKE":
			return lv.Like(rv), nil
		case "NOT LIKE":
			if lv.Null || rv.Null {
				return false, nil
			}
			return !lv.Like(rv), nil
		default:
			return false, errorf("unknown operator %q", x.Op)
		}
	case *sqlast.Not:
		v, err := in.evalPred(x.X, row, grp)
		return !v, err
	case *sqlast.Between:
		v, err := in.evalValue(x.X, row, grp)
		if err != nil {
			return false, err
		}
		lo, err := in.evalValue(x.Lo, row, grp)
		if err != nil {
			return false, err
		}
		hi, err := in.evalValue(x.Hi, row, grp)
		if err != nil {
			return false, err
		}
		if v.Null || lo.Null || hi.Null {
			return false, nil
		}
		ok := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		if x.Negate {
			ok = !ok
		}
		return ok, nil
	case *sqlast.In:
		v, err := in.evalValue(x.X, row, grp)
		if err != nil {
			return false, err
		}
		res, err := in.execQuery(x.Sub, row)
		if err != nil {
			return false, err
		}
		found := false
		for _, r := range res.Rows {
			if len(r) != 1 {
				return false, errorf("IN subquery returns %d columns", len(r))
			}
			if v.Equal(r[0]) {
				found = true
				break
			}
		}
		if x.Negate {
			return !found, nil
		}
		return found, nil
	case *sqlast.Exists:
		res, err := in.execQuery(x.Sub, row)
		if err != nil {
			return false, err
		}
		found := len(res.Rows) > 0
		if x.Negate {
			return !found, nil
		}
		return found, nil
	default:
		return false, errorf("unexpected expression %T in boolean position", e)
	}
}
