package engine

import (
	"strings"

	"repro/internal/schema"
)

// TableData holds the rows of one table. Columns follow the schema order.
type TableData struct {
	Columns []string
	Rows    [][]Value
}

// Instance is a populated database: a schema plus per-table rows.
type Instance struct {
	DB     *schema.Database
	Tables map[string]*TableData // keyed by lower-case table name
}

// NewInstance creates an empty instance for the schema with all tables
// present (no rows).
func NewInstance(db *schema.Database) *Instance {
	inst := &Instance{DB: db, Tables: make(map[string]*TableData, len(db.Tables))}
	for _, t := range db.Tables {
		td := &TableData{}
		for _, c := range t.Columns {
			td.Columns = append(td.Columns, c.Name)
		}
		inst.Tables[strings.ToLower(t.Name)] = td
	}
	return inst
}

// Insert appends a row to the named table. The row length must match the
// table's column count.
func (in *Instance) Insert(table string, row ...Value) error {
	td, ok := in.Tables[strings.ToLower(table)]
	if !ok {
		return errorf("insert into unknown table %q", table)
	}
	if len(row) != len(td.Columns) {
		return errorf("insert into %s: %d values for %d columns", table, len(row), len(td.Columns))
	}
	td.Rows = append(td.Rows, row)
	return nil
}

// MustInsert is Insert that panics on error. It is intended ONLY for
// tests and generators over statically-known rows; serving paths must
// use Insert and return the error.
func (in *Instance) MustInsert(table string, row ...Value) {
	if err := in.Insert(table, row...); err != nil {
		panic(err)
	}
}

// Result is the output of executing a query.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// key returns a canonical comparison key for a row.
func rowKey(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = strings.ToLower(v.String())
	}
	return strings.Join(parts, "\x1f")
}

// ResultsEqual compares two results. When ordered is false the rows are
// compared as multisets; otherwise in sequence. Column names are ignored
// (the SPIDER execution metric compares values only), but arity must
// match.
func ResultsEqual(a, b *Result, ordered bool) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	if len(a.Rows) > 0 && len(a.Rows[0]) != len(b.Rows[0]) {
		return false
	}
	if ordered {
		for i := range a.Rows {
			if rowKey(a.Rows[i]) != rowKey(b.Rows[i]) {
				return false
			}
		}
		return true
	}
	counts := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		counts[rowKey(r)]++
	}
	for _, r := range b.Rows {
		k := rowKey(r)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}
