package engine

import (
	"sort"
	"strings"

	"repro/internal/sqlast"
)

// Exec executes a query against the instance and returns its result.
// The query is cloned and bound against the instance's schema first, so
// callers may pass queries with unqualified or aliased column references.
func (in *Instance) Exec(q *sqlast.Query) (*Result, error) {
	bound := q.Clone()
	if err := in.DB.Bind(bound); err != nil {
		return nil, err
	}
	return in.execQuery(bound, nil)
}

// env is one working tuple: qualified column name → value, chained to
// the enclosing query's tuple for correlated subqueries.
type env struct {
	vals   map[string]Value
	parent *env
}

func (e *env) lookup(key string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vals[key]; ok {
			return v, true
		}
	}
	return Value{}, false
}

// scopeCol records one visible column of a FROM clause, for asterisk
// expansion, in declaration order.
type scopeCol struct {
	qual, col string // lower-case qualifier and column
}

func key(qual, col string) string { return strings.ToLower(qual) + "." + strings.ToLower(col) }

func (in *Instance) execQuery(q *sqlast.Query, outer *env) (*Result, error) {
	left, err := in.execSelect(q.Select, outer)
	if err != nil {
		return nil, err
	}
	if q.Op == sqlast.SetNone {
		return left, nil
	}
	right, err := in.execQuery(q.Right, outer)
	if err != nil {
		return nil, err
	}
	if len(left.Rows) > 0 && len(right.Rows) > 0 && len(left.Rows[0]) != len(right.Rows[0]) {
		return nil, errorf("set operation arity mismatch")
	}
	rightSet := make(map[string]bool, len(right.Rows))
	for _, r := range right.Rows {
		rightSet[rowKey(r)] = true
	}
	out := &Result{Columns: left.Columns}
	seen := map[string]bool{}
	appendRow := func(r []Value) {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	switch q.Op {
	case sqlast.Union:
		for _, r := range left.Rows {
			appendRow(r)
		}
		for _, r := range right.Rows {
			appendRow(r)
		}
	case sqlast.Intersect:
		for _, r := range left.Rows {
			if rightSet[rowKey(r)] {
				appendRow(r)
			}
		}
	case sqlast.Except:
		for _, r := range left.Rows {
			if !rightSet[rowKey(r)] {
				appendRow(r)
			}
		}
	}
	return out, nil
}

func (in *Instance) execSelect(s *sqlast.Select, outer *env) (*Result, error) {
	rows, scope, err := in.buildFrom(s, outer)
	if err != nil {
		return nil, err
	}
	// WHERE.
	if s.Where != nil {
		filtered := rows[:0:0]
		for _, r := range rows {
			ok, err := in.evalPred(s.Where, r, nil)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	grouped := len(s.GroupBy) > 0 || selectHasAgg(s)
	type outRow struct {
		rep  *env
		grp  *group
		keys []Value // order keys
		proj []Value
	}
	var outs []outRow

	if grouped {
		groups, err := in.groupRows(s, rows)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			rep := &env{vals: map[string]Value{}}
			if len(g.rows) > 0 {
				rep = g.rows[0]
			}
			if s.Having != nil {
				ok, err := in.evalPred(s.Having, rep, g)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			outs = append(outs, outRow{rep: rep, grp: g})
		}
	} else {
		for _, r := range rows {
			outs = append(outs, outRow{rep: r})
		}
	}

	// Order keys and projections are computed from the same tuple/group.
	for i := range outs {
		o := &outs[i]
		for _, ob := range s.OrderBy {
			v, err := in.evalValue(ob.Expr, o.rep, o.grp)
			if err != nil {
				return nil, err
			}
			o.keys = append(o.keys, v)
		}
		proj, err := in.project(s, o.rep, o.grp, scope)
		if err != nil {
			return nil, err
		}
		o.proj = proj
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, ob := range s.OrderBy {
				c := outs[i].keys[k].Compare(outs[j].keys[k])
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	res := &Result{Columns: projColumns(s, scope)}
	seen := map[string]bool{}
	for _, o := range outs {
		if s.Distinct {
			k := rowKey(o.proj)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		res.Rows = append(res.Rows, o.proj)
		if s.Limit > 0 && len(res.Rows) >= s.Limit {
			break
		}
	}
	return res, nil
}

// buildFrom materializes the FROM clause as a list of tuples and the
// visible column scope.
func (in *Instance) buildFrom(s *sqlast.Select, outer *env) ([]*env, []scopeCol, error) {
	var rows []*env
	var scope []scopeCol
	for i := range s.From.Tables {
		tr := &s.From.Tables[i]
		qual := tr.Alias
		var cols []string
		var data [][]Value
		if tr.Sub != nil {
			sub, err := in.execQuery(tr.Sub, outer)
			if err != nil {
				return nil, nil, err
			}
			cols, data = sub.Columns, sub.Rows
			if qual == "" {
				qual = "subquery"
			}
		} else {
			td, ok := in.Tables[strings.ToLower(tr.Name)]
			if !ok {
				return nil, nil, errorf("no data for table %q", tr.Name)
			}
			cols, data = td.Columns, td.Rows
			if qual == "" {
				qual = tr.Name
			}
		}
		for _, c := range cols {
			scope = append(scope, scopeCol{qual: strings.ToLower(qual), col: strings.ToLower(c)})
		}
		if i == 0 {
			for _, dr := range data {
				rows = append(rows, bindRow(nil, outer, qual, cols, dr))
			}
			continue
		}
		join := s.From.Joins[i-1]
		var next []*env
		for _, left := range rows {
			for _, dr := range data {
				combined := bindRow(left, outer, qual, cols, dr)
				lv, err := in.evalValue(&join.Left, combined, nil)
				if err != nil {
					return nil, nil, err
				}
				rv, err := in.evalValue(&join.Right, combined, nil)
				if err != nil {
					return nil, nil, err
				}
				if lv.Equal(rv) {
					next = append(next, combined)
				}
			}
		}
		rows = next
	}
	return rows, scope, nil
}

// bindRow creates a tuple extending base (same query block) with the
// columns of one source row; outer is the enclosing query's tuple.
func bindRow(base *env, outer *env, qual string, cols []string, row []Value) *env {
	e := &env{vals: make(map[string]Value, len(cols)+16), parent: outer}
	if base != nil {
		for k, v := range base.vals {
			e.vals[k] = v
		}
	}
	for i, c := range cols {
		e.vals[key(qual, c)] = row[i]
	}
	return e
}

// group is one GROUP BY bucket.
type group struct{ rows []*env }

func (in *Instance) groupRows(s *sqlast.Select, rows []*env) ([]*group, error) {
	if len(s.GroupBy) == 0 {
		// Implicit single group (aggregate without GROUP BY). An empty
		// input still yields one group so COUNT(*) returns 0.
		return []*group{{rows: rows}}, nil
	}
	index := map[string]int{}
	var groups []*group
	for _, r := range rows {
		var parts []string
		for _, gc := range s.GroupBy {
			v, err := in.evalValue(gc, r, nil)
			if err != nil {
				return nil, err
			}
			parts = append(parts, strings.ToLower(v.String()))
		}
		k := strings.Join(parts, "\x1f")
		if gi, ok := index[k]; ok {
			groups[gi].rows = append(groups[gi].rows, r)
		} else {
			index[k] = len(groups)
			groups = append(groups, &group{rows: []*env{r}})
		}
	}
	return groups, nil
}

func selectHasAgg(s *sqlast.Select) bool {
	has := false
	check := func(e sqlast.Expr) {
		sqlast.WalkExprs(e, func(n sqlast.Expr) {
			if _, ok := n.(*sqlast.Agg); ok {
				has = true
			}
		})
	}
	for _, it := range s.Items {
		check(it.Expr)
	}
	for _, ob := range s.OrderBy {
		check(ob.Expr)
	}
	check(s.Having)
	return has
}

func (in *Instance) project(s *sqlast.Select, rep *env, grp *group, scope []scopeCol) ([]Value, error) {
	// SELECT * expands the full scope.
	if len(s.Items) == 1 {
		if c, ok := s.Items[0].Expr.(*sqlast.ColumnRef); ok && c.IsStar() && c.Table == "" {
			var out []Value
			for _, sc := range scope {
				v, ok := rep.lookup(sc.qual + "." + sc.col)
				if !ok {
					return nil, errorf("internal: scope column %s.%s missing", sc.qual, sc.col)
				}
				out = append(out, v)
			}
			return out, nil
		}
	}
	var out []Value
	for _, it := range s.Items {
		if c, ok := it.Expr.(*sqlast.ColumnRef); ok && c.IsStar() && c.Table != "" {
			q := strings.ToLower(c.Table)
			for _, sc := range scope {
				if sc.qual != q {
					continue
				}
				v, _ := rep.lookup(sc.qual + "." + sc.col)
				out = append(out, v)
			}
			continue
		}
		v, err := in.evalValue(it.Expr, rep, grp)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func projColumns(s *sqlast.Select, scope []scopeCol) []string {
	if len(s.Items) == 1 {
		if c, ok := s.Items[0].Expr.(*sqlast.ColumnRef); ok && c.IsStar() && c.Table == "" {
			var cols []string
			for _, sc := range scope {
				cols = append(cols, sc.col)
			}
			return cols
		}
	}
	var cols []string
	for _, it := range s.Items {
		if c, ok := it.Expr.(*sqlast.ColumnRef); ok {
			if c.IsStar() && c.Table != "" {
				// "t.*" expands to all of t's columns; the result header
				// must match the row arity.
				q := strings.ToLower(c.Table)
				for _, sc := range scope {
					if sc.qual == q {
						cols = append(cols, sc.col)
					}
				}
				continue
			}
			if !c.IsStar() {
				cols = append(cols, strings.ToLower(c.Column))
				continue
			}
		}
		cols = append(cols, strings.ToLower(sqlast.ExprString(it.Expr)))
	}
	return cols
}
