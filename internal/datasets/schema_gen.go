package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
)

// DBBundle is one generated database: schema, content, and the semantic
// side-information the NL generator uses (synonyms per table and column,
// independent of the schema identifiers — crucial for QBEN, where the
// identifiers are opaque but the users' language is not).
type DBBundle struct {
	Schema  *schema.Database
	Content *engine.Instance
	// Syn maps "table" and "table.column" (lower-case schema
	// identifiers) to NL synonym lists; the first entry is the primary
	// noun.
	Syn map[string][]string
	// BridgeVerb maps a bridge table to its relation verb phrase
	// ("enrolled in"), used by NL generation for join questions.
	BridgeVerb map[string]string
	// colKinds remembers each column's value kind for content
	// generation, keyed "table.column" (lower-case).
	colKinds map[string]vkind
}

// Noun returns the primary NL noun for a table.
func (b *DBBundle) Noun(table string) string {
	if s, ok := b.Syn[strings.ToLower(table)]; ok && len(s) > 0 {
		return s[0]
	}
	return strings.ToLower(table)
}

// ColNoun returns the primary NL noun for a column.
func (b *DBBundle) ColNoun(table, column string) string {
	key := strings.ToLower(table) + "." + strings.ToLower(column)
	if s, ok := b.Syn[key]; ok && len(s) > 0 {
		return s[0]
	}
	return strings.ToLower(column)
}

// synOf picks a random synonym (including the primary noun).
func (b *DBBundle) synOf(rng *rand.Rand, key string) string {
	s := b.Syn[strings.ToLower(key)]
	if len(s) == 0 {
		return key
	}
	return s[rng.Intn(len(s))]
}

// dbPattern is a database composition shape.
type dbPattern int

const (
	patSingle dbPattern = iota // one entity table
	patChild                   // parent + child with FK
	patBridge                  // two entities + many-to-many bridge
	patTriple                  // bridge plus an extra child entity
)

// buildDatabase composes one database from the archetype pool.
// opaque=true produces a QBEN-style schema: identifiers carry no
// semantics, annotations mirror the opaque identifiers, and only the
// join annotations (and the Syn map used by NL generation) retain the
// underlying meaning.
func buildDatabase(name string, rng *rand.Rand, opaque bool) *DBBundle {
	pattern := patBridge
	switch r := rng.Float64(); {
	case r < 0.15:
		pattern = patSingle
	case r < 0.50:
		pattern = patChild
	case r < 0.85:
		pattern = patBridge
	default:
		pattern = patTriple
	}

	// Pick distinct archetypes.
	perm := rng.Perm(len(archetypes))
	a1 := archetypes[perm[0]]
	a2 := archetypes[perm[1]]
	a3 := archetypes[perm[2]]

	b := &DBBundle{
		Syn:        map[string][]string{},
		BridgeVerb: map[string]string{},
	}
	db := &schema.Database{Name: name}
	ob := newObfuscator(rng, opaque)

	t1 := b.entityTable(db, ob, a1, rng)
	switch pattern {
	case patSingle:
		// done
	case patChild:
		t2 := b.entityTable(db, ob, a2, rng)
		b.addFK(db, ob, t2, t1, a2, a1, rng)
	case patBridge:
		t2 := b.entityTable(db, ob, a2, rng)
		b.bridgeTable(db, ob, t1, t2, a1, a2, rng)
	case patTriple:
		t2 := b.entityTable(db, ob, a2, rng)
		b.bridgeTable(db, ob, t1, t2, a1, a2, rng)
		t3 := b.entityTable(db, ob, a3, rng)
		b.addFK(db, ob, t3, t1, a3, a1, rng)
	}

	b.Schema = db
	b.populate(rng)
	return b
}

// obfuscator renames identifiers for QBEN-style databases.
type obfuscator struct {
	opaque  bool
	rng     *rand.Rand
	tcount  int
	ccounts map[string]int
}

func newObfuscator(rng *rand.Rand, opaque bool) *obfuscator {
	return &obfuscator{opaque: opaque, rng: rng, ccounts: map[string]int{}}
}

func (o *obfuscator) table(base string) string {
	if !o.opaque {
		return base
	}
	o.tcount++
	return fmt.Sprintf("t_%c%d", 'a'+(o.tcount-1)%26, o.tcount)
}

// column obfuscates only key and foreign-key columns: QBEN's design
// (paper §V-E) hides the *join semantics* — table names and key columns
// carry no meaning — while ordinary data columns stay readable
// (mechanic.FName, teams.Name in the paper's example).
func (o *obfuscator) column(table, base string, isKey bool) string {
	if !o.opaque || !isKey {
		return base
	}
	o.ccounts[table]++
	if o.ccounts[table] == 1 {
		return "uid"
	}
	return fmt.Sprintf("uid%d", o.ccounts[table])
}

// entityTable adds one entity archetype as a table: an id key plus a
// random subset of its attributes.
func (b *DBBundle) entityTable(db *schema.Database, ob *obfuscator, a archetype, rng *rand.Rand) *schema.Table {
	tname := ob.table(a.name)
	idName := ob.column(tname, a.name+"_id", true)
	t := &schema.Table{
		Name:       tname,
		PrimaryKey: []string{idName},
		Columns: []*schema.Column{
			{Name: idName, Type: schema.Number, Annotation: annotationFor(ob, a.name+" id", idName)},
		},
	}
	// Keep 3-4 attributes in archetype order for determinism.
	keep := 3 + rng.Intn(2)
	if keep > len(a.attrs) {
		keep = len(a.attrs)
	}
	for _, at := range a.attrs[:keep] {
		cname := ob.column(tname, at.name, false)
		nl := at.nl
		if nl == "" {
			nl = strings.ReplaceAll(at.name, "_", " ")
		}
		// Data columns keep their semantic annotation even in opaque
		// mode: QBEN hides join semantics, not attribute names.
		t.Columns = append(t.Columns, &schema.Column{
			Name: cname, Type: at.typ, Annotation: nl,
		})
		b.Syn[strings.ToLower(tname)+"."+strings.ToLower(cname)] =
			append([]string{nl}, at.synonyms...)
		b.kinds(tname, cname, at.kind, at.typ)
	}
	db.Tables = append(db.Tables, t)
	b.Syn[strings.ToLower(tname)] = append([]string{a.name}, a.synonyms...)
	b.Syn[strings.ToLower(tname)+"."+strings.ToLower(idName)] = []string{a.name + " id"}
	b.kinds(tname, idName, vSmallInt, schema.Number)
	return t
}

// annotationFor returns the schema annotation: the semantic NL name for
// normal databases, the identifier itself for opaque ones (QBEN's whole
// point is that the schema carries no usable text).
func annotationFor(ob *obfuscator, nl, ident string) string {
	if ob.opaque {
		return strings.ReplaceAll(ident, "_", " ")
	}
	return nl
}

// addFK links child → parent with a foreign key column on the child and
// records the join annotation.
func (b *DBBundle) addFK(db *schema.Database, ob *obfuscator, child, parent *schema.Table, ca, pa archetype, rng *rand.Rand) {
	fkName := ob.column(child.Name, pa.name+"_id", true)
	child.Columns = append(child.Columns, &schema.Column{
		Name: fkName, Type: schema.Number,
		Annotation: annotationFor(ob, pa.name+" id", fkName),
	})
	b.Syn[strings.ToLower(child.Name)+"."+strings.ToLower(fkName)] = []string{pa.name + " id"}
	b.kinds(child.Name, fkName, vSmallInt, schema.Number)
	db.ForeignKeys = append(db.ForeignKeys, schema.ForeignKey{
		FromTable: child.Name, FromColumn: fkName,
		ToTable: parent.Name, ToColumn: parent.PrimaryKey[0],
	})
	verb := bridgeVerbs[rng.Intn(len(bridgeVerbs))]
	db.JoinAnnotations = append(db.JoinAnnotations, &schema.JoinAnnotation{
		Tables: []string{child.Name, parent.Name},
		Conditions: []schema.JoinEdge{{
			LeftTable: child.Name, LeftColumn: fkName,
			RightTable: parent.Name, RightColumn: parent.PrimaryKey[0],
		}},
		Description: fmt.Sprintf("the %s %s the %s", plural(ca.name), verb, plural(pa.name)),
		TableKeys:   ca.name,
	})
	b.BridgeVerb[strings.ToLower(child.Name)] = verb
}

// bridgeTable adds a many-to-many bridge between two entities with a
// compound primary key, plus join annotations through the bridge.
func (b *DBBundle) bridgeTable(db *schema.Database, ob *obfuscator, t1, t2 *schema.Table, a1, a2 archetype, rng *rand.Rand) *schema.Table {
	base := a1.name + "_" + a2.name
	tname := ob.table(base)
	if ob.opaque {
		tname = "rel_" + tname
	}
	c1 := ob.column(tname, a1.name+"_id", true)
	c2 := ob.column(tname, a2.name+"_id", true)
	extra := ob.column(tname, "since_year", false)
	t := &schema.Table{
		Name:       tname,
		PrimaryKey: []string{c1, c2},
		Columns: []*schema.Column{
			{Name: c1, Type: schema.Number, Annotation: annotationFor(ob, a1.name+" id", c1)},
			{Name: c2, Type: schema.Number, Annotation: annotationFor(ob, a2.name+" id", c2)},
			{Name: extra, Type: schema.Number, Annotation: "since year"},
		},
	}
	db.Tables = append(db.Tables, t)
	verb := bridgeVerbs[rng.Intn(len(bridgeVerbs))]
	b.Syn[strings.ToLower(tname)] = []string{a1.name + " " + a2.name + " record"}
	b.Syn[strings.ToLower(tname)+"."+strings.ToLower(c1)] = []string{a1.name + " id"}
	b.Syn[strings.ToLower(tname)+"."+strings.ToLower(c2)] = []string{a2.name + " id"}
	b.Syn[strings.ToLower(tname)+"."+strings.ToLower(extra)] = []string{"since year", "start year"}
	b.kinds(tname, c1, vSmallInt, schema.Number)
	b.kinds(tname, c2, vSmallInt, schema.Number)
	b.kinds(tname, extra, vYear, schema.Number)
	b.BridgeVerb[strings.ToLower(tname)] = verb

	db.ForeignKeys = append(db.ForeignKeys,
		schema.ForeignKey{FromTable: tname, FromColumn: c1, ToTable: t1.Name, ToColumn: t1.PrimaryKey[0]},
		schema.ForeignKey{FromTable: tname, FromColumn: c2, ToTable: t2.Name, ToColumn: t2.PrimaryKey[0]},
	)
	db.JoinAnnotations = append(db.JoinAnnotations,
		&schema.JoinAnnotation{
			Tables: []string{t1.Name, tname},
			Conditions: []schema.JoinEdge{{
				LeftTable: tname, LeftColumn: c1,
				RightTable: t1.Name, RightColumn: t1.PrimaryKey[0],
			}},
			Description: fmt.Sprintf("the %s %s records of the %s", a1.name, verb, plural(a1.name)),
			TableKeys:   a1.name + " " + a2.name + " record",
		},
		&schema.JoinAnnotation{
			Tables: []string{t1.Name, tname, t2.Name},
			Conditions: []schema.JoinEdge{
				{LeftTable: tname, LeftColumn: c1, RightTable: t1.Name, RightColumn: t1.PrimaryKey[0]},
				{LeftTable: tname, LeftColumn: c2, RightTable: t2.Name, RightColumn: t2.PrimaryKey[0]},
			},
			Description: fmt.Sprintf("the %s %s the %s", plural(a1.name), verb, plural(a2.name)),
			TableKeys:   a1.name + " " + a2.name + " pair",
		},
	)
	return t
}

// kinds remembers each column's value kind for the content generator.
func (b *DBBundle) kinds(table, column string, k vkind, typ schema.Type) {
	if b.colKinds == nil {
		b.colKinds = map[string]vkind{}
	}
	b.colKinds[strings.ToLower(table)+"."+strings.ToLower(column)] = k
	_ = typ
}

// populate fills every table with deterministic content rows.
//
//garlint:allow mustonly -- generator: rows are built to match the schema
func (b *DBBundle) populate(rng *rand.Rand) {
	in := engine.NewInstance(b.Schema)
	rowCounts := map[string]int{}
	for _, t := range b.Schema.Tables {
		// Bridges reference entity ids; entities first (they appear
		// first in Tables by construction).
		n := 8 + rng.Intn(10)
		rowCounts[strings.ToLower(t.Name)] = n
		for r := 0; r < n; r++ {
			row := make([]engine.Value, 0, len(t.Columns))
			for _, c := range t.Columns {
				row = append(row, b.cellValue(rng, t, c, r, rowCounts))
			}
			in.MustInsert(t.Name, row...)
		}
	}
	b.Content = in
}

func (b *DBBundle) cellValue(rng *rand.Rand, t *schema.Table, c *schema.Column, row int, rowCounts map[string]int) engine.Value {
	key := strings.ToLower(t.Name) + "." + strings.ToLower(c.Name)
	// Primary key ids are sequential; foreign keys point at existing ids.
	if len(t.PrimaryKey) == 1 && strings.EqualFold(t.PrimaryKey[0], c.Name) {
		return engine.Num(float64(row + 1))
	}
	for _, fk := range b.Schema.ForeignKeys {
		if strings.EqualFold(fk.FromTable, t.Name) && strings.EqualFold(fk.FromColumn, c.Name) {
			max := rowCounts[strings.ToLower(fk.ToTable)]
			if max == 0 {
				max = 8
			}
			return engine.Num(float64(1 + rng.Intn(max)))
		}
	}
	switch b.colKinds[key] {
	case vPersonName:
		return engine.Str(personNames[rng.Intn(len(personNames))])
	case vCityName:
		return engine.Str(cityNames[rng.Intn(len(cityNames))])
	case vCountryName:
		return engine.Str(countryNames[rng.Intn(len(countryNames))])
	case vWord:
		return engine.Str(words[rng.Intn(len(words))])
	case vYear:
		return engine.Num(float64(1990 + rng.Intn(31)))
	case vBigInt:
		return engine.Num(float64(100 + rng.Intn(9900)))
	case vMoney:
		return engine.Num(float64((10 + rng.Intn(890)) * 100))
	case vCode:
		return engine.Str(fmt.Sprintf("%c%c%d", 'A'+rng.Intn(26), 'A'+rng.Intn(26), rng.Intn(100)))
	default: // vSmallInt
		return engine.Num(float64(1 + rng.Intn(99)))
	}
}

// plural naively pluralizes an archetype noun.
func plural(s string) string {
	if strings.HasSuffix(s, "s") {
		return s
	}
	if strings.HasSuffix(s, "y") && len(s) > 1 && !strings.ContainsRune("aeiou", rune(s[len(s)-2])) {
		return s[:len(s)-1] + "ies"
	}
	return s + "s"
}
