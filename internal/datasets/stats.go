package datasets

import (
	"strings"

	"repro/internal/hardness"
)

// SplitStats are the Table 3 statistics of one benchmark split.
type SplitStats struct {
	Databases int
	AvgTables float64
	Queries   int
	Nested    int
	OrderBy   int
	GroupBy   int
	Compound  int
}

// StatsOf computes Table 3 statistics for a split of a benchmark.
func StatsOf(bench *Benchmark, items []Item) SplitStats {
	var st SplitStats
	dbSeen := map[string]bool{}
	var tables int
	for _, it := range items {
		if !dbSeen[it.DB] {
			dbSeen[it.DB] = true
			if b := bench.DBs[it.DB]; b != nil {
				tables += len(b.Schema.Tables)
			}
		}
		st.Queries++
		if hardness.HasNested(it.Gold) {
			st.Nested++
		}
		if hardness.HasOrderBy(it.Gold) {
			st.OrderBy++
		}
		if hardness.HasGroupBy(it.Gold) {
			st.GroupBy++
		}
		if hardness.IsCompound(it.Gold) {
			st.Compound++
		}
	}
	st.Databases = len(dbSeen)
	if st.Databases > 0 {
		st.AvgTables = float64(tables) / float64(st.Databases)
	}
	return st
}

// SplitName pretty-prints a split identifier for reports.
func SplitName(bench, split string) string {
	return strings.ToUpper(bench) + " " + split
}
