package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/generalize"
	"repro/internal/norm"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Item is one NL–SQL pair of a benchmark.
type Item struct {
	DB   string // database name
	NL   string
	Gold *sqlast.Query
}

// Benchmark is one generated NLIDB benchmark.
type Benchmark struct {
	Name string
	DBs  map[string]*DBBundle
	// Train/Val/Test are the usual splits. GEO uses all three on one
	// database; SPIDER uses Train and Val on disjoint databases.
	Train, Val, Test []Item
	// Samples holds QBEN's separate sample-query split (NL is unused
	// there; the SQL queries are the given samples).
	Samples []Item
}

// Bundle returns the named database bundle.
func (b *Benchmark) Bundle(db string) *DBBundle { return b.DBs[db] }

// DBNames returns the database names of a split in deterministic order.
func DBNames(items []Item) []string {
	seen := map[string]bool{}
	var out []string
	for _, it := range items {
		if !seen[it.DB] {
			seen[it.DB] = true
			out = append(out, it.DB)
		}
	}
	sort.Strings(out)
	return out
}

// GoldQueries returns the gold SQL queries of the items on one database.
func GoldQueries(items []Item, db string) []*sqlast.Query {
	var out []*sqlast.Query
	for _, it := range items {
		if it.DB == db {
			out = append(out, it.Gold)
		}
	}
	return out
}

// genItems draws n distinct queries on the bundle and phrases each.
func genItems(b *DBBundle, dbName string, n int, rng *rand.Rand) []Item {
	qg := newQueryGen(b, rng)
	ng := &nlGen{b: b, rng: rng}
	seen := map[string]bool{}
	var out []Item
	for attempts := 0; len(out) < n && attempts < n*40; attempts++ {
		q, err := qg.gen()
		if err != nil {
			// A schema the generator cannot serve: no item can be drawn
			// from it, so stop rather than spin out the attempt budget.
			break
		}
		key := norm.Canonical(q)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Item{DB: dbName, NL: ng.phrase(q), Gold: q})
	}
	return out
}

// SpiderConfig sizes the SPIDER-like benchmark. The zero value gives a
// laptop-scale benchmark preserving the paper's shape (cross-domain
// train/validation split over disjoint databases).
type SpiderConfig struct {
	TrainDBs, ValDBs     int // default 12 / 6 (paper: 146 / 20)
	TrainPerDB, ValPerDB int // default 50 / 40 (paper: ~59 / ~52)
	Seed                 int64
}

func (c *SpiderConfig) fill() {
	if c.TrainDBs <= 0 {
		c.TrainDBs = 12
	}
	if c.ValDBs <= 0 {
		c.ValDBs = 6
	}
	if c.TrainPerDB <= 0 {
		c.TrainPerDB = 50
	}
	if c.ValPerDB <= 0 {
		c.ValPerDB = 40
	}
}

// SpiderLike generates the SPIDER-like cross-domain benchmark.
func SpiderLike(cfg SpiderConfig) *Benchmark {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bench := &Benchmark{Name: "spider", DBs: map[string]*DBBundle{}}
	for i := 0; i < cfg.TrainDBs; i++ {
		name := fmt.Sprintf("spider_train_%02d", i)
		b := buildDatabase(name, rng, false)
		bench.DBs[name] = b
		bench.Train = append(bench.Train, genItems(b, name, cfg.TrainPerDB, rng)...)
	}
	for i := 0; i < cfg.ValDBs; i++ {
		name := fmt.Sprintf("spider_val_%02d", i)
		b := buildDatabase(name, rng, false)
		bench.DBs[name] = b
		bench.Val = append(bench.Val, genItems(b, name, cfg.ValPerDB, rng)...)
	}
	return bench
}

// GeoConfig sizes the GEO-like benchmark: a single database shared by
// all splits.
type GeoConfig struct {
	Train, Val, Test int // default 150 / 12 / 70 (paper: 585 / 47 / 280)
	Seed             int64
}

func (c *GeoConfig) fill() {
	if c.Train <= 0 {
		c.Train = 150
	}
	if c.Val <= 0 {
		c.Val = 12
	}
	if c.Test <= 0 {
		c.Test = 70
	}
}

// GeoLike generates the GEO-like single-database benchmark.
func GeoLike(cfg GeoConfig) *Benchmark {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bench := &Benchmark{Name: "geo", DBs: map[string]*DBBundle{}}
	b := geoBundle(rng)
	bench.DBs["geo"] = b
	items := genItems(b, "geo", cfg.Train+cfg.Val+cfg.Test, rng)
	if len(items) < cfg.Train+cfg.Val+cfg.Test {
		// The single small schema caps the number of distinct queries;
		// shrink splits proportionally.
		total := len(items)
		cfg.Train = total * cfg.Train / (cfg.Train + cfg.Val + cfg.Test)
		cfg.Val = total / 12
		cfg.Test = total - cfg.Train - cfg.Val
	}
	bench.Train = items[:cfg.Train]
	bench.Val = items[cfg.Train : cfg.Train+cfg.Val]
	bench.Test = items[cfg.Train+cfg.Val:]
	return bench
}

// geoBundle builds the single-table geography database (GEObase).
func geoBundle(rng *rand.Rand) *DBBundle {
	b := &DBBundle{Syn: map[string][]string{}, BridgeVerb: map[string]string{}}
	// A one-off archetype mirroring GEObase's state table.
	arc := archetype{
		name:     "state",
		synonyms: []string{"us state"},
		attrs: []attr{
			txt("state_name", vWord, "name"),
			num("population", vBigInt, "number of people", "people"),
			num("area", vBigInt, "size", "square miles"),
			txt("capital", vCityName, "capital city"),
			num("density", vSmallInt, "population density"),
		},
	}
	d := &schema.Database{Name: "geo"}
	ob := newObfuscator(rng, false)
	b.entityTable(d, ob, arc, rng)
	b.Schema = d
	b.populate(rng)
	return b
}

// MTTEQLConfig sizes the MT-TEQL-like benchmark.
type MTTEQLConfig struct {
	// N is the number of transformed test samples (paper evaluates a
	// random 10,000-query subset). Default 400.
	N int
	// VariantsPerDB is how many schema-renamed variants of each
	// validation database are created. Default 3.
	VariantsPerDB int
	Seed          int64
}

func (c *MTTEQLConfig) fill() {
	if c.N <= 0 {
		c.N = 400
	}
	if c.VariantsPerDB <= 0 {
		c.VariantsPerDB = 3
	}
}

// MTTEQLLike derives the MT-TEQL-like benchmark from a SPIDER-like
// benchmark's validation set via semantics-preserving metamorphic
// transformations: utterance-level paraphrases (new frames, synonym
// substitution, politeness prefixes) and schema-level renames (tables
// and columns renamed; gold queries rewritten accordingly). The Test
// split holds the transformed samples.
func MTTEQLLike(spider *Benchmark, cfg MTTEQLConfig) *Benchmark {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bench := &Benchmark{Name: "mtteql", DBs: map[string]*DBBundle{}}

	// Schema-renamed variants per validation database.
	variants := map[string][]string{} // original db → variant names
	for _, dbName := range DBNames(spider.Val) {
		orig := spider.DBs[dbName]
		bench.DBs[dbName] = orig
		variants[dbName] = append(variants[dbName], dbName)
		for v := 0; v < cfg.VariantsPerDB; v++ {
			vname := fmt.Sprintf("%s_m%d", dbName, v)
			bench.DBs[vname] = renameBundle(orig, vname, rng)
			variants[dbName] = append(variants[dbName], vname)
		}
	}

	valByDB := map[string][]Item{}
	for _, it := range spider.Val {
		valByDB[it.DB] = append(valByDB[it.DB], it)
	}
	dbNames := DBNames(spider.Val)
	for len(bench.Test) < cfg.N {
		dbName := dbNames[rng.Intn(len(dbNames))]
		items := valByDB[dbName]
		it := items[rng.Intn(len(items))]
		target := variants[dbName][rng.Intn(len(variants[dbName]))]
		tb := bench.DBs[target]
		gold := it.Gold
		if target != dbName {
			gold = rewriteQuery(gold, spider.DBs[dbName], tb)
			if gold == nil {
				continue
			}
		}
		nl := transformUtterance(rng, &nlGen{b: tb, rng: rng}, gold, it.NL)
		bench.Test = append(bench.Test, Item{DB: target, NL: nl, Gold: gold})
	}
	return bench
}

// transformUtterance applies one utterance-level transformation: a fresh
// paraphrase from the NL generator, a politeness prefix, or a filler
// suffix.
func transformUtterance(rng *rand.Rand, ng *nlGen, gold *sqlast.Query, nl string) string {
	switch rng.Intn(4) {
	case 0:
		return ng.phrase(gold) // re-paraphrase with new random choices
	case 1:
		prefixes := []string{"Could you tell me ", "I would like to know ", "Please show ", "Can you find "}
		return prefixes[rng.Intn(len(prefixes))] + lowerFirst(nl)
	case 2:
		return nl + " Thanks!"
	default:
		return nl
	}
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	return string(b)
}

// QBENConfig sizes the QBEN-like benchmark.
type QBENConfig struct {
	DBs          int // default 7 (paper: 7)
	SamplesPerDB int // default 20 (paper: ~42)
	TestPerDB    int // default 12 (paper: ~29)
	Seed         int64
}

func (c *QBENConfig) fill() {
	if c.DBs <= 0 {
		c.DBs = 7
	}
	if c.SamplesPerDB <= 0 {
		c.SamplesPerDB = 20
	}
	if c.TestPerDB <= 0 {
		c.TestPerDB = 12
	}
}

// QBENLike generates the QBEN-like benchmark: databases whose schema
// identifiers are opaque (t_a1.uid, rel_t_b2.val1, ...) so join
// semantics cannot be inferred from the identifiers — only the manual
// join annotations (and the users' vocabulary) carry them. The Samples
// split holds the given sample queries; Test queries are
// component-similar to the samples. The train split is SPIDER's, per the
// paper.
func QBENLike(cfg QBENConfig) *Benchmark {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bench := &Benchmark{Name: "qben", DBs: map[string]*DBBundle{}}
	for i := 0; i < cfg.DBs; i++ {
		name := fmt.Sprintf("qben_%02d", i)
		var b *DBBundle
		// Join semantics are QBEN's point: require a multi-table shape.
		for {
			b = buildDatabase(name, rng, true)
			if len(b.Schema.Tables) >= 3 {
				break
			}
		}
		bench.DBs[name] = b
		samples := genItems(b, name, cfg.SamplesPerDB, rng)
		bench.Samples = append(bench.Samples, samples...)

		// Test queries are component-similar to the samples by
		// construction: they are drawn from the generalization of the
		// sample set (minus the samples themselves), then concretized
		// with content values and phrased.
		var goldSet []*sqlast.Query
		sampleCanon := map[string]bool{}
		for _, it := range samples {
			goldSet = append(goldSet, it.Gold)
			sampleCanon[norm.Canonical(it.Gold)] = true
		}
		// Test golds come from the filtered pool: an unfiltered frontier
		// draw would admit semantically incoherent golds (ungrouped
		// selected columns, unscoped ORDER BY) that no analyzer-clean
		// candidate pool can ever match.
		res := generalize.Generalize(b.Schema, goldSet, generalize.Config{
			TargetSize: cfg.SamplesPerDB * 12,
			Seed:       cfg.Seed + int64(i),
			Rules:      generalize.AllRules(),
		})
		var candidates []*sqlast.Query
		for _, q := range res.Queries {
			if !sampleCanon[norm.Canonical(q)] {
				candidates = append(candidates, q)
			}
		}
		rng.Shuffle(len(candidates), func(a, b int) {
			candidates[a], candidates[b] = candidates[b], candidates[a]
		})
		// Prefer queries with joins: QBEN tests join semantics.
		sort.SliceStable(candidates, func(a, b int) bool {
			return len(candidates[a].Select.From.Joins) > len(candidates[b].Select.From.Joins)
		})
		ng := &nlGen{b: b, rng: rng}
		for _, q := range candidates {
			if len(bench.Test) >= (i+1)*cfg.TestPerDB {
				break
			}
			fillValues(b, q, rng)
			bench.Test = append(bench.Test, Item{DB: name, NL: ng.phrase(q), Gold: q})
		}
	}
	return bench
}
