package datasets

import (
	"math/rand"
	"strings"

	"repro/internal/sqlast"
)

// nlGen phrases SQL queries as natural-language questions the way a user
// would ask them. It is deliberately a separate engine from the dialect
// builder: different sentence frames, synonym substitution from the
// bundle's semantic vocabulary, and random surface variation — so
// ranking dialects against these questions is a learnable but non-trivial
// matching problem, like ranking MPNet embeddings of real user questions
// against template dialects is in the paper. For QBEN bundles the
// vocabulary carries the hidden semantics that the opaque schema
// identifiers do not.
type nlGen struct {
	b   *DBBundle
	rng *rand.Rand
}

// phrase renders a bound query as an NL question.
func (n *nlGen) phrase(q *sqlast.Query) string {
	s := q.Select
	body := n.blockPhrase(s)
	if q.Op != sqlast.SetNone {
		right := n.blockPhrase(q.Right.Select)
		switch q.Op {
		case sqlast.Union:
			body += n.pick(", and also ", ", together with ") + right
		case sqlast.Intersect:
			body += n.pick(" that also appear when you ", " and intersect that with ") + right
		case sqlast.Except:
			body += n.pick(", excluding those when you ", ", but leave out those when you ") + right
		}
	}
	frame := n.pick("Show %s.", "List %s.", "Give me %s.", "What are %s?", "Find %s.", "Tell me %s.")
	// Count questions get their own frames sometimes.
	if agg, ok := soleAgg(s); ok && agg.Func == sqlast.Count && agg.Arg.IsStar() &&
		s.Where == nil && len(s.GroupBy) == 0 && q.Op == sqlast.SetNone {
		return strings.Replace(n.pick("How many %s are there?", "Count the %s.", "What is the total number of %s?"),
			"%s", plural(n.mainNoun(s)), 1)
	}
	return strings.Replace(frame, "%s", body, 1)
}

func soleAgg(s *sqlast.Select) (*sqlast.Agg, bool) {
	if len(s.Items) != 1 {
		return nil, false
	}
	a, ok := s.Items[0].Expr.(*sqlast.Agg)
	return a, ok
}

func (n *nlGen) pick(opts ...string) string { return opts[n.rng.Intn(len(opts))] }

// mainNoun is the user's word for the primary entity of the block.
func (n *nlGen) mainNoun(s *sqlast.Select) string {
	t := s.From.Tables[0].Name
	return n.b.synOf(n.rng, t)
}

// blockPhrase builds the noun phrase for one SELECT block.
func (n *nlGen) blockPhrase(s *sqlast.Select) string {
	var parts []string
	parts = append(parts, n.itemsPhrase(s))
	if join := n.joinPhrase(s); join != "" {
		parts = append(parts, join)
	}
	if s.Where != nil {
		parts = append(parts, n.condPhrase(s, s.Where))
	}
	parts = append(parts, n.shapePhrase(s)...)
	return strings.Join(parts, " ")
}

func (n *nlGen) itemsPhrase(s *sqlast.Select) string {
	noun := n.mainNoun(s)
	var items []string
	for _, it := range s.Items {
		items = append(items, n.valuePhrase(s, it.Expr, noun))
	}
	out := strings.Join(items, " and ")
	if s.Distinct {
		out = n.pick("the different ", "the distinct ", "all unique ") + strings.TrimPrefix(out, "the ")
	}
	return out
}

func (n *nlGen) valuePhrase(s *sqlast.Select, e sqlast.Expr, noun string) string {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if x.IsStar() {
			return n.pick("all information about ", "every detail of ") + plural(noun)
		}
		col := n.colWord(s, x)
		return n.pick(
			"the "+col+" of each "+noun,
			"the "+col+" of the "+plural(noun),
			"each "+noun+"'s "+col,
		)
	case *sqlast.Agg:
		return n.aggPhrase(s, x, noun)
	default:
		return sqlast.ExprString(e)
	}
}

func (n *nlGen) aggPhrase(s *sqlast.Select, a *sqlast.Agg, noun string) string {
	if a.Arg.IsStar() {
		return n.pick("the number of ", "how many ") + plural(n.starNoun(s, noun))
	}
	col := n.colWord(s, a.Arg)
	switch a.Func {
	case sqlast.Count:
		if a.Distinct {
			return n.pick("the number of different ", "how many distinct ") + plural(col)
		}
		return "the number of " + plural(col)
	case sqlast.Sum:
		return n.pick("the total ", "the combined ") + col + " of all " + plural(noun)
	case sqlast.Avg:
		return n.pick("the average ", "the mean ") + col + " of the " + plural(noun)
	case sqlast.Min:
		return n.pick("the lowest ", "the smallest ", "the minimum ") + col + " among the " + plural(noun)
	default:
		return n.pick("the highest ", "the largest ", "the maximum ") + col + " among the " + plural(noun)
	}
}

// starNoun is what COUNT(*) counts: the joined relation noun when the
// block joins tables, else the main entity.
func (n *nlGen) starNoun(s *sqlast.Select, noun string) string {
	if len(s.From.Tables) > 1 {
		last := s.From.Tables[len(s.From.Tables)-1].Name
		return n.b.synOf(n.rng, last)
	}
	return noun
}

// colWord picks a user word for a column.
func (n *nlGen) colWord(s *sqlast.Select, c *sqlast.ColumnRef) string {
	table := c.Table
	if table == "" && len(s.From.Tables) == 1 {
		table = s.From.Tables[0].Name
	}
	return n.b.synOf(n.rng, strings.ToLower(table)+"."+strings.ToLower(c.Column))
}

// joinPhrase verbalizes a join path with the bridge verb: "enrolled in
// the courses".
func (n *nlGen) joinPhrase(s *sqlast.Select) string {
	if len(s.From.Tables) < 2 {
		return ""
	}
	var verbs []string
	for _, tr := range s.From.Tables[1:] {
		key := strings.ToLower(tr.Name)
		verb := n.b.BridgeVerb[key]
		noun := n.b.Noun(tr.Name)
		if verb == "" {
			verbs = append(verbs, n.pick("together with", "combined with")+" their "+plural(noun))
			continue
		}
		verbs = append(verbs, n.pick("that are ", "")+verb+" the "+plural(noun))
	}
	return strings.Join(verbs, " ")
}

func (n *nlGen) condPhrase(s *sqlast.Select, e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case "AND":
			return n.condPhrase(s, x.L) + n.pick(" and ", " and whose ") + n.condPhrase(s, x.R)
		case "OR":
			return n.condPhrase(s, x.L) + " or " + n.condPhrase(s, x.R)
		}
		return n.comparison(s, x)
	case *sqlast.Not:
		return "not " + n.condPhrase(s, x.X)
	case *sqlast.Between:
		return "with " + n.lhsWord(s, x.X) + " between " + n.rhs(s, x.Lo) + " and " + n.rhs(s, x.Hi)
	case *sqlast.In:
		inner := x.Sub.Select
		noun := n.b.synOf(n.rng, inner.From.Tables[0].Name)
		body := n.pick("that appear in the ", "that have entries in the ") + noun + " records"
		if x.Negate {
			body = n.pick("that have no ", "without any ") + noun + " records"
		}
		if inner.Where != nil {
			body += " " + n.condPhrase(inner, inner.Where)
		}
		return body
	case *sqlast.Exists:
		if x.Negate {
			return "that have no matching records"
		}
		return "that have matching records"
	default:
		return ""
	}
}

func (n *nlGen) comparison(s *sqlast.Select, x *sqlast.Binary) string {
	lhs := n.lhsWord(s, x.L)
	rhs := n.rhs(s, x.R)
	// Scalar subquery comparisons read as "above the average age".
	if sub, ok := x.R.(*sqlast.Subquery); ok {
		inner := sub.Q.Select
		if agg, ok := soleAgg(inner); ok {
			aggWord := map[sqlast.AggFunc]string{
				sqlast.Avg: n.pick("the average", "the mean"),
				sqlast.Max: n.pick("the highest", "the maximum"),
				sqlast.Min: n.pick("the lowest", "the minimum"),
				sqlast.Sum: "the total",
			}[agg.Func]
			colw := n.colWord(inner, agg.Arg)
			switch x.Op {
			case ">", ">=":
				return n.pick("whose ", "with ") + lhs + " above " + aggWord + " " + colw
			case "<", "<=":
				return n.pick("whose ", "with ") + lhs + " below " + aggWord + " " + colw
			default:
				return n.pick("whose ", "with ") + lhs + " equal to " + aggWord + " " + colw
			}
		}
	}
	switch x.Op {
	case "=":
		return n.pick("whose ", "with ") + lhs + n.pick(" is ", " equal to ") + rhs
	case "!=":
		return "whose " + lhs + " is not " + rhs
	case ">":
		return n.pick("whose ", "with ") + lhs + n.pick(" greater than ", " over ", " more than ") + rhs
	case ">=":
		return "whose " + lhs + " is at least " + rhs
	case "<":
		return n.pick("whose ", "with ") + lhs + n.pick(" less than ", " under ", " below ") + rhs
	case "<=":
		return "whose " + lhs + " is at most " + rhs
	case "LIKE":
		return "whose " + lhs + " contains " + rhs
	case "NOT LIKE":
		return "whose " + lhs + " does not contain " + rhs
	default:
		return lhs + " " + strings.ToLower(x.Op) + " " + rhs
	}
}

func (n *nlGen) lhsWord(s *sqlast.Select, e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		return n.colWord(s, x)
	case *sqlast.Agg:
		return n.aggPhrase(s, x, n.mainNoun(s))
	default:
		return sqlast.ExprString(e)
	}
}

func (n *nlGen) rhs(s *sqlast.Select, e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.Lit:
		return x.Text
	case *sqlast.ColumnRef:
		return n.colWord(s, x)
	default:
		return sqlast.ExprString(e)
	}
}

// shapePhrase verbalizes GROUP BY / HAVING / ORDER BY / LIMIT in
// user-speak.
func (n *nlGen) shapePhrase(s *sqlast.Select) []string {
	var parts []string
	if len(s.GroupBy) > 0 {
		var keys []string
		for _, gkey := range s.GroupBy {
			keys = append(keys, n.colWord(s, gkey))
		}
		parts = append(parts, n.pick("for each ", "per ", "grouped by ")+strings.Join(keys, " and "))
	}
	if s.Having != nil {
		if b, ok := s.Having.(*sqlast.Binary); ok {
			if agg, ok := b.L.(*sqlast.Agg); ok && agg.Arg.IsStar() {
				parts = append(parts, n.pick("having more than ", "with over ")+n.rhs(s, b.R)+" "+plural(n.starNoun(s, n.mainNoun(s))))
			} else {
				parts = append(parts, "having "+n.condPhrase(s, s.Having))
			}
		}
	}
	if len(s.OrderBy) > 0 {
		o := s.OrderBy[0]
		key := n.lhsWord(s, o.Expr)
		if agg, ok := o.Expr.(*sqlast.Agg); ok && agg.Arg.IsStar() {
			key = "number of " + plural(n.starNoun(s, n.mainNoun(s)))
		}
		switch {
		case s.Limit == 1 && o.Desc:
			parts = append(parts, n.pick("with the most ", "with the highest ", "with the top ")+key)
		case s.Limit == 1 && !o.Desc:
			parts = append(parts, n.pick("with the fewest ", "with the lowest ")+key)
		case s.Limit > 1:
			dir := "highest"
			if !o.Desc {
				dir = "lowest"
			}
			parts = append(parts, "limited to the "+numWordNL(s.Limit)+" "+dir+" by "+key)
		case o.Desc:
			parts = append(parts, n.pick("in descending order of ", "from highest to lowest by ", "sorted by descending ")+key)
		default:
			parts = append(parts, n.pick("sorted by ", "in ascending order of ", "in alphabetical order of ")+key)
		}
	}
	return parts
}

func numWordNL(n int) string {
	words := []string{"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten"}
	if n >= 0 && n < len(words) {
		return words[n]
	}
	return "several"
}
