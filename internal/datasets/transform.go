package datasets

import (
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// renameBundle produces a schema-renamed variant of a bundle (an
// MT-TEQL schema transformation): every table and data column gets a
// fresh identifier while annotations, synonyms, content and join
// annotations are carried over, so the database means the same thing
// under different names.
func renameBundle(src *DBBundle, name string, rng *rand.Rand) *DBBundle {
	tMap := map[string]string{} // lower old → new
	cMap := map[string]string{} // lower "t.c" old → new

	suffixes := []string{"_tab", "_data", "_rec", "_info"}
	colSuffixes := []string{"_fld", "_col", "_v"}
	db := &schema.Database{Name: name}
	for _, t := range src.Schema.Tables {
		newT := t.Name + suffixes[rng.Intn(len(suffixes))]
		tMap[strings.ToLower(t.Name)] = newT
		nt := &schema.Table{Name: newT, Annotation: annOf(t)}
		for _, c := range t.Columns {
			newC := c.Name + colSuffixes[rng.Intn(len(colSuffixes))]
			cMap[strings.ToLower(t.Name)+"."+strings.ToLower(c.Name)] = newC
			nt.Columns = append(nt.Columns, &schema.Column{
				Name: newC, Type: c.Type, Annotation: c.NL(),
			})
		}
		for _, pk := range t.PrimaryKey {
			nt.PrimaryKey = append(nt.PrimaryKey, cMap[strings.ToLower(t.Name)+"."+strings.ToLower(pk)])
		}
		db.Tables = append(db.Tables, nt)
	}
	for _, fk := range src.Schema.ForeignKeys {
		db.ForeignKeys = append(db.ForeignKeys, schema.ForeignKey{
			FromTable:  tMap[strings.ToLower(fk.FromTable)],
			FromColumn: cMap[strings.ToLower(fk.FromTable)+"."+strings.ToLower(fk.FromColumn)],
			ToTable:    tMap[strings.ToLower(fk.ToTable)],
			ToColumn:   cMap[strings.ToLower(fk.ToTable)+"."+strings.ToLower(fk.ToColumn)],
		})
	}
	for _, ann := range src.Schema.JoinAnnotations {
		na := &schema.JoinAnnotation{Description: ann.Description, TableKeys: ann.TableKeys}
		for _, t := range ann.Tables {
			na.Tables = append(na.Tables, tMap[strings.ToLower(t)])
		}
		for _, e := range ann.Conditions {
			na.Conditions = append(na.Conditions, schema.JoinEdge{
				LeftTable:   tMap[strings.ToLower(e.LeftTable)],
				LeftColumn:  cMap[strings.ToLower(e.LeftTable)+"."+strings.ToLower(e.LeftColumn)],
				RightTable:  tMap[strings.ToLower(e.RightTable)],
				RightColumn: cMap[strings.ToLower(e.RightTable)+"."+strings.ToLower(e.RightColumn)],
			})
		}
		db.JoinAnnotations = append(db.JoinAnnotations, na)
	}

	out := &DBBundle{
		Schema:     db,
		Syn:        map[string][]string{},
		BridgeVerb: map[string]string{},
		colKinds:   map[string]vkind{},
	}
	for key, syns := range src.Syn {
		out.Syn[renameKey(key, tMap, cMap)] = syns
	}
	for key, verb := range src.BridgeVerb {
		out.BridgeVerb[renameKey(key, tMap, cMap)] = verb
	}
	for key, k := range src.colKinds {
		out.colKinds[renameKey(key, tMap, cMap)] = k
	}

	// Copy content under the new names.
	in := engine.NewInstance(db)
	for tname, td := range src.Content.Tables {
		ntd := in.Tables[strings.ToLower(tMap[tname])]
		if ntd == nil {
			continue
		}
		ntd.Rows = append(ntd.Rows, td.Rows...)
	}
	out.Content = in
	return out
}

func annOf(t *schema.Table) string {
	if t.Annotation != "" {
		return t.Annotation
	}
	return t.NL()
}

func renameKey(key string, tMap, cMap map[string]string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		t := key[:i]
		if nc, ok := cMap[key]; ok {
			return strings.ToLower(tMap[t]) + "." + strings.ToLower(nc)
		}
		return key
	}
	if nt, ok := tMap[key]; ok {
		return strings.ToLower(nt)
	}
	return key
}

// rewriteQuery translates a query from the source bundle's identifiers
// to the target (renamed) bundle's identifiers. It returns nil when a
// reference cannot be mapped.
func rewriteQuery(q *sqlast.Query, src, dst *DBBundle) *sqlast.Query {
	bound := q.Clone()
	if err := src.Schema.Bind(bound); err != nil {
		return nil
	}
	sqlast.ResolveAliases(bound)

	tMap := map[string]string{}
	cMap := map[string]string{}
	for i, t := range src.Schema.Tables {
		nt := dst.Schema.Tables[i]
		tMap[strings.ToLower(t.Name)] = nt.Name
		for j, c := range t.Columns {
			cMap[strings.ToLower(t.Name)+"."+strings.ToLower(c.Name)] = nt.Columns[j].Name
		}
	}
	ok := true
	sqlast.WalkQueries(bound, func(sub *sqlast.Query) {
		s := sub.Select
		for i := range s.From.Tables {
			tr := &s.From.Tables[i]
			if tr.Sub != nil {
				continue
			}
			nt, found := tMap[strings.ToLower(tr.Name)]
			if !found {
				ok = false
				return
			}
			tr.Name = nt
		}
		for _, c := range sqlast.SelectColumns(s) {
			if c.IsStar() && c.Table == "" {
				continue
			}
			key := strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
			if c.IsStar() {
				if nt, found := tMap[strings.ToLower(c.Table)]; found {
					c.Table = nt
				}
				continue
			}
			nc, found := cMap[key]
			if !found {
				ok = false
				return
			}
			c.Table = tMap[strings.ToLower(c.Table)]
			c.Column = nc
		}
	})
	if !ok {
		return nil
	}
	if err := dst.Schema.Bind(bound); err != nil {
		return nil
	}
	return bound
}

// fillValues replaces masked placeholder literals in a (generalized)
// query with sampled content values, so the query can be phrased as a
// concrete NL question. The query is modified in place.
func fillValues(b *DBBundle, q *sqlast.Query, rng *rand.Rand) {
	qg := &queryGen{b: b, rng: rng}
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		s := sub.Select
		replace := func(lhs, rhs sqlast.Expr) {
			lit, ok := rhs.(*sqlast.Lit)
			if !ok || lit.Kind != sqlast.PlaceholderLit {
				return
			}
			c, ok := lhs.(*sqlast.ColumnRef)
			if !ok {
				lit.Kind = sqlast.NumberLit
				lit.Text = "2"
				return
			}
			t, col := b.Schema.ResolveColumn(s, c)
			if col == nil {
				lit.Kind = sqlast.NumberLit
				lit.Text = "1"
				return
			}
			v := qg.sampleValue(t, col)
			*lit = *v
		}
		walk := func(e sqlast.Expr) {
			sqlast.WalkExprs(e, func(node sqlast.Expr) {
				switch x := node.(type) {
				case *sqlast.Binary:
					replace(x.L, x.R)
				case *sqlast.Between:
					replace(x.X, x.Lo)
					replace(x.X, x.Hi)
				}
			})
		}
		walk(s.Where)
		walk(s.Having)
	})
}
