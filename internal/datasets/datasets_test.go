package datasets

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hardness"
	"repro/internal/norm"
	"repro/internal/sqlast"
)

func TestBuildDatabaseValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		b := buildDatabase("db", rng, false)
		if err := b.Schema.Validate(); err != nil {
			t.Fatalf("database %d invalid: %v", i, err)
		}
		// Content exists for every table.
		for _, tab := range b.Schema.Tables {
			td := b.Content.Tables[strings.ToLower(tab.Name)]
			if td == nil || len(td.Rows) == 0 {
				t.Fatalf("table %s has no content", tab.Name)
			}
			for _, row := range td.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row arity mismatch in %s", tab.Name)
				}
			}
		}
	}
}

func TestBuildDatabaseOpaque(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		b := buildDatabase("qdb", rng, true)
		if err := b.Schema.Validate(); err != nil {
			t.Fatalf("opaque database invalid: %v", err)
		}
		for _, tab := range b.Schema.Tables {
			if !strings.HasPrefix(tab.Name, "t_") && !strings.HasPrefix(tab.Name, "rel_") {
				t.Fatalf("table name %q not opaque", tab.Name)
			}
			// Table annotations must not leak semantics (they mirror
			// the opaque identifiers); key columns are opaque uids.
			if tab.Annotation != strings.ReplaceAll(tab.Name, "_", " ") &&
				tab.Annotation != "" {
				t.Fatalf("annotation %q leaks semantics for %s", tab.Annotation, tab.Name)
			}
			for _, pk := range tab.PrimaryKey {
				if !strings.HasPrefix(pk, "uid") && !strings.HasSuffix(pk, "_id") {
					// Entity keys are uid; compound bridge keys are uid/uid2.
					t.Fatalf("key column %q not opaque in %s", pk, tab.Name)
				}
			}
		}
		// The Syn map must still carry real semantics.
		hasSemantic := false
		for _, syns := range b.Syn {
			for _, s := range syns {
				if !strings.HasPrefix(s, "t_") && !strings.HasPrefix(s, "val") && s != "uid" {
					hasSemantic = true
				}
			}
		}
		if !hasSemantic {
			t.Fatal("opaque bundle lost its semantic vocabulary")
		}
		if len(b.Schema.JoinAnnotations) == 0 && len(b.Schema.ForeignKeys) > 0 {
			t.Fatal("opaque database with FKs lacks join annotations")
		}
	}
}

func TestQueryGenProducesValidQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := buildDatabase("db", rng, false)
	g := newQueryGen(b, rng)
	for i := 0; i < 200; i++ {
		q := mustGen(t, g)
		if err := b.Schema.Bind(q.Clone()); err != nil {
			t.Fatalf("generated query does not bind: %s: %v", q, err)
		}
		// Every generated query must execute on the content.
		if _, err := b.Content.Exec(q); err != nil {
			t.Fatalf("generated query does not execute: %s: %v", q, err)
		}
	}
}

func TestQueryGenMixApproximatesTable3(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var nested, order, group, compound, total int
	for d := 0; d < 8; d++ {
		b := buildDatabase("db", rng, false)
		g := newQueryGen(b, rng)
		for i := 0; i < 100; i++ {
			q := mustGen(t, g)
			total++
			if hardness.HasNested(q) {
				nested++
			}
			if hardness.HasOrderBy(q) {
				order++
			}
			if hardness.HasGroupBy(q) {
				group++
			}
			if q.IsCompound() {
				compound++
			}
		}
	}
	frac := func(n int) float64 { return float64(n) / float64(total) }
	// SPIDER train: nested 14%, ORDER BY 21%, GROUP BY 23%, compound 6%.
	if f := frac(nested); f < 0.08 || f > 0.30 {
		t.Errorf("nested fraction %.2f out of range", f)
	}
	if f := frac(order); f < 0.12 || f > 0.35 {
		t.Errorf("order fraction %.2f out of range", f)
	}
	if f := frac(group); f < 0.12 || f > 0.35 {
		t.Errorf("group fraction %.2f out of range", f)
	}
	if f := frac(compound); f < 0.02 || f > 0.15 {
		t.Errorf("compound fraction %.2f out of range", f)
	}
}

func TestQueryGenCoversDifficulties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := map[hardness.Level]int{}
	for d := 0; d < 6; d++ {
		b := buildDatabase("db", rng, false)
		g := newQueryGen(b, rng)
		for i := 0; i < 80; i++ {
			counts[hardness.Classify(mustGen(t, g))]++
		}
	}
	for _, lvl := range hardness.Levels {
		if counts[lvl] == 0 {
			t.Errorf("difficulty %v never generated (%v)", lvl, counts)
		}
	}
}

func TestNLGenProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := buildDatabase("db", rng, false)
	g := newQueryGen(b, rng)
	ng := &nlGen{b: b, rng: rng}
	for i := 0; i < 100; i++ {
		q := mustGen(t, g)
		nl := ng.phrase(q)
		if len(nl) < 8 {
			t.Fatalf("NL too short for %s: %q", q, nl)
		}
		if strings.Contains(nl, "%s") {
			t.Fatalf("frame not substituted: %q", nl)
		}
		lower := strings.ToLower(nl)
		if strings.Contains(lower, "select ") || strings.Contains(lower, " from ") {
			t.Fatalf("NL leaks SQL: %q", nl)
		}
	}
}

func TestNLGenVariesPhrasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := buildDatabase("db", rng, false)
	g := newQueryGen(b, rng)
	q := mustGen(t, g)
	ng := &nlGen{b: b, rng: rng}
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		seen[ng.phrase(q)] = true
	}
	if len(seen) < 2 {
		t.Error("NL generator produces a single fixed phrasing")
	}
}

func TestSpiderLike(t *testing.T) {
	bench := SpiderLike(SpiderConfig{TrainDBs: 4, ValDBs: 2, TrainPerDB: 20, ValPerDB: 15, Seed: 1})
	if got := len(DBNames(bench.Train)); got != 4 {
		t.Errorf("train DBs = %d, want 4", got)
	}
	if got := len(DBNames(bench.Val)); got != 2 {
		t.Errorf("val DBs = %d, want 2", got)
	}
	// Cross-domain: no val DB appears in train.
	trainDBs := map[string]bool{}
	for _, n := range DBNames(bench.Train) {
		trainDBs[n] = true
	}
	for _, n := range DBNames(bench.Val) {
		if trainDBs[n] {
			t.Errorf("val database %s leaks into train", n)
		}
	}
	if len(bench.Train) != 80 || len(bench.Val) != 30 {
		t.Errorf("split sizes: train %d val %d", len(bench.Train), len(bench.Val))
	}
	// Items must be distinct per database.
	for _, db := range DBNames(bench.Val) {
		seen := map[string]bool{}
		for _, q := range GoldQueries(bench.Val, db) {
			key := norm.Canonical(q)
			if seen[key] {
				t.Fatalf("duplicate gold in %s: %s", db, q)
			}
			seen[key] = true
		}
	}
}

func TestSpiderLikeDeterministic(t *testing.T) {
	a := SpiderLike(SpiderConfig{TrainDBs: 2, ValDBs: 1, TrainPerDB: 10, ValPerDB: 10, Seed: 9})
	b := SpiderLike(SpiderConfig{TrainDBs: 2, ValDBs: 1, TrainPerDB: 10, ValPerDB: 10, Seed: 9})
	if len(a.Val) != len(b.Val) {
		t.Fatal("nondeterministic val size")
	}
	for i := range a.Val {
		if a.Val[i].NL != b.Val[i].NL || a.Val[i].Gold.String() != b.Val[i].Gold.String() {
			t.Fatalf("nondeterministic item %d", i)
		}
	}
}

func TestGeoLike(t *testing.T) {
	bench := GeoLike(GeoConfig{Train: 40, Val: 5, Test: 20, Seed: 2})
	if len(bench.DBs) != 1 {
		t.Fatalf("GEO should have one database, got %d", len(bench.DBs))
	}
	if len(bench.Train) == 0 || len(bench.Test) == 0 {
		t.Fatal("empty GEO splits")
	}
	for _, it := range bench.Test {
		if it.DB != "geo" {
			t.Fatal("GEO item on wrong database")
		}
	}
}

func TestMTTEQLLike(t *testing.T) {
	spider := SpiderLike(SpiderConfig{TrainDBs: 2, ValDBs: 2, TrainPerDB: 10, ValPerDB: 15, Seed: 3})
	mt := MTTEQLLike(spider, MTTEQLConfig{N: 60, VariantsPerDB: 2, Seed: 4})
	if len(mt.Test) != 60 {
		t.Fatalf("MT-TEQL test size %d, want 60", len(mt.Test))
	}
	renamed := 0
	for _, it := range mt.Test {
		b := mt.DBs[it.DB]
		if b == nil {
			t.Fatalf("missing bundle %s", it.DB)
		}
		if err := b.Schema.Bind(it.Gold.Clone()); err != nil {
			t.Fatalf("transformed gold does not bind on %s: %s: %v", it.DB, it.Gold, err)
		}
		if strings.Contains(it.DB, "_m") {
			renamed++
		}
	}
	if renamed == 0 {
		t.Error("no schema-renamed samples generated")
	}
}

func TestRenameBundlePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := buildDatabase("db", rng, false)
	dst := renameBundle(src, "db_m0", rng)
	if err := dst.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(dst.Schema.Tables) != len(src.Schema.Tables) {
		t.Fatal("table count changed")
	}
	for i, tab := range dst.Schema.Tables {
		if tab.Name == src.Schema.Tables[i].Name {
			t.Errorf("table %s not renamed", tab.Name)
		}
		// Annotations survive so the dialect builder still speaks the
		// same language.
		if tab.Annotation == "" {
			t.Errorf("renamed table %s lost its annotation", tab.Name)
		}
	}
	// Content row counts carried over.
	for tname, td := range src.Content.Tables {
		nt := dst.Schema.Tables[indexOfTable(src, tname)]
		if got := len(dst.Content.Tables[strings.ToLower(nt.Name)].Rows); got != len(td.Rows) {
			t.Errorf("content rows for %s: %d vs %d", nt.Name, got, len(td.Rows))
		}
	}
}

func indexOfTable(b *DBBundle, lower string) int {
	for i, t := range b.Schema.Tables {
		if strings.ToLower(t.Name) == lower {
			return i
		}
	}
	return -1
}

func TestRewriteQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := buildDatabase("db", rng, false)
	dst := renameBundle(src, "db_m0", rng)
	g := newQueryGen(src, rng)
	for i := 0; i < 50; i++ {
		q := mustGen(t, g)
		rw := rewriteQuery(q, src, dst)
		if rw == nil {
			t.Fatalf("rewrite failed for %s", q)
		}
		if err := dst.Schema.Bind(rw.Clone()); err != nil {
			t.Fatalf("rewritten query does not bind: %s: %v", rw, err)
		}
		// Same structure: canonical forms must match up to renaming.
		if hardness.Classify(q) != hardness.Classify(rw) {
			t.Errorf("difficulty changed by rewrite: %s vs %s", q, rw)
		}
	}
}

func TestQBENLike(t *testing.T) {
	bench := QBENLike(QBENConfig{DBs: 3, SamplesPerDB: 12, TestPerDB: 6, Seed: 5})
	if len(bench.DBs) != 3 {
		t.Fatalf("QBEN DBs = %d", len(bench.DBs))
	}
	if len(bench.Samples) == 0 || len(bench.Test) == 0 {
		t.Fatal("empty QBEN splits")
	}
	// Opaque identifiers everywhere.
	for _, b := range bench.DBs {
		for _, tab := range b.Schema.Tables {
			if !strings.HasPrefix(tab.Name, "t_") && !strings.HasPrefix(tab.Name, "rel_") {
				t.Fatalf("QBEN table %q not opaque", tab.Name)
			}
		}
	}
	// Test golds bind, and none equals a sample (they are new
	// component-similar queries).
	sampleCanon := map[string]bool{}
	for _, it := range bench.Samples {
		sampleCanon[it.DB+"|"+norm.Canonical(it.Gold)] = true
	}
	joins := 0
	for _, it := range bench.Test {
		b := bench.DBs[it.DB]
		if err := b.Schema.Bind(it.Gold.Clone()); err != nil {
			t.Fatalf("QBEN test gold does not bind: %s: %v", it.Gold, err)
		}
		if sampleCanon[it.DB+"|"+norm.Canonical(it.Gold)] {
			t.Fatalf("test gold equals a sample: %s", it.Gold)
		}
		if len(it.Gold.Select.From.Joins) > 0 {
			joins++
		}
		// NL questions must use semantic vocabulary, not opaque names.
		if strings.Contains(it.NL, "t_") || strings.Contains(it.NL, "rel_") {
			t.Errorf("QBEN NL leaks opaque identifiers: %q", it.NL)
		}
	}
	if joins == 0 {
		t.Error("QBEN test set has no join queries")
	}
	// No masked placeholders left in test golds.
	for _, it := range bench.Test {
		sqlast.WalkQueries(it.Gold, func(sub *sqlast.Query) {
			sqlast.WalkExprs(sub.Select.Where, func(e sqlast.Expr) {
				if l, ok := e.(*sqlast.Lit); ok && l.Kind == sqlast.PlaceholderLit {
					t.Errorf("unfilled placeholder in QBEN gold: %s", it.Gold)
				}
			})
		})
	}
}

func TestStatsOf(t *testing.T) {
	bench := SpiderLike(SpiderConfig{TrainDBs: 3, ValDBs: 2, TrainPerDB: 30, ValPerDB: 20, Seed: 6})
	st := StatsOf(bench, bench.Train)
	if st.Databases != 3 || st.Queries != 90 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.AvgTables < 1 || st.AvgTables > 5 {
		t.Errorf("avg tables implausible: %v", st.AvgTables)
	}
	if st.OrderBy == 0 || st.GroupBy == 0 {
		t.Errorf("clause counts empty: %+v", st)
	}
}

func TestBenchmarkJSONRoundTrip(t *testing.T) {
	bench := SpiderLike(SpiderConfig{TrainDBs: 2, ValDBs: 1, TrainPerDB: 10, ValPerDB: 8, Seed: 21})
	var buf bytes.Buffer
	if err := bench.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != bench.Name || len(loaded.DBs) != len(bench.DBs) {
		t.Fatalf("benchmark shape changed: %s %d", loaded.Name, len(loaded.DBs))
	}
	if len(loaded.Train) != len(bench.Train) || len(loaded.Val) != len(bench.Val) {
		t.Fatal("split sizes changed")
	}
	for i := range bench.Val {
		if loaded.Val[i].NL != bench.Val[i].NL {
			t.Fatalf("NL changed at %d", i)
		}
		if norm.Canonical(loaded.Val[i].Gold) != norm.Canonical(bench.Val[i].Gold) {
			t.Fatalf("gold changed at %d: %s vs %s", i, loaded.Val[i].Gold, bench.Val[i].Gold)
		}
	}
	// Content survives: every loaded gold executes and matches the
	// original result.
	for _, it := range bench.Val[:4] {
		orig := bench.DBs[it.DB]
		rest := loaded.DBs[it.DB]
		a, err := orig.Content.Exec(it.Gold)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rest.Content.Exec(it.Gold)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.ResultsEqual(a, b, false) {
			t.Fatalf("execution differs after round trip for %s", it.Gold)
		}
	}
	// Synonyms and bridge verbs survive (needed by NL generation).
	for name, bundle := range bench.DBs {
		if len(loaded.DBs[name].Syn) != len(bundle.Syn) {
			t.Fatalf("synonyms lost for %s", name)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","databases":{},"val":[{"db":"d","nl":"q","sql":"not sql"}]}`)); err == nil {
		t.Error("unparsable SQL accepted")
	}
}

// mustGen draws one query, failing the test on a generator error.
func mustGen(t *testing.T, g *queryGen) *sqlast.Query {
	t.Helper()
	q, err := g.gen()
	if err != nil {
		t.Fatal(err)
	}
	return q
}
