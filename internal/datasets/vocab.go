// Package datasets generates the four synthetic NLIDB benchmarks used by
// the reproduction: GEO-like (one database, small train set), SPIDER-like
// (cross-domain, many databases, four difficulty levels), MT-TEQL-like
// (metamorphic utterance and schema transformations of the SPIDER-like
// validation set) and QBEN-like (opaque schemas whose join semantics are
// not inferable from identifiers). The real benchmarks are licensed
// datasets that cannot ship with this repository; the generators
// reproduce their *shapes* — domain splits, difficulty mixes, clause-type
// proportions (Table 3) and join-opacity — which is what the paper's
// experiments measure. Every generator is deterministic in its seed.
package datasets

import "repro/internal/schema"

// vkind classifies the value pool an attribute draws from.
type vkind int

const (
	vPersonName vkind = iota
	vCityName
	vCountryName
	vWord     // generic category word
	vYear     // 1990..2020
	vSmallInt // 1..100
	vBigInt   // 100..10000
	vMoney    // 1000..99000
	vCode     // AAA-style codes
)

// attr is one attribute archetype.
type attr struct {
	name     string // column identifier
	nl       string // annotation (empty: derived from name)
	synonyms []string
	typ      schema.Type
	kind     vkind
}

// archetype is one entity archetype; databases are composed from them.
type archetype struct {
	name     string // table identifier (singular)
	synonyms []string
	attrs    []attr
}

func num(name string, kind vkind, syns ...string) attr {
	return attr{name: name, typ: schema.Number, kind: kind, synonyms: syns}
}

func txt(name string, kind vkind, syns ...string) attr {
	return attr{name: name, typ: schema.Text, kind: kind, synonyms: syns}
}

// archetypes is the pool of entity archetypes; SPIDER-like databases are
// assembled by linking archetypes together.
var archetypes = []archetype{
	{name: "student", synonyms: []string{"pupil"}, attrs: []attr{
		txt("name", vPersonName, "full name"),
		num("age", vSmallInt),
		num("gpa", vSmallInt, "grade point average", "grade"),
		txt("major", vWord, "field of study"),
		txt("hometown", vCityName, "home city"),
	}},
	{name: "teacher", synonyms: []string{"instructor", "professor"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("subject", vWord, "discipline"),
		num("salary", vMoney, "pay", "wage"),
	}},
	{name: "course", synonyms: []string{"class"}, attrs: []attr{
		txt("title", vWord, "name"),
		num("credits", vSmallInt, "credit hours"),
		txt("department", vWord, "dept"),
		num("enrollment", vBigInt, "number enrolled"),
	}},
	{name: "employee", synonyms: []string{"worker", "staff member"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("city", vCityName, "home city"),
		num("salary", vMoney, "pay", "wage"),
	}},
	{name: "company", synonyms: []string{"firm", "corporation"}, attrs: []attr{
		txt("company_name", vWord, "name"),
		txt("headquarters", vCityName, "base city"),
		num("revenue", vMoney, "income", "earnings"),
		num("founded", vYear, "founding year", "year founded"),
	}},
	{name: "shop", synonyms: []string{"store", "outlet"}, attrs: []attr{
		txt("shop_name", vWord, "name"),
		txt("location", vCityName, "city"),
		num("number_products", vBigInt, "number of products", "product count"),
		num("open_year", vYear, "opening year"),
	}},
	{name: "product", synonyms: []string{"item", "good"}, attrs: []attr{
		txt("product_name", vWord, "name"),
		num("price", vMoney, "cost"),
		txt("category", vWord, "type"),
		num("stock", vBigInt, "quantity in stock", "inventory"),
	}},
	{name: "customer", synonyms: []string{"client", "buyer"}, attrs: []attr{
		txt("name", vPersonName),
		txt("city", vCityName, "home city"),
		num("age", vSmallInt),
		num("loyalty_points", vBigInt, "points"),
	}},
	{name: "stadium", synonyms: []string{"arena", "venue"}, attrs: []attr{
		txt("stadium_name", vWord, "name"),
		txt("city", vCityName, "location"),
		num("capacity", vBigInt, "seating capacity", "seats"),
		num("built_year", vYear, "year built"),
	}},
	{name: "concert", synonyms: []string{"show", "performance"}, attrs: []attr{
		txt("concert_name", vWord, "name", "title"),
		num("year", vYear, "hosting year"),
		num("attendance", vBigInt, "audience size"),
	}},
	{name: "singer", synonyms: []string{"artist", "vocalist"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("country", vCountryName, "nationality"),
		num("songs_released", vSmallInt, "number of songs"),
	}},
	{name: "driver", synonyms: []string{"racer", "pilot"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("nationality", vCountryName, "country"),
		num("wins", vSmallInt, "victories", "races won"),
	}},
	{name: "race", synonyms: []string{"grand prix", "competition"}, attrs: []attr{
		txt("race_name", vWord, "name"),
		txt("track", vWord, "circuit"),
		num("year", vYear, "season"),
		num("laps", vSmallInt, "lap count"),
	}},
	{name: "doctor", synonyms: []string{"physician", "medic"}, attrs: []attr{
		txt("name", vPersonName),
		txt("specialty", vWord, "specialization", "field"),
		num("experience_years", vSmallInt, "years of experience"),
		num("salary", vMoney, "pay"),
	}},
	{name: "patient", synonyms: []string{"case"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("city", vCityName, "home city"),
		num("visits", vSmallInt, "visit count", "number of visits"),
	}},
	{name: "book", synonyms: []string{"title", "volume"}, attrs: []attr{
		txt("book_title", vWord, "title", "name"),
		txt("genre", vWord, "category"),
		num("pages", vBigInt, "page count", "length"),
		num("published", vYear, "publication year", "year published"),
	}},
	{name: "author", synonyms: []string{"writer"}, attrs: []attr{
		txt("name", vPersonName),
		txt("country", vCountryName, "nationality"),
		num("age", vSmallInt),
		num("books_written", vSmallInt, "number of books"),
	}},
	{name: "movie", synonyms: []string{"film", "picture"}, attrs: []attr{
		txt("movie_title", vWord, "title", "name"),
		txt("genre", vWord, "category"),
		num("release_year", vYear, "year released", "year"),
		num("gross", vMoney, "box office", "earnings"),
	}},
	{name: "actor", synonyms: []string{"performer", "star"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("nationality", vCountryName, "country"),
		num("awards", vSmallInt, "award count", "number of awards"),
	}},
	{name: "airline", synonyms: []string{"carrier"}, attrs: []attr{
		txt("airline_name", vWord, "name"),
		txt("country", vCountryName, "home country"),
		num("fleet_size", vSmallInt, "number of planes", "planes"),
	}},
	{name: "airport", synonyms: []string{"airfield", "hub"}, attrs: []attr{
		txt("airport_name", vWord, "name"),
		txt("city", vCityName, "location"),
		num("gates", vSmallInt, "gate count", "number of gates"),
	}},
	{name: "team", synonyms: []string{"club", "squad"}, attrs: []attr{
		txt("team_name", vWord, "name"),
		txt("home_city", vCityName, "city"),
		num("founded", vYear, "founding year"),
		num("championships", vSmallInt, "titles", "titles won"),
	}},
	{name: "player", synonyms: []string{"athlete", "sportsman"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		txt("position", vWord, "role"),
		num("goals", vSmallInt, "goals scored", "score count"),
	}},
	{name: "hotel", synonyms: []string{"inn", "lodge"}, attrs: []attr{
		txt("hotel_name", vWord, "name"),
		txt("city", vCityName, "location"),
		num("stars", vSmallInt, "star rating", "rating"),
		num("rooms", vBigInt, "room count", "number of rooms"),
	}},
	{name: "restaurant", synonyms: []string{"diner", "eatery"}, attrs: []attr{
		txt("restaurant_name", vWord, "name"),
		txt("cuisine", vWord, "food type"),
		txt("city", vCityName, "location"),
		num("rating", vSmallInt, "score"),
	}},
	{name: "mechanic", synonyms: []string{"technician", "engineer"}, attrs: []attr{
		txt("name", vPersonName),
		num("age", vSmallInt),
		num("certifications", vSmallInt, "certificates"),
		num("salary", vMoney, "pay"),
	}},
}

// bridgeNames are the identifier patterns for many-to-many bridge
// tables and their NL verbs ("the students enrolled in the courses").
var bridgeVerbs = []string{
	"assigned to", "enrolled in", "belongs to", "works for", "performed at",
	"participates in", "visits", "borrowed", "ordered", "appears in",
	"plays for", "stays at",
}

// value pools shared by the content generator.
var (
	personNames = []string{
		"George", "John", "Alice", "Bob", "Carla", "Daniel", "Emma", "Frank",
		"Grace", "Henry", "Irene", "Jack", "Karen", "Liam", "Mona", "Nora",
		"Oscar", "Paula", "Quinn", "Rita", "Sam", "Tina", "Victor", "Wendy",
	}
	cityNames = []string{
		"Madrid", "Austin", "Bristol", "Toronto", "Lyon", "Osaka", "Porto",
		"Denver", "Seattle", "Geneva", "Dublin", "Oslo", "Prague", "Quito",
		"Hanoi", "Lima", "Cairo", "Perth",
	}
	countryNames = []string{
		"Spain", "France", "Japan", "Canada", "Brazil", "Norway", "Egypt",
		"Peru", "Ireland", "Vietnam", "Portugal", "Australia",
	}
	words = []string{
		"falcon", "ember", "cobalt", "willow", "summit", "harbor", "meadow",
		"quartz", "saffron", "tundra", "velvet", "zephyr", "aurora", "basil",
		"cedar", "delta", "indigo", "jasper", "maple", "onyx",
	}
)
