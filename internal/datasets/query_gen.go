package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// queryGen draws SQL queries over one database from a weighted template
// grammar whose clause-type mix approximates Table 3 of the paper
// (roughly 14% nested, 21% ORDER BY, 23% GROUP BY, 6% compound).
type queryGen struct {
	b   *DBBundle
	rng *rand.Rand
	// entity tables (single-column key), for projection-friendly shapes.
	entities []*schema.Table
}

func newQueryGen(b *DBBundle, rng *rand.Rand) *queryGen {
	g := &queryGen{b: b, rng: rng}
	for _, t := range b.Schema.Tables {
		if len(t.PrimaryKey) == 1 {
			g.entities = append(g.entities, t)
		}
	}
	if len(g.entities) == 0 {
		g.entities = b.Schema.Tables
	}
	return g
}

// gen produces one random query; every query binds against the schema.
// It returns an error (rather than panicking) in the pathological case
// where not even the fallback query binds — a malformed schema.
func (g *queryGen) gen() (*sqlast.Query, error) {
	for attempts := 0; attempts < 20; attempts++ {
		var q *sqlast.Query
		switch r := g.rng.Float64(); {
		case r < 0.12:
			q = g.simpleSelect()
		case r < 0.26:
			q = g.selectWhere()
		case r < 0.36:
			q = g.aggregate()
		case r < 0.48:
			q = g.superlative()
		case r < 0.54:
			q = g.orderedList()
		case r < 0.66:
			q = g.groupCount()
		case r < 0.72:
			q = g.groupHaving()
		case r < 0.80:
			q = g.joinQuery()
		case r < 0.87:
			q = g.nestedIn()
		case r < 0.94:
			q = g.scalarCompare()
		default:
			q = g.compound()
		}
		if q == nil {
			continue
		}
		if err := g.b.Schema.Bind(q); err != nil {
			continue
		}
		return q, nil
	}
	// Fallback that always binds on a well-formed schema.
	t := g.entities[g.rng.Intn(len(g.entities))]
	q := &sqlast.Query{Select: &sqlast.Select{
		Items: []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Table: t.Name, Column: t.Columns[1].Name}}},
		From:  sqlast.From{Tables: []sqlast.TableRef{{Name: t.Name}}},
	}}
	if err := g.b.Schema.Bind(q); err != nil {
		return nil, fmt.Errorf("datasets: fallback query does not bind against %s: %w", g.b.Schema.Name, err)
	}
	return q, nil
}

// randTable picks a random entity table.
func (g *queryGen) randTable() *schema.Table {
	return g.entities[g.rng.Intn(len(g.entities))]
}

// dataColumns returns the non-key columns of a table.
func (g *queryGen) dataColumns(t *schema.Table) []*schema.Column {
	var out []*schema.Column
	for _, c := range t.Columns {
		if isKeyish(t, c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func isKeyish(t *schema.Table, c *schema.Column) bool {
	for _, pk := range t.PrimaryKey {
		if strings.EqualFold(pk, c.Name) {
			return true
		}
	}
	return strings.HasSuffix(strings.ToLower(c.Name), "_id") || strings.EqualFold(c.Name, "uid")
}

func (g *queryGen) randColumn(t *schema.Table, typ schema.Type, any bool) *schema.Column {
	cols := g.dataColumns(t)
	var match []*schema.Column
	for _, c := range cols {
		if any || c.Type == typ {
			match = append(match, c)
		}
	}
	if len(match) == 0 {
		return nil
	}
	return match[g.rng.Intn(len(match))]
}

func colRef(t *schema.Table, c *schema.Column) *sqlast.ColumnRef {
	return &sqlast.ColumnRef{Table: t.Name, Column: c.Name}
}

func fromTable(t *schema.Table) sqlast.From {
	return sqlast.From{Tables: []sqlast.TableRef{{Name: t.Name}}}
}

func selectOf(items ...sqlast.Expr) []sqlast.SelectItem {
	out := make([]sqlast.SelectItem, 0, len(items))
	for _, e := range items {
		out = append(out, sqlast.SelectItem{Expr: e})
	}
	return out
}

// sampleValue draws an actual cell value of the column from the content
// so predicates are satisfiable and value post-processing is exercised.
func (g *queryGen) sampleValue(t *schema.Table, c *schema.Column) *sqlast.Lit {
	td := g.b.Content.Tables[strings.ToLower(t.Name)]
	if td != nil && len(td.Rows) > 0 {
		ci := -1
		for i, name := range td.Columns {
			if strings.EqualFold(name, c.Name) {
				ci = i
				break
			}
		}
		if ci >= 0 {
			v := td.Rows[g.rng.Intn(len(td.Rows))][ci]
			if v.IsNum {
				return &sqlast.Lit{Kind: sqlast.NumberLit, Text: trimFloat(v)}
			}
			return &sqlast.Lit{Kind: sqlast.StringLit, Text: v.Str}
		}
	}
	if c.Type == schema.Number {
		return sqlast.NumberLitOf(10 + g.rng.Intn(50))
	}
	return &sqlast.Lit{Kind: sqlast.StringLit, Text: words[g.rng.Intn(len(words))]}
}

func trimFloat(v engine.Value) string { return v.String() }

// predicate builds one comparison predicate over t's columns.
func (g *queryGen) predicate(t *schema.Table) sqlast.Expr {
	c := g.randColumn(t, schema.Text, true)
	if c == nil {
		return nil
	}
	val := g.sampleValue(t, c)
	op := "="
	if c.Type == schema.Number {
		op = []string{">", "<", ">=", "<=", "=", "!="}[g.rng.Intn(6)]
	} else if g.rng.Float64() < 0.12 {
		op = "!="
	}
	return &sqlast.Binary{Op: op, L: colRef(t, c), R: val}
}

func (g *queryGen) simpleSelect() *sqlast.Query {
	t := g.randTable()
	c := g.randColumn(t, 0, true)
	if c == nil {
		return nil
	}
	items := selectOf(colRef(t, c))
	if g.rng.Float64() < 0.3 {
		if c2 := g.randColumn(t, 0, true); c2 != nil && c2 != c {
			items = append(items, sqlast.SelectItem{Expr: colRef(t, c2)})
		}
	}
	sel := &sqlast.Select{Items: items, From: fromTable(t)}
	if g.rng.Float64() < 0.15 {
		sel.Distinct = true
		sel.Items = sel.Items[:1]
	}
	return &sqlast.Query{Select: sel}
}

func (g *queryGen) selectWhere() *sqlast.Query {
	q := g.simpleSelect()
	if q == nil {
		return nil
	}
	t := g.b.Schema.Table(q.Select.From.Tables[0].Name)
	p := g.predicate(t)
	if p == nil {
		return nil
	}
	if g.rng.Float64() < 0.25 {
		p2 := g.predicate(t)
		if p2 != nil {
			op := "AND"
			if g.rng.Float64() < 0.35 {
				op = "OR"
			}
			p = &sqlast.Binary{Op: op, L: p, R: p2}
		}
	}
	q.Select.Where = p
	return q
}

func (g *queryGen) aggregate() *sqlast.Query {
	t := g.randTable()
	var item sqlast.Expr
	switch g.rng.Intn(4) {
	case 0:
		item = &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}
	case 1:
		c := g.randColumn(t, schema.Text, false)
		if c == nil {
			return nil
		}
		item = &sqlast.Agg{Func: sqlast.Count, Distinct: true, Arg: colRef(t, c)}
	default:
		c := g.randColumn(t, schema.Number, false)
		if c == nil {
			return nil
		}
		fn := []sqlast.AggFunc{sqlast.Sum, sqlast.Avg, sqlast.Min, sqlast.Max}[g.rng.Intn(4)]
		item = &sqlast.Agg{Func: fn, Arg: colRef(t, c)}
	}
	sel := &sqlast.Select{Items: selectOf(item), From: fromTable(t)}
	if g.rng.Float64() < 0.35 {
		sel.Where = g.predicate(t)
	}
	return &sqlast.Query{Select: sel}
}

func (g *queryGen) superlative() *sqlast.Query {
	t := g.randTable()
	proj := g.randColumn(t, schema.Text, false)
	key := g.randColumn(t, schema.Number, false)
	if proj == nil || key == nil {
		return nil
	}
	sel := &sqlast.Select{
		Items:   selectOf(colRef(t, proj)),
		From:    fromTable(t),
		OrderBy: []sqlast.OrderItem{{Expr: colRef(t, key), Desc: g.rng.Float64() < 0.7}},
		Limit:   1,
	}
	return &sqlast.Query{Select: sel}
}

func (g *queryGen) orderedList() *sqlast.Query {
	t := g.randTable()
	proj := g.randColumn(t, 0, true)
	key := g.randColumn(t, 0, true)
	if proj == nil || key == nil {
		return nil
	}
	sel := &sqlast.Select{
		Items:   selectOf(colRef(t, proj)),
		From:    fromTable(t),
		OrderBy: []sqlast.OrderItem{{Expr: colRef(t, key), Desc: g.rng.Float64() < 0.4}},
	}
	return &sqlast.Query{Select: sel}
}

func (g *queryGen) groupCount() *sqlast.Query {
	t := g.randTable()
	key := g.randColumn(t, schema.Text, false)
	if key == nil {
		return nil
	}
	sel := &sqlast.Select{
		Items:   selectOf(colRef(t, key), &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}),
		From:    fromTable(t),
		GroupBy: []*sqlast.ColumnRef{colRef(t, key)},
	}
	// Sometimes the "most common X" shape instead of the plain listing.
	if g.rng.Float64() < 0.4 {
		sel.Items = sel.Items[:1]
		sel.OrderBy = []sqlast.OrderItem{{
			Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
			Desc: true,
		}}
		sel.Limit = 1
	}
	return &sqlast.Query{Select: sel}
}

func (g *queryGen) groupHaving() *sqlast.Query {
	q := g.groupCount()
	if q == nil || q.Select.Limit > 0 {
		return g.groupHavingRetry()
	}
	q.Select.Having = &sqlast.Binary{
		Op: ">",
		L:  &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
		R:  sqlast.NumberLitOf(1 + g.rng.Intn(4)),
	}
	return q
}

func (g *queryGen) groupHavingRetry() *sqlast.Query {
	t := g.randTable()
	key := g.randColumn(t, schema.Text, false)
	if key == nil {
		return nil
	}
	return &sqlast.Query{Select: &sqlast.Select{
		Items:   selectOf(colRef(t, key)),
		From:    fromTable(t),
		GroupBy: []*sqlast.ColumnRef{colRef(t, key)},
		Having: &sqlast.Binary{
			Op: ">",
			L:  &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
			R:  sqlast.NumberLitOf(1 + g.rng.Intn(4)),
		},
	}}
}

// joinPath is one usable FK chain.
type joinPath struct {
	tables []*schema.Table
	joins  []sqlast.JoinCond
}

// joinPaths enumerates 2-table FK joins and, through bridges, 3-table
// chains.
func (g *queryGen) joinPaths() []joinPath {
	db := g.b.Schema
	var paths []joinPath
	for _, fk := range db.ForeignKeys {
		from, to := db.Table(fk.FromTable), db.Table(fk.ToTable)
		if from == nil || to == nil {
			continue
		}
		paths = append(paths, joinPath{
			tables: []*schema.Table{to, from},
			joins: []sqlast.JoinCond{{
				Left:  sqlast.ColumnRef{Table: to.Name, Column: fk.ToColumn},
				Right: sqlast.ColumnRef{Table: from.Name, Column: fk.FromColumn},
			}},
		})
	}
	// Three-table chains through a shared middle table.
	for _, fk1 := range db.ForeignKeys {
		for _, fk2 := range db.ForeignKeys {
			if fk1.FromTable != fk2.FromTable || fk1.ToTable == fk2.ToTable ||
				fk1.FromColumn == fk2.FromColumn {
				continue
			}
			t1, mid, t2 := db.Table(fk1.ToTable), db.Table(fk1.FromTable), db.Table(fk2.ToTable)
			if t1 == nil || mid == nil || t2 == nil {
				continue
			}
			paths = append(paths, joinPath{
				tables: []*schema.Table{t1, mid, t2},
				joins: []sqlast.JoinCond{
					{
						Left:  sqlast.ColumnRef{Table: t1.Name, Column: fk1.ToColumn},
						Right: sqlast.ColumnRef{Table: mid.Name, Column: fk1.FromColumn},
					},
					{
						Left:  sqlast.ColumnRef{Table: mid.Name, Column: fk2.FromColumn},
						Right: sqlast.ColumnRef{Table: t2.Name, Column: fk2.ToColumn},
					},
				},
			})
		}
	}
	return paths
}

func (g *queryGen) joinQuery() *sqlast.Query {
	paths := g.joinPaths()
	if len(paths) == 0 {
		return nil
	}
	p := paths[g.rng.Intn(len(paths))]
	projT := p.tables[0]
	proj := g.randColumn(projT, 0, true)
	if proj == nil {
		return nil
	}
	sel := &sqlast.Select{
		Items: selectOf(colRef(projT, proj)),
		From: sqlast.From{
			Tables: tableRefs(p.tables),
			Joins:  p.joins,
		},
	}
	last := p.tables[len(p.tables)-1]
	switch g.rng.Intn(3) {
	case 0:
		if pred := g.predicate(last); pred != nil {
			sel.Where = pred
		}
	case 1:
		if key := g.randColumn(last, schema.Number, false); key != nil {
			sel.OrderBy = []sqlast.OrderItem{{Expr: colRef(last, key), Desc: true}}
			sel.Limit = 1
		}
	default:
		// The "which X has the most Y" shape (the paper's Fig. 7).
		sel.GroupBy = []*sqlast.ColumnRef{colRef(projT, proj)}
		sel.OrderBy = []sqlast.OrderItem{{
			Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}},
			Desc: true,
		}}
		sel.Limit = 1
	}
	return &sqlast.Query{Select: sel}
}

func tableRefs(tables []*schema.Table) []sqlast.TableRef {
	out := make([]sqlast.TableRef, 0, len(tables))
	for _, t := range tables {
		out = append(out, sqlast.TableRef{Name: t.Name})
	}
	return out
}

// nestedIn builds SELECT c FROM t WHERE id IN (SELECT fk FROM bridge
// WHERE pred) using an FK edge.
func (g *queryGen) nestedIn() *sqlast.Query {
	db := g.b.Schema
	if len(db.ForeignKeys) == 0 {
		return nil
	}
	fk := db.ForeignKeys[g.rng.Intn(len(db.ForeignKeys))]
	outer, inner := db.Table(fk.ToTable), db.Table(fk.FromTable)
	if outer == nil || inner == nil {
		return nil
	}
	proj := g.randColumn(outer, 0, true)
	if proj == nil {
		return nil
	}
	sub := &sqlast.Query{Select: &sqlast.Select{
		Items: selectOf(&sqlast.ColumnRef{Table: inner.Name, Column: fk.FromColumn}),
		From:  fromTable(inner),
	}}
	if pred := g.predicate(inner); pred != nil && g.rng.Float64() < 0.7 {
		sub.Select.Where = pred
	}
	negate := g.rng.Float64() < 0.3
	return &sqlast.Query{Select: &sqlast.Select{
		Items: selectOf(colRef(outer, proj)),
		From:  fromTable(outer),
		Where: &sqlast.In{
			X:      &sqlast.ColumnRef{Table: outer.Name, Column: fk.ToColumn},
			Sub:    sub,
			Negate: negate,
		},
	}}
}

// scalarCompare builds SELECT c FROM t WHERE num > (SELECT AVG(num) FROM t).
func (g *queryGen) scalarCompare() *sqlast.Query {
	t := g.randTable()
	proj := g.randColumn(t, schema.Text, false)
	key := g.randColumn(t, schema.Number, false)
	if proj == nil || key == nil {
		return nil
	}
	fn := sqlast.Avg
	op := ">"
	if g.rng.Float64() < 0.3 {
		fn = sqlast.Max
		op = "="
	}
	sub := &sqlast.Query{Select: &sqlast.Select{
		Items: selectOf(&sqlast.Agg{Func: fn, Arg: colRef(t, key)}),
		From:  fromTable(t),
	}}
	return &sqlast.Query{Select: &sqlast.Select{
		Items: selectOf(colRef(t, proj)),
		From:  fromTable(t),
		Where: &sqlast.Binary{Op: op, L: colRef(t, key), R: &sqlast.Subquery{Q: sub}},
	}}
}

func (g *queryGen) compound() *sqlast.Query {
	t := g.randTable()
	proj := g.randColumn(t, 0, true)
	if proj == nil {
		return nil
	}
	p1 := g.predicate(t)
	p2 := g.predicate(t)
	if p1 == nil || p2 == nil {
		return nil
	}
	mk := func(p sqlast.Expr) *sqlast.Query {
		return &sqlast.Query{Select: &sqlast.Select{
			Items: selectOf(colRef(t, proj)),
			From:  fromTable(t),
			Where: p,
		}}
	}
	q := mk(p1)
	q.Op = []sqlast.SetOp{sqlast.Union, sqlast.Intersect, sqlast.Except}[g.rng.Intn(3)]
	q.Right = mk(p2)
	return q
}
