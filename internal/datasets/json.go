package datasets

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlparse"
)

// The JSON form of a benchmark, for exporting generated benchmarks to
// disk (inspection, external tools, frozen evaluation sets) and loading
// them back. SQL is serialized as text and re-parsed on load.

type jsonBenchmark struct {
	Name    string                `json:"name"`
	DBs     map[string]jsonBundle `json:"databases"`
	Train   []jsonItem            `json:"train,omitempty"`
	Val     []jsonItem            `json:"val,omitempty"`
	Test    []jsonItem            `json:"test,omitempty"`
	Samples []jsonItem            `json:"samples,omitempty"`
}

type jsonItem struct {
	DB  string `json:"db"`
	NL  string `json:"nl"`
	SQL string `json:"sql"`
}

type jsonBundle struct {
	Schema     jsonSchema            `json:"schema"`
	Content    map[string][][]string `json:"content"`
	Syn        map[string][]string   `json:"synonyms,omitempty"`
	BridgeVerb map[string]string     `json:"bridgeVerbs,omitempty"`
}

type jsonSchema struct {
	Name        string            `json:"name"`
	Tables      []jsonTable       `json:"tables"`
	ForeignKeys []jsonFK          `json:"foreignKeys,omitempty"`
	JoinAnns    []jsonJoinAnnJSON `json:"joinAnnotations,omitempty"`
}

type jsonTable struct {
	Name       string       `json:"name"`
	Annotation string       `json:"annotation,omitempty"`
	PrimaryKey []string     `json:"primaryKey,omitempty"`
	Columns    []jsonColumn `json:"columns"`
}

type jsonColumn struct {
	Name       string `json:"name"`
	Annotation string `json:"annotation,omitempty"`
	Number     bool   `json:"number,omitempty"`
}

type jsonFK struct {
	FromTable  string `json:"fromTable"`
	FromColumn string `json:"fromColumn"`
	ToTable    string `json:"toTable"`
	ToColumn   string `json:"toColumn"`
}

type jsonJoinAnnJSON struct {
	Tables      []string   `json:"tables"`
	Description string     `json:"description"`
	TableKeys   string     `json:"tableKeys"`
	Conditions  []jsonEdge `json:"conditions"`
}

type jsonEdge struct {
	LeftTable   string `json:"leftTable"`
	LeftColumn  string `json:"leftColumn"`
	RightTable  string `json:"rightTable"`
	RightColumn string `json:"rightColumn"`
}

// WriteJSON serializes the benchmark.
func (b *Benchmark) WriteJSON(w io.Writer) error {
	out := jsonBenchmark{Name: b.Name, DBs: map[string]jsonBundle{}}
	for name, bundle := range b.DBs {
		out.DBs[name] = bundleToJSON(bundle)
	}
	conv := func(items []Item) []jsonItem {
		js := make([]jsonItem, 0, len(items))
		for _, it := range items {
			js = append(js, jsonItem{DB: it.DB, NL: it.NL, SQL: it.Gold.String()})
		}
		return js
	}
	out.Train, out.Val = conv(b.Train), conv(b.Val)
	out.Test, out.Samples = conv(b.Test), conv(b.Samples)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON loads a benchmark previously written by WriteJSON. Value
// kinds used only during generation are not round-tripped; loaded
// benchmarks are for evaluation, not further generation.
func ReadJSON(r io.Reader) (*Benchmark, error) {
	var in jsonBenchmark
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("datasets: decoding benchmark: %w", err)
	}
	b := &Benchmark{Name: in.Name, DBs: map[string]*DBBundle{}}
	for name, jb := range in.DBs {
		bundle, err := bundleFromJSON(jb)
		if err != nil {
			return nil, fmt.Errorf("datasets: database %s: %w", name, err)
		}
		b.DBs[name] = bundle
	}
	conv := func(items []jsonItem) ([]Item, error) {
		out := make([]Item, 0, len(items))
		for _, it := range items {
			q, err := sqlparse.Parse(it.SQL)
			if err != nil {
				return nil, fmt.Errorf("datasets: parsing %q: %w", it.SQL, err)
			}
			out = append(out, Item{DB: it.DB, NL: it.NL, Gold: q})
		}
		return out, nil
	}
	var err error
	if b.Train, err = conv(in.Train); err != nil {
		return nil, err
	}
	if b.Val, err = conv(in.Val); err != nil {
		return nil, err
	}
	if b.Test, err = conv(in.Test); err != nil {
		return nil, err
	}
	if b.Samples, err = conv(in.Samples); err != nil {
		return nil, err
	}
	return b, nil
}

func bundleToJSON(b *DBBundle) jsonBundle {
	out := jsonBundle{
		Schema:     schemaToJSON(b.Schema),
		Content:    map[string][][]string{},
		Syn:        b.Syn,
		BridgeVerb: b.BridgeVerb,
	}
	for tname, td := range b.Content.Tables {
		rows := make([][]string, 0, len(td.Rows))
		for _, row := range td.Rows {
			cells := make([]string, 0, len(row))
			for _, v := range row {
				cells = append(cells, v.String())
			}
			rows = append(rows, cells)
		}
		out.Content[tname] = rows
	}
	return out
}

func bundleFromJSON(jb jsonBundle) (*DBBundle, error) {
	db := schemaFromJSON(jb.Schema)
	if err := db.Validate(); err != nil {
		return nil, err
	}
	bundle := &DBBundle{
		Schema:     db,
		Syn:        jb.Syn,
		BridgeVerb: jb.BridgeVerb,
	}
	if bundle.Syn == nil {
		bundle.Syn = map[string][]string{}
	}
	if bundle.BridgeVerb == nil {
		bundle.BridgeVerb = map[string]string{}
	}
	in := engine.NewInstance(db)
	for tname, rows := range jb.Content {
		t := db.Table(tname)
		if t == nil {
			return nil, fmt.Errorf("content for unknown table %q", tname)
		}
		for _, cells := range rows {
			if len(cells) != len(t.Columns) {
				return nil, fmt.Errorf("row arity mismatch in %s", tname)
			}
			row := make([]engine.Value, 0, len(cells))
			for ci, cell := range cells {
				if t.Columns[ci].Type == schema.Number {
					var f float64
					if _, err := fmt.Sscanf(cell, "%g", &f); err == nil {
						row = append(row, engine.Num(f))
						continue
					}
				}
				if cell == "NULL" {
					row = append(row, engine.NullValue())
					continue
				}
				row = append(row, engine.Str(cell))
			}
			if err := in.Insert(t.Name, row...); err != nil {
				return nil, err
			}
		}
	}
	bundle.Content = in
	return bundle, nil
}

func schemaToJSON(db *schema.Database) jsonSchema {
	out := jsonSchema{Name: db.Name}
	for _, t := range db.Tables {
		jt := jsonTable{Name: t.Name, Annotation: t.Annotation, PrimaryKey: t.PrimaryKey}
		for _, c := range t.Columns {
			jt.Columns = append(jt.Columns, jsonColumn{
				Name: c.Name, Annotation: c.Annotation, Number: c.Type == schema.Number,
			})
		}
		out.Tables = append(out.Tables, jt)
	}
	for _, fk := range db.ForeignKeys {
		out.ForeignKeys = append(out.ForeignKeys, jsonFK{
			FromTable: fk.FromTable, FromColumn: fk.FromColumn,
			ToTable: fk.ToTable, ToColumn: fk.ToColumn,
		})
	}
	for _, ann := range db.JoinAnnotations {
		ja := jsonJoinAnnJSON{Tables: ann.Tables, Description: ann.Description, TableKeys: ann.TableKeys}
		for _, e := range ann.Conditions {
			ja.Conditions = append(ja.Conditions, jsonEdge{
				LeftTable: e.LeftTable, LeftColumn: e.LeftColumn,
				RightTable: e.RightTable, RightColumn: e.RightColumn,
			})
		}
		out.JoinAnns = append(out.JoinAnns, ja)
	}
	return out
}

func schemaFromJSON(js jsonSchema) *schema.Database {
	db := &schema.Database{Name: js.Name}
	for _, jt := range js.Tables {
		t := &schema.Table{Name: jt.Name, Annotation: jt.Annotation, PrimaryKey: jt.PrimaryKey}
		for _, jc := range jt.Columns {
			typ := schema.Text
			if jc.Number {
				typ = schema.Number
			}
			t.Columns = append(t.Columns, &schema.Column{Name: jc.Name, Annotation: jc.Annotation, Type: typ})
		}
		db.Tables = append(db.Tables, t)
	}
	for _, fk := range js.ForeignKeys {
		db.ForeignKeys = append(db.ForeignKeys, schema.ForeignKey{
			FromTable: fk.FromTable, FromColumn: fk.FromColumn,
			ToTable: fk.ToTable, ToColumn: fk.ToColumn,
		})
	}
	for _, ja := range js.JoinAnns {
		ann := &schema.JoinAnnotation{Tables: ja.Tables, Description: ja.Description, TableKeys: ja.TableKeys}
		for _, e := range ja.Conditions {
			ann.Conditions = append(ann.Conditions, schema.JoinEdge{
				LeftTable: e.LeftTable, LeftColumn: e.LeftColumn,
				RightTable: e.RightTable, RightColumn: e.RightColumn,
			})
		}
		db.JoinAnnotations = append(db.JoinAnnotations, ann)
	}
	return db
}
