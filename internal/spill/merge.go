package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
)

// Spill records replayed through Merge carry an 8-byte big-endian
// sequence number prefix: the emission order of the streaming
// generalizer. Runs are written in emission order, so every run is
// sorted by sequence and an external merge reconstructs the exact
// global order without holding more than one record per run in RAM.

// Record prefixes a payload with its sequence number, producing the
// frame body a merged run stores.
func Record(seq uint64, payload []byte) []byte {
	rec := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(rec[:8], seq)
	copy(rec[8:], payload)
	return rec
}

// SplitRecord splits a frame body back into sequence and payload.
func SplitRecord(rec []byte) (uint64, []byte, error) {
	if len(rec) < 8 {
		return 0, nil, fmt.Errorf("%w: record of %d bytes lacks a sequence header", ErrCorrupt, len(rec))
	}
	return binary.BigEndian.Uint64(rec[:8]), rec[8:], nil
}

// Merge is the external-merge iterator over sorted spill runs: it
// yields records across all runs in ascending sequence order, holding
// one buffered record per run. Duplicate sequences — the signature of
// a record flushed into two runs around a retry — are deduplicated
// (first instance wins); a sequence that goes backwards within one run
// is ErrCorrupt, because runs are written in emission order and a
// regression means the file lies.
//
// A run that ends in a torn tail simply stops contributing (Torn
// reports it); the merge continues over the remaining runs, which is
// the degraded-but-never-panicking contract of spill replay.
type Merge struct {
	srcs []*mergeSrc
	last uint64
	any  bool  // a record has been emitted (so last is meaningful)
	err  error // sticky: a failed read-ahead surfaces on the next call
}

type mergeSrc struct {
	r       *Reader
	seq     uint64
	payload []byte
	primed  bool // seq/payload hold a pending record
	started bool // at least one record has been read (so seq ordering is enforceable)
	done    bool
}

// NewMerge starts a merge over the given readers. Readers stay owned
// by the caller (close them after the merge).
func NewMerge(readers ...*Reader) *Merge {
	m := &Merge{}
	for _, r := range readers {
		m.srcs = append(m.srcs, &mergeSrc{r: r})
	}
	return m
}

// advance primes src with its next record, enforcing per-run order.
func (src *mergeSrc) advance() error {
	for {
		frame, err := src.r.Next()
		if errors.Is(err, io.EOF) {
			src.done = true
			src.primed = false
			return nil
		}
		if err != nil {
			src.done = true
			src.primed = false
			return err
		}
		seq, payload, err := SplitRecord(frame)
		if err != nil {
			src.done = true
			src.primed = false
			return err
		}
		if src.started {
			if seq < src.seq {
				src.done = true
				src.primed = false
				return fmt.Errorf("%w: %s: sequence %d after %d", ErrCorrupt,
					filepath.Base(src.r.Path()), seq, src.seq)
			}
			if seq == src.seq && src.primed {
				continue // duplicate within one run: first wins
			}
		}
		src.seq, src.payload, src.primed, src.started = seq, payload, true, true
		return nil
	}
}

// Next returns the next record in global sequence order, or io.EOF
// when every run is exhausted. A read error from any run ends the
// merge with that error — but never swallows a record already in
// hand: a failed read-ahead is surfaced on the following call, so the
// caller keeps the full intact prefix before degrading.
func (m *Merge) Next() (uint64, []byte, error) {
	if m.err != nil {
		return 0, nil, m.err
	}
	// Prime lazily so construction cannot fail.
	for _, src := range m.srcs {
		if !src.primed && !src.done {
			if err := src.advance(); err != nil {
				m.err = err
				return 0, nil, err
			}
		}
	}
	for {
		var best *mergeSrc
		for _, src := range m.srcs {
			if src.primed && (best == nil || src.seq < best.seq) {
				best = src
			}
		}
		if best == nil {
			return 0, nil, io.EOF
		}
		seq, payload := best.seq, best.payload
		// Consume the winner and any cross-run duplicates of its
		// sequence in the same step.
		for _, src := range m.srcs {
			if src.primed && src.seq == seq {
				src.primed = false
				if err := src.advance(); err != nil && m.err == nil {
					m.err = err
				}
			}
		}
		if m.any && seq == m.last {
			if m.err != nil {
				return 0, nil, m.err
			}
			continue // duplicate that surfaced across steps
		}
		m.last, m.any = seq, true
		return seq, payload, nil
	}
}

// Torn reports whether any run ended at a torn tail.
func (m *Merge) Torn() bool {
	for _, src := range m.srcs {
		if src.r.Torn() {
			return true
		}
	}
	return false
}
