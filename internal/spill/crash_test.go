package spill

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The SIGKILL crash matrix: a child process writes spill runs in a
// loop through the real temp+fsync+rename path and the parent kills it
// dead at a randomized moment. Whatever instant the kill lands on,
// every run that made it to its final name must validate completely
// (rename-last means a finished run is all-or-nothing), and the
// startup sweep must remove the temp the kill orphaned.

const crashEnv = "GAR_SPILL_CRASH_CHILD"

// TestCrashSpillHelper is the child body, only active when re-invoked
// by TestCrashSpillSIGKILL; as a normal test it is a no-op.
func TestCrashSpillHelper(t *testing.T) {
	dir := os.Getenv(crashEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestCrashSpillSIGKILL")
	}
	// Write runs as fast as possible until killed. Frame sizes vary per
	// run so kills land at different file offsets.
	for run := uint64(1); ; run++ {
		w, err := Create(dir, "crash", nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for f := uint64(0); f < 1+run%17; f++ {
			payload := strings.Repeat(fmt.Sprintf("run-%d-frame-%d|", run, f), 1+int(run%97))
			if err := w.Append(Record(f, []byte(payload))); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if _, err := w.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func TestCrashSpillSIGKILL(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX kill semantics required")
	}
	if testing.Short() {
		t.Skip("subprocess crash matrix skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	delays := []time.Duration{
		700 * time.Microsecond, 1500 * time.Microsecond, 3100 * time.Microsecond,
		6300 * time.Microsecond, 13 * time.Millisecond, 29 * time.Millisecond,
		53 * time.Millisecond,
	}
	for i, delay := range delays {
		t.Run(fmt.Sprintf("kill-after-%s", delay), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run=^TestCrashSpillHelper$", "-test.v")
			cmd.Env = append(os.Environ(), crashEnv+"="+dir)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay + time.Duration(i)*400*time.Microsecond)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = cmd.Wait() // expected: killed

			// Every finished run must validate end to end: the rename
			// only happened after the fsync, so a surviving .spill file
			// is complete by construction.
			runs, err := filepath.Glob(filepath.Join(dir, "*"+runSuffix))
			if err != nil {
				t.Fatal(err)
			}
			for _, path := range runs {
				r, err := Open(path, nil)
				if err != nil {
					t.Fatalf("finished run %s failed to open: %v", filepath.Base(path), err)
				}
				frames := 0
				for {
					rec, err := r.Next()
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						t.Fatalf("finished run %s frame %d: %v", filepath.Base(path), frames, err)
					}
					if _, _, err := SplitRecord(rec); err != nil {
						t.Fatalf("finished run %s frame %d: %v", filepath.Base(path), frames, err)
					}
					frames++
				}
				if r.Torn() {
					t.Fatalf("finished run %s is torn: rename-last discipline violated", filepath.Base(path))
				}
				if frames == 0 {
					t.Fatalf("finished run %s holds no frames", filepath.Base(path))
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
			}

			// The startup sweep removes whatever temp the kill orphaned.
			if _, err := CleanTemp(dir); err != nil {
				t.Fatalf("CleanTemp after crash: %v", err)
			}
			tmps, err := filepath.Glob(filepath.Join(dir, tmpPattern))
			if err != nil {
				t.Fatal(err)
			}
			if len(tmps) != 0 {
				t.Fatalf("temps survived the sweep: %v", tmps)
			}
		})
	}
}
