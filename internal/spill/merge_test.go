package spill

import (
	"errors"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/faults"
)

func writeSeqRun(t *testing.T, dir string, seqs ...uint64) string {
	t.Helper()
	w, err := Create(dir, "merge", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if err := w.Append(Record(seq, []byte(fmt.Sprintf("rec-%d", seq)))); err != nil {
			t.Fatal(err)
		}
	}
	path, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func openRun(t *testing.T, path string, inj *faults.Injector) *Reader {
	t.Helper()
	r, err := Open(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func drainMerge(t *testing.T, m *Merge) ([]uint64, error) {
	t.Helper()
	var out []uint64
	for {
		seq, payload, err := m.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if want := fmt.Sprintf("rec-%d", seq); string(payload) != want {
			t.Fatalf("seq %d carries payload %q, want %q", seq, payload, want)
		}
		out = append(out, seq)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	seq, payload, err := SplitRecord(Record(42, []byte("hello")))
	if err != nil || seq != 42 || string(payload) != "hello" {
		t.Fatalf("split = %d, %q, %v", seq, payload, err)
	}
	if _, _, err := SplitRecord([]byte("short")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short record = %v, want ErrCorrupt", err)
	}
}

func TestMergeOrdersAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	a := writeSeqRun(t, dir, 1, 4, 7, 10)
	b := writeSeqRun(t, dir, 2, 3, 8)
	c := writeSeqRun(t, dir, 5, 6, 9)
	m := NewMerge(openRun(t, a, nil), openRun(t, b, nil), openRun(t, c, nil))
	got, err := drainMerge(t, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("merged order = %v", got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("merged %d records, want 10", len(got))
	}
	if m.Torn() {
		t.Fatal("clean merge reported torn")
	}
}

func TestMergeDedupsAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	// Sequence 3 and 5 land in both runs — the retry-flush signature.
	a := writeSeqRun(t, dir, 1, 3, 5)
	b := writeSeqRun(t, dir, 2, 3, 4, 5, 6)
	got, err := drainMerge(t, NewMerge(openRun(t, a, nil), openRun(t, b, nil)))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}

func TestMergeDedupsWithinRun(t *testing.T) {
	dir := t.TempDir()
	a := writeSeqRun(t, dir, 1, 2, 2, 3)
	got, err := drainMerge(t, NewMerge(openRun(t, a, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("merged = %v, want 1,2,3", got)
	}
}

func TestMergeRejectsRegression(t *testing.T) {
	dir := t.TempDir()
	a := writeSeqRun(t, dir, 5, 4)
	_, err := drainMerge(t, NewMerge(openRun(t, a, nil)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("regressing run merged with %v, want ErrCorrupt", err)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	dir := t.TempDir()
	empty := writeSeqRun(t, dir)
	single := writeSeqRun(t, dir, 9)
	got, err := drainMerge(t, NewMerge(openRun(t, empty, nil), openRun(t, single, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("merged = %v, want [9]", got)
	}
	if _, err := drainMerge(t, NewMerge()); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
}

// TestMergeTornRunDegrades cuts one run's tail: the merge must keep
// yielding everything else plus the torn run's intact prefix, report
// Torn, and never error.
func TestMergeTornRunDegrades(t *testing.T) {
	dir := t.TempDir()
	a := writeSeqRun(t, dir, 1, 3, 5)
	b := writeSeqRun(t, dir, 2, 4, 6)
	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMerge(openRun(t, a, nil), openRun(t, b, nil))
	got, err := drainMerge(t, m)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4, 5} // 6 died in the torn tail
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	if !m.Torn() {
		t.Fatal("torn run not reported")
	}
}

// TestMergeReadFault injects a mid-merge read fault: the merge ends
// with the error and the caller keeps the prefix — degradation, not a
// panic.
func TestMergeReadFault(t *testing.T) {
	dir := t.TempDir()
	a := writeSeqRun(t, dir, 1, 2, 3, 4)
	inj := faults.NewInjector(1).Inject(faults.FSRead, faults.Plan{Kind: faults.KindBitFlip, After: 2})
	m := NewMerge(openRun(t, a, inj))
	got, err := drainMerge(t, m)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("merge error = %v, want ErrCorrupt", err)
	}
	if len(got) != 2 {
		t.Fatalf("prefix before the fault = %v, want 2 records", got)
	}
}
