// Package spill provides crash-safe scratch files for pool
// construction under memory pressure. When the memory-budget
// accountant (internal/memgov) denies further RAM growth, the pool
// builder streams candidate records into spill runs and replays them
// with an external merge — pool size becomes bounded by disk, not RAM.
//
// Spill files reuse the durable-state discipline of the checkpoint and
// feedback stores: a magic header, per-frame length + CRC-64/ECMA
// envelopes, writes that go temp + fsync + rename so a finished run is
// all-or-nothing, torn-tail-tolerant reads that stop cleanly at a
// truncated final frame, and a startup sweep that removes whatever an
// interrupted process left behind. The same internal/faults points
// (FSWrite, FSSync, FSRename on the write side, FSRead on the merge
// side) make the failure matrix deterministically testable.
//
// Unlike checkpoints, spill runs are per-operation scratch: they carry
// no versioned manifest, and any run found at startup is garbage by
// definition (its operation died) — Sweep removes finished runs and
// temps alike.
package spill

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faults"
)

// magic identifies a spill run file; the trailing 1 is the format
// version.
const magic = "GARSPIL1"

// tmpSuffix marks in-progress runs; the leading-dot temp pattern keeps
// them out of casual globs.
const (
	tmpPrefix  = ".spill-"
	tmpSuffix  = ".tmp"
	runSuffix  = ".spill"
	tmpPattern = tmpPrefix + "*" + tmpSuffix
)

// frameHeader is the per-frame envelope: a 4-byte big-endian payload
// length followed by an 8-byte CRC-64/ECMA of the payload.
const frameHeader = 12

// maxFrame bounds the allocation a corrupt length field can demand.
const maxFrame = 64 << 20

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt reports a frame whose envelope fails validation — a
// checksum mismatch or an impossible length. A torn tail (truncated
// final frame) is NOT corruption; readers report it via Torn.
var ErrCorrupt = errors.New("spill: corrupt frame")

// Writer streams frames into one spill run. Append buffers through
// bufio; Finish makes the run durable and atomic (flush, fsync, rename
// into place, directory fsync). Until Finish returns nil the run does
// not exist under its final name. Not safe for concurrent use.
type Writer struct {
	f      *os.File
	bw     *bufio.Writer
	dir    string
	prefix string
	inj    *faults.Injector
	frames int
	bytes  int64
	err    error // sticky: first failure poisons the run
	done   bool
}

// Create opens a new spill run as a temp file in dir (created if
// needed). prefix namespaces the final run name so concurrent
// operations sharing a directory cannot collide. inj, when non-nil,
// fires at the filesystem fault points of every write; nil is inert.
func Create(dir, prefix string, inj *faults.Injector) (*Writer, error) {
	if dir == "" {
		return nil, fmt.Errorf("spill: empty spill directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: opening spill directory: %w", err)
	}
	f, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return nil, fmt.Errorf("spill: creating temp file: %w", err)
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), dir: dir, prefix: prefix, inj: inj}
	if _, err := w.bw.WriteString(magic); err != nil {
		w.Abort()
		return nil, fmt.Errorf("spill: writing header: %w", err)
	}
	w.bytes = int64(len(magic))
	return w, nil
}

// Append writes one frame. The first failure poisons the writer: every
// later Append and Finish returns the same error, so callers can
// detect a dead run at the end of a tight loop.
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return fmt.Errorf("spill: append after finish")
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("spill: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(frame[4:12], crc64.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)

	// The write fault point may truncate or corrupt the frame; what it
	// returns is what reaches the run, and its error is the write's.
	buf, ferr := w.inj.FireData(faults.FSWrite, frame)
	if len(buf) > 0 {
		if _, werr := w.bw.Write(buf); werr != nil {
			w.err = fmt.Errorf("spill: writing frame: %w", werr)
			return w.err
		}
	}
	if ferr != nil {
		w.err = fmt.Errorf("spill: writing frame: %w", ferr)
		return w.err
	}
	w.frames++
	w.bytes += int64(len(buf))
	return nil
}

// Frames returns how many frames have been appended successfully.
func (w *Writer) Frames() int { return w.frames }

// Bytes returns how many bytes the run holds so far (header included),
// the rotation signal for bounded run sizes.
func (w *Writer) Bytes() int64 { return w.bytes }

// Finish makes the run durable and atomic: flush, fsync, close, rename
// from the temp name to the final run name, directory fsync. On
// success it returns the final path; on any failure the temp file is
// discarded and no run exists. A poisoned writer fails with its sticky
// error without touching the disk further.
//
//garlint:allow ctxpass -- deliberately synchronous: the fsync/rename
// sequencing is the crash-safety contract and must run to completion;
// context.Background only feeds instantaneous test fault points
func (w *Writer) Finish() (string, error) {
	if w.done {
		return "", fmt.Errorf("spill: finish after finish")
	}
	w.done = true
	if w.err != nil {
		w.discard()
		return "", w.err
	}
	name := filepath.Base(w.f.Name())
	if err := w.bw.Flush(); err != nil {
		w.discard()
		return "", fmt.Errorf("spill: flushing %s: %w", name, err)
	}
	if err := w.inj.Fire(context.Background(), faults.FSSync); err != nil {
		w.discard()
		return "", fmt.Errorf("spill: syncing %s: %w", name, err)
	}
	if err := w.f.Sync(); err != nil {
		w.discard()
		return "", fmt.Errorf("spill: syncing %s: %w", name, err)
	}
	if err := w.f.Close(); err != nil {
		w.remove()
		return "", fmt.Errorf("spill: closing %s: %w", name, err)
	}
	if err := w.inj.Fire(context.Background(), faults.FSRename); err != nil {
		w.remove()
		return "", fmt.Errorf("spill: renaming %s into place: %w", name, err)
	}
	// Reuse the temp file's random component so the final name is
	// unique without another source of randomness.
	unique := strings.TrimSuffix(strings.TrimPrefix(name, tmpPrefix), tmpSuffix)
	final := filepath.Join(w.dir, w.prefix+"-"+unique+runSuffix)
	if err := os.Rename(w.f.Name(), final); err != nil {
		w.remove()
		return "", fmt.Errorf("spill: renaming %s into place: %w", name, err)
	}
	w.f = nil
	syncDir(w.dir)
	return final, nil
}

// Abort discards an unfinished run. Safe to call after Finish (no-op)
// and more than once.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.discard()
}

// discard closes and removes the temp file after a failure that is
// already being reported.
//
//garlint:allow errlost -- best-effort cleanup on a path that is already failing; the original error is the one to surface
func (w *Writer) discard() {
	if w.f == nil {
		return
	}
	_ = w.f.Close()
	_ = os.Remove(w.f.Name())
	w.f = nil
}

// remove deletes the temp file when the handle is already closed.
//
//garlint:allow errlost -- best-effort cleanup on a path that is already failing; the original error is the one to surface
func (w *Writer) remove() {
	if w.f == nil {
		return
	}
	_ = os.Remove(w.f.Name())
	w.f = nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
//
//garlint:allow errlost -- durability hint after the rename has already landed; there is nothing left to unwind
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Reader iterates the frames of one spill run. A truncated final frame
// — the signature a crash mid-write leaves — ends iteration cleanly
// (io.EOF) with Torn reporting true; a checksum mismatch or impossible
// length anywhere is ErrCorrupt. Not safe for concurrent use.
type Reader struct {
	f      *os.File
	br     *bufio.Reader
	path   string
	inj    *faults.Injector
	frames int
	torn   bool
	done   bool
}

// Open opens a finished spill run and validates its magic header. inj,
// when non-nil, fires the FSRead data point on every frame payload.
func Open(path string, inj *faults.Injector) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr) != magic {
		closeQuiet(f)
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	return &Reader{f: f, br: br, path: path, inj: inj}, nil
}

// Next returns the next frame's payload. io.EOF ends iteration — both
// at a clean end of file and at a torn tail (check Torn to tell the
// two apart). The returned slice is freshly allocated and owned by the
// caller.
func (r *Reader) Next() ([]byte, error) {
	if r.done {
		return nil, io.EOF
	}
	hdr := make([]byte, frameHeader)
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		r.done = true
		if errors.Is(err, io.ErrUnexpectedEOF) {
			r.torn = true // partial header: the crash point of a frame write
			return nil, io.EOF
		}
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("spill: reading %s: %w", filepath.Base(r.path), err)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint64(hdr[4:12])
	if length > maxFrame {
		r.done = true
		return nil, fmt.Errorf("%w: %s: frame length %d exceeds limit", ErrCorrupt, filepath.Base(r.path), length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		r.done = true
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			r.torn = true // truncated payload: same crash signature
			return nil, io.EOF
		}
		return nil, fmt.Errorf("spill: reading %s: %w", filepath.Base(r.path), err)
	}
	// The read fault point models media rot and failing disks: what it
	// returns is what the checksum judges, and its error is the read's.
	payload, ferr := r.inj.FireData(faults.FSRead, payload)
	if ferr != nil {
		r.done = true
		return nil, fmt.Errorf("spill: reading %s: %w", filepath.Base(r.path), ferr)
	}
	if crc64.Checksum(payload, crcTable) != want {
		r.done = true
		return nil, fmt.Errorf("%w: %s: frame %d checksum mismatch", ErrCorrupt, filepath.Base(r.path), r.frames)
	}
	r.frames++
	return payload, nil
}

// Frames returns how many frames have been read successfully.
func (r *Reader) Frames() int { return r.frames }

// Torn reports whether iteration ended at a truncated final frame.
func (r *Reader) Torn() bool { return r.torn }

// Path returns the run's file path.
func (r *Reader) Path() string { return r.path }

// Close releases the underlying file.
func (r *Reader) Close() error {
	r.done = true
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// closeQuiet closes a file on a path that is already reporting a more
// specific error.
//
//garlint:allow errlost -- best-effort cleanup on a path that is already failing; the original error is the one to surface
func closeQuiet(f *os.File) {
	_ = f.Close()
}

// CleanTemp removes temp files abandoned by interrupted writes and
// returns the removed paths. Run it at startup, before any new write
// can have a temp file legitimately in flight.
func CleanTemp(dir string) ([]string, error) {
	return removeGlob(dir, tmpPattern)
}

// Sweep removes every spill artifact — temps and finished runs alike —
// and returns the removed paths. Spill runs are per-operation scratch,
// so anything present at startup belongs to an operation that died
// with the previous process.
func Sweep(dir string) ([]string, error) {
	removed, err := removeGlob(dir, tmpPattern)
	if err != nil {
		return removed, err
	}
	runs, err := removeGlob(dir, "*"+runSuffix)
	return append(removed, runs...), err
}

func removeGlob(dir, pattern string) ([]string, error) {
	if dir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, fmt.Errorf("spill: scanning %s: %w", pattern, err)
	}
	var removed []string
	var firstErr error
	for _, p := range paths {
		if err := os.Remove(p); err != nil {
			if firstErr == nil && !errors.Is(err, fs.ErrNotExist) {
				firstErr = fmt.Errorf("spill: sweeping: %w", err)
			}
			continue
		}
		removed = append(removed, p)
	}
	return removed, firstErr
}
