package spill

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

func writeRun(t *testing.T, dir string, payloads ...string) string {
	t.Helper()
	w, err := Create(dir, "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	path, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func readAll(t *testing.T, path string) ([]string, bool) {
	t.Helper()
	r, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []string
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, r.Torn()
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(p))
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payloads := []string{"alpha", "", "gamma with some longer text", strings.Repeat("x", 70000)}
	path := writeRun(t, dir, payloads...)
	if filepath.Ext(path) != runSuffix {
		t.Fatalf("final path %q lacks run suffix", path)
	}
	got, torn := readAll(t, path)
	if torn {
		t.Fatal("clean run reported torn")
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if got[i] != payloads[i] {
			t.Fatalf("frame %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	// No temp litter after a clean finish.
	tmps, err := filepath.Glob(filepath.Join(dir, tmpPattern))
	if err != nil || len(tmps) != 0 {
		t.Fatalf("temp litter after finish: %v (%v)", tmps, err)
	}
}

func TestUniqueRunNames(t *testing.T) {
	dir := t.TempDir()
	a := writeRun(t, dir, "one")
	b := writeRun(t, dir, "two")
	if a == b {
		t.Fatalf("two runs share the path %q", a)
	}
}

// TestTornTail truncates a finished run at every byte offset inside
// its final frame: reads must surface every intact frame, then stop
// with a clean EOF and the torn flag — never an error, never a panic.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	path := writeRun(t, dir, "first-frame", "second-frame", "third-frame")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full := len(data)
	lastFrame := frameHeader + len("third-frame")
	for cut := full - lastFrame + 1; cut < full; cut++ {
		truncated := filepath.Join(dir, fmt.Sprintf("cut-%d%s", cut, runSuffix))
		if err := os.WriteFile(truncated, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, torn := readAll(t, truncated)
		if !torn {
			t.Fatalf("cut at %d: torn not reported", cut)
		}
		if len(got) != 2 || got[0] != "first-frame" || got[1] != "second-frame" {
			t.Fatalf("cut at %d: surviving frames = %q", cut, got)
		}
	}
}

func TestCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	path := writeRun(t, dir, "payload-one", "payload-two")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the first payload: the CRC must catch it.
	data[len(magic)+frameHeader+3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip read = %v, want ErrCorrupt", err)
	}
	// A poisoned reader stays ended.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("read after corruption = %v, want EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty" + runSuffix: nil,
		"short" + runSuffix: []byte("GAR"),
		"wrong" + runSuffix: []byte("NOTSPILLxxxxxxxx"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Open = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("abort left %d entries behind", len(des))
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("finish after abort succeeded")
	}
}

// TestFaultMatrixWrite drives the write-side fault points — short
// write, bit flip, sync failure, rename failure — and checks the
// crash-safety contract: a failed Finish leaves no run and no temp
// file; a bit-flipped frame produces a run whose corruption is caught
// at read time by the CRC.
func TestFaultMatrixWrite(t *testing.T) {
	cases := []struct {
		name    string
		inj     func() *faults.Injector
		wantRun bool // Finish succeeds
	}{
		{"short-write", func() *faults.Injector {
			return faults.NewInjector(1).Inject(faults.FSWrite, faults.Plan{Kind: faults.KindShortWrite, Bytes: 7})
		}, false},
		{"write-error", func() *faults.Injector {
			return faults.NewInjector(1).Fail(faults.FSWrite, errors.New("disk full"))
		}, false},
		{"sync-fail", func() *faults.Injector {
			return faults.NewInjector(1).Fail(faults.FSSync, errors.New("fsync eio"))
		}, false},
		{"rename-fail", func() *faults.Injector {
			return faults.NewInjector(1).Fail(faults.FSRename, errors.New("rename eio"))
		}, false},
		{"bit-flip", func() *faults.Injector {
			return faults.NewInjector(1).Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: frameHeader + 2})
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Create(dir, "test", tc.inj())
			if err != nil {
				t.Fatal(err)
			}
			appendErr := w.Append([]byte("governed-payload"))
			path, finErr := w.Finish()
			if tc.wantRun {
				if finErr != nil {
					t.Fatalf("finish: %v", finErr)
				}
				r, err := Open(path, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("bit-flipped frame read = %v, want ErrCorrupt", err)
				}
				return
			}
			if appendErr == nil && finErr == nil {
				t.Fatal("neither append nor finish reported the fault")
			}
			// Failed runs must vanish entirely: no temp, no final.
			des, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(des) != 0 {
				t.Fatalf("failed run left %d entries behind", len(des))
			}
		})
	}
}

// TestFaultMatrixRead drives the read-side fault point: a bit flip on
// the way in must be caught by the CRC, an injected read error must
// surface as a plain error — and neither may panic.
func TestFaultMatrixRead(t *testing.T) {
	dir := t.TempDir()
	path := writeRun(t, dir, "frame-a", "frame-b")

	t.Run("bit-flip", func(t *testing.T) {
		inj := faults.NewInjector(1).Inject(faults.FSRead, faults.Plan{Kind: faults.KindBitFlip, Offset: 2})
		r, err := Open(path, inj)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("read = %v, want ErrCorrupt", err)
		}
	})
	t.Run("read-error", func(t *testing.T) {
		inj := faults.NewInjector(1).Fail(faults.FSRead, errors.New("eio"))
		r, err := Open(path, inj)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		_, err = r.Next()
		if err == nil || errors.Is(err, ErrCorrupt) {
			t.Fatalf("read = %v, want a plain injected error", err)
		}
	})
	t.Run("late-fault-keeps-earlier-frames", func(t *testing.T) {
		inj := faults.NewInjector(1).Inject(faults.FSRead, faults.Plan{Kind: faults.KindBitFlip, After: 1})
		r, err := Open(path, inj)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		p, err := r.Next()
		if err != nil || string(p) != "frame-a" {
			t.Fatalf("first frame = %q, %v", p, err)
		}
		if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("second frame = %v, want ErrCorrupt", err)
		}
	})
}

func TestCleanTempAndSweep(t *testing.T) {
	dir := t.TempDir()
	run := writeRun(t, dir, "keepable")
	// Orphan a temp by hand, as a crash mid-write would.
	orphan := filepath.Join(dir, tmpPrefix+"orphan"+tmpSuffix)
	if err := os.WriteFile(orphan, []byte(magic+"partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	unrelated := filepath.Join(dir, "unrelated.txt")
	if err := os.WriteFile(unrelated, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := CleanTemp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != orphan {
		t.Fatalf("CleanTemp removed %v, want just the orphan temp", removed)
	}
	if _, err := os.Stat(run); err != nil {
		t.Fatalf("CleanTemp touched a finished run: %v", err)
	}

	removed, err = Sweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != run {
		t.Fatalf("Sweep removed %v, want the finished run", removed)
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Fatalf("Sweep touched an unrelated file: %v", err)
	}

	// Empty and missing directories are fine.
	if _, err := CleanTemp(""); err != nil {
		t.Fatalf("CleanTemp(\"\"): %v", err)
	}
	if _, err := Sweep(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("Sweep(missing): %v", err)
	}
}

func TestWriterGauges(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Append([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 1 {
		t.Fatalf("frames = %d", w.Frames())
	}
	want := int64(len(magic) + frameHeader + 5)
	if w.Bytes() != want {
		t.Fatalf("bytes = %d, want %d", w.Bytes(), want)
	}
}
