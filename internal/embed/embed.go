// Package embed implements the first-stage retrieval model of GAR
// (§III-C1). The paper fine-tunes a Siamese MPNet sentence encoder; this
// package substitutes a pure-Go Siamese text encoder: hashed word and
// character-trigram embeddings, IDF-weighted mean pooling, L2
// normalization, trained with a margin-based triplet objective — the
// same training signal (anchor NL query, positive gold dialect, sampled
// negative dialect) and the same inference path (encode both sides,
// rank by cosine similarity).
package embed

import (
	"bytes"
	"encoding/gob"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/text"
	"repro/internal/vector"
)

// Config controls encoder shape and training.
type Config struct {
	// Dim is the embedding dimension. Default 64.
	Dim int
	// Buckets is the hashed vocabulary size (words and character
	// trigrams share the table). Default 8192.
	Buckets int
	// CharWeight is the pooling weight of character-trigram embeddings
	// relative to word embeddings. Default 0.3.
	CharWeight float32
	// Margin of the triplet loss. Default 0.2.
	Margin float32
	// Seed for initialization and negative sampling.
	Seed int64
}

func (c *Config) fill() {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Buckets <= 0 {
		c.Buckets = 8192
	}
	if c.CharWeight == 0 {
		c.CharWeight = 0.3
	}
	if c.Margin == 0 {
		c.Margin = 0.2
	}
}

// Encoder is the trainable Siamese text encoder.
type Encoder struct {
	cfg Config
	emb []vector.Vec // bucket → embedding row
	idf *text.IDF
	rng *rand.Rand
}

// NewEncoder builds an encoder with small random embeddings.
func NewEncoder(cfg Config) *Encoder {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Encoder{cfg: cfg, rng: rng}
	e.emb = make([]vector.Vec, cfg.Buckets)
	scale := float32(1 / math.Sqrt(float64(cfg.Dim)))
	for i := range e.emb {
		row := vector.New(cfg.Dim)
		for d := range row {
			row[d] = (rng.Float32()*2 - 1) * scale
		}
		e.emb[i] = row
	}
	return e
}

// Dim returns the embedding dimension.
func (e *Encoder) Dim() int { return e.cfg.Dim }

// FitIDF fits the IDF pooling weights over a corpus (typically the
// dialect expressions plus the training NL queries).
func (e *Encoder) FitIDF(corpus []string) { e.idf = text.NewIDF(corpus) }

//garlint:allow errlost -- hash.Hash.Write never returns an error by its documented contract
func (e *Encoder) bucket(s string) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(e.cfg.Buckets))
}

// feature is one pooled embedding row with its pooling weight.
type feature struct {
	bucket int
	weight float32
}

func (e *Encoder) features(s string) []feature {
	toks := text.Tokenize(s)
	var out []feature
	for _, t := range toks {
		if text.IsStopword(t) {
			continue
		}
		w := float32(1)
		if e.idf != nil {
			w = float32(e.idf.Weight(t))
		}
		// The word embedding row is shared across a synonym group,
		// standing in for pre-trained lexical knowledge; character
		// n-grams keep the surface form.
		out = append(out, feature{bucket: e.bucket(text.Canon(t)), weight: w})
		for _, g := range text.CharNGrams(t, 3) {
			out = append(out, feature{bucket: e.bucket("#" + g), weight: e.cfg.CharWeight})
		}
	}
	return out
}

// Encode maps a text to its unit-norm embedding.
func (e *Encoder) Encode(s string) vector.Vec {
	fs := e.features(s)
	v := vector.New(e.cfg.Dim)
	if len(fs) == 0 {
		return v
	}
	var total float32
	for _, f := range fs {
		vector.Axpy(v, f.weight, e.emb[f.bucket])
		total += f.weight
	}
	if total > 0 {
		vector.Scale(v, 1/total)
	}
	return vector.Normalize(v)
}

// Similarity returns the cosine similarity of two texts under the
// current encoder parameters.
func (e *Encoder) Similarity(a, b string) float32 {
	return vector.Dot(e.Encode(a), e.Encode(b))
}

// Triplet is one training example: an anchor NL query, the dialect of
// its gold SQL, and a non-gold dialect.
type Triplet struct {
	Anchor, Positive, Negative string
}

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs int     // default 5
	LR     float32 // default 0.05
}

// Train fits the encoder on the triplets with SGD over the margin
// triplet loss max(0, margin - cos(a,p) + cos(a,n)). Gradients are
// propagated to the pooled embedding rows with the norm treated as a
// constant (stop-gradient through normalization), the standard cheap
// approximation for shallow Siamese encoders. It returns the mean loss
// per epoch.
func (e *Encoder) Train(triplets []Triplet, cfg TrainConfig) []float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	losses := make([]float64, 0, cfg.Epochs)
	order := make([]int, len(triplets))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		e.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LR / float32(1+ep)
		var sum float64
		for _, idx := range order {
			sum += float64(e.step(triplets[idx], lr))
		}
		if len(triplets) > 0 {
			sum /= float64(len(triplets))
		}
		losses = append(losses, sum)
	}
	return losses
}

// step applies one SGD update and returns the triplet loss.
func (e *Encoder) step(t Triplet, lr float32) float32 {
	fa, fp, fn := e.features(t.Anchor), e.features(t.Positive), e.features(t.Negative)
	va, wa := e.pool(fa)
	vp, wp := e.pool(fp)
	vn, wn := e.pool(fn)
	na, np, nn := vector.Norm(va), vector.Norm(vp), vector.Norm(vn)
	if na == 0 || np == 0 || nn == 0 {
		return 0
	}
	ua, up, un := unit(va, na), unit(vp, np), unit(vn, nn)
	sp := vector.Dot(ua, up)
	sn := vector.Dot(ua, un)
	loss := e.cfg.Margin - sp + sn
	if loss <= 0 {
		return 0
	}
	// dL/dua = -up + un ; dL/dup = -ua ; dL/dun = +ua.
	ga := vector.Clone(un)
	vector.Axpy(ga, -1, up)
	e.backprop(fa, ga, wa*na, lr)
	gp := vector.Clone(ua)
	vector.Scale(gp, -1)
	e.backprop(fp, gp, wp*np, lr)
	e.backprop(fn, vector.Clone(ua), wn*nn, lr)
	return loss
}

// pool returns the weighted sum embedding and the total pooling weight.
func (e *Encoder) pool(fs []feature) (vector.Vec, float32) {
	v := vector.New(e.cfg.Dim)
	var total float32
	for _, f := range fs {
		vector.Axpy(v, f.weight, e.emb[f.bucket])
		total += f.weight
	}
	if total > 0 {
		vector.Scale(v, 1/total)
	}
	return v, total
}

func unit(v vector.Vec, n float32) vector.Vec {
	out := vector.Clone(v)
	vector.Scale(out, 1/n)
	return out
}

// backprop distributes the upstream gradient to the embedding rows of
// the features; scale folds the pooling weight sum and the norm.
func (e *Encoder) backprop(fs []feature, grad vector.Vec, scale float32, lr float32) {
	if scale == 0 {
		return
	}
	for _, f := range fs {
		vector.Axpy(e.emb[f.bucket], -lr*f.weight/scale, grad)
	}
}

// encoderState is the serialized form of Encoder.
type encoderState struct {
	Cfg Config
	Emb []vector.Vec
	IDF *text.IDF
}

// GobEncode implements gob.GobEncoder: the configuration, embedding
// table and IDF statistics are persisted; the RNG restarts from the
// seed on load.
func (e *Encoder) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(encoderState{Cfg: e.cfg, Emb: e.emb, IDF: e.idf}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (e *Encoder) GobDecode(data []byte) error {
	var st encoderState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	e.cfg = st.Cfg
	e.emb = st.Emb
	e.idf = st.IDF
	e.rng = rand.New(rand.NewSource(st.Cfg.Seed))
	return nil
}
