package embed_test

import (
	"testing"

	"repro/internal/embed"
)

// BenchmarkEncode measures single-text encoding, the per-candidate cost
// of index construction and the per-query cost of retrieval.
func BenchmarkEncode(b *testing.B) {
	e := embed.NewEncoder(embed.Config{Seed: 1})
	const s = "Find the name of employee regarding to employee with evaluation. Return the top one result in descending order of one bonus of the employee evaluation."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Encode(s)
	}
}

// BenchmarkTrainStep measures triplet-loss training throughput.
func BenchmarkTrainStep(b *testing.B) {
	e := embed.NewEncoder(embed.Config{Seed: 2})
	trip := []embed.Triplet{{
		Anchor:   "who is the oldest employee",
		Positive: "Find the name of employee. Return the top one result in descending order of the age of employee.",
		Negative: "Find the number of employees.",
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Train(trip, embed.TrainConfig{Epochs: 1})
	}
}
