package embed_test

import (
	"math"
	"testing"

	"repro/internal/embed"
	"repro/internal/vector"
)

func TestEncodeUnitNorm(t *testing.T) {
	e := embed.NewEncoder(embed.Config{Seed: 1})
	v := e.Encode("find the name of the employee")
	if math.Abs(float64(vector.Norm(v))-1) > 1e-4 {
		t.Errorf("embedding not unit norm: %v", vector.Norm(v))
	}
	if len(v) != e.Dim() {
		t.Errorf("dimension mismatch: %d vs %d", len(v), e.Dim())
	}
	// Stopword-only text yields a zero embedding rather than panicking.
	z := e.Encode("the of a")
	if vector.Norm(z) != 0 {
		t.Errorf("stopword-only text should encode to zero, got norm %v", vector.Norm(z))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := embed.NewEncoder(embed.Config{Seed: 5})
	b := embed.NewEncoder(embed.Config{Seed: 5})
	s := "the highest one time bonus"
	va, vb := a.Encode(s), b.Encode(s)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed, different embeddings")
		}
	}
}

func TestLexicalOverlapGivesSimilarity(t *testing.T) {
	// Even untrained, shared tokens must yield higher similarity than
	// disjoint tokens (the hashed bag-of-features property).
	e := embed.NewEncoder(embed.Config{Seed: 2})
	same := e.Similarity("name of the employee", "find the name of employee")
	diff := e.Similarity("name of the employee", "quantity of widget stock")
	if same <= diff {
		t.Errorf("overlap similarity %v not above disjoint %v", same, diff)
	}
}

func trainingTriplets() []embed.Triplet {
	type pair struct{ nl, dialect string }
	pairs := []pair{
		{"who is the oldest employee", "Find the name of employee. Return the top one result in descending order of the age of employee."},
		{"how many employees are there", "Find the number of employees."},
		{"average bonus of all evaluations", "Find the average bonus of evaluation."},
		{"list the cities of employees", "Find the city of employee."},
		{"which shops are in the center district", "Find the name of shop. Return results only for shop that district is value."},
		{"employees younger than thirty", "Find the name of employee. Return results only for employee that age is less than value."},
	}
	var out []embed.Triplet
	for i, p := range pairs {
		for j, q := range pairs {
			if i == j {
				continue
			}
			out = append(out, embed.Triplet{Anchor: p.nl, Positive: p.dialect, Negative: q.dialect})
		}
	}
	return out
}

func TestTrainReducesLoss(t *testing.T) {
	e := embed.NewEncoder(embed.Config{Seed: 3})
	var corpus []string
	for _, tr := range trainingTriplets() {
		corpus = append(corpus, tr.Anchor, tr.Positive)
	}
	e.FitIDF(corpus)
	losses := e.Train(trainingTriplets(), embed.TrainConfig{Epochs: 8, LR: 0.05})
	if len(losses) != 8 {
		t.Fatalf("expected 8 epoch losses, got %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("training did not reduce loss: %v", losses)
	}
}

func TestTrainImprovesRanking(t *testing.T) {
	e := embed.NewEncoder(embed.Config{Seed: 4})
	trips := trainingTriplets()
	var corpus []string
	for _, tr := range trips {
		corpus = append(corpus, tr.Anchor, tr.Positive)
	}
	e.FitIDF(corpus)

	rankErrors := func() int {
		errs := 0
		for _, tr := range trips {
			if e.Similarity(tr.Anchor, tr.Positive) <= e.Similarity(tr.Anchor, tr.Negative) {
				errs++
			}
		}
		return errs
	}
	before := rankErrors()
	e.Train(trips, embed.TrainConfig{Epochs: 12, LR: 0.05})
	after := rankErrors()
	if after > before {
		t.Errorf("training worsened ranking: %d → %d errors", before, after)
	}
	if after > len(trips)/4 {
		t.Errorf("too many ranking errors after training: %d of %d", after, len(trips))
	}
}
