package sqlcheck_test

import (
	"strings"
	"testing"

	"repro/internal/schema/schematest"
	"repro/internal/sqlcheck"
	"repro/internal/sqlparse"
)

// check parses src and runs the full analyzer (bind + semantic rules).
func check(t *testing.T, src string) []sqlcheck.Diagnostic {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sqlcheck.New(schematest.Employee()).Check(q)
}

// errorRules collects the rule IDs of error-severity diagnostics.
func errorRules(diags []sqlcheck.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		if d.Severity == sqlcheck.Error {
			out = append(out, d.Rule)
		}
	}
	return out
}

func wantRule(t *testing.T, src, rule string) {
	t.Helper()
	diags := check(t, src)
	for _, got := range errorRules(diags) {
		if got == rule {
			return
		}
	}
	t.Fatalf("query %q: expected %s error, got %v", src, rule, diags)
}

func TestValidQueriesPass(t *testing.T) {
	for _, src := range []string{
		"SELECT name FROM employee WHERE age > 30",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT city, COUNT(*) FROM employee GROUP BY city HAVING COUNT(*) > 2",
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT name FROM employee WHERE employee_id IN (SELECT employee_id FROM evaluation)",
		"SELECT bonus FROM evaluation WHERE bonus = (SELECT MAX(bonus) FROM evaluation)",
		"SELECT name FROM employee UNION SELECT manager_name FROM shop",
		"SELECT DISTINCT city FROM employee ORDER BY city",
		"SELECT name FROM employee WHERE age BETWEEN 20 AND 30",
	} {
		if diags := check(t, src); sqlcheck.HasErrors(diags) {
			t.Errorf("valid query %q flagged: %v", src, diags)
		}
	}
}

func TestBindingRule(t *testing.T) {
	wantRule(t, "SELECT salary FROM employee", sqlcheck.RuleBinding)
	wantRule(t, "SELECT name FROM payroll", sqlcheck.RuleBinding)
}

func TestJoinConnectivityRule(t *testing.T) {
	// Two tables with no join condition (the grammar cannot write this,
	// but recomposition can produce it): cartesian product.
	q := sqlparse.MustParse("SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id")
	q.Select.From.Joins = nil
	diags := sqlcheck.New(schematest.Employee()).Check(q)
	if !sqlcheck.HasErrors(diags) {
		t.Fatalf("cartesian FROM not flagged: %v", diags)
	}
	if e := sqlcheck.FirstError(diags); e.Rule != "join-connect" {
		t.Fatalf("expected join-connect, got %v", e)
	}
	// Three tables where the ON conditions leave one disconnected.
	wantRule(t,
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id JOIN shop AS T3 ON T1.employee_id = T2.employee_id",
		"join-connect")
}

func TestJoinFKWarning(t *testing.T) {
	// employee.age = evaluation.bonus is connected but not a foreign key.
	diags := check(t, "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.age = T2.bonus")
	found := false
	for _, d := range diags {
		if d.Rule == "join-connect" && d.Severity == sqlcheck.Warning {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-FK join produced no warning: %v", diags)
	}
}

func TestTypeCompatRule(t *testing.T) {
	// Numeric literal against a text column.
	wantRule(t, "SELECT name FROM employee WHERE city > 5", "type-compat")
	// Text literal against a number column.
	wantRule(t, "SELECT name FROM employee WHERE age = 'old'", "type-compat")
	// Column-column mismatch.
	wantRule(t, "SELECT name FROM employee WHERE age = city", "type-compat")
	// LIKE over a number column.
	wantRule(t, "SELECT name FROM employee WHERE age LIKE 'x%'", "type-compat")
	// Numeric aggregate over a text column.
	wantRule(t, "SELECT AVG(city) FROM employee", "type-compat")
	// Mismatched BETWEEN bounds.
	wantRule(t, "SELECT name FROM employee WHERE city BETWEEN 1 AND 5", "type-compat")
	// IN subquery of the wrong type.
	wantRule(t, "SELECT name FROM employee WHERE age IN (SELECT city FROM employee)", "type-compat")
}

func TestAggGroupRule(t *testing.T) {
	// Aggregate mixed with a bare column, no GROUP BY.
	wantRule(t, "SELECT city, COUNT(*) FROM employee", "agg-group")
	// HAVING without GROUP BY.
	wantRule(t, "SELECT name FROM employee HAVING COUNT(*) > 2", "agg-group")
	// Selected column not in the GROUP BY list.
	wantRule(t, "SELECT name, COUNT(*) FROM employee GROUP BY city", "agg-group")
	// Aggregate in WHERE.
	wantRule(t, "SELECT name FROM employee WHERE MAX(age) > 50", "agg-group")
	// ORDER BY aggregate without grouping or aggregate projection.
	wantRule(t, "SELECT name FROM employee ORDER BY COUNT(*) DESC", "agg-group")
}

func TestDistinctAggRule(t *testing.T) {
	// Same column aggregated by the same function with and without
	// DISTINCT in one block.
	wantRule(t, "SELECT COUNT(DISTINCT city), COUNT(city) FROM employee", "distinct-agg")
	// DISTINCT cannot change a MIN/MAX result.
	wantRule(t, "SELECT MIN(DISTINCT age) FROM employee", "distinct-agg")
	// DISTINCT aggregate over the grouping key is degenerate.
	wantRule(t, "SELECT city, COUNT(DISTINCT city) FROM employee GROUP BY city", "distinct-agg")

	// Coherent DISTINCT aggregates stay clean.
	for _, src := range []string{
		"SELECT COUNT(DISTINCT city) FROM employee",
		"SELECT COUNT(DISTINCT city), COUNT(*) FROM employee",
		"SELECT city, COUNT(DISTINCT name) FROM employee GROUP BY city",
		"SELECT COUNT(DISTINCT city), SUM(age) FROM employee",
	} {
		if diags := check(t, src); sqlcheck.HasErrors(diags) {
			t.Errorf("valid query %q flagged: %v", src, diags)
		}
	}
}

func TestOrderScopeRule(t *testing.T) {
	// DISTINCT projection does not include the sort key.
	wantRule(t, "SELECT DISTINCT name FROM employee ORDER BY age", "order-scope")
	// Grouped block ordered by an ungrouped, unselected column.
	wantRule(t, "SELECT city, COUNT(*) FROM employee GROUP BY city ORDER BY name", "order-scope")
}

func TestSubqueryShapeRule(t *testing.T) {
	// IN subquery with two columns.
	wantRule(t, "SELECT name FROM employee WHERE employee_id IN (SELECT employee_id, bonus FROM evaluation)", "subquery-shape")
	// Scalar subquery with two columns.
	wantRule(t, "SELECT name FROM employee WHERE age = (SELECT bonus, employee_id FROM evaluation)", "subquery-shape")
	// UNION arms with different arity.
	wantRule(t, "SELECT name, age FROM employee UNION SELECT manager_name FROM shop", "subquery-shape")
}

func TestCheckDoesNotMutate(t *testing.T) {
	q := sqlparse.MustParse("SELECT name FROM employee WHERE age > 30")
	before := q.String()
	sqlcheck.New(schematest.Employee()).Check(q)
	if q.String() != before {
		t.Fatalf("Check mutated the query: %q -> %q", before, q.String())
	}
}

func TestDiagnosticString(t *testing.T) {
	d := sqlcheck.Diagnostic{Rule: "agg-group", Severity: sqlcheck.Error, Message: "HAVING without GROUP BY", Clause: "COUNT(*) > 2"}
	s := d.String()
	for _, want := range []string{"error", "agg-group", "HAVING"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
}

func TestRuleMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range sqlcheck.SemanticRules() {
		if r.ID() == "" || r.Doc() == "" {
			t.Errorf("rule %T missing metadata", r)
		}
		if seen[r.ID()] {
			t.Errorf("duplicate rule ID %s", r.ID())
		}
		seen[r.ID()] = true
	}
}
