// Package sqlcheck is a rule-based semantic analyzer for the SQL subset.
// It checks queries against a database schema and reports typed
// diagnostics: schema binding failures, disconnected join graphs,
// predicate type mismatches, aggregate/GROUP BY incoherence, ORDER BY
// scope violations and malformed subqueries.
//
// The analyzer has two consumers: the generalizer runs it as a
// post-recomposition pruning stage (every candidate that produces an
// error-severity diagnostic is discarded before entering the pool), and
// the `gar lint` subcommand checks sample-query files or a generated
// pool against a database spec.
//
// Rules are pluggable: each implements the Rule interface over a bound
// parse tree, so new semantic checks slot in without touching the
// consumers.
package sqlcheck

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Errors mark queries that are semantically invalid and
// prune candidates in the generalizer; warnings mark suspicious but
// executable constructs.
const (
	Warning Severity = iota
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding of the analyzer.
type Diagnostic struct {
	// Rule is the identifier of the rule that fired, e.g. "join-connect".
	Rule string `json:"rule"`
	// Severity is Error for semantically invalid queries.
	Severity Severity `json:"-"`
	// Message describes the problem.
	Message string `json:"message"`
	// Clause renders the offending clause or expression when available.
	Clause string `json:"clause,omitempty"`
}

// String formats the diagnostic as "severity: [rule] message (clause)".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Severity, d.Rule, d.Message)
	if d.Clause != "" {
		s += fmt.Sprintf(" (%s)", d.Clause)
	}
	return s
}

// Rule is one semantic check. Check receives a query that has been
// bound against the database (column references resolved and qualified)
// and returns any findings.
type Rule interface {
	// ID returns the stable rule identifier used in diagnostics and
	// prune counters.
	ID() string
	// Doc returns a one-line description of what the rule enforces.
	Doc() string
	// Check analyzes a bound query.
	Check(db *schema.Database, q *sqlast.Query) []Diagnostic
}

// RuleBinding is the pseudo-rule ID reported when a query fails
// schema binding (unknown tables or columns, ambiguous references).
const RuleBinding = "schema-bind"

// SemanticRules returns the default rule set applied to bound queries:
// join-graph connectivity, predicate type compatibility, aggregate /
// GROUP BY coherence, DISTINCT-aggregate coherence, ORDER BY scope
// resolution and subquery shape.
func SemanticRules() []Rule {
	return []Rule{
		JoinConnectivity{},
		TypeCompat{},
		AggGroup{},
		DistinctAgg{},
		OrderScope{},
		SubqueryShape{},
	}
}

// Analyzer applies a rule set to queries for one database.
type Analyzer struct {
	db    *schema.Database
	rules []Rule
}

// New builds an analyzer. With no explicit rules the default
// SemanticRules set is used.
func New(db *schema.Database, rules ...Rule) *Analyzer {
	if len(rules) == 0 {
		rules = SemanticRules()
	}
	return &Analyzer{db: db, rules: rules}
}

// Rules returns the analyzer's rule set.
func (a *Analyzer) Rules() []Rule { return a.rules }

// Check validates an arbitrary query: the query is cloned and bound
// against the database first (a binding failure is reported under the
// RuleBinding ID and stops the analysis), then every rule runs over the
// bound tree. The input query is never mutated.
func (a *Analyzer) Check(q *sqlast.Query) []Diagnostic {
	bound := q.Clone()
	if err := a.db.Bind(bound); err != nil {
		return []Diagnostic{{
			Rule:     RuleBinding,
			Severity: Error,
			Message:  err.Error(),
		}}
	}
	return a.CheckBound(bound)
}

// CheckBound applies the rule set to a query that is already bound
// against the database (as candidates inside the generalizer are).
func (a *Analyzer) CheckBound(q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	for _, r := range a.rules {
		out = append(out, r.Check(a.db, q)...)
	}
	return out
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// FirstError returns the first error-severity diagnostic, or nil.
func FirstError(diags []Diagnostic) *Diagnostic {
	for i := range diags {
		if diags[i].Severity == Error {
			return &diags[i]
		}
	}
	return nil
}
