package sqlcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// ent is one FROM-clause entry visible to a SELECT block, used for type
// and column resolution by the semantic rules.
type ent struct {
	key   string        // lookup key: alias if present, else table name (lower)
	table *schema.Table // nil for derived tables
	sub   *sqlast.Select
}

// blockScope lists the FROM entries of a block. Unknown base tables
// yield entries with a nil table; binding has already reported those.
func blockScope(db *schema.Database, s *sqlast.Select) []ent {
	var scope []ent
	for i := range s.From.Tables {
		tr := &s.From.Tables[i]
		key := strings.ToLower(tr.Alias)
		if tr.Sub != nil {
			scope = append(scope, ent{key: key, sub: tr.Sub.Select})
			continue
		}
		if key == "" {
			key = strings.ToLower(tr.Name)
		}
		scope = append(scope, ent{key: key, table: db.Table(tr.Name)})
	}
	return scope
}

// refType resolves the schema type of a column reference within a block
// scope. The second result is false when the type cannot be determined
// (stars, unknown tables, derived columns without a base column).
func refType(db *schema.Database, scope []ent, c *sqlast.ColumnRef) (schema.Type, bool) {
	if c == nil || c.IsStar() {
		return 0, false
	}
	match := func(e ent) (schema.Type, bool) {
		if e.table != nil {
			if col := e.table.Column(c.Column); col != nil {
				return col.Type, true
			}
			return 0, false
		}
		if e.sub == nil {
			return 0, false
		}
		inner := blockScope(db, e.sub)
		for _, it := range e.sub.Items {
			ic, ok := it.Expr.(*sqlast.ColumnRef)
			if ok && strings.EqualFold(ic.Column, c.Column) {
				return refType(db, inner, ic)
			}
		}
		return 0, false
	}
	if c.Table != "" {
		want := strings.ToLower(c.Table)
		for _, e := range scope {
			if e.key == want || (e.table != nil && strings.EqualFold(e.table.Name, c.Table)) {
				return match(e)
			}
		}
		return 0, false
	}
	for _, e := range scope {
		if t, ok := match(e); ok {
			return t, true
		}
	}
	return 0, false
}

// exprType resolves the type of a value expression; ok is false for
// unknown types (placeholders, stars, unresolvable references).
func exprType(db *schema.Database, scope []ent, e sqlast.Expr) (schema.Type, bool) {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		return refType(db, scope, x)
	case *sqlast.Lit:
		switch x.Kind {
		case sqlast.NumberLit:
			return schema.Number, true
		case sqlast.StringLit:
			return schema.Text, true
		}
		return 0, false // placeholder: compatible with anything
	case *sqlast.Agg:
		switch x.Func {
		case sqlast.Count, sqlast.Sum, sqlast.Avg:
			return schema.Number, true
		default: // MIN/MAX preserve the argument type
			return refType(db, scope, x.Arg)
		}
	case *sqlast.Subquery:
		if x.Q != nil && x.Q.Select != nil && len(x.Q.Select.Items) == 1 {
			inner := blockScope(db, x.Q.Select)
			return exprType(db, inner, x.Q.Select.Items[0].Expr)
		}
	}
	return 0, false
}

// walkBlocks runs fn over every SELECT block of the query, including
// compound arms, predicate subqueries and derived tables, passing each
// block's own FROM scope. WalkQueries already visits compound right
// arms as their own *Query, so only sub.Select is inspected here.
func walkBlocks(db *schema.Database, q *sqlast.Query, fn func(s *sqlast.Select, scope []ent)) {
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		if sub.Select != nil {
			fn(sub.Select, blockScope(db, sub.Select))
		}
	})
}

// JoinConnectivity rejects FROM clauses whose join graph does not
// connect every table (cartesian products) and warns about join
// conditions that are not declared foreign-key edges.
type JoinConnectivity struct{}

// ID implements Rule.
func (JoinConnectivity) ID() string { return "join-connect" }

// Doc implements Rule.
func (JoinConnectivity) Doc() string {
	return "FROM graph must be connected through join conditions; joins should follow foreign keys"
}

// Check implements Rule.
func (JoinConnectivity) Check(db *schema.Database, q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	walkBlocks(db, q, func(s *sqlast.Select, scope []ent) {
		if len(scope) < 2 {
			return
		}
		// Union-find over scope entries, joined by ON conditions.
		parent := make([]int, len(scope))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(i int) int {
			for parent[i] != i {
				parent[i] = parent[parent[i]]
				i = parent[i]
			}
			return i
		}
		locate := func(name string) int {
			key := strings.ToLower(name)
			for i, e := range scope {
				if e.key == key || (e.table != nil && strings.EqualFold(e.table.Name, name)) {
					return i
				}
			}
			return -1
		}
		for _, j := range s.From.Joins {
			li, ri := locate(j.Left.Table), locate(j.Right.Table)
			if li < 0 || ri < 0 {
				continue
			}
			parent[find(li)] = find(ri)
		}
		root := find(0)
		for i := 1; i < len(scope); i++ {
			if find(i) != root {
				out = append(out, Diagnostic{
					Rule:     "join-connect",
					Severity: Error,
					Message:  fmt.Sprintf("FROM clause is a cartesian product: %q is not connected by any join condition", scope[i].key),
					Clause:   fromClause(s),
				})
				return
			}
		}
		// Every edge should follow a declared foreign key.
		edges := schema.JoinEdges(db, s)
		for _, e := range edges {
			lt, lc := db.Column(e.LeftTable, e.LeftColumn)
			rt, rc := db.Column(e.RightTable, e.RightColumn)
			if lc == nil || rc == nil {
				continue // unknown columns belong to binding
			}
			if lt == rt {
				continue // self-join on the same table
			}
			if !db.FKEdge(e.LeftTable, e.LeftColumn, e.RightTable, e.RightColumn) {
				out = append(out, Diagnostic{
					Rule:     "join-connect",
					Severity: Warning,
					Message: fmt.Sprintf("join %s.%s = %s.%s is not a declared foreign-key edge",
						e.LeftTable, e.LeftColumn, e.RightTable, e.RightColumn),
					Clause: fromClause(s),
				})
			}
		}
	})
	return out
}

func fromClause(s *sqlast.Select) string {
	var b strings.Builder
	b.WriteString("FROM ")
	for i, t := range s.From.Tables {
		if i > 0 {
			b.WriteString(" JOIN ")
		}
		if t.Sub != nil {
			b.WriteString("(" + t.Sub.String() + ")")
		} else {
			b.WriteString(t.Name)
		}
		if t.Alias != "" {
			b.WriteString(" AS " + t.Alias)
		}
	}
	return b.String()
}

// TypeCompat rejects predicates that compare incompatible types (a
// numeric literal against a text column, text against a number column,
// LIKE over numbers) and numeric aggregates over text columns.
type TypeCompat struct{}

// ID implements Rule.
func (TypeCompat) ID() string { return "type-compat" }

// Doc implements Rule.
func (TypeCompat) Doc() string {
	return "predicate operands and aggregate arguments must have compatible types"
}

// Check implements Rule.
func (TypeCompat) Check(db *schema.Database, q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	walkBlocks(db, q, func(s *sqlast.Select, scope []ent) {
		check := func(e sqlast.Expr) {
			switch x := e.(type) {
			case *sqlast.Binary:
				if x.Op == "AND" || x.Op == "OR" {
					return
				}
				lt, lok := exprType(db, scope, x.L)
				rt, rok := exprType(db, scope, x.R)
				if strings.Contains(x.Op, "LIKE") {
					if lok && lt != schema.Text {
						out = append(out, Diagnostic{
							Rule: "type-compat", Severity: Error,
							Message: "LIKE requires a text operand",
							Clause:  sqlast.ExprString(x),
						})
					}
					return
				}
				if lok && rok && lt != rt {
					out = append(out, Diagnostic{
						Rule: "type-compat", Severity: Error,
						Message: fmt.Sprintf("comparison between %s and %s operands", lt, rt),
						Clause:  sqlast.ExprString(x),
					})
				}
			case *sqlast.Between:
				xt, xok := exprType(db, scope, x.X)
				if !xok {
					return
				}
				for _, bound := range []sqlast.Expr{x.Lo, x.Hi} {
					bt, bok := exprType(db, scope, bound)
					if bok && bt != xt {
						out = append(out, Diagnostic{
							Rule: "type-compat", Severity: Error,
							Message: fmt.Sprintf("BETWEEN bound type %s does not match operand type %s", bt, xt),
							Clause:  sqlast.ExprString(x),
						})
						return
					}
				}
			case *sqlast.In:
				xt, xok := exprType(db, scope, x.X)
				if !xok || x.Sub == nil || x.Sub.Select == nil || len(x.Sub.Select.Items) != 1 {
					return
				}
				inner := blockScope(db, x.Sub.Select)
				st, sok := exprType(db, inner, x.Sub.Select.Items[0].Expr)
				if sok && st != xt {
					out = append(out, Diagnostic{
						Rule: "type-compat", Severity: Error,
						Message: fmt.Sprintf("IN subquery yields %s values for a %s operand", st, xt),
						Clause:  sqlast.ExprString(x),
					})
				}
			case *sqlast.Agg:
				if (x.Func == sqlast.Sum || x.Func == sqlast.Avg) && x.Arg != nil && !x.Arg.IsStar() {
					if t, ok := refType(db, scope, x.Arg); ok && t != schema.Number {
						out = append(out, Diagnostic{
							Rule: "type-compat", Severity: Error,
							Message: fmt.Sprintf("%s over text column %s", x.Func, x.Arg.Column),
							Clause:  sqlast.ExprString(x),
						})
					}
				}
			}
		}
		sqlast.WalkExprs(s.Where, check)
		sqlast.WalkExprs(s.Having, check)
		for _, it := range s.Items {
			sqlast.WalkExprs(it.Expr, check)
		}
		for _, o := range s.OrderBy {
			sqlast.WalkExprs(o.Expr, check)
		}
		for _, j := range s.From.Joins {
			lt, lok := refType(db, scope, &j.Left)
			rt, rok := refType(db, scope, &j.Right)
			if lok && rok && lt != rt {
				out = append(out, Diagnostic{
					Rule: "type-compat", Severity: Error,
					Message: fmt.Sprintf("join compares %s with %s", lt, rt),
					Clause:  fmt.Sprintf("ON %s = %s", sqlast.ExprString(&j.Left), sqlast.ExprString(&j.Right)),
				})
			}
		}
	})
	return out
}

// AggGroup enforces aggregate / GROUP BY coherence: no mixing of
// aggregates and bare columns without grouping, selected bare columns
// must be grouped, HAVING requires GROUP BY, aggregates are not allowed
// in WHERE, and an aggregate ORDER BY requires grouping unless the whole
// projection aggregates.
type AggGroup struct {
	// Core restricts the rule to the Algorithm 1 conditions the
	// generalizer applies while searching (aggregate/bare mix without
	// GROUP BY, HAVING without GROUP BY, aggregate ORDER BY without
	// grouping or an aggregate projection), skipping the stricter
	// ungrouped-selected-column and aggregate-in-WHERE checks.
	Core bool
}

// ID implements Rule.
func (AggGroup) ID() string { return "agg-group" }

// Doc implements Rule.
func (AggGroup) Doc() string {
	return "aggregates, GROUP BY, HAVING and bare columns must be coherent"
}

// Check implements Rule.
func (r AggGroup) Check(db *schema.Database, q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	report := func(msg, clause string) {
		out = append(out, Diagnostic{Rule: "agg-group", Severity: Error, Message: msg, Clause: clause})
	}
	walkBlocks(db, q, func(s *sqlast.Select, scope []ent) {
		grouped := len(s.GroupBy) > 0
		inGroup := func(c *sqlast.ColumnRef) bool {
			for _, g := range s.GroupBy {
				if strings.EqualFold(g.Column, c.Column) &&
					(g.Table == "" || c.Table == "" || strings.EqualFold(g.Table, c.Table)) {
					return true
				}
			}
			return false
		}
		aggItems, plainItems := 0, 0
		for _, it := range s.Items {
			if _, isAgg := it.Expr.(*sqlast.Agg); isAgg {
				aggItems++
				continue
			}
			plainItems++
			if c, ok := it.Expr.(*sqlast.ColumnRef); ok && !r.Core && grouped && !c.IsStar() && !inGroup(c) {
				report(fmt.Sprintf("column %s is selected but neither grouped nor aggregated", c.Column),
					sqlast.ExprString(c))
			}
		}
		if aggItems > 0 && plainItems > 0 && !grouped {
			report("aggregates mixed with bare columns without GROUP BY", "")
		}
		if s.Having != nil && !grouped {
			report("HAVING without GROUP BY", sqlast.ExprString(s.Having))
		}
		if !r.Core {
			sqlast.WalkExprs(s.Where, func(e sqlast.Expr) {
				if a, ok := e.(*sqlast.Agg); ok {
					report("aggregate not allowed in WHERE", sqlast.ExprString(a))
				}
			})
		}
		if !grouped && aggItems == 0 {
			for _, o := range s.OrderBy {
				if a, ok := o.Expr.(*sqlast.Agg); ok {
					report("ORDER BY aggregate requires GROUP BY or an aggregate projection",
						sqlast.ExprString(a))
				}
			}
		}
	})
	return out
}

// OrderScope enforces ORDER BY scope resolution: in grouped blocks the
// sort keys must be grouped columns or aggregates, and under SELECT
// DISTINCT the sort keys must appear in the projection.
type OrderScope struct{}

// ID implements Rule.
func (OrderScope) ID() string { return "order-scope" }

// Doc implements Rule.
func (OrderScope) Doc() string {
	return "ORDER BY keys must be resolvable from the projection under DISTINCT or GROUP BY"
}

// Check implements Rule.
func (OrderScope) Check(db *schema.Database, q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	walkBlocks(db, q, func(s *sqlast.Select, scope []ent) {
		if len(s.OrderBy) == 0 {
			return
		}
		selected := func(c *sqlast.ColumnRef) bool {
			for _, it := range s.Items {
				ic, ok := it.Expr.(*sqlast.ColumnRef)
				if !ok {
					continue
				}
				if ic.IsStar() {
					return true
				}
				if strings.EqualFold(ic.Column, c.Column) &&
					(ic.Table == "" || c.Table == "" || strings.EqualFold(ic.Table, c.Table)) {
					return true
				}
			}
			return false
		}
		grouped := func(c *sqlast.ColumnRef) bool {
			for _, g := range s.GroupBy {
				if strings.EqualFold(g.Column, c.Column) &&
					(g.Table == "" || c.Table == "" || strings.EqualFold(g.Table, c.Table)) {
					return true
				}
			}
			return false
		}
		for _, o := range s.OrderBy {
			c, ok := o.Expr.(*sqlast.ColumnRef)
			if !ok {
				continue
			}
			if s.Distinct && !selected(c) {
				out = append(out, Diagnostic{
					Rule: "order-scope", Severity: Error,
					Message: fmt.Sprintf("ORDER BY %s is not in the SELECT DISTINCT projection", c.Column),
					Clause:  sqlast.ExprString(c),
				})
				continue
			}
			if len(s.GroupBy) > 0 && !grouped(c) && !selected(c) {
				out = append(out, Diagnostic{
					Rule: "order-scope", Severity: Error,
					Message: fmt.Sprintf("ORDER BY %s is neither grouped nor selected", c.Column),
					Clause:  sqlast.ExprString(c),
				})
			}
		}
	})
	return out
}

// SubqueryShape checks the column arity of subqueries: IN and scalar
// subqueries must project exactly one column, and compound (set-op) arms
// must project the same number of columns.
type SubqueryShape struct{}

// ID implements Rule.
func (SubqueryShape) ID() string { return "subquery-shape" }

// Doc implements Rule.
func (SubqueryShape) Doc() string {
	return "IN/scalar subqueries project one column; set-operation arms agree on arity"
}

// Check implements Rule.
func (SubqueryShape) Check(db *schema.Database, q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	arity := func(s *sqlast.Select) int {
		n := 0
		for _, it := range s.Items {
			c, ok := it.Expr.(*sqlast.ColumnRef)
			if !ok || !c.IsStar() {
				n++
				continue
			}
			// Resolve the star against the block scope.
			for _, e := range blockScope(db, s) {
				if c.Table != "" && e.key != strings.ToLower(c.Table) &&
					(e.table == nil || !strings.EqualFold(e.table.Name, c.Table)) {
					continue
				}
				switch {
				case e.table != nil:
					n += len(e.table.Columns)
				case e.sub != nil:
					n += len(e.sub.Items)
				}
			}
		}
		return n
	}
	checkSub := func(sub *sqlast.Query, what string) {
		if sub == nil || sub.Select == nil {
			return
		}
		if got := arity(sub.Select); got != 1 {
			out = append(out, Diagnostic{
				Rule: "subquery-shape", Severity: Error,
				Message: fmt.Sprintf("%s must project exactly one column, got %d", what, got),
				Clause:  sub.String(),
			})
		}
	}
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		if sub.Op != sqlast.SetNone && sub.Right != nil {
			l, r := arity(sub.Select), arity(sub.Right.Select)
			if l != r {
				out = append(out, Diagnostic{
					Rule: "subquery-shape", Severity: Error,
					Message: fmt.Sprintf("%s arms project %d vs %d columns", sub.Op, l, r),
					Clause:  sub.String(),
				})
			}
		}
		visit := func(e sqlast.Expr) {
			switch x := e.(type) {
			case *sqlast.In:
				checkSub(x.Sub, "IN subquery")
			case *sqlast.Subquery:
				checkSub(x.Q, "scalar subquery")
			}
		}
		sqlast.WalkExprs(sub.Select.Where, visit)
		sqlast.WalkExprs(sub.Select.Having, visit)
	})
	return out
}

// DistinctAgg enforces DISTINCT-aggregate coherence within a block:
// DISTINCT over * is not valid SQL, DISTINCT under MIN/MAX cannot change
// the result, a DISTINCT aggregate over a grouped column is degenerate
// (every group holds exactly one value of its grouping key), and the
// same function applied to the same column both with and without
// DISTINCT duplicates a candidate that differs only in COUNT
// multiplicity. The generalizer's aggregate enumeration produces exactly
// these shapes, so the rule prunes them before ranking.
type DistinctAgg struct{}

// ID implements Rule.
func (DistinctAgg) ID() string { return "distinct-agg" }

// Doc implements Rule.
func (DistinctAgg) Doc() string {
	return "DISTINCT aggregates must be coherent: no DISTINCT *, no DISTINCT under MIN/MAX, no grouped or distinct/plain-mixed argument"
}

// Check implements Rule.
func (DistinctAgg) Check(db *schema.Database, q *sqlast.Query) []Diagnostic {
	var out []Diagnostic
	report := func(msg, clause string) {
		out = append(out, Diagnostic{Rule: "distinct-agg", Severity: Error, Message: msg, Clause: clause})
	}
	walkBlocks(db, q, func(s *sqlast.Select, scope []ent) {
		inGroup := func(c *sqlast.ColumnRef) bool {
			for _, g := range s.GroupBy {
				if strings.EqualFold(g.Column, c.Column) &&
					(g.Table == "" || c.Table == "" || strings.EqualFold(g.Table, c.Table)) {
					return true
				}
			}
			return false
		}
		// seen records, per (function, argument column), which DISTINCT
		// modifiers appeared anywhere in the block.
		type aggKey struct {
			fn  sqlast.AggFunc
			col string
		}
		seen := map[aggKey]map[bool]*sqlast.Agg{}
		visit := func(e sqlast.Expr) {
			sqlast.WalkExprs(e, func(e sqlast.Expr) {
				a, ok := e.(*sqlast.Agg)
				if !ok {
					return
				}
				if a.Distinct {
					if a.Arg == nil || a.Arg.IsStar() {
						report("DISTINCT * is not a valid aggregate argument", sqlast.ExprString(a))
						return
					}
					if a.Func == sqlast.Min || a.Func == sqlast.Max {
						report(fmt.Sprintf("DISTINCT under %s has no effect", a.Func), sqlast.ExprString(a))
					}
					if inGroup(a.Arg) {
						report(fmt.Sprintf("%s(DISTINCT %s) over a grouped column is degenerate: each group holds one value",
							a.Func, a.Arg.Column), sqlast.ExprString(a))
					}
				}
				if a.Arg == nil || a.Arg.IsStar() {
					return
				}
				key := aggKey{fn: a.Func, col: strings.ToLower(a.Arg.Table + "." + a.Arg.Column)}
				if seen[key] == nil {
					seen[key] = map[bool]*sqlast.Agg{}
				}
				seen[key][a.Distinct] = a
			})
		}
		for _, it := range s.Items {
			visit(it.Expr)
		}
		visit(s.Having)
		for _, o := range s.OrderBy {
			visit(o.Expr)
		}
		keys := make([]aggKey, 0, len(seen))
		for key := range seen {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].fn != keys[j].fn {
				return keys[i].fn < keys[j].fn
			}
			return keys[i].col < keys[j].col
		})
		for _, key := range keys {
			mods := seen[key]
			if d, ok := mods[true]; ok && mods[false] != nil {
				report(fmt.Sprintf("%s is aggregated by %s both with and without DISTINCT in one block",
					d.Arg.Column, key.fn), sqlast.ExprString(d))
			}
		}
	})
	return out
}
