package sqltoken_test

import (
	"testing"

	"repro/internal/sqltoken"
)

func kinds(toks []sqltoken.Token) []sqltoken.Kind {
	out := make([]sqltoken.Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := sqltoken.Lex("SELECT name FROM employee WHERE age >= 30")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind sqltoken.Kind
		text string
	}{
		{sqltoken.Keyword, "SELECT"},
		{sqltoken.Ident, "name"},
		{sqltoken.Keyword, "FROM"},
		{sqltoken.Ident, "employee"},
		{sqltoken.Keyword, "WHERE"},
		{sqltoken.Ident, "age"},
		{sqltoken.Symbol, ">="},
		{sqltoken.Number, "30"},
		{sqltoken.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := sqltoken.Lex(`'single' "double"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != sqltoken.String || toks[0].Text != "single" {
		t.Errorf("single-quoted: %v", toks[0])
	}
	if toks[1].Kind != sqltoken.String || toks[1].Text != "double" {
		t.Errorf("double-quoted: %v", toks[1])
	}
	if _, err := sqltoken.Lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := sqltoken.Lex("a != b <> c <= d >= e < f > g = h")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == sqltoken.Symbol {
			ops = append(ops, tok.Text)
		}
	}
	// <> normalizes to !=.
	want := []string{"!=", "!=", "<=", ">=", "<", ">", "="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexKeywordCaseFolding(t *testing.T) {
	toks, err := sqltoken.Lex("select Name")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != sqltoken.Keyword || toks[0].Text != "SELECT" {
		t.Errorf("keyword not upper-cased: %v", toks[0])
	}
	// Identifier case is preserved.
	if toks[1].Kind != sqltoken.Ident || toks[1].Text != "Name" {
		t.Errorf("identifier case changed: %v", toks[1])
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := sqltoken.Lex("1 2.5 100")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"1", "2.5", "100"} {
		if toks[i].Kind != sqltoken.Number || toks[i].Text != want {
			t.Errorf("number %d = %v", i, toks[i])
		}
	}
}

func TestLexBadCharacter(t *testing.T) {
	if _, err := sqltoken.Lex("a % b"); err == nil {
		t.Error("unexpected character accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := sqltoken.Lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Errorf("positions wrong: %d, %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestKindString(t *testing.T) {
	names := map[sqltoken.Kind]string{
		sqltoken.EOF: "EOF", sqltoken.Ident: "Ident", sqltoken.Number: "Number",
		sqltoken.String: "String", sqltoken.Keyword: "Keyword", sqltoken.Symbol: "Symbol",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
