package sqltoken

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer scans a SQL string into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Lex tokenizes the whole input, returning the token stream terminated by
// an EOF token. It returns an error on any character that cannot start a
// token or on an unterminated string literal.
func Lex(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		word := l.scanWhile(isIdentPart)
		upper := strings.ToUpper(word)
		if IsKeyword(upper) {
			return Token{Kind: Keyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: Ident, Text: word, Pos: start}, nil
	case c >= '0' && c <= '9':
		num := l.scanWhile(func(b byte) bool {
			return b >= '0' && b <= '9' || b == '.'
		})
		return Token{Kind: Number, Text: num, Pos: start}, nil
	case c == '\'' || c == '"':
		return l.scanString(c)
	default:
		return l.scanSymbol()
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *Lexer) scanWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.src) && pred(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *Lexer) scanString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{}, fmt.Errorf("sqltoken: unterminated string literal at offset %d", start)
	}
	text := l.src[start+1 : l.pos]
	l.pos++ // closing quote
	return Token{Kind: String, Text: text, Pos: start}, nil
}

func (l *Lexer) scanSymbol() (Token, error) {
	start := l.pos
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		l.pos += 2
		if two == "<>" {
			two = "!="
		}
		return Token{Kind: Symbol, Text: two, Pos: start}, nil
	}
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', ';', '+', '-', '/':
		l.pos++
		return Token{Kind: Symbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqltoken: unexpected character %q at offset %d", c, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
