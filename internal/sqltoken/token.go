// Package sqltoken implements a lexical scanner for the SQL subset used
// throughout the GAR system. The subset follows the SPIDER benchmark
// grammar: SELECT/FROM/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, explicit
// JOIN ... ON join paths, the set operators UNION/INTERSECT/EXCEPT, the
// aggregates COUNT/SUM/AVG/MIN/MAX, and nested subqueries.
package sqltoken

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. Keywords are folded into the single Keyword kind; the
// parser dispatches on the upper-cased text instead of on distinct kinds,
// which keeps the scanner small and the keyword set easy to extend.
const (
	// EOF marks the end of the input.
	EOF Kind = iota
	// Ident is an unquoted identifier such as a table or column name.
	Ident
	// Number is an integer or floating point literal.
	Number
	// String is a single- or double-quoted string literal.
	String
	// Keyword is a reserved SQL word (SELECT, FROM, ...).
	Keyword
	// Symbol is an operator or punctuation: ( ) , . * = != <> < <= > >= ;
	Symbol
	// Placeholder is the literal-value placeholder token used after value
	// masking ("value" in SPIDER normalization, rendered as 1 terminal).
	Placeholder
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Number:
		return "Number"
	case String:
		return "String"
	case Keyword:
		return "Keyword"
	case Symbol:
		return "Symbol"
	case Placeholder:
		return "Placeholder"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	// Text is the token text. Keywords are upper-cased; identifiers keep
	// their original case; string literals exclude the surrounding quotes.
	Text string
	// Pos is the byte offset of the token start in the input.
	Pos int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords is the reserved-word set of the supported SQL subset.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"JOIN": true, "ON": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "BETWEEN": true, "EXISTS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "DISTINCT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"ALL": true, "IS": true, "NULL": true, "INNER": true, "LEFT": true,
	"OUTER": true,
}

// IsKeyword reports whether the upper-cased word is reserved in the
// supported SQL subset.
func IsKeyword(upper string) bool { return keywords[upper] }
