package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/fleet"
)

// The fixture: every tenant is a tiny inventory database sharing one
// set of cross-database models, trained once per test binary — tenant
// activation then costs one Prepare plus one model deployment, which
// keeps multi-tenant tests fast.

func fleetOpts() gar.Options {
	return gar.Options{GeneralizeSize: 120, RetrievalK: 8, Seed: 1, EncoderEpochs: 6, RerankEpochs: 12}
}

func itemDB(name string) *gar.Database {
	db := gar.NewDatabase(name)
	db.AddTable("item", gar.Key("item_id"),
		gar.NumberColumn("item_id", "item id"),
		gar.TextColumn("label", "label"),
		gar.NumberColumn("qty", "quantity"))
	return db
}

func itemSamples() []string {
	return []string{
		"SELECT label FROM item",
		"SELECT COUNT(*) FROM item",
		"SELECT label FROM item ORDER BY qty DESC LIMIT 1",
		"SELECT qty FROM item WHERE label = 'pen'",
	}
}

func itemExamples() []gar.Example {
	return []gar.Example{
		{Question: "list the item labels", SQL: "SELECT label FROM item"},
		{Question: "how many items are there", SQL: "SELECT COUNT(*) FROM item"},
		{Question: "which item has the largest quantity", SQL: "SELECT label FROM item ORDER BY qty DESC LIMIT 1"},
		{Question: "what is the quantity of pens", SQL: "SELECT qty FROM item WHERE label = 'pen'"},
	}
}

var (
	modelsOnce sync.Once
	models     *gar.Models
	modelsErr  error
)

func trainedModels(t *testing.T) *gar.Models {
	t.Helper()
	modelsOnce.Do(func() {
		sys, err := gar.New(itemDB("trainer"), fleetOpts())
		if err == nil {
			err = sys.Prepare(itemSamples())
		}
		if err != nil {
			modelsErr = err
			return
		}
		models, modelsErr = gar.TrainModels(
			[]gar.TrainingSet{{System: sys, Examples: itemExamples()}}, fleetOpts())
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return models
}

// testSource implements fleet.Source over the fixture, with knobs for
// failure injection and deterministic stalls.
type testSource struct {
	opts   gar.Options
	models *gar.Models

	mu            sync.Mutex
	deploys       map[string]int
	deployErr     map[string]error
	deployGate    chan struct{}            // when set, Deploy parks until closed
	reloadGate    map[string]chan struct{} // when set for a tenant, Reload parks
	reloadEntered chan string              // Reload announces itself before parking
	reloadCount   map[string]int
}

func newTestSource(t *testing.T) *testSource {
	return &testSource{
		opts:          fleetOpts(),
		models:        trainedModels(t),
		deploys:       map[string]int{},
		deployErr:     map[string]error{},
		reloadGate:    map[string]chan struct{}{},
		reloadEntered: make(chan string, 8),
		reloadCount:   map[string]int{},
	}
}

func (s *testSource) Cold(name string) (*gar.System, error) {
	return gar.New(itemDB(name), s.opts)
}

func (s *testSource) Deploy(ctx context.Context, name string, sys *gar.System) (bool, error) {
	s.mu.Lock()
	s.deploys[name]++
	err := s.deployErr[name]
	gate := s.deployGate
	s.mu.Unlock()
	if gate != nil {
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-gate:
		}
	}
	if err != nil {
		return false, err
	}
	if err := sys.Prepare(itemSamples()); err != nil {
		return false, err
	}
	if err := sys.UseModels(s.models); err != nil {
		return false, err
	}
	return true, nil
}

func (s *testSource) Reload(ctx context.Context, name string, sys *gar.System) error {
	s.mu.Lock()
	gate := s.reloadGate[name]
	s.mu.Unlock()
	if gate != nil {
		s.reloadEntered <- name
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-gate:
		}
	}
	if _, err := sys.Swap(itemSamples(), s.models); err != nil {
		return err
	}
	s.mu.Lock()
	s.reloadCount[name]++
	s.mu.Unlock()
	return nil
}

func (s *testSource) deployCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deploys[name]
}

// translateVia follows the serving path: pin the tenant, pass its
// admission controller, translate.
func translateVia(ctx context.Context, reg *fleet.Registry, tenant, question string) (*gar.Result, error) {
	h, err := reg.Acquire(ctx, tenant)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	release, err := h.Admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return h.Sys().TranslateContext(ctx, question)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFleetActivateTranslateHealth(t *testing.T) {
	src := newTestSource(t)
	reg := fleet.New(src, fleet.Config{MaxActive: 4})
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Register("alpha"); err == nil {
		t.Fatal("double registration accepted")
	}
	if err := reg.Register("../escape"); err == nil {
		t.Fatal("path-escaping tenant name accepted")
	}
	if got := reg.Names(); len(got) != 3 || got[0] != "alpha" {
		t.Fatalf("Names = %v", got)
	}
	ctx := context.Background()
	if _, err := translateVia(ctx, reg, "nosuch", "how many items are there"); !errors.Is(err, fleet.ErrUnknownTenant) {
		t.Fatalf("unknown tenant error = %v", err)
	}
	if reg.AnyReady() {
		t.Fatal("ready before any activation")
	}
	res, err := translateVia(ctx, reg, "alpha", "how many items are there")
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := gar.ExactMatch(res.SQL, "SELECT COUNT(*) FROM item"); err != nil || !ok {
		t.Fatalf("translation wrong: %q (%v)", res.SQL, err)
	}
	if !reg.AnyReady() {
		t.Fatal("not ready after activation")
	}

	h := reg.Health()
	if h.Status != "ok" || h.Known != 3 || h.Active != 1 {
		t.Fatalf("fleet health = %+v", h)
	}
	row := h.Tenants["alpha"]
	if row.Status != "ok" || !row.Ready || row.Counters.Activations != 1 || row.Counters.ColdBuilds != 1 {
		t.Fatalf("alpha health = %+v", row)
	}
	if row.Admission.Admitted != 1 || row.Breaker == nil {
		t.Fatalf("alpha admission/breaker = %+v", row)
	}
	if cold := h.Tenants["beta"]; cold.Status != "cold" || cold.Ready {
		t.Fatalf("beta health = %+v", cold)
	}
	if _, err := reg.TenantHealth("nosuch"); !errors.Is(err, fleet.ErrUnknownTenant) {
		t.Fatalf("TenantHealth unknown = %v", err)
	}
}

func TestFleetSingleFlightActivation(t *testing.T) {
	src := newTestSource(t)
	gate := make(chan struct{})
	src.mu.Lock()
	src.deployGate = gate
	src.mu.Unlock()
	reg := fleet.New(src, fleet.Config{MaxActive: 2})
	if err := reg.Register("alpha"); err != nil {
		t.Fatal(err)
	}

	const stampede = 16
	errs := make(chan error, stampede)
	ctx := context.Background()
	for range stampede {
		go func() {
			_, err := translateVia(ctx, reg, "alpha", "how many items are there")
			errs <- err
		}()
	}
	// Everyone is parked on the same activation round; exactly one
	// Deploy must be running.
	waitFor(t, "the stampede to reach the gate", func() bool { return src.deployCount("alpha") == 1 })
	close(gate)
	for range stampede {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := src.deployCount("alpha"); n != 1 {
		t.Fatalf("stampede ran %d deploys, want 1", n)
	}
	if row := reg.Health().Tenants["alpha"]; row.Counters.Activations != 1 {
		t.Fatalf("activations = %d, want 1", row.Counters.Activations)
	}
}

func TestFleetLRUEvictionPreservesState(t *testing.T) {
	src := newTestSource(t)
	stateDir := t.TempDir()
	reg := fleet.New(src, fleet.Config{MaxActive: 2, StateDir: stateDir})
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	const q = "which item has the largest quantity"
	baseB, err := translateVia(ctx, reg, "beta", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := translateVia(ctx, reg, "alpha", q); err != nil {
		t.Fatal(err)
	}
	// beta is now the least-recently-used idle tenant; activating a
	// third must flush and evict it.
	if _, err := translateVia(ctx, reg, "gamma", q); err != nil {
		t.Fatal(err)
	}
	h := reg.Health()
	if h.Active != 2 {
		t.Fatalf("active = %d, want 2", h.Active)
	}
	if row := h.Tenants["beta"]; row.State != "cold" || row.Counters.Evictions != 1 {
		t.Fatalf("beta after eviction = %+v", row)
	}
	files, err := filepath.Glob(filepath.Join(stateDir, "beta", "gen-*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint flushed for evicted tenant (%v, %v)", files, err)
	}

	// Re-activation must warm-start from the checkpoint: same
	// generation, byte-identical answer, no second Deploy.
	again, err := translateVia(ctx, reg, "beta", q)
	if err != nil {
		t.Fatal(err)
	}
	if again.SQL != baseB.SQL || again.Generation != baseB.Generation {
		t.Fatalf("after warm start: %q gen %d, want %q gen %d",
			again.SQL, again.Generation, baseB.SQL, baseB.Generation)
	}
	row := reg.Health().Tenants["beta"]
	if row.Counters.WarmStarts != 1 || src.deployCount("beta") != 1 {
		t.Fatalf("beta warm start counters = %+v, deploys = %d", row.Counters, src.deployCount("beta"))
	}
}

func TestFleetSaturationSheds(t *testing.T) {
	src := newTestSource(t)
	reg := fleet.New(src, fleet.Config{MaxActive: 1, RetryAfter: 3 * time.Second})
	for _, name := range []string{"alpha", "beta"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	h, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	// alpha is pinned: the working set is full with nothing evictable.
	_, err = reg.Acquire(ctx, "beta")
	var sat *fleet.SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("acquire on pinned full set = %v, want SaturatedError", err)
	}
	if sat.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v", sat.RetryAfter)
	}
	if got := reg.Health().ShedSaturated; got == 0 {
		t.Fatal("saturation shed not counted")
	}
	h.Release()
	// With alpha released it becomes the LRU victim and beta activates.
	hb, err := reg.Acquire(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	hb.Release()
	if row := reg.Health().Tenants["alpha"]; row.State != "cold" || row.Counters.Evictions != 1 {
		t.Fatalf("alpha after LRU eviction = %+v", row)
	}
}

func TestFleetIdleEviction(t *testing.T) {
	src := newTestSource(t)
	var clockMu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	stateDir := t.TempDir()
	reg := fleet.New(src, fleet.Config{
		MaxActive: 4, IdleAfter: time.Minute, StateDir: stateDir, Clock: clock,
	})
	if err := reg.Register("alpha"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := translateVia(ctx, reg, "alpha", "list the item labels"); err != nil {
		t.Fatal(err)
	}
	if n := reg.EvictIdle(ctx); n != 0 {
		t.Fatalf("evicted %d fresh tenants", n)
	}
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	if n := reg.EvictIdle(ctx); n != 1 {
		t.Fatalf("evicted %d idle tenants, want 1", n)
	}
	if row := reg.Health().Tenants["alpha"]; row.State != "cold" {
		t.Fatalf("alpha = %+v", row)
	}
	files, _ := filepath.Glob(filepath.Join(stateDir, "alpha", "gen-*.ckpt"))
	if len(files) == 0 {
		t.Fatal("idle eviction flushed nothing")
	}
}

func TestFleetActivationFailure(t *testing.T) {
	src := newTestSource(t)
	src.mu.Lock()
	src.deployErr["bad"] = fmt.Errorf("schema exploded")
	src.mu.Unlock()
	reg := fleet.New(src, fleet.Config{MaxActive: 4})
	for _, name := range []string{"bad", "good"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if _, err := translateVia(ctx, reg, "bad", "how many items are there"); err == nil || !strings.Contains(err.Error(), "schema exploded") {
		t.Fatalf("activation failure = %v", err)
	}
	// The failure is contained: the sibling serves, the fleet reports
	// degraded (a tenant is failing), and the slot was released.
	if _, err := translateVia(ctx, reg, "good", "how many items are there"); err != nil {
		t.Fatal(err)
	}
	h := reg.Health()
	if h.Status != "degraded" || h.Active != 1 {
		t.Fatalf("fleet health = %+v", h)
	}
	row := h.Tenants["bad"]
	if row.Counters.ActivationFailures != 1 || row.LastError == "" || row.State != "cold" {
		t.Fatalf("bad tenant = %+v", row)
	}
	// Clearing the fault lets the next request retry the activation.
	src.mu.Lock()
	delete(src.deployErr, "bad")
	src.mu.Unlock()
	if _, err := translateVia(ctx, reg, "bad", "how many items are there"); err != nil {
		t.Fatalf("retry after clearing fault: %v", err)
	}
	if reg.Health().Status != "ok" {
		t.Fatalf("fleet health after recovery = %+v", reg.Health())
	}
}

func TestFleetReloadScopedPerTenant(t *testing.T) {
	src := newTestSource(t)
	gate := make(chan struct{})
	src.mu.Lock()
	src.reloadGate["alpha"] = gate
	src.mu.Unlock()
	reg := fleet.New(src, fleet.Config{MaxActive: 4})
	for _, name := range []string{"alpha", "beta"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, name := range []string{"alpha", "beta"} {
		if _, err := translateVia(ctx, reg, name, "how many items are there"); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := reg.Reload(ctx, "alpha")
		done <- err
	}()
	<-src.reloadEntered // the first reload holds alpha's lock at the gate
	if _, err := reg.Reload(ctx, "alpha"); !errors.Is(err, fleet.ErrReloadInProgress) {
		t.Fatalf("concurrent reload of the same tenant = %v", err)
	}
	// A different tenant reloads in parallel, unaffected by alpha's
	// in-progress reload.
	if gen, err := reg.Reload(ctx, "beta"); err != nil || gen < 2 {
		t.Fatalf("beta reload = gen %d, %v", gen, err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if row := reg.Health().Tenants["alpha"]; row.Counters.Reloads != 1 || row.Generation < 2 {
		t.Fatalf("alpha after reload = %+v", row)
	}
}

func TestFleetShutdownDrainsAndFlushes(t *testing.T) {
	src := newTestSource(t)
	stateDir := t.TempDir()
	reg := fleet.New(src, fleet.Config{MaxActive: 4, StateDir: stateDir})
	for _, name := range []string{"alpha", "beta"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, name := range []string{"alpha", "beta"} {
		if _, err := translateVia(ctx, reg, name, "list the item labels"); err != nil {
			t.Fatal(err)
		}
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := reg.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		files, _ := filepath.Glob(filepath.Join(stateDir, name, "gen-*.ckpt"))
		if len(files) == 0 {
			t.Fatalf("tenant %s not flushed on shutdown", name)
		}
	}
	if _, err := reg.Acquire(ctx, "alpha"); !errors.Is(err, fleet.ErrClosed) {
		t.Fatalf("acquire after shutdown = %v", err)
	}
	if err := reg.Shutdown(sctx); err != nil {
		t.Fatal("second shutdown not a no-op:", err)
	}
	// The flushed tree is a valid multi-tenant state dir.
	if entries, err := os.ReadDir(stateDir); err != nil || len(entries) != 2 {
		t.Fatalf("state tree = %v, %v", entries, err)
	}
}
