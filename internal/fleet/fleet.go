// Package fleet serves many databases from one process. A Registry
// maps tenant (database) name → an isolated serving System, keeping a
// bounded working set resident: cold tenants are activated on first
// use — warm-started from their per-tenant checkpoint directory when
// one exists, cold-built through the caller's Source otherwise — and
// the least-recently-used idle tenant is evicted when the set is full,
// but only after its state has been flushed to a checkpoint.
//
// Isolation is the point. Every tenant owns its admission controller
// and circuit breaker, sized from fleet-wide limits, so one saturated
// or failing tenant sheds 429s or degrades to retrieval-only while its
// siblings serve normally. Activation is single-flight: a stampede of
// requests for a cold tenant builds the snapshot once while everyone
// waits on the same round. Health rolls up per-tenant state
// (ok|degraded|unavailable, activation/eviction/shed/breaker counters)
// into one fleet view.
//
// Lock ordering: capMu (working-set accounting) before any tenant.mu;
// never two tenant mutexes at once.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/gar"
	"repro/internal/admit"
	"repro/internal/breaker"
	"repro/internal/checkpoint"
	"repro/internal/feedback"
	"repro/internal/spill"
)

// ErrUnknownTenant reports a request for a name the registry does not
// know. The HTTP layer maps it to 404.
var ErrUnknownTenant = errors.New("fleet: unknown tenant")

// ErrClosed reports a request arriving after Shutdown began.
var ErrClosed = errors.New("fleet: registry shut down")

// ErrReloadInProgress reports a reload refused because the same tenant
// is already reloading. Reloads of different tenants proceed in
// parallel; the HTTP layer maps this to 409 for the one that conflicts.
var ErrReloadInProgress = errors.New("fleet: reload already in progress")

// SaturatedError reports an activation shed because the working set is
// full and no tenant is evictable (every resident tenant has pinned
// requests). The HTTP layer maps it to 429 with a Retry-After hint.
type SaturatedError struct {
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return "fleet: working set saturated, no evictable tenant"
}

// Source builds tenant systems on the registry's behalf; the command
// layer implements it over its spec files. Implementations must be safe
// for concurrent use — different tenants activate and reload in
// parallel.
type Source interface {
	// Cold assembles the tenant's System shell: schema bound, nothing
	// prepared or trained. Called once per activation, before the
	// registry tries a checkpoint warm start.
	Cold(name string) (*gar.System, error)
	// Deploy cold-builds the tenant's serving state (prepare + train or
	// model load) when no checkpoint could be recovered. Returning
	// deployed=false with a nil error means the source has nothing to
	// build from — a schema-only tenant that activates empty and serves
	// 503 until a reload supplies state.
	Deploy(ctx context.Context, name string, sys *gar.System) (deployed bool, err error)
	// Reload rebuilds the tenant's state and swaps it into the live
	// system with zero downtime.
	Reload(ctx context.Context, name string, sys *gar.System) error
}

// FeedbackSource is the optional Source extension the online feedback
// loop needs: the committed base corpus each retraining cycle folds
// accepted feedback into. A registry with Config.Feedback set only
// attaches feedback logs and trainers when its Source implements it.
type FeedbackSource interface {
	FeedbackBase(name string) (gar.BaseData, error)
}

// Config tunes a Registry. The zero value gets serving defaults.
type Config struct {
	// MaxActive bounds the working set: how many tenants may be
	// resident (activating, active or evicting) at once (default 8).
	MaxActive int
	// IdleAfter is how long a tenant may sit idle (no pinned handles)
	// before EvictIdle reclaims it; 0 disables idle eviction.
	IdleAfter time.Duration

	// MaxInFlight and MaxQueue are the fleet-wide admission limits from
	// which per-tenant budgets are derived (defaults 64 and 2×).
	MaxInFlight int
	MaxQueue    int
	// TenantInFlight and TenantQueue override the derived per-tenant
	// split MaxInFlight/MaxActive and MaxQueue/MaxActive (minimum 1).
	TenantInFlight int
	TenantQueue    int
	// RetryAfter is the back-off hint attached to sheds (default 1s).
	RetryAfter time.Duration

	// BreakerFailures and BreakerCooldown tune each tenant's re-ranking
	// circuit breaker; NoBreaker disables breakers fleet-wide.
	BreakerFailures int
	BreakerCooldown time.Duration
	NoBreaker       bool

	// MemLimit caps the process-wide bytes of retained tenant state
	// (candidate pools, embeddings, translation caches); 0 disables
	// memory governance. Tenants that hit their share spill pool
	// builds to disk or degrade to truncated pools instead of growing.
	MemLimit int64
	// TenantMemLimit caps each tenant's share of MemLimit (default
	// MemLimit/MaxActive). 0 with MemLimit set bounds tenants only by
	// the process root.
	TenantMemLimit int64

	// StateDir is the root of the multi-tenant checkpoint tree
	// ({StateDir}/{tenant}/...); empty disables durability — evicting a
	// tenant then drops state that a re-activation must rebuild.
	// Memory-governed pool builds spill under {StateDir}/{tenant}/spill.
	StateDir string
	// Keep is the per-tenant checkpoint retention (default 3).
	Keep int

	// ActivateTimeout bounds one cold build (default 5m);
	// EvictFlushTimeout bounds the synchronous eviction flush
	// (default 30s).
	ActivateTimeout   time.Duration
	EvictFlushTimeout time.Duration

	// Feedback enables the per-tenant online learning loop: a durable
	// feedback WAL at {StateDir}/{tenant}/feedback plus a background
	// trainer per resident tenant. Requires StateDir and a Source that
	// implements FeedbackSource; otherwise it is silently inert.
	Feedback bool
	// TrainInterval and ShadowThreshold forward to every tenant's
	// trainer (see gar.TrainerConfig).
	TrainInterval   time.Duration
	ShadowThreshold float64
	// TrainBudget bounds how many tenants may retrain concurrently
	// (default 1): retraining is CPU-heavy, so tenants take turns
	// instead of starving the serving path.
	TrainBudget int

	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Clock overrides the idle/LRU time source (tests inject a fake).
	Clock func() time.Time
}

func (c *Config) fill() {
	if c.MaxActive <= 0 {
		c.MaxActive = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.TenantInFlight <= 0 {
		c.TenantInFlight = max(1, c.MaxInFlight/c.MaxActive)
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = max(1, c.MaxQueue/c.MaxActive)
	}
	if c.TenantMemLimit <= 0 && c.MemLimit > 0 {
		c.TenantMemLimit = c.MemLimit / int64(c.MaxActive)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Keep < 1 {
		c.Keep = 3
	}
	if c.ActivateTimeout <= 0 {
		c.ActivateTimeout = 5 * time.Minute
	}
	if c.EvictFlushTimeout <= 0 {
		c.EvictFlushTimeout = 30 * time.Second
	}
	if c.TrainBudget <= 0 {
		c.TrainBudget = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// tenantState is a tenant's lifecycle position. Transitions:
// cold → activating → active → evicting → cold, with activating → cold
// on a failed build and evicting → active on an aborted flush.
type tenantState int

const (
	stateCold tenantState = iota
	stateActivating
	stateActive
	stateEvicting
)

func (s tenantState) String() string {
	switch s {
	case stateCold:
		return "cold"
	case stateActivating:
		return "activating"
	case stateActive:
		return "active"
	case stateEvicting:
		return "evicting"
	}
	return "unknown"
}

// Counters are a tenant's lifecycle tallies, reported by Health.
type Counters struct {
	// Activations counts completed activations; WarmStarts of them
	// restored a checkpoint and ColdBuilds ran the source's Deploy.
	Activations uint64 `json:"activations"`
	WarmStarts  uint64 `json:"warm_starts"`
	ColdBuilds  uint64 `json:"cold_builds"`
	// ActivationFailures counts builds that errored (tenant back to
	// cold).
	ActivationFailures uint64 `json:"activation_failures,omitempty"`
	// Evictions counts completed evictions; EvictionsAborted counts
	// evictions rolled back because the state could not be flushed.
	Evictions        uint64 `json:"evictions"`
	EvictionsAborted uint64 `json:"evictions_aborted,omitempty"`
	// Reloads counts completed zero-downtime reloads.
	Reloads uint64 `json:"reloads,omitempty"`
}

// tenant is one registered database. The admission controller and
// breaker are created at Register and survive eviction, so budgets and
// trip history are per-tenant facts, not per-activation ones.
type tenant struct {
	name string
	ctl  *admit.Controller
	br   *breaker.Breaker // nil when breakers are disabled
	// budget is this tenant's share of the fleet memory budget; like
	// the controller and breaker it is created at Register and survives
	// eviction, so peak/denial history is a per-tenant fact. Nil when
	// memory governance is disabled.
	budget *gar.MemBudget

	// reloadMu serializes reloads of this tenant only.
	reloadMu sync.Mutex

	// fbAccepted and fbRejected tally feedback submissions across the
	// tenant's whole lifetime (they survive eviction, like the breaker).
	fbAccepted atomic.Uint64
	fbRejected atomic.Uint64

	mu       sync.Mutex
	state    tenantState
	done     chan struct{} // closes when the current transition settles
	sys      *gar.System   // non-nil while active/evicting
	ckptr    *gar.Checkpointer
	flog     *feedback.Log // non-nil while active/evicting with feedback on
	trainer  *gar.Trainer
	refs     int // outstanding handles pinning the tenant
	lastUsed time.Time
	lastErr  error
	counters Counters
}

// Registry is the fleet: a bounded working set of per-tenant systems.
// Use New; the zero value is not valid.
type Registry struct {
	src Source
	cfg Config

	mu      sync.Mutex // guards tenants map and closed
	tenants map[string]*tenant
	closed  bool

	capMu  sync.Mutex // serializes working-set accounting
	active int        // tenants in activating|active|evicting

	// trainSem is the fleet-wide retraining budget: TrainBudget tokens,
	// one held per in-flight training cycle.
	trainSem chan struct{}

	// memRoot is the process-wide memory budget every tenant's share
	// chains to; nil when Config.MemLimit is unset.
	memRoot *gar.MemBudget

	shedSaturated atomic.Uint64
}

// New creates an empty registry; add tenants with Register.
func New(src Source, cfg Config) *Registry {
	cfg.fill()
	r := &Registry{
		src:      src,
		cfg:      cfg,
		tenants:  map[string]*tenant{},
		trainSem: make(chan struct{}, cfg.TrainBudget),
	}
	if cfg.MemLimit > 0 {
		r.memRoot = gar.NewMemBudget("fleet", cfg.MemLimit)
	}
	return r
}

// trainGate claims one slot of the fleet-wide retraining budget,
// blocking (up to ctx) while TrainBudget other tenants are mid-cycle.
// It is every tenant trainer's Gate.
func (r *Registry) trainGate(ctx context.Context) (func(), error) {
	select {
	case r.trainSem <- struct{}{}:
		return func() { <-r.trainSem }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("fleet: waiting for training budget: %w", ctx.Err())
	}
}

// Register adds a tenant name to the registry, cold; the first Acquire
// activates it. Names are validated with the checkpoint tree's rules so
// a tenant name can never escape the state directory or the URL space.
func (r *Registry) Register(name string) error {
	if !checkpoint.ValidTenantName(name) {
		return fmt.Errorf("fleet: %w: %q", checkpoint.ErrTenantName, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.tenants[name]; ok {
		return fmt.Errorf("fleet: tenant %q already registered", name)
	}
	t := &tenant{
		name:  name,
		state: stateCold,
		ctl: admit.New(admit.Config{
			MaxInFlight: r.cfg.TenantInFlight,
			MaxQueue:    r.cfg.TenantQueue,
			RetryAfter:  r.cfg.RetryAfter,
		}),
	}
	if !r.cfg.NoBreaker {
		t.br = breaker.New(breaker.Config{
			FailureThreshold: r.cfg.BreakerFailures,
			Cooldown:         r.cfg.BreakerCooldown,
		})
	}
	if r.memRoot != nil {
		t.budget = r.memRoot.Child(name, r.cfg.TenantMemLimit)
	}
	r.tenants[name] = t
	return nil
}

// Names lists the registered tenants, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// all snapshots the tenant set (the map only grows, entries are never
// replaced, so iterating the snapshot is race-free).
func (r *Registry) all() []*tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// Handle pins an active tenant's serving system: while any handle is
// outstanding the tenant cannot be evicted. Release it when the
// request finishes (Release is idempotent).
type Handle struct {
	r       *Registry
	t       *tenant
	sys     *gar.System
	flog    *feedback.Log
	trainer *gar.Trainer
	once    sync.Once
}

// Tenant is the handle's tenant name.
func (h *Handle) Tenant() string { return h.t.name }

// Sys is the pinned serving system.
func (h *Handle) Sys() *gar.System { return h.sys }

// FeedbackLog is the tenant's durable feedback WAL, nil when the
// online feedback loop is not enabled for this fleet.
func (h *Handle) FeedbackLog() *feedback.Log { return h.flog }

// Trainer is the tenant's background trainer, nil when the online
// feedback loop is not enabled.
func (h *Handle) Trainer() *gar.Trainer { return h.trainer }

// CountFeedback tallies one feedback submission outcome for the
// tenant's health counters.
func (h *Handle) CountFeedback(accepted bool) {
	if accepted {
		h.t.fbAccepted.Add(1)
	} else {
		h.t.fbRejected.Add(1)
	}
}

// Admit runs the tenant's admission controller; the semantics are
// admit.Controller.Acquire's.
func (h *Handle) Admit(ctx context.Context) (release func(), err error) {
	return h.t.ctl.Acquire(ctx)
}

// Release unpins the tenant and stamps its LRU clock.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.t.mu.Lock()
		h.t.refs--
		h.t.lastUsed = h.r.cfg.Clock()
		h.t.mu.Unlock()
	})
}

// Acquire returns a handle on the named tenant's serving system,
// activating the tenant first if it is cold: warm-started from its
// newest valid checkpoint when StateDir holds one, cold-built through
// the Source otherwise. Activation is single-flight — concurrent
// acquirers of a cold tenant wait on the same build. A full working
// set evicts its least-recently-used idle tenant to make room, or
// sheds with *SaturatedError when every resident tenant is pinned.
func (r *Registry) Acquire(ctx context.Context, name string) (*Handle, error) {
	r.mu.Lock()
	t, closed := r.tenants[name], r.closed
	r.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t.mu.Lock()
		switch t.state {
		case stateActive:
			t.refs++
			t.lastUsed = r.cfg.Clock()
			h := &Handle{r: r, t: t, sys: t.sys, flog: t.flog, trainer: t.trainer}
			t.mu.Unlock()
			return h, nil
		case stateActivating, stateEvicting:
			settling := t.done
			wasActivating := t.state == stateActivating
			t.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-settling:
			}
			if !wasActivating {
				continue // eviction settled; loop re-activates
			}
			t.mu.Lock()
			failed := t.state == stateCold && t.lastErr != nil
			err := t.lastErr
			t.mu.Unlock()
			if failed {
				return nil, fmt.Errorf("fleet: activating tenant %s: %w", name, err)
			}
		case stateCold:
			t.mu.Unlock()
			if err := r.beginActivation(t); err != nil {
				return nil, err
			}
		}
	}
}

// beginActivation moves a cold tenant into activating: it reserves a
// working-set slot (marking the LRU idle tenant for eviction when the
// set is full) and launches the single-flight activation goroutine. A
// full set with no evictable tenant sheds with *SaturatedError.
//
//garlint:allow goexit -- deliberately detached single-flight activation: waiters join via t.done, the work is bounded by ActivateTimeout, and activate closes the channel on every path
func (r *Registry) beginActivation(t *tenant) error {
	r.capMu.Lock()
	t.mu.Lock()
	if t.state != stateCold { // lost the race; the caller's loop waits
		t.mu.Unlock()
		r.capMu.Unlock()
		return nil
	}
	t.mu.Unlock()

	var victim *tenant
	if r.active >= r.cfg.MaxActive {
		victim = r.markVictimLocked(t)
		if victim == nil {
			r.capMu.Unlock()
			r.shedSaturated.Add(1)
			return &SaturatedError{RetryAfter: r.cfg.RetryAfter}
		}
	}

	t.mu.Lock()
	t.state = stateActivating
	t.done = make(chan struct{})
	t.lastErr = nil
	t.mu.Unlock()
	r.active++
	r.capMu.Unlock()

	go r.activate(t, victim)
	return nil
}

// markVictimLocked picks the least-recently-used idle active tenant and
// marks it evicting, or returns nil when every candidate is pinned.
// Callers hold capMu (which serializes victim selection); tenant
// mutexes are taken one at a time.
func (r *Registry) markVictimLocked(exclude *tenant) *tenant {
	tried := map[*tenant]bool{}
	for {
		var best *tenant
		var bestUsed time.Time
		for _, c := range r.all() {
			if c == exclude || tried[c] {
				continue
			}
			c.mu.Lock()
			idle := c.state == stateActive && c.refs == 0
			used := c.lastUsed
			c.mu.Unlock()
			if idle && (best == nil || used.Before(bestUsed)) {
				best, bestUsed = c, used
			}
		}
		if best == nil {
			return nil
		}
		best.mu.Lock()
		if best.state == stateActive && best.refs == 0 {
			best.state = stateEvicting
			best.done = make(chan struct{})
			best.mu.Unlock()
			return best
		}
		// A request pinned it between the scan and the mark; try the
		// next-oldest candidate.
		best.mu.Unlock()
		tried[best] = true
	}
}

// activate completes a pending eviction (making room before the new
// snapshot exists, so residency never exceeds MaxActive), then builds
// the tenant. It runs detached from whichever request arrived first:
// the build must survive that request's deadline, because every waiter
// of the round — present and future — shares its result.
//
//garlint:allow ctxpass -- the activation's lifetime belongs to the
// registry, not to the request that happened to trigger it; its bound
// is ActivateTimeout
func (r *Registry) activate(t *tenant, victim *tenant) {
	if victim != nil {
		if err := r.finishEvict(victim); err != nil {
			// The victim's state could not be made durable; it stays
			// resident and the cold tenant sheds instead — shedding is
			// recoverable, losing a dirty tenant's last generation is
			// not.
			r.shedSaturated.Add(1)
			r.failActivation(t, &SaturatedError{RetryAfter: r.cfg.RetryAfter})
			return
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ActivateTimeout)
	defer cancel()
	b, err := r.buildTenant(ctx, t)
	if err != nil {
		r.failActivation(t, err)
		return
	}
	t.mu.Lock()
	t.sys = b.sys
	t.ckptr = b.ckptr
	t.flog = b.flog
	t.trainer = b.trainer
	t.state = stateActive
	t.lastUsed = r.cfg.Clock()
	t.counters.Activations++
	if b.warm {
		t.counters.WarmStarts++
	} else if b.sys.Ready() {
		t.counters.ColdBuilds++
	}
	close(t.done)
	t.mu.Unlock()
	r.cfg.Logf("fleet: tenant %s activated (warm=%v, generation %d, pool %d)",
		t.name, b.warm, b.sys.Generation(), b.sys.PoolSize())
}

// failActivation returns a tenant to cold, releasing its working-set
// slot and waking the round's waiters with the error.
func (r *Registry) failActivation(t *tenant, err error) {
	r.capMu.Lock()
	t.mu.Lock()
	t.state = stateCold
	t.sys = nil
	t.ckptr = nil
	t.lastErr = err
	t.counters.ActivationFailures++
	close(t.done)
	t.mu.Unlock()
	r.active--
	r.capMu.Unlock()
	r.cfg.Logf("fleet: tenant %s activation failed: %v", t.name, err)
}

// builtTenant is the product of one activation build.
type builtTenant struct {
	sys     *gar.System
	warm    bool
	ckptr   *gar.Checkpointer
	flog    *feedback.Log
	trainer *gar.Trainer
}

// buildTenant assembles a tenant's serving system: schema shell from
// the source, then a checkpoint warm start when the state tree has one,
// a source Deploy otherwise, and finally the tenant's breaker, a
// running background checkpointer and (when the feedback loop is on)
// the tenant's feedback WAL and background trainer.
func (r *Registry) buildTenant(ctx context.Context, t *tenant) (builtTenant, error) {
	sys, err := r.src.Cold(t.name)
	if err != nil {
		return builtTenant{}, err
	}
	if t.budget != nil {
		// Pool builds charge this tenant's share of the fleet budget and
		// spill under the tenant's own state directory. Orphaned spill
		// files from a crashed previous run are scratch: sweep them now.
		spillDir := ""
		if r.cfg.StateDir != "" {
			spillDir = filepath.Join(r.cfg.StateDir, t.name, "spill")
			if removed, serr := spill.Sweep(spillDir); serr != nil {
				r.cfg.Logf("fleet: tenant %s: sweeping spill dir: %v", t.name, serr)
			} else if len(removed) > 0 {
				r.cfg.Logf("fleet: tenant %s: removed %d orphaned spill file(s)", t.name, len(removed))
			}
		}
		sys.SetResources(t.budget, spillDir)
	}
	b := builtTenant{sys: sys}
	var store *checkpoint.Store
	if r.cfg.StateDir != "" {
		store, err = checkpoint.OpenTenant(r.cfg.StateDir, t.name)
		if err != nil {
			return builtTenant{}, err
		}
		if removed, cerr := store.CleanTemp(); cerr != nil {
			r.cfg.Logf("fleet: tenant %s: %v", t.name, cerr)
		} else if len(removed) > 0 {
			r.cfg.Logf("fleet: tenant %s: removed %d abandoned temp file(s)", t.name, len(removed))
		}
		ck, skipped, rerr := sys.RecoverCheckpoint(store)
		if rerr != nil {
			return builtTenant{}, rerr
		}
		for _, sk := range skipped {
			r.cfg.Logf("fleet: tenant %s: skipping checkpoint %s: %v", t.name, sk.Path, sk.Err)
		}
		b.warm = ck != nil
	}
	if !b.warm {
		if _, err = r.src.Deploy(ctx, t.name, sys); err != nil {
			return builtTenant{}, err
		}
	}
	if t.br != nil {
		sys.SetRerankBreaker(t.br)
	}
	if store != nil {
		name := t.name
		b.ckptr = sys.NewCheckpointer(store, gar.CheckpointerConfig{
			Keep: r.cfg.Keep,
			Logf: func(format string, args ...any) {
				r.cfg.Logf("fleet: tenant "+name+": "+format, args...)
			},
		})
		b.ckptr.Start()
		if !b.warm && sys.Ready() {
			b.ckptr.Notify() // persist the freshly built state
		}
	}
	if fsrc, ok := r.src.(FeedbackSource); ok && r.cfg.Feedback && store != nil {
		// The WAL lives inside the tenant's own state directory, so an
		// eviction+reactivation (or a restart) replays the same records.
		flog, ferr := feedback.Open(filepath.Join(store.Dir(), "feedback"), feedback.Config{})
		if ferr != nil {
			return builtTenant{}, fmt.Errorf("fleet: tenant %s feedback log: %w", t.name, ferr)
		}
		name := t.name
		b.flog = flog
		b.trainer = sys.NewTrainer(flog, store,
			func() (gar.BaseData, error) { return fsrc.FeedbackBase(name) },
			gar.TrainerConfig{
				Interval:        r.cfg.TrainInterval,
				ShadowThreshold: r.cfg.ShadowThreshold,
				Gate:            r.trainGate,
				Logf: func(format string, args ...any) {
					r.cfg.Logf("fleet: tenant "+name+": "+format, args...)
				},
			})
		b.trainer.Start()
		if b.flog.LastSeq() > 0 {
			// Feedback recorded before the last shutdown (or eviction)
			// may not have been trained on yet; wake the trainer to
			// fold it in.
			b.trainer.Notify()
		}
	}
	return b, nil
}

// finishEvict makes an evicting tenant's state durable and drops its
// snapshot. On a flush failure the eviction aborts: the tenant returns
// to active with its checkpointer restarted, because a dirty tenant
// must never lose its last generation.
//
//garlint:allow ctxpass -- the eviction flush must not die with
// whichever request triggered the eviction; its bound is
// EvictFlushTimeout
func (r *Registry) finishEvict(t *tenant) error {
	t.mu.Lock()
	ckptr, trainer, flog := t.ckptr, t.trainer, t.flog
	t.mu.Unlock()
	if trainer != nil {
		// Stop the trainer before the final state flush so no promotion
		// can publish after the checkpoint that is supposed to be last.
		// An in-flight cycle finishes first; pending feedback stays in
		// the WAL and trains on re-activation.
		trainer.Stop()
	}
	if ckptr != nil {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.EvictFlushTimeout)
		err := ckptr.Shutdown(ctx)
		cancel()
		if err != nil {
			ckptr.Start()
			if trainer != nil {
				trainer.Start()
			}
			r.capMu.Lock()
			t.mu.Lock()
			t.state = stateActive
			t.lastErr = fmt.Errorf("fleet: eviction aborted, state kept: %w", err)
			t.counters.EvictionsAborted++
			close(t.done)
			t.mu.Unlock()
			r.capMu.Unlock()
			r.cfg.Logf("fleet: tenant %s eviction aborted (state kept): %v", t.name, err)
			return err
		}
	}
	if flog != nil {
		if err := flog.Close(); err != nil {
			r.cfg.Logf("fleet: tenant %s: closing feedback log: %v", t.name, err)
		}
	}
	r.capMu.Lock()
	t.mu.Lock()
	sys := t.sys
	t.sys = nil
	t.ckptr = nil
	t.flog = nil
	t.trainer = nil
	t.state = stateCold
	t.counters.Evictions++
	close(t.done)
	t.mu.Unlock()
	r.active--
	r.capMu.Unlock()
	if sys != nil {
		// The state is durable (flushed above) and the snapshot is about
		// to be garbage; return its bytes to the shared budget so the
		// slot's memory is actually reusable by the incoming tenant.
		sys.ReleaseMemory()
	}
	r.cfg.Logf("fleet: tenant %s evicted", t.name)
	return nil
}

// EvictIdle evicts every active tenant that has sat idle (no pinned
// handles) for at least IdleAfter, flushing each one's checkpoint
// first, and reports how many were evicted. With IdleAfter zero, or
// ctx already done, it is a no-op. The serving layer runs it on a
// timer.
func (r *Registry) EvictIdle(ctx context.Context) int {
	if r.cfg.IdleAfter <= 0 {
		return 0
	}
	now := r.cfg.Clock()
	n := 0
	for _, t := range r.all() {
		if ctx.Err() != nil {
			return n
		}
		t.mu.Lock()
		idle := t.state == stateActive && t.refs == 0 && now.Sub(t.lastUsed) >= r.cfg.IdleAfter
		if idle {
			t.state = stateEvicting
			t.done = make(chan struct{})
		}
		t.mu.Unlock()
		if idle && r.finishEvict(t) == nil {
			n++
		}
	}
	return n
}

// Reload rebuilds the named tenant's state through the source and swaps
// it into the live system with zero downtime, returning the new
// generation. Reloads are serialized per tenant — a concurrent reload
// of the same tenant fails with ErrReloadInProgress, while different
// tenants reload in parallel.
func (r *Registry) Reload(ctx context.Context, name string) (uint64, error) {
	h, err := r.Acquire(ctx, name)
	if err != nil {
		return 0, err
	}
	defer h.Release()
	if !h.t.reloadMu.TryLock() {
		return 0, fmt.Errorf("%w: tenant %s", ErrReloadInProgress, name)
	}
	defer h.t.reloadMu.Unlock()
	if err := r.src.Reload(ctx, name, h.Sys()); err != nil {
		return 0, fmt.Errorf("fleet: reloading tenant %s: %w", name, err)
	}
	h.t.mu.Lock()
	h.t.counters.Reloads++
	h.t.mu.Unlock()
	return h.Sys().Generation(), nil
}

// AnyReady reports whether at least one tenant currently serves a
// published snapshot — the fleet's readiness gate.
func (r *Registry) AnyReady() bool {
	for _, t := range r.all() {
		t.mu.Lock()
		ready := t.state == stateActive && t.sys != nil && t.sys.Ready()
		t.mu.Unlock()
		if ready {
			return true
		}
	}
	return false
}

// Shutdown drains and flushes the whole fleet: new Acquires fail with
// ErrClosed, every tenant's in-flight work drains, then each tenant's
// final checkpoint is flushed — all bounded by ctx and run in parallel
// across tenants. The first error is returned after every tenant
// settles; a second Shutdown is a no-op.
func (r *Registry) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()

	tenants := r.all()
	errs := make(chan error, len(tenants))
	var wg sync.WaitGroup
	for _, t := range tenants {
		wg.Add(1)
		go func(t *tenant) {
			defer wg.Done()
			errs <- r.shutdownTenant(ctx, t)
		}(t)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shutdownTenant settles any in-progress transition, drains the
// tenant's admitted requests, and flushes its final checkpoint.
func (r *Registry) shutdownTenant(ctx context.Context, t *tenant) error {
	for {
		t.mu.Lock()
		state, settling := t.state, t.done
		t.mu.Unlock()
		switch state {
		case stateActivating, stateEvicting:
			select {
			case <-ctx.Done():
				return fmt.Errorf("fleet: tenant %s: settling: %w", t.name, ctx.Err())
			case <-settling:
				continue
			}
		case stateCold:
			return nil
		}
		break // active
	}
	var firstErr error
	if err := t.ctl.Drain(ctx); err != nil {
		firstErr = fmt.Errorf("fleet: draining tenant %s: %w", t.name, err)
	}
	t.mu.Lock()
	ckptr, trainer, flog := t.ckptr, t.trainer, t.flog
	t.mu.Unlock()
	if trainer != nil {
		// No final training flush: the WAL is the source of truth and
		// the next process trains on whatever this one did not get to.
		trainer.Stop()
	}
	if flog != nil {
		defer func() {
			// The WAL's acknowledged records are already fsynced; a close
			// failure here costs nothing but is worth a log line.
			if err := flog.Close(); err != nil {
				r.cfg.Logf("fleet: tenant %s: closing feedback log: %v", t.name, err)
			}
		}()
	}
	if ckptr != nil {
		// Flush even when the drain timed out: a truncated drain must
		// not also cost the tenant its durability.
		if err := ckptr.Shutdown(ctx); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("fleet: flushing tenant %s: %w", t.name, err)
			}
		} else {
			r.cfg.Logf("fleet: tenant %s final checkpoint flushed", t.name)
		}
	}
	return firstErr
}
