package fleet

import (
	"repro/gar"
	"repro/internal/admit"
	"repro/internal/breaker"
	"repro/internal/feedback"
)

// FeedbackHealth is the online-learning block of a health row: the
// accept/reject tallies of the feedback endpoint, the WAL's footprint,
// and the trainer's counters (state, promotions, shadow verdicts,
// rollbacks). The single-tenant server reuses it for /healthz.
type FeedbackHealth struct {
	Accepted uint64           `json:"accepted"`
	Rejected uint64           `json:"rejected"`
	WAL      feedback.Stats   `json:"wal"`
	Trainer  gar.TrainerStats `json:"trainer"`
}

// TenantHealth is one tenant's row in the fleet health roll-up.
type TenantHealth struct {
	// State is the lifecycle position (cold|activating|active|evicting)
	// and Status the serving verdict: ok, degraded (breaker not closed),
	// unavailable (active but no published snapshot), or the lifecycle
	// state for tenants that are not active.
	State  string `json:"state"`
	Status string `json:"status"`
	Ready  bool   `json:"ready"`
	// Generation and Pool describe the published snapshot, when there
	// is one.
	Generation uint64 `json:"generation,omitempty"`
	Pool       int    `json:"pool,omitempty"`
	// Admission is the tenant's budget and shed counters; Breaker its
	// re-ranking breaker (absent while the tenant is not resident or
	// breakers are disabled); Checkpoint its durability counters.
	Admission  admit.Stats          `json:"admission"`
	Breaker    *breaker.Snapshot    `json:"breaker,omitempty"`
	Checkpoint *gar.CheckpointStats `json:"checkpoint,omitempty"`
	// Memory is the tenant's resource-governance block (budget usage,
	// snapshot bytes, spill gauges, degradation record), absent while
	// the tenant is not resident.
	Memory *gar.MemStats `json:"memory,omitempty"`
	// Feedback is the online-learning block, absent while the tenant is
	// not resident or the feedback loop is disabled.
	Feedback *FeedbackHealth `json:"feedback,omitempty"`
	// Counters are the lifecycle tallies; LastError the most recent
	// activation or eviction failure.
	Counters  Counters `json:"counters"`
	LastError string   `json:"last_error,omitempty"`
}

// Health is the fleet-wide roll-up served by GET /healthz.
type Health struct {
	// Status aggregates the tenants: ok (every resident tenant serving
	// cleanly), degraded (some tenant degraded, unready or failing),
	// unavailable (no tenant has a published snapshot).
	Status string `json:"status"`
	// Known counts registered tenants, Active the resident ones,
	// MaxActive the working-set bound.
	Known     int `json:"known"`
	Active    int `json:"active"`
	MaxActive int `json:"max_active"`
	// ShedSaturated counts activations shed because the working set was
	// full with every tenant pinned.
	ShedSaturated uint64 `json:"shed_saturated"`
	// Memory is the process-wide memory budget's gauges, absent when
	// memory governance is disabled.
	Memory *gar.MemBudgetStats `json:"memory,omitempty"`
	// Tenants holds the per-tenant rows, keyed by name.
	Tenants map[string]TenantHealth `json:"tenants"`
}

// tenantHealth assembles one tenant's row.
func (r *Registry) tenantHealth(t *tenant) TenantHealth {
	t.mu.Lock()
	h := TenantHealth{
		State:    t.state.String(),
		Counters: t.counters,
	}
	sys, ckptr := t.sys, t.ckptr
	flog, trainer := t.flog, t.trainer
	resident := t.state == stateActive || t.state == stateEvicting
	if t.lastErr != nil {
		h.LastError = t.lastErr.Error()
	}
	t.mu.Unlock()

	h.Admission = t.ctl.Stats()
	if sys != nil {
		h.Ready = sys.Ready()
		h.Generation = sys.Generation()
		h.Pool = sys.PoolSize()
		ms := sys.MemStats()
		h.Memory = &ms
	}
	if ckptr != nil {
		cs := ckptr.Stats()
		h.Checkpoint = &cs
	}
	if flog != nil && trainer != nil {
		h.Feedback = &FeedbackHealth{
			Accepted: t.fbAccepted.Load(),
			Rejected: t.fbRejected.Load(),
			WAL:      flog.Stats(),
			Trainer:  trainer.Stats(),
		}
	}
	if t.br != nil && resident {
		snap := t.br.Snapshot()
		h.Breaker = &snap
	}
	switch {
	case h.State != "active":
		h.Status = h.State
	case !h.Ready:
		h.Status = "unavailable"
	case h.Breaker != nil && h.Breaker.State != breaker.Closed:
		h.Status = "degraded"
	case h.Memory != nil && h.Memory.Degraded:
		// The pool was truncated (or spilled and partially lost) under
		// resource pressure: the tenant serves, at reduced quality.
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}

// TenantHealth reports one tenant's health row, or ErrUnknownTenant.
func (r *Registry) TenantHealth(name string) (TenantHealth, error) {
	r.mu.Lock()
	t := r.tenants[name]
	r.mu.Unlock()
	if t == nil {
		return TenantHealth{}, ErrUnknownTenant
	}
	return r.tenantHealth(t), nil
}

// Health reports the fleet-wide roll-up. A tenant that is cold with no
// recorded failure is a normal fact of a bounded working set and does
// not degrade the fleet; a failing, unready or degraded tenant does.
func (r *Registry) Health() Health {
	tenants := r.all()
	r.capMu.Lock()
	active := r.active
	r.capMu.Unlock()
	h := Health{
		Known:         len(tenants),
		Active:        active,
		MaxActive:     r.cfg.MaxActive,
		ShedSaturated: r.shedSaturated.Load(),
		Memory:        r.memRoot.Stats(),
		Tenants:       make(map[string]TenantHealth, len(tenants)),
	}
	anyReady, degraded := false, false
	for _, t := range tenants {
		row := r.tenantHealth(t)
		h.Tenants[t.name] = row
		if row.Status == "ok" || row.Status == "degraded" {
			anyReady = true
		}
		if row.Status == "degraded" || row.Status == "unavailable" || row.LastError != "" {
			degraded = true
		}
	}
	switch {
	case !anyReady:
		h.Status = "unavailable"
	case degraded:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}
