package fleet_test

import (
	"context"
	"testing"

	"repro/internal/fleet"
)

// TestFleetMemoryGovernance pins the fleet half of resource
// governance: resident tenants account their snapshots and caches
// against per-tenant shares of one process budget, /healthz surfaces
// the accounting at both levels, and the flush-before-evict sequence
// returns every evicted byte to the shared root — activation of a new
// tenant does not ratchet the process footprint up.
func TestFleetMemoryGovernance(t *testing.T) {
	src := newTestSource(t)
	stateDir := t.TempDir()
	reg := fleet.New(src, fleet.Config{
		MaxActive:      2,
		StateDir:       stateDir,
		MemLimit:       64 << 20,
		TenantMemLimit: 16 << 20,
	})
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	const q = "which item has the largest quantity"
	if _, err := translateVia(ctx, reg, "alpha", q); err != nil {
		t.Fatal(err)
	}
	if _, err := translateVia(ctx, reg, "beta", q); err != nil {
		t.Fatal(err)
	}

	h := reg.Health()
	if h.Memory == nil || h.Memory.Limit != 64<<20 {
		t.Fatalf("fleet memory block = %+v", h.Memory)
	}
	usedTwo := h.Memory.Used
	if usedTwo <= 0 {
		t.Fatalf("no bytes accounted with two resident tenants")
	}
	alpha := h.Tenants["alpha"]
	if alpha.Memory == nil {
		t.Fatal("resident tenant row lacks memory block")
	}
	if alpha.Memory.Budget == nil || alpha.Memory.Budget.Limit != 16<<20 {
		t.Fatalf("tenant budget = %+v", alpha.Memory.Budget)
	}
	if alpha.Memory.SnapshotBytes <= 0 || alpha.Memory.Budget.Used <= 0 {
		t.Fatalf("tenant accounting empty: %+v", alpha.Memory)
	}
	if alpha.Memory.Degraded {
		t.Fatalf("roomy tenant share degraded: %q", alpha.Memory.DegradeReason)
	}
	alphaUsed := alpha.Memory.Budget.Used

	// Activating gamma evicts alpha (the LRU tenant). The eviction
	// must give alpha's bytes back: the root's usage stays at the
	// two-resident level instead of accumulating a third tenant.
	if _, err := translateVia(ctx, reg, "gamma", q); err != nil {
		t.Fatal(err)
	}
	h = reg.Health()
	if row := h.Tenants["alpha"]; row.State != "cold" {
		t.Fatalf("alpha not evicted: %+v", row)
	} else if row.Memory != nil {
		t.Fatalf("cold tenant still reports memory: %+v", row.Memory)
	}
	if h.Memory.Used > usedTwo+alphaUsed/2 {
		t.Fatalf("eviction leaked memory: used %d with two residents, %d after evict+activate",
			usedTwo, h.Memory.Used)
	}

	// Warm-reactivating alpha re-accounts its snapshot from the
	// checkpoint restore path — same budget discipline as a cold build.
	if _, err := translateVia(ctx, reg, "alpha", q); err != nil {
		t.Fatal(err)
	}
	row, err := reg.TenantHealth("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if row.Memory == nil || row.Memory.SnapshotBytes <= 0 {
		t.Fatalf("warm-started tenant not re-accounted: %+v", row.Memory)
	}
	if used := reg.Health().Memory.Used; used <= 0 || used > 64<<20 {
		t.Fatalf("root accounting out of range after churn: %d", used)
	}
}

// TestFleetTenantBudgetPressure pins graceful degradation inside one
// tenant share: a share too small for the full pool truncates that
// tenant's pool — the tenant serves degraded, the fleet roll-up says
// degraded — while translations keep answering.
func TestFleetTenantBudgetPressure(t *testing.T) {
	src := newTestSource(t)
	reg := fleet.New(src, fleet.Config{
		MaxActive:      2,
		StateDir:       t.TempDir(),
		MemLimit:       64 << 20,
		TenantMemLimit: tenantPressureLimit,
	})
	if err := reg.Register("alpha"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := translateVia(ctx, reg, "alpha", "how many items are there")
	if err != nil {
		t.Fatalf("pressured tenant cannot translate: %v", err)
	}
	if res.SQL == "" {
		t.Fatal("pressured tenant returned empty SQL")
	}
	row, err := reg.TenantHealth("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if row.Memory == nil || !row.Memory.Degraded {
		t.Fatalf("pressure not flagged: %+v", row.Memory)
	}
	if row.Status != "degraded" {
		t.Fatalf("tenant status = %q, want degraded", row.Status)
	}
	if row.Memory.Budget.Used > row.Memory.Budget.Limit {
		t.Fatalf("tenant budget overrun: %+v", row.Memory.Budget)
	}
	if h := reg.Health(); h.Status != "degraded" {
		t.Fatalf("fleet status = %q, want degraded", h.Status)
	}
}

// tenantPressureLimit is a share well below the fixture pool's full
// footprint (~15KB snapshot), so activation must shed candidates to
// fit instead of failing outright.
const tenantPressureLimit = 10 << 10
