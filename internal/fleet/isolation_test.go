package fleet_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/admit"
	"repro/internal/faults"
	"repro/internal/fleet"
)

// newPanicInjector makes every re-ranking call blow up.
func newPanicInjector() *faults.Injector {
	return faults.NewInjector(1).Panic(faults.Rerank, "isolation test")
}

// installBlockGate parks every retrieval on sys until the returned
// release is called.
func installBlockGate(sys *gar.System) (release func()) {
	inj := faults.NewInjector(1)
	release = inj.Block(faults.Retrieval)
	sys.SetFaultInjector(inj)
	return release
}

// TestFleetIsolationUnderFaults is the fault-containment proof for the
// fleet, meant to run under -race: ten tenants share one registry;
// one tenant's re-ranking stage panics (tripping its breaker into
// retrieval-only), another is saturated with faults.Block until its
// admission budget sheds — while eight healthy tenants, hammered
// concurrently and churned through idle eviction and warm
// re-activation the whole time, must answer every request with zero
// sheds, undegraded results, byte-identical SQL and unchanged
// generations.
func TestFleetIsolationUnderFaults(t *testing.T) {
	src := newTestSource(t)
	stateDir := t.TempDir()
	healthy := make([]string, 8)
	for i := range healthy {
		healthy[i] = fmt.Sprintf("healthy%d", i)
	}
	reg := fleet.New(src, fleet.Config{
		MaxActive:       10,
		TenantInFlight:  2,
		TenantQueue:     2,
		BreakerFailures: 1,
		BreakerCooldown: time.Hour, // a tripped tenant stays tripped for the whole storm
		IdleAfter:       3 * time.Millisecond,
		StateDir:        stateDir,
	})
	for _, name := range append([]string{"panicky", "blocked"}, healthy...) {
		if err := reg.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	questions := []string{
		"how many items are there",
		"which item has the largest quantity",
	}

	// Baseline answers per healthy tenant, before any fault exists.
	type answer struct {
		sql string
		gen uint64
	}
	baseline := map[string]answer{}
	for _, name := range healthy {
		res, err := translateVia(ctx, reg, name, questions[0])
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		baseline[name] = answer{sql: res.SQL, gen: res.Generation}
	}

	// Fault tenant 1: every re-rank panics. The first request trips the
	// breaker; the tenant then serves degraded retrieval-only answers.
	// The pinned handle keeps the injector's system resident.
	hp, err := reg.Acquire(ctx, "panicky")
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Release()
	hp.Sys().SetFaultInjector(newPanicInjector())

	// Fault tenant 2: a gate at retrieval parks every admitted request,
	// deterministically saturating this tenant's budget (2 slots + 2
	// queued), so further arrivals shed 429 — on this tenant only.
	hb, err := reg.Acquire(ctx, "blocked")
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Release()
	releaseGate := installBlockGate(hb.Sys())

	parked := make(chan error, 4)
	for range 4 {
		go func() {
			pctx, cancel := context.WithTimeout(ctx, time.Minute)
			defer cancel()
			_, err := translateVia(pctx, reg, "blocked", questions[0])
			parked <- err
		}()
	}
	waitFor(t, "the blocked tenant to saturate", func() bool {
		st := reg.Health().Tenants["blocked"].Admission
		return st.InFlight == 2 && st.Queued == 2
	})
	for i := range 2 {
		_, err := translateVia(ctx, reg, "blocked", questions[0])
		if _, ok := admit.AsShed(err); !ok {
			t.Fatalf("overflow request %d on the saturated tenant = %v, want shed", i, err)
		}
	}

	// The storm: hammer every healthy tenant from two workers each,
	// churn the working set with an aggressive idle reaper, and keep
	// poking the panicking tenant — all at once.
	stormCtx, stopStorm := context.WithCancel(ctx)
	var reaper sync.WaitGroup
	reaper.Add(1)
	go func() {
		defer reaper.Done()
		for stormCtx.Err() == nil {
			reg.EvictIdle(stormCtx)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	var degradedSeen sync.WaitGroup
	degradedSeen.Add(1)
	go func() {
		defer degradedSeen.Done()
		for i := range 10 {
			res, err := translateVia(ctx, reg, "panicky", questions[i%2])
			if err != nil {
				t.Errorf("panicky request %d: %v", i, err)
				return
			}
			if i > 0 && !res.Degraded {
				t.Errorf("panicky request %d not degraded after breaker trip", i)
			}
		}
	}()

	const iterations = 25
	var workers sync.WaitGroup
	for _, name := range healthy {
		for w := range 2 {
			workers.Add(1)
			go func(name string, w int) {
				defer workers.Done()
				want := baseline[name]
				for i := range iterations {
					res, err := translateVia(ctx, reg, name, questions[0])
					if err != nil {
						t.Errorf("%s worker %d iter %d: %v", name, w, i, err)
						return
					}
					if res.Degraded {
						t.Errorf("%s worker %d iter %d: degraded result on a healthy tenant", name, w, i)
						return
					}
					if res.SQL != want.sql || res.Generation != want.gen {
						t.Errorf("%s worker %d iter %d: %q gen %d, want %q gen %d",
							name, w, i, res.SQL, res.Generation, want.sql, want.gen)
						return
					}
					// The second question exercises the pipeline off the
					// comparison path, interleaving cache and rerank work.
					if _, err := translateVia(ctx, reg, name, questions[1]); err != nil {
						t.Errorf("%s worker %d iter %d: %v", name, w, i, err)
						return
					}
				}
			}(name, w)
		}
	}
	workers.Wait()
	degradedSeen.Wait()
	stopStorm()
	reaper.Wait()

	// Containment ledger: healthy tenants shed nothing and stayed
	// closed; the faulty pair carries all the damage.
	h := reg.Health()
	for _, name := range healthy {
		row := h.Tenants[name]
		if row.Admission.ShedQueueFull != 0 || row.Admission.ShedDeadline != 0 {
			t.Errorf("%s shed requests: %+v", name, row.Admission)
		}
		if row.Breaker != nil && row.Breaker.Trips != 0 {
			t.Errorf("%s breaker tripped: %+v", name, row.Breaker)
		}
	}
	if row := h.Tenants["panicky"]; row.Breaker == nil || row.Breaker.Trips == 0 {
		t.Errorf("panicky breaker never tripped: %+v", row)
	} else if row.Status != "degraded" {
		t.Errorf("panicky status = %q, want degraded", row.Status)
	}
	if row := h.Tenants["blocked"]; row.Admission.ShedQueueFull < 2 {
		t.Errorf("blocked tenant sheds = %+v, want >= 2", row.Admission)
	}
	if h.ShedSaturated != 0 {
		t.Errorf("working set saturated %d times with MaxActive covering every tenant", h.ShedSaturated)
	}

	// Releasing the gate lets the parked requests finish normally: the
	// saturation was load, not damage.
	releaseGate()
	for i := range 4 {
		if err := <-parked; err != nil {
			t.Errorf("parked request %d after release: %v", i, err)
		}
	}
}
