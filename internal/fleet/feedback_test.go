package fleet_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/feedback"
	"repro/internal/fleet"
)

// feedbackSource extends the fixture source with the FeedbackSource
// hook, opting the registry into the online learning loop.
type feedbackSource struct {
	*testSource
}

func (s *feedbackSource) FeedbackBase(name string) (gar.BaseData, error) {
	return gar.BaseData{Samples: itemSamples(), Examples: itemExamples()}, nil
}

// TestFleetFeedbackLifecycle walks a feedback-enabled tenant through
// the full loop: activation attaches a WAL and trainer, accepted
// feedback shows up in health, a forced retrain cycle consumes it, and
// the WAL — the loop's source of truth — survives eviction and is
// replayed on reactivation.
func TestFleetFeedbackLifecycle(t *testing.T) {
	src := &feedbackSource{newTestSource(t)}
	var clockMu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	stateDir := t.TempDir()
	reg := fleet.New(src, fleet.Config{
		MaxActive: 2, IdleAfter: time.Minute, StateDir: stateDir,
		Feedback: true, Clock: clock,
	})
	if err := reg.Register("alpha"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := translateVia(ctx, reg, "alpha", "how many items are there"); err != nil {
		t.Fatal(err)
	}

	h, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	flog, trainer := h.FeedbackLog(), h.Trainer()
	if flog == nil || trainer == nil {
		t.Fatalf("feedback-enabled activation attached log=%v trainer=%v", flog, trainer)
	}
	seq, err := flog.Append(feedback.Record{
		Question: "how many items are on hand",
		SQL:      "SELECT COUNT(*) FROM item",
		Source:   feedback.SourceCorrected,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.CountFeedback(true)
	h.CountFeedback(false)
	h.Release()

	row, err := reg.TenantHealth("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if row.Feedback == nil {
		t.Fatal("active feedback tenant reports no feedback block")
	}
	if row.Feedback.Accepted != 1 || row.Feedback.Rejected != 1 {
		t.Fatalf("feedback tallies = %+v", row.Feedback)
	}
	if row.Feedback.WAL.LastSeq != seq || row.Feedback.WAL.Segments == 0 {
		t.Fatalf("feedback WAL stats = %+v", row.Feedback.WAL)
	}

	// Force one training cycle through the fleet's budget gate; the
	// appended correction is folded into the sample set off the serving
	// path.
	if err := trainer.Flush(ctx); err != nil {
		t.Fatalf("fleet-gated retrain: %v", err)
	}
	if st := trainer.Stats(); st.Retrains != 1 || st.TrainedSeq != seq {
		t.Fatalf("trainer stats after flush = %+v", st)
	}

	// Evict and confirm the WAL outlived the tenant's residency.
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	if n := reg.EvictIdle(ctx); n != 1 {
		t.Fatalf("evicted %d tenants, want 1", n)
	}
	segs, err := filepath.Glob(filepath.Join(stateDir, "alpha", "feedback", "seg-*.fwal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("eviction lost the feedback WAL (segments %v, err %v)", segs, err)
	}

	// Reactivation replays it: the sequence counter continues where the
	// evicted incarnation stopped, and the health block is back.
	if _, err := translateVia(ctx, reg, "alpha", "list the item labels"); err != nil {
		t.Fatal(err)
	}
	h2, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h2.FeedbackLog() == nil || h2.FeedbackLog().LastSeq() != seq {
		t.Fatalf("reactivated WAL lost state: %+v", h2.FeedbackLog())
	}
	row, err = reg.TenantHealth("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if row.Feedback == nil || row.Feedback.Accepted != 1 {
		t.Fatalf("feedback tallies lost across eviction: %+v", row.Feedback)
	}

	if err := reg.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFleetFeedbackInert pins the opt-in contract: Config.Feedback
// without a FeedbackSource (or without a StateDir) attaches nothing,
// and serving works exactly as before.
func TestFleetFeedbackInert(t *testing.T) {
	ctx := context.Background()
	check := func(t *testing.T, reg *fleet.Registry) {
		t.Helper()
		if err := reg.Register("alpha"); err != nil {
			t.Fatal(err)
		}
		if _, err := translateVia(ctx, reg, "alpha", "how many items are there"); err != nil {
			t.Fatal(err)
		}
		h, err := reg.Acquire(ctx, "alpha")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
		if h.FeedbackLog() != nil || h.Trainer() != nil {
			t.Fatal("inert configuration still attached feedback machinery")
		}
		row, err := reg.TenantHealth("alpha")
		if err != nil {
			t.Fatal(err)
		}
		if row.Feedback != nil {
			t.Fatalf("inert configuration reports feedback health: %+v", row.Feedback)
		}
	}
	t.Run("no-feedback-source", func(t *testing.T) {
		check(t, fleet.New(newTestSource(t), fleet.Config{
			MaxActive: 2, StateDir: t.TempDir(), Feedback: true,
		}))
	})
	t.Run("no-statedir", func(t *testing.T) {
		check(t, fleet.New(&feedbackSource{newTestSource(t)}, fleet.Config{
			MaxActive: 2, Feedback: true,
		}))
	})
}
