// Package breaker implements a circuit breaker for pipeline stages
// whose failure is survivable but expensive. The translation path can
// degrade a failing re-ranking stage per request, but paying the
// failure cost (a timeout, a panic recovery) on every call melts tail
// latency under load; the breaker converts repeated stage failures
// into a cheap up-front skip.
//
// The breaker is a three-state machine:
//
//	Closed    normal operation; consecutive failures are counted and
//	          FailureThreshold of them trip the breaker.
//	Open      calls are refused outright (Allow returns false) until
//	          Cooldown has elapsed.
//	HalfOpen  after the cooldown, up to MaxProbes in-flight probe
//	          calls are admitted; SuccessThreshold consecutive probe
//	          successes close the breaker, any probe failure re-opens
//	          it and restarts the cooldown.
//
// All methods are safe for concurrent use. The clock is injectable so
// trip/recover sequences are testable without sleeping.
package breaker

import (
	"encoding/json"
	"errors"
	"sync"
	"time"
)

// ErrOpen is the reason reported when a call is refused because the
// circuit is open (or half-open with all probe slots taken).
var ErrOpen = errors.New("breaker: circuit open")

// State is the breaker's position.
type State int32

const (
	// Closed admits every call.
	Closed State = iota
	// Open refuses every call until the cooldown elapses.
	Open
	// HalfOpen admits a bounded number of probe calls.
	HalfOpen
)

// String names the state for health endpoints and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Config tunes a Breaker. The zero value gets sensible defaults.
type Config struct {
	// FailureThreshold is how many consecutive failures trip the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting
	// probes (default 5s).
	Cooldown time.Duration
	// SuccessThreshold is how many consecutive probe successes close a
	// half-open breaker (default 2).
	SuccessThreshold int
	// MaxProbes bounds concurrently admitted probe calls in the
	// half-open state (default: SuccessThreshold).
	MaxProbes int
	// Clock overrides the time source (tests inject a fake clock;
	// default time.Now).
	Clock func() time.Time
}

func (c *Config) fill() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = c.SuccessThreshold
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Breaker is the circuit breaker. Use New; the zero value is not valid.
type Breaker struct {
	cfg Config

	mu        sync.Mutex
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	probes    int // probes currently admitted while half-open
	openedAt  time.Time
	trips     uint64
}

// New creates a closed breaker.
func New(cfg Config) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. Callers that got true must
// pair it with exactly one Record or Forgive; callers that got false
// must skip the protected work (and not Record).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.probes = 0
		b.successes = 0
	}
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probes < b.cfg.MaxProbes {
			b.probes++
			return true
		}
		return false
	default: // Open
		return false
	}
}

// Record reports the outcome of an admitted call. ok=false counts
// toward tripping (closed) or re-opening (half-open); ok=true resets
// the failure streak or counts toward closing.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			b.successes++
			if b.successes >= b.cfg.SuccessThreshold {
				b.state = Closed
				b.failures = 0
				b.successes = 0
			}
			return
		}
		b.trip()
	default: // Open: a stale outcome from a call admitted pre-trip.
	}
}

// Forgive releases an admitted call without counting it either way —
// used when the outcome says nothing about the protected stage (for
// example the client cancelled the request mid-call).
func (b *Breaker) Forgive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Clock()
	b.failures = 0
	b.successes = 0
	b.probes = 0
	b.trips++
}

// State returns the current state (open breakers past their cooldown
// report HalfOpen, matching what the next Allow would see).
func (b *Breaker) State() State {
	return b.Snapshot().State
}

// Snapshot is a point-in-time view of the breaker for health
// endpoints.
type Snapshot struct {
	// State is the current position.
	State State
	// ConsecutiveFailures is the failure streak while closed.
	ConsecutiveFailures int
	// Trips counts how many times the breaker has opened.
	Trips uint64
	// CooldownRemaining is how long an open breaker stays closed to
	// probes; zero otherwise.
	CooldownRemaining time.Duration
}

// MarshalJSON renders the snapshot the way health endpoints report a
// breaker: the state by name, the trip count, and the streak/cooldown
// fields only when they carry signal.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"state": s.State.String(),
		"trips": s.Trips,
	}
	if s.ConsecutiveFailures > 0 {
		m["consecutive_failures"] = s.ConsecutiveFailures
	}
	if s.CooldownRemaining > 0 {
		m["cooldown_remaining_ms"] = float64(s.CooldownRemaining.Microseconds()) / 1000
	}
	return json.Marshal(m)
}

// Snapshot captures the breaker state for reporting.
func (b *Breaker) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := Snapshot{
		State:               b.state,
		ConsecutiveFailures: b.failures,
		Trips:               b.trips,
	}
	if b.state == Open {
		if rem := b.cfg.Cooldown - b.cfg.Clock().Sub(b.openedAt); rem > 0 {
			snap.CooldownRemaining = rem
		} else {
			snap.State = HalfOpen
		}
	}
	return snap
}
