package breaker_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestBreaker(clk *fakeClock) *breaker.Breaker {
	return breaker.New(breaker.Config{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		SuccessThreshold: 2,
		Clock:            clk.Now,
	})
}

func TestBreakerTripRecover(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)

	if b.State() != breaker.Closed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}

	// Two failures do not trip; a success resets the streak.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		b.Record(false)
	}
	b.Record(true)
	for i := 0; i < 2; i++ {
		b.Record(false)
	}
	if b.State() != breaker.Closed {
		t.Fatalf("state after reset + 2 failures = %v, want closed", b.State())
	}

	// The third consecutive failure trips.
	b.Record(false)
	if b.State() != breaker.Open {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	snap := b.Snapshot()
	if snap.Trips != 1 || snap.CooldownRemaining <= 0 {
		t.Fatalf("open snapshot = %+v", snap)
	}

	// After the cooldown, probes are admitted — but only MaxProbes of
	// them at once.
	clk.Advance(time.Second)
	if b.State() != breaker.HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused probes")
	}
	if b.Allow() {
		t.Fatal("half-open breaker exceeded MaxProbes")
	}

	// Two probe successes close it.
	b.Record(true)
	b.Record(true)
	if b.State() != breaker.Closed {
		t.Fatalf("state after probe successes = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a call")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Record(false)
	if b.State() != breaker.Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if got := b.Snapshot().Trips; got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// The cooldown restarted: still open just before it elapses again.
	clk.Advance(time.Second - time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call before its new cooldown elapsed")
	}
	clk.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused after restarted cooldown")
	}
}

func TestBreakerForgive(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clk.Advance(time.Second)

	// A forgiven probe releases its slot without closing or re-opening.
	if !b.Allow() || !b.Allow() {
		t.Fatal("probes refused")
	}
	b.Forgive()
	b.Forgive()
	if b.State() != breaker.HalfOpen {
		t.Fatalf("state after forgiven probes = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("probe slot not released by Forgive")
	}
}

func TestBreakerConcurrent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := breaker.New(breaker.Config{FailureThreshold: 10, Cooldown: time.Second, Clock: clk.Now})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					b.Record(i%3 != 0)
				}
			}
		}(w)
	}
	wg.Wait()
	// No assertion beyond the race detector and a sane state.
	if s := b.State(); s != breaker.Closed && s != breaker.Open && s != breaker.HalfOpen {
		t.Fatalf("invalid state %v", s)
	}
}
