package breaker_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSnapshotMarshalJSON pins the health-endpoint rendering: the state
// by name, the trip count always, and the streak/cooldown fields only
// while they carry signal.
func TestSnapshotMarshalJSON(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)

	closed, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if s := string(closed); s != `{"state":"closed","trips":0}` {
		t.Fatalf("closed snapshot = %s", s)
	}

	b.Record(false)
	streak, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if s := string(streak); !strings.Contains(s, `"consecutive_failures":1`) {
		t.Fatalf("failing snapshot = %s", s)
	}

	for i := 0; i < 2; i++ {
		b.Record(false)
	}
	open, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(open)
	if !strings.Contains(s, `"state":"open"`) || !strings.Contains(s, `"trips":1`) {
		t.Fatalf("open snapshot = %s", s)
	}
	if !strings.Contains(s, `"cooldown_remaining_ms":1000`) {
		t.Fatalf("open snapshot missing cooldown: %s", s)
	}
}
