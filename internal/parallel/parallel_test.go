package parallel_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 500
		seen := make([]int32, n)
		err := parallel.ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexedWritesMatchSequential(t *testing.T) {
	n := 200
	seq := make([]int, n)
	par := make([]int, n)
	body := func(out []int) func(int) error {
		return func(i int) error {
			out[i] = i * i
			return nil
		}
	}
	if err := parallel.ForEach(context.Background(), n, 1, body(seq)); err != nil {
		t.Fatal(err)
	}
	if err := parallel.ForEach(context.Background(), n, 8, body(par)); err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	err := parallel.ForEach(context.Background(), 100, workers, func(i int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestForEachReturnsLowestObservedError(t *testing.T) {
	errBoom := errors.New("boom")
	err := parallel.ForEach(context.Background(), 50, 4, func(i int) error {
		if i == 3 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("got %v, want %v", err, errBoom)
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	var ran int32
	errHalt := errors.New("halt")
	_ = parallel.ForEach(context.Background(), 10_000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errHalt
		}
		return nil
	})
	if got := atomic.LoadInt32(&ran); got == 10_000 {
		t.Error("error did not stop dispatch: every index ran")
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := parallel.ForEach(ctx, 100_000, 4, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got == 100_000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestForEachRepanicsOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "kaboom" {
					t.Fatalf("workers=%d: panic value %v, want kaboom", workers, r)
				}
			}()
			_ = parallel.ForEach(context.Background(), 20, workers, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

func TestForEachEmptyAndDoneContext(t *testing.T) {
	if err := parallel.ForEach(context.Background(), 0, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := parallel.ForEach(ctx, 10, 1, func(int) error {
		t.Fatal("body ran under a done context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if parallel.Workers(3) != 3 {
		t.Error("explicit worker count must pass through")
	}
	if parallel.Workers(0) < 1 || parallel.Workers(-5) < 1 {
		t.Error("non-positive worker counts must resolve to at least 1")
	}
}
