// Package parallel provides the bounded fan-out primitive of the
// translation hot path: ForEach runs an indexed body across a fixed
// number of worker goroutines with context cancellation and panic
// propagation that preserves the per-stage recover boundaries of
// internal/core — a panic inside a worker is re-raised on the calling
// goroutine, so runStage still converts it into a typed StageError
// instead of the process dying on an unrecovered goroutine panic.
//
// The package is deliberately tiny and dependency-free: results are
// communicated by writing to caller-owned slices at the body's index,
// which keeps parallel output byte-identical to the sequential order
// regardless of worker scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: values below 1 mean "one
// worker per available CPU" (GOMAXPROCS), anything else is returned
// unchanged.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (Workers semantics: <1 means GOMAXPROCS). It returns when
// every dispatched call has finished.
//
//   - Cancellation: once ctx is done no new index is dispatched and
//     ForEach returns the context error (in-flight bodies finish; fn
//     should observe ctx itself if bodies are slow).
//   - Errors: the first failing index stops dispatch; the error of the
//     lowest failing index that was observed is returned.
//   - Panics: a panic in fn stops dispatch, and after all workers have
//     drained the original panic value is re-raised on the calling
//     goroutine, so callers' recover boundaries behave exactly as if
//     fn had been called inline.
//
// With workers resolving to 1 (or n == 1) the bodies run inline on the
// calling goroutine in index order, with no goroutine overhead — this
// is the sequential baseline the determinism tests compare against.
//
//garlint:allow nopanic -- re-raises a worker panic on the caller so stage recover boundaries see it
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next int64 = -1 // atomically incremented work cursor
		stop atomic.Bool

		mu       sync.Mutex
		firstIdx int
		firstErr error
		panicked bool
		panicVal any
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		if err := fn(i); err != nil {
			fail(i, err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() && ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()

	if panicked {
		panic(panicVal)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
