// Package norm implements SPIDER-style query normalization and the
// exact-match comparison used for the translation-accuracy metric. A
// query is decomposed into its clauses; unordered clauses (projections,
// conjunctive predicates, join edges, group keys) compare as sets, so two
// queries that differ only in clause order, alias naming or literal
// values are considered equal — matching the paper's use of the SPIDER
// normalization script (§V, "Evaluation Metrics").
package norm

import (
	"sort"
	"strings"

	"repro/internal/sqlast"
)

// Canonical returns the canonical normalized form of a query. Two
// queries are exact-match equal iff their canonical forms are identical.
func Canonical(q *sqlast.Query) string {
	c := q.Clone()
	sqlast.ResolveAliases(c)
	sqlast.MaskValues(c)
	return canonicalQuery(c)
}

// ExactMatch reports whether the predicted query matches the gold query
// under SPIDER-style normalization. A nil prediction never matches.
func ExactMatch(pred, gold *sqlast.Query) bool {
	if pred == nil || gold == nil {
		return false
	}
	return Canonical(pred) == Canonical(gold)
}

func canonicalQuery(q *sqlast.Query) string {
	if q.Op == sqlast.SetNone {
		return canonicalSelect(q.Select)
	}
	left := canonicalSelect(q.Select)
	right := canonicalQuery(q.Right)
	// UNION and INTERSECT are commutative; order the sides canonically.
	if (q.Op == sqlast.Union || q.Op == sqlast.Intersect) && right < left {
		left, right = right, left
	}
	return left + " " + q.Op.String() + " " + right
}

func canonicalSelect(s *sqlast.Select) string {
	var parts []string

	items := make([]string, 0, len(s.Items))
	for _, it := range s.Items {
		items = append(items, canonicalExpr(it.Expr))
	}
	sort.Strings(items)
	sel := "select "
	if s.Distinct {
		sel += "distinct "
	}
	parts = append(parts, sel+strings.Join(items, ", "))

	tables := make([]string, 0, len(s.From.Tables))
	for _, t := range s.From.Tables {
		if t.Sub != nil {
			tables = append(tables, "("+canonicalQuery(t.Sub)+")")
		} else {
			tables = append(tables, strings.ToLower(t.Name))
		}
	}
	sort.Strings(tables)
	parts = append(parts, "from "+strings.Join(tables, ", "))

	if len(s.From.Joins) > 0 {
		edges := make([]string, 0, len(s.From.Joins))
		for _, j := range s.From.Joins {
			a := canonicalExpr(&j.Left)
			b := canonicalExpr(&j.Right)
			if b < a {
				a, b = b, a
			}
			edges = append(edges, a+" = "+b)
		}
		sort.Strings(edges)
		parts = append(parts, "on "+strings.Join(edges, " and "))
	}

	if s.Where != nil {
		parts = append(parts, "where "+canonicalCond(s.Where))
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, 0, len(s.GroupBy))
		for _, g := range s.GroupBy {
			keys = append(keys, canonicalExpr(g))
		}
		sort.Strings(keys)
		parts = append(parts, "group by "+strings.Join(keys, ", "))
	}
	if s.Having != nil {
		parts = append(parts, "having "+canonicalCond(s.Having))
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, 0, len(s.OrderBy))
		for _, o := range s.OrderBy {
			k := canonicalExpr(o.Expr)
			if o.Desc {
				k += " desc"
			} else {
				k += " asc"
			}
			keys = append(keys, k)
		}
		// Order-by sequence is semantically significant; keep order.
		parts = append(parts, "order by "+strings.Join(keys, ", "))
	}
	if s.Limit > 0 {
		parts = append(parts, "limit "+itoa(s.Limit))
	}
	return strings.Join(parts, " ")
}

// canonicalCond flattens top-level conjunctions into a sorted set and
// keeps disjunctions (whose grouping is semantic) as single units with
// sorted operands.
func canonicalCond(e sqlast.Expr) string {
	conjuncts := conjunctsOf(e)
	parts := make([]string, 0, len(conjuncts))
	for _, c := range conjuncts {
		parts = append(parts, canonicalPredicate(c))
	}
	sort.Strings(parts)
	return strings.Join(parts, " and ")
}

func conjunctsOf(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == "AND" {
		return append(conjunctsOf(b.L), conjunctsOf(b.R)...)
	}
	return []sqlast.Expr{e}
}

func disjunctsOf(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == "OR" {
		return append(disjunctsOf(b.L), disjunctsOf(b.R)...)
	}
	return []sqlast.Expr{e}
}

func canonicalPredicate(e sqlast.Expr) string {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == "OR" {
		ds := disjunctsOf(e)
		parts := make([]string, 0, len(ds))
		for _, d := range ds {
			parts = append(parts, canonicalPredicate(d))
		}
		sort.Strings(parts)
		return "(" + strings.Join(parts, " or ") + ")"
	}
	return canonicalExpr(e)
}

func canonicalExpr(e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if x.Table == "" {
			return strings.ToLower(x.Column)
		}
		return strings.ToLower(x.Table + "." + x.Column)
	case *sqlast.Agg:
		s := strings.ToLower(string(x.Func)) + "("
		if x.Distinct {
			s += "distinct "
		}
		return s + canonicalExpr(x.Arg) + ")"
	case *sqlast.Lit:
		if x.Kind == sqlast.NumberLit {
			return x.Text
		}
		return "'" + strings.ToLower(x.Text) + "'"
	case *sqlast.Binary:
		op := strings.ToLower(x.Op)
		l, r := canonicalExpr(x.L), canonicalExpr(x.R)
		// Equality is symmetric; orient canonically.
		if x.Op == "=" && r < l {
			l, r = r, l
		}
		return l + " " + op + " " + r
	case *sqlast.Not:
		return "not " + canonicalPredicate(x.X)
	case *sqlast.Between:
		s := canonicalExpr(x.X)
		if x.Negate {
			s += " not"
		}
		return s + " between " + canonicalExpr(x.Lo) + " and " + canonicalExpr(x.Hi)
	case *sqlast.In:
		s := canonicalExpr(x.X)
		if x.Negate {
			s += " not"
		}
		return s + " in (" + canonicalQuery(x.Sub) + ")"
	case *sqlast.Exists:
		s := "exists (" + canonicalQuery(x.Sub) + ")"
		if x.Negate {
			s = "not " + s
		}
		return s
	case *sqlast.Subquery:
		return "(" + canonicalQuery(x.Q) + ")"
	default:
		return "?"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// ClauseMatch reports, clause by clause, whether the predicted query
// matches the gold query. The result maps clause names (select, from,
// where, group, having, order, compound) to a boolean. It is used for
// the partial-credit similarity score of the LTR training data.
func ClauseMatch(pred, gold *sqlast.Query) map[string]bool {
	p, g := decompose(pred), decompose(gold)
	return map[string]bool{
		"select":   p.selects == g.selects,
		"from":     p.from == g.from,
		"where":    p.where == g.where,
		"group":    p.group == g.group,
		"having":   p.having == g.having,
		"order":    p.order == g.order,
		"compound": p.compound == g.compound,
	}
}

type clauses struct {
	selects, from, where, group, having, order, compound string
}

func decompose(q *sqlast.Query) clauses {
	c := q.Clone()
	sqlast.ResolveAliases(c)
	sqlast.MaskValues(c)
	var out clauses
	s := c.Select
	items := make([]string, 0, len(s.Items))
	for _, it := range s.Items {
		items = append(items, canonicalExpr(it.Expr))
	}
	sort.Strings(items)
	out.selects = strings.Join(items, ",")
	if s.Distinct {
		out.selects = "distinct " + out.selects
	}

	tables := make([]string, 0, len(s.From.Tables))
	for _, t := range s.From.Tables {
		if t.Sub != nil {
			tables = append(tables, "("+canonicalQuery(t.Sub)+")")
		} else {
			tables = append(tables, strings.ToLower(t.Name))
		}
	}
	sort.Strings(tables)
	edges := make([]string, 0, len(s.From.Joins))
	for _, j := range s.From.Joins {
		a, b := canonicalExpr(&j.Left), canonicalExpr(&j.Right)
		if b < a {
			a, b = b, a
		}
		edges = append(edges, a+"="+b)
	}
	sort.Strings(edges)
	out.from = strings.Join(tables, ",") + "|" + strings.Join(edges, ",")

	if s.Where != nil {
		out.where = canonicalCond(s.Where)
	}
	keys := make([]string, 0, len(s.GroupBy))
	for _, g := range s.GroupBy {
		keys = append(keys, canonicalExpr(g))
	}
	sort.Strings(keys)
	out.group = strings.Join(keys, ",")
	if s.Having != nil {
		out.having = canonicalCond(s.Having)
	}
	var order []string
	for _, o := range s.OrderBy {
		k := canonicalExpr(o.Expr)
		if o.Desc {
			k += " desc"
		}
		order = append(order, k)
	}
	out.order = strings.Join(order, ",")
	if s.Limit > 0 {
		out.order += " limit " + itoa(s.Limit)
	}
	if c.Op != sqlast.SetNone {
		out.compound = c.Op.String() + " " + canonicalQuery(c.Right)
	}
	return out
}
