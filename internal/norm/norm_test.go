package norm_test

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/sqlparse"
)

func match(t *testing.T, a, b string, want bool) {
	t.Helper()
	qa, qb := sqlparse.MustParse(a), sqlparse.MustParse(b)
	if got := norm.ExactMatch(qa, qb); got != want {
		t.Errorf("ExactMatch(%q, %q) = %v, want %v\ncanonical a: %s\ncanonical b: %s",
			a, b, got, want, norm.Canonical(qa), norm.Canonical(qb))
	}
}

func TestExactMatchEquivalences(t *testing.T) {
	// Select-item order.
	match(t, "SELECT a, b FROM t", "SELECT b, a FROM t", true)
	// Conjunct order.
	match(t, "SELECT a FROM t WHERE b = 1 AND c = 2", "SELECT a FROM t WHERE c = 2 AND b = 1", true)
	// Disjunct order.
	match(t, "SELECT a FROM t WHERE b = 1 OR c = 2", "SELECT a FROM t WHERE c = 2 OR b = 1", true)
	// Literal values are masked.
	match(t, "SELECT a FROM t WHERE b = 'Spain'", "SELECT a FROM t WHERE b = 'France'", true)
	// Aliases.
	match(t, "SELECT T1.a FROM t AS T1", "SELECT x.a FROM t AS x", true)
	// Join edge orientation.
	match(t,
		"SELECT T1.a FROM t AS T1 JOIN s AS T2 ON T1.id = T2.tid",
		"SELECT T1.a FROM t AS T1 JOIN s AS T2 ON T2.tid = T1.id", true)
	// Equality operand orientation.
	match(t, "SELECT a FROM t WHERE b = c", "SELECT a FROM t WHERE c = b", true)
	// UNION commutativity.
	match(t, "SELECT a FROM t UNION SELECT b FROM s", "SELECT b FROM s UNION SELECT a FROM t", true)
	// Keyword case.
	match(t, "select a from t", "SELECT a FROM t", true)
}

func TestExactMatchDifferences(t *testing.T) {
	match(t, "SELECT a FROM t", "SELECT b FROM t", false)
	match(t, "SELECT a FROM t", "SELECT DISTINCT a FROM t", false)
	match(t, "SELECT a FROM t WHERE b = 1 AND c = 2", "SELECT a FROM t WHERE b = 1 OR c = 2", false)
	match(t, "SELECT a FROM t ORDER BY a", "SELECT a FROM t ORDER BY a DESC", false)
	match(t, "SELECT a FROM t ORDER BY a, b", "SELECT a FROM t ORDER BY b, a", false)
	match(t, "SELECT a FROM t LIMIT 1", "SELECT a FROM t LIMIT 5", false)
	match(t, "SELECT a FROM t WHERE b > 1", "SELECT a FROM t WHERE b < 1", false)
	match(t, "SELECT MAX(a) FROM t", "SELECT MIN(a) FROM t", false)
	match(t, "SELECT COUNT(a) FROM t", "SELECT COUNT(DISTINCT a) FROM t", false)
	match(t, "SELECT a FROM t EXCEPT SELECT a FROM s", "SELECT a FROM s EXCEPT SELECT a FROM t", false)
	// Different join paths (the Fig. 7 failure case).
	match(t,
		"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport",
		"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport",
		false)
}

func TestExactMatchNested(t *testing.T) {
	match(t,
		"SELECT a FROM t WHERE b IN (SELECT c FROM s WHERE d = 1 AND e = 2)",
		"SELECT a FROM t WHERE b IN (SELECT c FROM s WHERE e = 9 AND d = 7)",
		true)
	match(t,
		"SELECT a FROM t WHERE b IN (SELECT c FROM s)",
		"SELECT a FROM t WHERE b NOT IN (SELECT c FROM s)",
		false)
}

func TestExactMatchNil(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t")
	if norm.ExactMatch(nil, q) || norm.ExactMatch(q, nil) {
		t.Error("nil queries must not match")
	}
}

func TestClauseMatch(t *testing.T) {
	a := sqlparse.MustParse("SELECT a FROM t WHERE b = 1 ORDER BY a")
	b := sqlparse.MustParse("SELECT a FROM t WHERE b = 2 ORDER BY a DESC")
	m := norm.ClauseMatch(a, b)
	if !m["select"] || !m["from"] || !m["where"] {
		t.Errorf("select/from/where should match: %v", m)
	}
	if m["order"] {
		t.Errorf("order should differ: %v", m)
	}
	if !m["group"] || !m["having"] || !m["compound"] {
		t.Errorf("absent clauses should match: %v", m)
	}
}

func TestCanonicalStable(t *testing.T) {
	src := "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"
	q := sqlparse.MustParse(src)
	c1 := norm.Canonical(q)
	c2 := norm.Canonical(sqlparse.MustParse(src))
	if c1 != c2 {
		t.Errorf("canonical form unstable:\n%s\n%s", c1, c2)
	}
	// Canonicalization must not mutate the input.
	if q.String() != sqlparse.MustParse(src).String() {
		t.Error("Canonical mutated its argument")
	}
}
