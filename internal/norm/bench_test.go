package norm

import (
	"testing"

	"repro/internal/sqlparse"
)

// BenchmarkCanonical measures SPIDER-style normalization, the inner loop
// of exact-match evaluation and pool indexing.
func BenchmarkCanonical(b *testing.B) {
	q := sqlparse.MustParse(`SELECT T1.name FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		WHERE T2.bonus > 100 ORDER BY T2.bonus DESC LIMIT 1`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Canonical(q)
	}
}
