// Package feedback is the durable append-only log (WAL) of the online
// learning loop. Serving accepts user feedback — "candidate i was
// right" or "the right SQL is this" — over POST /feedback, validates
// it against the tenant schema, and appends one Record per accepted
// signal; the background trainer replays the log, folds the pairs into
// the sample set, and retrains off the serving path.
//
// The log follows the house envelope discipline of internal/checkpoint:
// every segment file starts with an 8-byte magic (version baked in) and
// carries self-delimiting frames of [length, CRC-64, gob payload]; new
// segments are created with temp + fsync + rename; recovery scans
// segments oldest-first, truncates a torn tail (the un-acknowledged
// leftover of a crash mid-append) from the newest segment only, and
// skips CRC-corrupt records with typed errors rather than failing the
// open. An append is acknowledged only after fsync plus a read-back
// verification of the bytes on the page cache, so an acknowledged
// record survives both a crash and an injected bit flip; a failed
// append is rolled back by truncation (or the segment is sealed when
// even that fails), so it never poisons later records.
//
// Record sequence numbers are assigned once, monotonically, and never
// reused; Records replays the whole tree in segment order and drops
// non-increasing sequence numbers, which makes replay idempotent and
// makes a crash between the rename and the deletes of a Compact
// harmless (the duplicated prefix deduplicates away).
package feedback

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
)

// magic identifies a feedback WAL segment; the trailing "01" is the
// format version. Bump the suffix on any incompatible frame change.
const magic = "GARFBL01"

const (
	// frameOverhead is the fixed prefix of every frame: a 4-byte
	// big-endian payload length and the 8-byte big-endian CRC-64 (ECMA)
	// of the payload.
	frameOverhead = 12
	// maxRecordLen bounds one encoded record; a length field above it
	// is structural corruption, not a large record.
	maxRecordLen = 1 << 20
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt is wrapped by every error that reports damaged log bytes:
// a bad segment header, a CRC mismatch, an undecodable payload, or an
// impossible length field.
var ErrCorrupt = errors.New("feedback: log corrupt")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("feedback: log closed")

// Record is one accepted feedback signal: the user asked Question, and
// SQL is the answer they endorsed — either the candidate they picked
// (Source "chosen") or the correction they typed (Source "corrected").
// Seq is assigned by Append and is unique and monotonic across the
// whole log; Generation records the serving snapshot that produced the
// candidates, which the post-promotion regression detector uses.
type Record struct {
	Seq        uint64
	TimeUnix   int64
	Question   string
	SQL        string
	Source     string
	Generation uint64
}

// Record sources.
const (
	SourceChosen    = "chosen"
	SourceCorrected = "corrected"
)

// corrupt builds a typed corruption error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// encodeRecord renders one record as a self-delimiting frame.
func encodeRecord(rec Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("feedback: encoding record %d: %w", rec.Seq, err)
	}
	if payload.Len() > maxRecordLen {
		return nil, fmt.Errorf("feedback: record %d is %d bytes (limit %d)", rec.Seq, payload.Len(), maxRecordLen)
	}
	frame := make([]byte, frameOverhead+payload.Len())
	binary.BigEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint64(frame[4:12], crc64.Checksum(payload.Bytes(), crcTable))
	copy(frame[frameOverhead:], payload.Bytes())
	return frame, nil
}

// decodePayload gob-decodes one frame payload. Decoding foreign bytes
// must never take the process down, so gob panics are contained here.
func decodePayload(payload []byte) (rec Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = corrupt("decoding record: panic: %v", r)
		}
	}()
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); derr != nil {
		return Record{}, corrupt("decoding record: %v", derr)
	}
	return rec, nil
}

// scanResult is the verdict on one segment's bytes.
type scanResult struct {
	// Records are the frames that decoded cleanly, in file order.
	Records []Record
	// Good is the offset just past the last structurally complete
	// frame: the only safe truncation point for a torn tail.
	Good int64
	// Corrupt counts structurally complete frames whose CRC or payload
	// failed — possible acknowledged data, lost and detected.
	Corrupt int
	// Errs carries one typed error per corruption (wrapping ErrCorrupt).
	Errs []error
	// TornBytes is the length of an incomplete trailing frame — the
	// normal leftover of a crash mid-append, provably un-acknowledged.
	TornBytes int64
	// Lost reports an impossible length field: the frame boundary is
	// gone and everything from Good onward is unreachable.
	Lost bool
}

// scanSegment walks one segment's bytes. A missing or damaged header
// is reported as an error (the file yields nothing); everything else —
// torn tails, CRC mismatches, bad length fields — is classified on the
// result so the caller decides what survives.
func scanSegment(data []byte) (scanResult, error) {
	var res scanResult
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return res, corrupt("bad segment header")
	}
	off := int64(len(magic))
	res.Good = off
	n := int64(len(data))
	for off < n {
		rem := n - off
		if rem < frameOverhead {
			res.TornBytes = rem
			return res, nil
		}
		plen := int64(binary.BigEndian.Uint32(data[off : off+4]))
		if plen > maxRecordLen {
			res.Lost = true
			res.Errs = append(res.Errs, corrupt("impossible frame length %d at offset %d; %d trailing bytes unreachable", plen, off, rem))
			return res, nil
		}
		if rem < frameOverhead+plen {
			res.TornBytes = rem
			return res, nil
		}
		want := binary.BigEndian.Uint64(data[off+4 : off+12])
		payload := data[off+frameOverhead : off+frameOverhead+plen]
		off += frameOverhead + plen
		res.Good = off
		if crc64.Checksum(payload, crcTable) != want {
			res.Corrupt++
			res.Errs = append(res.Errs, corrupt("record CRC mismatch at offset %d", off-frameOverhead-plen))
			continue
		}
		rec, err := decodePayload(payload)
		if err != nil {
			res.Corrupt++
			res.Errs = append(res.Errs, err)
			continue
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}
