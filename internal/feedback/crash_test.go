package feedback

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The SIGKILL crash matrix: a child process appends feedback records
// in a loop through the real write+fsync path, printing each sequence
// number only after Append acknowledged it, and the parent kills it
// dead — no signal handler, no defer — at a randomized moment. A
// restart over the surviving directory must recover every acknowledged
// record: the fsync-before-ack discipline is exactly the guarantee
// under test. (An un-acknowledged trailing record may also survive —
// the kill can land between the fsync and the ack — which is the safe
// direction: the client saw an error and retries.)

const crashEnv = "GAR_FEEDBACK_CRASH_CHILD"

// TestCrashFeedbackHelper is the child body, only active when
// re-invoked by TestCrashFeedbackSIGKILL; as a normal test it no-ops.
func TestCrashFeedbackHelper(t *testing.T) {
	dir := os.Getenv(crashEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestCrashFeedbackSIGKILL")
	}
	l, err := Open(dir, Config{MaxSegmentBytes: 4096})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Append as fast as possible until killed. Record size varies so
	// kills land at different file offsets, and the small segment cap
	// makes some kills land mid-rotation.
	for i := 0; ; i++ {
		rec := Record{
			Question: fmt.Sprintf("crash question %d %s", i, strings.Repeat("pad", i%41)),
			SQL:      fmt.Sprintf("SELECT %d FROM t", i),
			Source:   SourceChosen,
		}
		seq, err := l.Append(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The ack line goes out only after the fsynced append returned.
		fmt.Printf("acked %d\n", seq)
	}
}

func TestCrashFeedbackSIGKILL(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX kill semantics required")
	}
	if testing.Short() {
		t.Skip("subprocess crash matrix skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	delays := []time.Duration{
		500 * time.Microsecond, 1100 * time.Microsecond, 2300 * time.Microsecond,
		4700 * time.Microsecond, 9500 * time.Microsecond, 19 * time.Millisecond,
		37 * time.Millisecond, 61 * time.Millisecond,
	}
	for i, delay := range delays {
		t.Run(fmt.Sprintf("kill-after-%s", delay), func(t *testing.T) {
			dir := t.TempDir()
			var out bytes.Buffer
			cmd := exec.Command(exe, "-test.run=^TestCrashFeedbackHelper$", "-test.v")
			cmd.Env = append(os.Environ(), crashEnv+"="+dir)
			cmd.Stdout = &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay + time.Duration(i)*300*time.Microsecond)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = cmd.Wait() // expected: killed

			// Only complete, well-formed ack lines count: the kill can
			// shear the final line mid-write.
			var acked []uint64
			sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
			for sc.Scan() {
				line := sc.Text()
				rest, ok := strings.CutPrefix(line, "acked ")
				if !ok {
					continue
				}
				seq, perr := strconv.ParseUint(rest, 10, 64)
				if perr != nil {
					continue
				}
				acked = append(acked, seq)
			}

			l, err := Open(dir, Config{})
			if err != nil {
				t.Fatalf("Open after SIGKILL: %v", err)
			}
			defer l.Close()
			st := l.Stats()
			if st.CorruptSkipped != 0 {
				t.Fatalf("SIGKILL produced corrupt (not torn) records: %+v", st)
			}
			recs, err := l.Records()
			if err != nil {
				t.Fatal(err)
			}
			have := map[uint64]bool{}
			for _, rec := range recs {
				have[rec.Seq] = true
				// Content integrity: the record must be exactly what the
				// writer produced for that sequence number.
				i := int(rec.Seq - 1)
				wantQ := fmt.Sprintf("crash question %d %s", i, strings.Repeat("pad", i%41))
				if rec.Question != wantQ {
					t.Fatalf("record %d recovered with wrong question %q", rec.Seq, rec.Question)
				}
			}
			for _, seq := range acked {
				if !have[seq] {
					t.Fatalf("acknowledged record %d lost after SIGKILL (recovered %d of %d acked)",
						seq, len(recs), len(acked))
				}
			}
			// At most one un-acked trailing record may have survived.
			if len(recs) > len(acked)+1 {
				t.Fatalf("recovered %d records but only %d were acked", len(recs), len(acked))
			}
			// The recovered log keeps working.
			if _, err := l.Append(Record{Question: "after", SQL: "SELECT 1", Source: SourceChosen}); err != nil {
				t.Fatalf("append after crash recovery: %v", err)
			}
		})
	}
}
