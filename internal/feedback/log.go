package feedback

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
)

// segName is the on-disk name of one log segment. The zero-padded
// decimal makes lexical order equal numeric order, so a directory
// listing is already segment-sorted.
const segName = "seg-%020d.fwal"

// tmpPattern is the os.CreateTemp pattern of in-progress segment and
// compaction writes; the leading dot keeps them out of casual globs.
const tmpPattern = ".fwal-*.tmp"

var segRE = regexp.MustCompile(`^seg-(\d{20})\.fwal$`)

// Config tunes a Log. The zero value is usable.
type Config struct {
	// MaxSegmentBytes rotates the active segment before an append that
	// would push it past this size (default 1 MiB). Rotation bounds the
	// blast radius of a damaged segment and the cost of a Compact.
	MaxSegmentBytes int64
}

func (c Config) fill() Config {
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = 1 << 20
	}
	return c
}

// Stats is a point-in-time summary of a log.
type Stats struct {
	// Segments and Bytes describe the on-disk tree.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Records is the number of replayable records; LastSeq the highest
	// sequence number ever acknowledged.
	Records int    `json:"records"`
	LastSeq uint64 `json:"last_seq"`
	// Appended and AppendFailures count this process's appends.
	Appended       uint64 `json:"appended"`
	AppendFailures uint64 `json:"append_failures,omitempty"`
	// CorruptSkipped counts records dropped at open for CRC or decode
	// damage; TornTruncated counts torn tails cut off the newest
	// segment; SealedSegments counts segments retired early because
	// their damage could not be safely truncated away.
	CorruptSkipped  int    `json:"corrupt_skipped,omitempty"`
	TornTruncated   int    `json:"torn_truncated,omitempty"`
	SealedSegments  int    `json:"sealed_segments,omitempty"`
	Rotations       uint64 `json:"rotations,omitempty"`
	Compactions     uint64 `json:"compactions,omitempty"`
	ReplayDuplicate int    `json:"replay_duplicates,omitempty"`
}

// Log is a durable append-only feedback log over one directory. It is
// safe for concurrent use; appends are serialized by an internal
// mutex, which is the WAL's write-ordering discipline (one frame hits
// the file at a time, sequence numbers are gapless-monotonic).
type Log struct {
	dir string
	cfg Config
	// inj, when set, fires at the filesystem fault points of every
	// append and rotation; see internal/faults. Test-harness hook.
	inj *faults.Injector

	mu         sync.Mutex
	f          *os.File // active segment; nil when sealed (next append rotates)
	activeID   uint64
	activeSize int64
	lastSeq    uint64
	closed     bool
	stats      Stats
}

// Open creates the directory if needed, sweeps leftover temp files,
// replays every segment, repairs the newest one (truncating a torn
// tail; sealing it when the damage is not a clean tail), and returns a
// log ready to append. Corrupt records are skipped and counted, never
// fatal: losing one feedback pair must not take the loop down.
func Open(dir string, cfg Config) (*Log, error) {
	if dir == "" {
		return nil, fmt.Errorf("feedback: empty log directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: opening log directory: %w", err)
	}
	l := &Log{dir: dir, cfg: cfg.fill()}
	l.cleanTemp()
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if err := l.recoverSegments(segs); err != nil {
		return nil, err
	}
	return l, nil
}

// SetFaultInjector installs a fault injector fired at the FSWrite,
// FSSync and FSRename points of subsequent appends and rotations.
// Pass nil to disable. Intended for the crash-consistency harness.
func (l *Log) SetFaultInjector(inj *faults.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inj = inj
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// segment pairs an ID with its path.
type segment struct {
	id   uint64
	path string
}

func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf(segName, id))
}

// listSegments returns the segment files of dir in ID order.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("feedback: listing segments: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		m := segRE.FindStringSubmatch(e.Name())
		if m == nil || e.IsDir() {
			continue
		}
		id, perr := strconv.ParseUint(m[1], 10, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, segment{id: id, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].id < segs[j].id })
	return segs, nil
}

// recoverSegments replays segs into the log's counters and decides
// where the next append goes. Only the newest segment is ever
// repaired: older segments were sealed by a rotation that implies
// their tail was acknowledged, so damage there is reported, not
// amputated.
func (l *Log) recoverSegments(segs []segment) error {
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("feedback: reading segment: %w", err)
		}
		res, serr := scanSegment(data)
		newest := i == len(segs)-1
		l.stats.Segments++
		l.stats.Bytes += int64(len(data))
		l.stats.CorruptSkipped += res.Corrupt
		for _, rec := range res.Records {
			if rec.Seq > l.lastSeq {
				l.lastSeq = rec.Seq
				l.stats.Records++
			} else {
				l.stats.ReplayDuplicate++
			}
		}
		if !newest {
			continue
		}
		l.activeID = seg.id
		if serr != nil || res.Lost || res.Corrupt > 0 {
			// The tail may hide acknowledged bytes we cannot re-delimit;
			// retire the segment untouched and append elsewhere.
			l.stats.SealedSegments++
			continue
		}
		if res.TornBytes > 0 {
			if terr := truncateSegment(seg.path, res.Good); terr != nil {
				// Cannot prove the torn tail gone: seal instead.
				l.stats.SealedSegments++
				continue
			}
			l.stats.Bytes -= res.TornBytes
			l.stats.TornTruncated++
		}
		f, oerr := os.OpenFile(seg.path, os.O_RDWR|os.O_APPEND, 0o644)
		if oerr != nil {
			return fmt.Errorf("feedback: reopening active segment: %w", oerr)
		}
		l.f = f
		l.activeSize = int64(len(data)) - res.TornBytes
	}
	l.stats.LastSeq = l.lastSeq
	return nil
}

// truncateSegment cuts a torn tail and makes the cut durable.
func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		closeQuiet(f)
		return err
	}
	if err := f.Sync(); err != nil {
		closeQuiet(f)
		return err
	}
	return f.Close()
}

// closeQuiet closes a file on a path that is already failing.
//
//garlint:allow errlost -- best-effort cleanup; the original error is the one to surface
func closeQuiet(f *os.File) {
	_ = f.Close()
}

// cleanTemp removes leftover temp files from interrupted rotations.
//
//garlint:allow errlost -- best-effort startup sweep of provably incomplete files
func (l *Log) cleanTemp() {
	matches, _ := filepath.Glob(filepath.Join(l.dir, tmpPattern))
	for _, m := range matches {
		_ = os.Remove(m)
	}
}

// discardTemp closes and removes a temp file after a failure that is
// already being reported.
//
//garlint:allow errlost -- best-effort cleanup on a path that is already failing; the original error is the one to surface
func discardTemp(f *os.File) {
	_ = f.Close()
	_ = os.Remove(f.Name())
}

// syncDir fsyncs a directory so a completed rename survives a crash.
//
//garlint:allow errlost -- durability hint after the rename has already landed; there is nothing left to unwind
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Append assigns the next sequence number to rec, writes its frame to
// the active segment and fsyncs. The record is acknowledged — sequence
// returned, counters bumped — only after the fsync succeeds AND a
// read-back of the frame matches what was meant to be written, so an
// acknowledged record survives a crash and an injected bit flip alike.
// On failure the partial frame is truncated away (or the segment is
// sealed when even truncation fails) and the sequence number is not
// consumed.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.Seq = l.lastSeq + 1
	if rec.TimeUnix == 0 {
		rec.TimeUnix = time.Now().Unix()
	}
	frame, err := encodeRecord(rec)
	if err != nil {
		return 0, err
	}
	if l.f != nil && l.activeSize+int64(len(frame)) > l.cfg.MaxSegmentBytes && l.activeSize > int64(len(magic)) {
		l.seal()
	}
	if l.f == nil {
		if err := l.openSegment(l.activeID + 1); err != nil {
			return 0, err
		}
	}
	prev := l.activeSize
	if err := l.writeFrame(frame, prev); err != nil {
		l.stats.AppendFailures++
		l.discardTail(prev)
		return 0, fmt.Errorf("feedback: appending record: %w", err)
	}
	l.lastSeq = rec.Seq
	l.activeSize = prev + int64(len(frame))
	l.stats.Appended++
	l.stats.Records++
	l.stats.LastSeq = rec.Seq
	l.stats.Bytes += int64(len(frame))
	return rec.Seq, nil
}

// writeFrame pushes one frame through the filesystem fault points,
// fsyncs, and read-back-verifies the bytes that landed at offset off.
//
//garlint:allow ctxpass -- deliberately synchronous: the write/fsync
// sequencing is the ack contract and must run to completion;
// context.Background only feeds instantaneous test fault points
func (l *Log) writeFrame(frame []byte, off int64) error {
	buf, ferr := l.inj.FireData(faults.FSWrite, frame)
	if len(buf) > 0 {
		if _, werr := l.f.Write(buf); werr != nil {
			return werr
		}
	}
	if ferr != nil {
		return ferr
	}
	if err := l.inj.Fire(context.Background(), faults.FSSync); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	got := make([]byte, len(frame))
	if _, err := l.f.ReadAt(got, off); err != nil {
		return fmt.Errorf("verifying written frame: %w", err)
	}
	if !bytes.Equal(got, frame) {
		return corrupt("written frame does not match (media corruption before ack)")
	}
	return nil
}

// discardTail rolls the active segment back to size prev after a
// failed append. If the truncate fails the garbage tail cannot be
// proven gone, so the segment is sealed: recovery classifies the tail
// as torn/corrupt and the next append starts a fresh segment.
func (l *Log) discardTail(prev int64) {
	if l.f == nil {
		return
	}
	if err := l.f.Truncate(prev); err != nil {
		l.seal()
		l.stats.SealedSegments++
		return
	}
	l.activeSize = prev
}

// seal closes the active segment; the next append rotates.
//
//garlint:allow errlost -- the segment's acknowledged bytes are already fsynced; a close error has nothing to add
func (l *Log) seal() {
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}

// openSegment creates segment id with the temp+fsync+rename discipline
// (a segment file is either absent or has a complete header) and opens
// it for appends.
//
//garlint:allow ctxpass -- deliberately synchronous: segment creation is
// part of the durable-append contract; context.Background only feeds
// instantaneous test fault points
func (l *Log) openSegment(id uint64) error {
	final := segPath(l.dir, id)
	tmp, err := os.CreateTemp(l.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("feedback: creating segment: %w", err)
	}
	buf, ferr := l.inj.FireData(faults.FSWrite, []byte(magic))
	if len(buf) > 0 {
		if _, werr := tmp.Write(buf); werr != nil {
			discardTemp(tmp)
			return fmt.Errorf("feedback: writing segment header: %w", werr)
		}
	}
	if ferr != nil {
		discardTemp(tmp)
		return fmt.Errorf("feedback: writing segment header: %w", ferr)
	}
	if err := l.inj.Fire(context.Background(), faults.FSSync); err != nil {
		discardTemp(tmp)
		return fmt.Errorf("feedback: syncing segment header: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		discardTemp(tmp)
		return fmt.Errorf("feedback: syncing segment header: %w", err)
	}
	if err := tmp.Close(); err != nil {
		discardTemp(tmp)
		return fmt.Errorf("feedback: closing segment header: %w", err)
	}
	if err := l.inj.Fire(context.Background(), faults.FSRename); err != nil {
		discardTemp(tmp)
		return fmt.Errorf("feedback: publishing segment: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		discardTemp(tmp)
		return fmt.Errorf("feedback: publishing segment: %w", err)
	}
	syncDir(l.dir)
	f, err := os.OpenFile(final, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: opening segment: %w", err)
	}
	// Read back the header: a bit flip here would silently void every
	// record later appended to the segment. The file holds nothing
	// acknowledged yet, so on mismatch it is simply discarded.
	hdr := make([]byte, len(magic))
	if _, rerr := f.ReadAt(hdr, 0); rerr != nil || string(hdr) != magic {
		discardTemp(f)
		return corrupt("segment header does not match after write")
	}
	l.f = f
	l.activeID = id
	l.activeSize = int64(len(magic))
	l.stats.Segments++
	l.stats.Bytes += int64(len(magic))
	l.stats.Rotations++
	return nil
}

// Records replays the whole log from disk: every decodable record in
// segment order, strictly increasing sequence numbers (duplicates from
// an interrupted compaction deduplicate away). Corrupt records are
// skipped, as at Open.
func (l *Log) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	recs, _, err := replayDir(l.dir)
	return recs, err
}

// replayDir reads every segment of dir and returns the deduplicated
// record stream plus the number of skipped corrupt frames.
func replayDir(dir string) ([]Record, int, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	var out []Record
	var last uint64
	skipped := 0
	for _, seg := range segs {
		data, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			return nil, skipped, fmt.Errorf("feedback: reading segment: %w", rerr)
		}
		res, serr := scanSegment(data)
		if serr != nil {
			skipped++
			continue
		}
		skipped += res.Corrupt
		for _, rec := range res.Records {
			if rec.Seq > last {
				out = append(out, rec)
				last = rec.Seq
			}
		}
	}
	return out, skipped, nil
}

// LastSeq returns the highest acknowledged sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Compact rewrites every replayable record into one fresh segment and
// deletes the older ones. A crash anywhere in between is safe: before
// the rename nothing changed; after it, replay deduplicates the old
// segments' records away and a re-run finishes the deletes.
//
//garlint:allow lockhold -- l.mu is the WAL's single-writer lock: every mutation (append, rotation, compaction) does file I/O under it by design, and no serving path ever holds it
func (l *Log) Compact() (kept int, removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	recs, _, err := replayDir(l.dir)
	if err != nil {
		return 0, 0, err
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, 0, err
	}
	newID := l.activeID + 1
	size, err := l.writeCompacted(newID, recs)
	if err != nil {
		return 0, 0, err
	}
	l.seal()
	for _, seg := range segs {
		if seg.id >= newID {
			continue
		}
		if rerr := os.Remove(seg.path); rerr != nil {
			// The duplicate prefix is harmless (replay dedups); report it.
			err = fmt.Errorf("feedback: removing compacted segment: %w", rerr)
			continue
		}
		removed++
	}
	f, oerr := os.OpenFile(segPath(l.dir, newID), os.O_RDWR|os.O_APPEND, 0o644)
	if oerr != nil {
		return len(recs), removed, fmt.Errorf("feedback: reopening compacted segment: %w", oerr)
	}
	l.f = f
	l.activeID = newID
	l.activeSize = size
	l.stats.Compactions++
	l.stats.Segments = 1 + (len(segs) - removed)
	l.stats.Bytes = size
	l.stats.Records = len(recs)
	return len(recs), removed, err
}

// writeCompacted writes recs as segment id via temp+fsync+rename.
func (l *Log) writeCompacted(id uint64, recs []Record) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			return 0, err
		}
		buf.Write(frame)
	}
	tmp, err := os.CreateTemp(l.dir, tmpPattern)
	if err != nil {
		return 0, fmt.Errorf("feedback: creating compacted segment: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		discardTemp(tmp)
		return 0, fmt.Errorf("feedback: writing compacted segment: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		discardTemp(tmp)
		return 0, fmt.Errorf("feedback: syncing compacted segment: %w", err)
	}
	if err := tmp.Close(); err != nil {
		discardTemp(tmp)
		return 0, fmt.Errorf("feedback: closing compacted segment: %w", err)
	}
	if err := os.Rename(tmp.Name(), segPath(l.dir, id)); err != nil {
		discardTemp(tmp)
		return 0, fmt.Errorf("feedback: publishing compacted segment: %w", err)
	}
	syncDir(l.dir)
	return int64(buf.Len()), nil
}

// Close seals the log; further operations return ErrClosed.
//
//garlint:allow lockhold -- l.mu is the WAL's single-writer lock; closing the active segment under it is the point
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.f != nil {
		err = l.f.Close()
		l.f = nil
	}
	return err
}

// SegmentReport is Inspect's read-only verdict on one segment file.
type SegmentReport struct {
	Path      string `json:"path"`
	Size      int64  `json:"size"`
	Records   int    `json:"records"`
	FirstSeq  uint64 `json:"first_seq,omitempty"`
	LastSeq   uint64 `json:"last_seq,omitempty"`
	Corrupt   int    `json:"corrupt,omitempty"`
	TornBytes int64  `json:"torn_bytes,omitempty"`
	// Lost reports an unrecoverable frame boundary mid-segment.
	Lost bool `json:"lost_tail,omitempty"`
	// Err is a header-level failure; the segment yields no records.
	Err string `json:"error,omitempty"`
}

// Inspect scans every segment of dir without opening (or repairing)
// the log — the read-only path of `gar feedback list|verify`.
func Inspect(dir string) ([]SegmentReport, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	reports := make([]SegmentReport, 0, len(segs))
	for _, seg := range segs {
		rep := SegmentReport{Path: seg.path}
		data, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			rep.Err = rerr.Error()
			reports = append(reports, rep)
			continue
		}
		rep.Size = int64(len(data))
		res, serr := scanSegment(data)
		if serr != nil {
			rep.Err = serr.Error()
			reports = append(reports, rep)
			continue
		}
		rep.Records = len(res.Records)
		if len(res.Records) > 0 {
			rep.FirstSeq = res.Records[0].Seq
			rep.LastSeq = res.Records[len(res.Records)-1].Seq
		}
		rep.Corrupt = res.Corrupt
		rep.TornBytes = res.TornBytes
		rep.Lost = res.Lost
		reports = append(reports, rep)
	}
	return reports, nil
}
