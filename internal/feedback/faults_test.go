package feedback

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
)

// The write/recover fault matrix: every filesystem fault kind at every
// fault point of an append. The invariants, regardless of fault:
//
//   - Append never panics;
//   - a failed Append consumes no sequence number and leaves the log
//     usable (the very next clean append succeeds);
//   - an acknowledged record is never lost: replay after re-open yields
//     exactly the acknowledged set, in order — even for a bit flip,
//     which the read-back verification turns into a failed append
//     instead of silent corruption.
func TestFaultMatrixFeedbackAppend(t *testing.T) {
	cases := []struct {
		name string
		plan func(*faults.Injector)
	}{
		{"write-error", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindError, Times: 1})
		}},
		{"write-short-0", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindShortWrite, Bytes: 0, Times: 1})
		}},
		{"write-short-1", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindShortWrite, Bytes: 1, Times: 1})
		}},
		{"write-short-mid", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindShortWrite, Bytes: 17, Times: 1})
		}},
		{"bit-flip-header", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: 2, Times: 1})
		}},
		{"bit-flip-crc", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: 7, Times: 1})
		}},
		{"bit-flip-payload", func(in *faults.Injector) {
			in.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: 40, Times: 1})
		}},
		{"sync-error", func(in *faults.Injector) {
			in.Inject(faults.FSSync, faults.Plan{Kind: faults.KindError, Times: 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			acked := appendN(t, l, 3)

			inj := faults.NewInjector(1)
			tc.plan(inj)
			l.SetFaultInjector(inj)
			if _, err := l.Append(mkRecord(50)); err == nil {
				t.Fatal("faulted append should fail")
			}
			if l.LastSeq() != 3 {
				t.Fatalf("failed append consumed a sequence number: %d", l.LastSeq())
			}

			// The log stays usable: the next clean append acks normally.
			l.SetFaultInjector(nil)
			rec := mkRecord(51)
			seq, err := l.Append(rec)
			if err != nil {
				t.Fatalf("append after fault: %v", err)
			}
			rec.Seq = seq
			acked = append(acked, rec)

			got, err := l.Records()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqs(got), seqs(acked)) {
				t.Fatalf("live replay %v, want acked %v", seqs(got), seqs(acked))
			}

			// Crash-recover: a fresh open over the same directory must
			// see exactly the acknowledged set too.
			l.Close()
			l2, err := Open(dir, Config{})
			if err != nil {
				t.Fatalf("re-open after fault: %v", err)
			}
			defer l2.Close()
			got2, err := l2.Records()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqs(got2), seqs(acked)) {
				t.Fatalf("recovered replay %v, want acked %v", seqs(got2), seqs(acked))
			}
		})
	}
}

// A fault during segment creation (the first append, or after a seal)
// must fail cleanly and leave no half-made segment behind.
func TestFaultMatrixFeedbackRotate(t *testing.T) {
	for _, stage := range []faults.Stage{faults.FSWrite, faults.FSSync, faults.FSRename} {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			inj := faults.NewInjector(1)
			inj.Inject(stage, faults.Plan{Kind: faults.KindError, Times: 1})
			l.SetFaultInjector(inj)
			if _, err := l.Append(mkRecord(0)); err == nil {
				t.Fatal("append through a faulted rotation should fail")
			}
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(segs) != 0 {
				t.Fatalf("faulted rotation left %d segment(s)", len(segs))
			}
			l.SetFaultInjector(nil)
			if seq, err := l.Append(mkRecord(1)); err != nil || seq != 1 {
				t.Fatalf("append after faulted rotation: seq=%d err=%v", seq, err)
			}
		})
	}
}

// Probabilistic soak: a fault schedule drawn from a seeded RNG over a
// long append run; afterwards the recovered log holds exactly the
// acknowledged records.
func TestFaultFeedbackSoak(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(7)
	inj.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindShortWrite, Bytes: 9, P: 0.15})
	inj.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: 21, P: 0.15})
	inj.Inject(faults.FSSync, faults.Plan{Kind: faults.KindError, P: 0.1})
	l.SetFaultInjector(inj)

	var acked []uint64
	failures := 0
	for i := 0; i < 120; i++ {
		seq, err := l.Append(Record{Question: fmt.Sprint("q", i), SQL: "SELECT 1", Source: SourceChosen})
		if err != nil {
			failures++
			continue
		}
		acked = append(acked, seq)
	}
	if failures == 0 {
		t.Fatal("soak injected no faults; schedule is broken")
	}
	l.Close()

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs(got), acked) {
		t.Fatalf("recovered %d records, acked %d:\n got %v\nwant %v", len(got), len(acked), seqs(got), acked)
	}
	if st := l2.Stats(); st.CorruptSkipped != 0 {
		t.Fatalf("acked records recovered as corrupt: %+v", st)
	}
}

// Data-carrying faults at a non-data point and errors.Is plumbing.
func TestFeedbackErrorTypes(t *testing.T) {
	if !errors.Is(corrupt("x"), ErrCorrupt) {
		t.Fatal("corrupt() must wrap ErrCorrupt")
	}
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	inj := faults.NewInjector(1)
	inj.Inject(faults.FSSync, faults.Plan{Kind: faults.KindShortWrite, Bytes: 3, Times: 1})
	l.SetFaultInjector(inj)
	if _, err := l.Append(mkRecord(0)); err == nil {
		t.Fatal("short-write plan at a non-data point must still fail the append")
	}
}
