package feedback

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mkRecord(i int) Record {
	return Record{
		TimeUnix:   int64(1000 + i),
		Question:   fmt.Sprintf("how many widgets of kind %d", i),
		SQL:        fmt.Sprintf("SELECT count(*) FROM widget WHERE kind = %d", i),
		Source:     SourceChosen,
		Generation: uint64(i % 3),
	}
}

func appendN(t *testing.T, l *Log, n int) []Record {
	t.Helper()
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec := mkRecord(i)
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		rec.Seq = seq
		out = append(out, rec)
	}
	return out
}

func seqs(recs []Record) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.Seq
	}
	return out
}

func TestFeedbackRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 7)
	got, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Question != want[i].Question || got[i].SQL != want[i].SQL {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
	st := l.Stats()
	if st.Appended != 7 || st.Records != 7 || st.LastSeq != 7 || st.Segments != 1 {
		t.Fatalf("stats after append: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives, sequence numbering continues.
	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got2, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, got) {
		t.Fatalf("reopen changed the replay:\n got %+v\nwant %+v", got2, got)
	}
	seq, err := l2.Append(mkRecord(99))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 {
		t.Fatalf("sequence after reopen = %d, want 8", seq)
	}
}

func TestFeedbackReplayIdempotence(t *testing.T) {
	// Property: replaying the same log twice yields the identical record
	// set, across random record shapes, rotations and a compaction.
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	l, err := Open(dir, Config{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := 40
	for i := 0; i < n; i++ {
		rec := Record{
			Question: strings.Repeat("q", 1+rng.Intn(60)) + fmt.Sprint(i),
			SQL:      "SELECT " + strings.Repeat("x", rng.Intn(90)),
			Source:   SourceCorrected,
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == 25 {
			if _, _, err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	first, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two replays of the same log differ")
	}
	if len(first) != n {
		t.Fatalf("replayed %d records, want %d", len(first), n)
	}
	for i := 1; i < len(first); i++ {
		if first[i].Seq <= first[i-1].Seq {
			t.Fatalf("replay not strictly increasing at %d: %v", i, seqs(first))
		}
	}
}

func TestFeedbackRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := appendN(t, l, 20)
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	got, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != st.Segments {
		t.Fatalf("on-disk segments %d != stats %d", len(segs), st.Segments)
	}
}

func TestFeedbackTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 50, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.TornTruncated != 1 {
		t.Fatalf("TornTruncated = %d, want 1 (stats %+v)", st.TornTruncated, st)
	}
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(got))
	}
	// The repaired segment accepts appends again.
	if seq, err := l2.Append(mkRecord(4)); err != nil || seq != 4 {
		t.Fatalf("append after torn-tail repair: seq=%d err=%v", seq, err)
	}
	if l2.Stats().Segments != 1 {
		t.Fatalf("torn-tail repair should not rotate: %+v", l2.Stats())
	}
}

func TestFeedbackCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs := appendN(t, l, 5)
	l.Close()

	// Flip one payload bit of the middle record on disk.
	segs, _ := listSegments(dir)
	path := segs[0].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the third frame and corrupt its payload.
	off := len(magic)
	for i := 0; i < 2; i++ {
		off += frameOverhead + int(binary.BigEndian.Uint32(data[off:off+4]))
	}
	data[off+frameOverhead+5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint64{recs[0].Seq, recs[1].Seq, recs[3].Seq, recs[4].Seq}; !reflect.DeepEqual(seqs(got), want) {
		t.Fatalf("surviving seqs = %v, want %v", seqs(got), want)
	}
	// A damaged newest segment is sealed: appends go to a fresh one and
	// the damage never spreads.
	if st.SealedSegments != 1 {
		t.Fatalf("SealedSegments = %d, want 1", st.SealedSegments)
	}
	if _, err := l2.Append(mkRecord(9)); err != nil {
		t.Fatal(err)
	}
	if l2.Stats().Segments != 2 {
		t.Fatalf("append after sealed segment should rotate: %+v", l2.Stats())
	}
}

func TestFeedbackImpossibleLength(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	l.Close()

	segs, _ := listSegments(dir)
	path := segs[0].path
	data, _ := os.ReadFile(path)
	off := len(magic)
	for i := 0; i < 2; i++ {
		off += frameOverhead + int(binary.BigEndian.Uint32(data[off:off+4]))
	}
	binary.BigEndian.PutUint32(data[off:off+4], maxRecordLen+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	// Records before the destroyed boundary survive; the rest of the
	// segment is unreachable and the segment is sealed, not truncated.
	if want := []uint64{1, 2}; !reflect.DeepEqual(seqs(got), want) {
		t.Fatalf("surviving seqs = %v, want %v", seqs(got), want)
	}
	if st := l2.Stats(); st.SealedSegments != 1 {
		t.Fatalf("SealedSegments = %d, want 1 (%+v)", st.SealedSegments, st)
	}
	reports, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Lost {
		t.Fatalf("Inspect should flag the lost tail: %+v", reports[0])
	}
}

func TestFeedbackBadHeader(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	l.Close()
	segs, _ := listSegments(dir)
	data, _ := os.ReadFile(segs[0].path)
	copy(data, "XXXXXXXX")
	os.WriteFile(segs[0].path, data, 0o644)

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("bad-header segment yielded %d records", len(got))
	}
	reports, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Err == "" {
		t.Fatal("Inspect should report the bad header")
	}
	if _, serr := scanSegment(data); !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("header error should wrap ErrCorrupt, got %v", serr)
	}
}

func TestFeedbackCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := appendN(t, l, 15)
	before, _ := l.Records()
	kept, removed, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if kept != len(want) || removed < 2 {
		t.Fatalf("Compact kept=%d removed=%d", kept, removed)
	}
	after, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Compact changed the replay")
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("Segments after Compact = %d, want 1", st.Segments)
	}
	// Appends continue on the compacted segment with the same numbering.
	seq, err := l.Append(mkRecord(77))
	if err != nil || seq != uint64(len(want)+1) {
		t.Fatalf("append after Compact: seq=%d err=%v", seq, err)
	}
}

func TestFeedbackCompactCrashDuplicates(t *testing.T) {
	// A crash between a compaction's rename and its deletes leaves the
	// old segments beside the compacted one; replay must deduplicate.
	dir := t.TempDir()
	l, err := Open(dir, Config{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12)
	want, _ := l.Records()
	segs, _ := listSegments(dir)
	// Preserve the old segments, compact, then restore them.
	saved := map[string][]byte{}
	for _, s := range segs {
		data, _ := os.ReadFile(s.path)
		saved[s.path] = data
	}
	if _, _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	for path, data := range saved {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("duplicated segments changed the replay: got %v want %v", seqs(got), seqs(want))
	}
	if st := l2.Stats(); st.ReplayDuplicate == 0 {
		t.Fatalf("expected replay duplicates to be counted: %+v", st)
	}
	// A re-run of Compact finishes the interrupted one.
	if _, removed, err := l2.Compact(); err != nil || removed == 0 {
		t.Fatalf("re-run Compact: removed=%d err=%v", removed, err)
	}
	got2, _ := l2.Records()
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("finishing the compaction changed the replay")
	}
}

func TestFeedbackClosed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := l.Append(mkRecord(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Records(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Records after Close = %v, want ErrClosed", err)
	}
	if _, _, err := l.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
}

func TestFeedbackOpenErrors(t *testing.T) {
	if _, err := Open("", Config{}); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
	// Temp litter from an interrupted rotation is swept at Open.
	dir := t.TempDir()
	litter := filepath.Join(dir, ".fwal-123.tmp")
	if err := os.WriteFile(litter, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(litter); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp litter not swept at Open")
	}
}

func TestFeedbackOversizeRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Record{Question: "q", SQL: strings.Repeat("s", maxRecordLen+1)}); err == nil {
		t.Fatal("oversize record should be rejected")
	}
	if l.LastSeq() != 0 {
		t.Fatal("rejected record consumed a sequence number")
	}
}

func TestFeedbackInspect(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	l.Close()
	reports, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("expected multiple segment reports, got %d", len(reports))
	}
	total := 0
	var last uint64
	for _, rep := range reports {
		if rep.Err != "" || rep.Corrupt != 0 || rep.TornBytes != 0 {
			t.Fatalf("healthy segment reported damage: %+v", rep)
		}
		total += rep.Records
		if rep.Records > 0 {
			if rep.FirstSeq <= last && last != 0 {
				t.Fatalf("segment seq ranges overlap: %+v", reports)
			}
			last = rep.LastSeq
		}
	}
	if total != 10 {
		t.Fatalf("Inspect saw %d records, want 10", total)
	}
	if _, err := Inspect(filepath.Join(dir, "nope")); err != nil {
		t.Fatalf("Inspect of a missing dir should list empty, got %v", err)
	}
}
