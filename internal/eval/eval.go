// Package eval implements the evaluation harness: the metrics of §V-A4
// (translation accuracy, execution accuracy, Precision@K, MRR), the
// per-difficulty and per-clause-type breakdowns, latency measurement and
// GAR's per-stage error attribution (Table 9). It also encodes the
// paper's sample-query protocol (§V-A3): for SPIDER and GEO the sample
// set is the generalization of the evaluation golds with the golds ruled
// out; for MT-TEQL and QBEN the given sample sets are used directly.
package eval

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/hardness"
	"repro/internal/norm"
	"repro/internal/sqlast"
)

// ItemResult is the outcome of translating one benchmark item.
type ItemResult struct {
	Item  datasets.Item
	Level hardness.Level
	Tags  hardness.ClauseTags
	// Correct is top-1 exact match; ExecCorrect compares execution
	// results of the prediction and the gold on the database content.
	Correct     bool
	ExecCorrect bool
	// GoldRank is the 1-based rank of the gold query in the top-10
	// ranked results; 0 when absent (GAR only).
	GoldRank int
	Latency  time.Duration
	// Stage attribution (GAR only).
	PrepMiss, RetrievalMiss, RerankMiss bool
	// NA marks items a system could not attempt (e.g. content-dependent
	// models on benchmarks that hide the databases).
	NA bool
}

// Result aggregates the item results of one system on one split.
type Result struct {
	System string
	Items  []ItemResult
}

// NA reports whether the whole run was not applicable.
func (r *Result) NA() bool {
	if len(r.Items) == 0 {
		return true
	}
	for _, it := range r.Items {
		if !it.NA {
			return false
		}
	}
	return true
}

// Overall is the translation accuracy over all items.
func (r *Result) Overall() float64 {
	return ratio(r.Items, func(it ItemResult) bool { return it.Correct })
}

// Exec is the execution accuracy over all items.
func (r *Result) Exec() float64 {
	return ratio(r.Items, func(it ItemResult) bool { return it.ExecCorrect })
}

// ByLevel breaks translation accuracy down by difficulty.
func (r *Result) ByLevel() map[hardness.Level]float64 {
	out := map[hardness.Level]float64{}
	for _, lvl := range hardness.Levels {
		out[lvl] = ratio(filter(r.Items, func(it ItemResult) bool { return it.Level == lvl }),
			func(it ItemResult) bool { return it.Correct })
	}
	return out
}

// LevelCounts returns how many items fall in each difficulty.
func (r *Result) LevelCounts() map[hardness.Level]int {
	out := map[hardness.Level]int{}
	for _, it := range r.Items {
		out[it.Level]++
	}
	return out
}

// ByTag breaks translation accuracy down by the Table 5 clause types.
func (r *Result) ByTag() map[string]float64 {
	sel := map[string]func(ItemResult) bool{
		"Nested":   func(it ItemResult) bool { return it.Tags.Nested },
		"Negation": func(it ItemResult) bool { return it.Tags.Negation },
		"ORDERBY":  func(it ItemResult) bool { return it.Tags.OrderBy },
		"GROUPBY":  func(it ItemResult) bool { return it.Tags.GroupBy },
		"Others":   func(it ItemResult) bool { return it.Tags.Others },
	}
	out := map[string]float64{}
	for name, pred := range sel {
		out[name] = ratio(filter(r.Items, pred), func(it ItemResult) bool { return it.Correct })
	}
	return out
}

// PrecisionAt computes Precision@K: the fraction of items whose gold
// appears in the top-K ranked results.
func (r *Result) PrecisionAt(k int) float64 {
	return ratio(r.Items, func(it ItemResult) bool { return it.GoldRank > 0 && it.GoldRank <= k })
}

// MRR computes the mean reciprocal rank over the top-10 results, with
// rank 0 (absent) contributing 0 per the paper.
func (r *Result) MRR() float64 {
	if len(r.Items) == 0 {
		return 0
	}
	var sum float64
	for _, it := range r.Items {
		if it.GoldRank > 0 {
			sum += 1 / float64(it.GoldRank)
		}
	}
	return sum / float64(len(r.Items))
}

// AvgLatencyByLevel averages translation latency per difficulty level.
func (r *Result) AvgLatencyByLevel() map[hardness.Level]time.Duration {
	sums := map[hardness.Level]time.Duration{}
	counts := map[hardness.Level]int{}
	for _, it := range r.Items {
		sums[it.Level] += it.Latency
		counts[it.Level]++
	}
	out := map[hardness.Level]time.Duration{}
	for lvl, sum := range sums {
		out[lvl] = sum / time.Duration(counts[lvl])
	}
	return out
}

// MissCounts returns the Table 9 stage-attribution counts.
func (r *Result) MissCounts() (prep, retrieval, rerank int) {
	for _, it := range r.Items {
		switch {
		case it.PrepMiss:
			prep++
		case it.RetrievalMiss:
			retrieval++
		case it.RerankMiss:
			rerank++
		}
	}
	return
}

func ratio(items []ItemResult, pred func(ItemResult) bool) float64 {
	if len(items) == 0 {
		return 0
	}
	n := 0
	for _, it := range items {
		if pred(it) {
			n++
		}
	}
	return float64(n) / float64(len(items))
}

func filter(items []ItemResult, pred func(ItemResult) bool) []ItemResult {
	var out []ItemResult
	for _, it := range items {
		if pred(it) {
			out = append(out, it)
		}
	}
	return out
}

// execMatch executes the prediction and gold on the content and
// compares results. Ordered comparison applies when the gold orders.
func execMatch(content *engine.Instance, pred, gold *sqlast.Query) bool {
	if pred == nil || content == nil {
		return false
	}
	goldRes, err := content.Exec(gold)
	if err != nil {
		return false
	}
	predRes, err := content.Exec(pred)
	if err != nil {
		return false
	}
	return engine.ResultsEqual(goldRes, predRes, hardness.HasOrderBy(gold))
}

// classify fills the shared fields of an item result.
func classify(it datasets.Item) ItemResult {
	return ItemResult{
		Item:  it,
		Level: hardness.Classify(it.Gold),
		Tags:  hardness.Tags(it.Gold),
	}
}

// exactMatch checks the top prediction against the gold under the
// benchmark normalization.
func exactMatch(pred, gold *sqlast.Query) bool { return norm.ExactMatch(pred, gold) }
