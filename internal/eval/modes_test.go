package eval_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
)

// TestGeoSingleDatabaseMode exercises the GEO protocol: train and test
// splits share one database; models are trained on the train split and
// evaluated on the test split with the generalization sample protocol.
func TestGeoSingleDatabaseMode(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	bench := datasets.GeoLike(datasets.GeoConfig{Train: 50, Val: 5, Test: 25, Seed: 3})
	runner, err := eval.NewGARRunner(bench, bench, core.Options{
		GeneralizeSize: 1200, RetrievalK: 25, Seed: 9,
		EncoderEpochs: 8, RerankEpochs: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Evaluate("GAR", bench.Test, eval.SamplesFromGeneralization)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(bench.Test) {
		t.Fatalf("evaluated %d of %d", len(res.Items), len(bench.Test))
	}
	if res.Overall() <= 0 {
		t.Error("GEO accuracy is zero; single-database pipeline broken")
	}
	// Every item must carry a difficulty and latency.
	for _, it := range res.Items {
		if it.Latency <= 0 {
			t.Fatal("missing latency measurement")
		}
	}
}

// TestQBENSamplesGivenMode exercises the QBEN protocol: the benchmark's
// explicit sample split feeds preparation, models come from a separate
// (SPIDER-like) train benchmark, and GAR-J must not trail GAR.
func TestQBENSamplesGivenMode(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	spider := datasets.SpiderLike(datasets.SpiderConfig{TrainDBs: 3, ValDBs: 1, TrainPerDB: 25, ValPerDB: 5, Seed: 4})
	qben := datasets.QBENLike(datasets.QBENConfig{DBs: 2, SamplesPerDB: 12, TestPerDB: 8, Seed: 5})
	opts := core.Options{GeneralizeSize: 1000, RetrievalK: 25, Seed: 10, EncoderEpochs: 8, RerankEpochs: 12}

	run := func(joinAnn bool) *eval.Result {
		o := opts
		o.JoinAnnotations = joinAnn
		runner, err := eval.NewGARRunner(spider, qben, o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Evaluate("x", qben.Test, eval.SamplesGiven)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gar := run(false)
	garj := run(true)
	if garj.Overall() < gar.Overall() {
		t.Errorf("GAR-J (%.3f) below GAR (%.3f) on QBEN", garj.Overall(), gar.Overall())
	}
	// The QBEN sample protocol must keep data-preparation misses low:
	// test queries are component-similar to the given samples.
	prep, _, _ := gar.MissCounts()
	if prep > len(gar.Items)/3 {
		t.Errorf("too many QBEN prep misses: %d of %d", prep, len(gar.Items))
	}
}

// TestMTTEQLSamplesAreGoldsMode exercises the MT-TEQL protocol: the
// (transformed) gold queries themselves are the samples, so there can
// be no data-preparation misses at all.
func TestMTTEQLSamplesAreGoldsMode(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	spider := datasets.SpiderLike(datasets.SpiderConfig{TrainDBs: 3, ValDBs: 2, TrainPerDB: 25, ValPerDB: 10, Seed: 6})
	mt := datasets.MTTEQLLike(spider, datasets.MTTEQLConfig{N: 30, VariantsPerDB: 1, Seed: 7})
	runner, err := eval.NewGARRunner(spider, mt, core.Options{
		GeneralizeSize: 1000, RetrievalK: 25, Seed: 11, EncoderEpochs: 8, RerankEpochs: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Evaluate("GAR", mt.Test, eval.SamplesAreGolds)
	if err != nil {
		t.Fatal(err)
	}
	prep, _, _ := res.MissCounts()
	if prep != 0 {
		t.Errorf("samples-are-golds mode must have zero prep misses, got %d", prep)
	}
	if res.Overall() < 0.3 {
		t.Errorf("MT-TEQL accuracy implausibly low with gold samples: %.3f", res.Overall())
	}
}

// TestBackboneAugmentationReducesPrepMisses verifies the §VII extension
// plumbed through the runner.
func TestBackboneAugmentationReducesPrepMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	bench := datasets.SpiderLike(datasets.SpiderConfig{TrainDBs: 3, ValDBs: 2, TrainPerDB: 25, ValPerDB: 12, Seed: 8})
	opts := core.Options{GeneralizeSize: 800, RetrievalK: 25, Seed: 12, EncoderEpochs: 8, RerankEpochs: 12}
	runner, err := eval.NewGARRunner(bench, bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := runner.Evaluate("GAR", bench.Val, eval.SamplesFromGeneralization)
	if err != nil {
		t.Fatal(err)
	}
	aug := *runner
	aug.Backbone = baselines.NewBRIDGE(eval.TrainBaselineLexicon(bench))
	augres, err := aug.Evaluate("GAR+backbone", bench.Val, eval.SamplesFromGeneralization)
	if err != nil {
		t.Fatal(err)
	}
	p0, _, _ := plain.MissCounts()
	p1, _, _ := augres.MissCounts()
	if p1 > p0 {
		t.Errorf("backbone augmentation increased prep misses: %d → %d", p0, p1)
	}
}
