package eval_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
)

// smallSpider builds a small SPIDER-like benchmark shared by the tests.
func smallSpider(t *testing.T) *datasets.Benchmark {
	t.Helper()
	return datasets.SpiderLike(datasets.SpiderConfig{
		TrainDBs: 6, ValDBs: 3, TrainPerDB: 40, ValPerDB: 25, Seed: 11,
	})
}

func garOpts() core.Options {
	return core.Options{
		GeneralizeSize: 4000,
		RetrievalK:     60,
		Seed:           21,
		EncoderEpochs:  10,
		RerankEpochs:   16,
	}
}

func TestGARRunnerOnSpider(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline evaluation")
	}
	bench := smallSpider(t)
	runner, err := eval.NewGARRunner(bench, bench, garOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Evaluate("GAR", bench.Val, eval.SamplesFromGeneralization)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(bench.Val) {
		t.Fatalf("evaluated %d of %d items", len(res.Items), len(bench.Val))
	}
	overall := res.Overall()
	t.Logf("GAR overall=%.3f exec=%.3f P@1=%.3f P@3=%.3f P@10=%.3f MRR=%.3f",
		overall, res.Exec(), res.PrecisionAt(1), res.PrecisionAt(3), res.PrecisionAt(10), res.MRR())
	prep, retr, rer := res.MissCounts()
	t.Logf("misses: prep=%d retrieval=%d rerank=%d of %d", prep, retr, rer, len(res.Items))
	if overall < 0.45 {
		t.Errorf("GAR accuracy implausibly low: %.3f", overall)
	}
	// Metric consistency: P@1 equals overall up to value post-processing
	// reordering; both measure top-1.
	if res.PrecisionAt(1) < overall-0.1 {
		t.Errorf("P@1 %.3f inconsistent with overall %.3f", res.PrecisionAt(1), overall)
	}
	if res.PrecisionAt(10) < res.PrecisionAt(3) || res.PrecisionAt(3) < res.PrecisionAt(1) {
		t.Error("precision must be monotone in K")
	}
	if res.MRR() < res.PrecisionAt(1) {
		t.Error("MRR must be at least P@1")
	}
}

func TestBaselinesOnSpider(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline evaluation")
	}
	bench := smallSpider(t)
	lex := eval.TrainBaselineLexicon(bench)
	for _, m := range baselines.All(lex) {
		res := eval.EvaluateBaseline(m, bench, bench.Val, false)
		t.Logf("%-8s overall=%.3f exec=%.3f", m.Name(), res.Overall(), res.Exec())
		if res.Overall() < 0.10 {
			t.Errorf("%s accuracy implausibly low: %.3f", m.Name(), res.Overall())
		}
		by := res.ByLevel()
		t.Logf("%-8s easy=%.2f medium=%.2f hard=%.2f extra=%.2f counts=%v",
			m.Name(), by[0], by[1], by[2], by[3], res.LevelCounts())
	}
}

func TestBaselineNAWithoutContent(t *testing.T) {
	bench := datasets.SpiderLike(datasets.SpiderConfig{TrainDBs: 2, ValDBs: 1, TrainPerDB: 15, ValPerDB: 8, Seed: 12})
	lex := eval.TrainBaselineLexicon(bench)
	res := eval.EvaluateBaseline(baselines.NewRATSQL(lex), bench, bench.Val, true)
	if !res.NA() {
		t.Error("RAT-SQL should be N/A with hidden content")
	}
	res = eval.EvaluateBaseline(baselines.NewSMBOP(lex), bench, bench.Val, true)
	if res.NA() {
		t.Error("SMBOP should run with hidden content")
	}
}
