package eval

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/generalize"
	"repro/internal/ltr"
	"repro/internal/norm"
	"repro/internal/sqlast"
)

// SampleMode selects how the evaluation-time sample queries for a
// database are obtained (§V-A3 "Sample Queries").
type SampleMode int

const (
	// SamplesFromGeneralization generalizes the split's gold queries,
	// rules the golds out, and uses the remainder as samples (the
	// SPIDER/GEO protocol).
	SamplesFromGeneralization SampleMode = iota
	// SamplesAreGolds uses the split's gold queries directly as samples
	// (the MT-TEQL protocol, where the SPIDER validation set serves as
	// the sample set).
	SamplesAreGolds
	// SamplesGiven uses the benchmark's explicit Samples split (QBEN).
	SamplesGiven
)

// GARRunner evaluates GAR (or GAR-J / an ablation) on a benchmark.
type GARRunner struct {
	Bench  *datasets.Benchmark
	Opts   core.Options
	Models *core.Models

	// SchemaAugment enables the paper's future-work extension (§VII):
	// minimal schema-derived component queries are appended to each
	// evaluation database's sample set, closing Definition 2's coverage
	// gap for components absent from the samples.
	SchemaAugment bool
	// Backbone, when set, enables the other future-work extension: an
	// existing translation model's outputs on the evaluation questions
	// augment the sample queries, extending coverage to out-of-domain
	// queries. Unbindable backbone predictions are dropped.
	Backbone *baselines.Model
	// HideContent withholds database content from the system (the
	// MT-TEQL setting, whose test databases are unpublished): value
	// post-processing then links only quoted spans and numbers from the
	// question. The execution metric still runs on our content, as the
	// benchmark authors could.
	HideContent bool
}

// NewGARRunner trains the ranking models on the benchmark's train split
// (per-database candidate pools from the train golds, as in Fig. 3).
// trainBench may differ from the evaluation benchmark (QBEN trains on
// SPIDER's train split).
func NewGARRunner(trainBench *datasets.Benchmark, evalBench *datasets.Benchmark, opts core.Options) (*GARRunner, error) {
	var sets []core.TrainingSet
	for _, dbName := range datasets.DBNames(trainBench.Train) {
		bundle := trainBench.DBs[dbName]
		sys := core.New(bundle.Schema, opts)
		sys.SetContent(bundle.Content)
		sys.Prepare(datasets.GoldQueries(trainBench.Train, dbName))
		var examples []ltr.Example
		for _, it := range trainBench.Train {
			if it.DB == dbName {
				examples = append(examples, ltr.Example{NL: it.NL, Gold: it.Gold})
			}
		}
		sets = append(sets, core.TrainingSet{Sys: sys, Examples: examples})
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("eval: no training databases")
	}
	models, err := core.TrainModels(sets, opts)
	if err != nil {
		return nil, err
	}
	return &GARRunner{Bench: evalBench, Opts: opts, Models: models}, nil
}

// sampleQueries produces the sample set for one evaluation database.
func (r *GARRunner) sampleQueries(dbName string, items []datasets.Item, mode SampleMode) []*sqlast.Query {
	golds := datasets.GoldQueries(items, dbName)
	switch mode {
	case SamplesAreGolds:
		return r.augment(dbName, items, golds)
	case SamplesGiven:
		return r.augment(dbName, items, datasets.GoldQueries(r.Bench.Samples, dbName))
	}
	bundle := r.Bench.DBs[dbName]
	// The sample stage stays well below the pool stage's budget: the
	// pool size (GeneralizeSize) includes the samples, so an oversized
	// sample set would leave no room to re-generate the ruled-out gold
	// queries and every item would become a data-preparation miss.
	sampleTarget := 6 * len(golds)
	if max := r.Opts.GeneralizeSize / 4; sampleTarget > max && max > 0 {
		sampleTarget = max
	}
	if sampleTarget < len(golds)+10 {
		sampleTarget = len(golds) + 10
	}
	res := generalize.Generalize(bundle.Schema, golds, generalize.Config{
		TargetSize: sampleTarget,
		Seed:       r.Opts.Seed + 101,
		Rules:      generalize.AllRules(),
		// The sample set seeds the pool-stage generalization in Prepare;
		// keep the raw frontier so its components stay available there.
		RawFrontier: true,
	})
	goldCanon := map[string]bool{}
	for _, g := range golds {
		c := g.Clone()
		if err := bundle.Schema.Bind(c); err == nil {
			g = c
		}
		goldCanon[norm.Canonical(g)] = true
	}
	var out []*sqlast.Query
	for _, q := range res.Queries {
		if !goldCanon[norm.Canonical(q)] {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		out = golds
	}
	return r.augment(dbName, items, out)
}

// augment applies the enabled future-work extensions to a sample set.
func (r *GARRunner) augment(dbName string, items []datasets.Item, samples []*sqlast.Query) []*sqlast.Query {
	bundle := r.Bench.DBs[dbName]
	if r.SchemaAugment {
		samples = append(samples, generalize.SchemaAugment(bundle.Schema)...)
	}
	if r.Backbone != nil {
		for _, it := range items {
			if it.DB != dbName {
				continue
			}
			pred := r.Backbone.Translate(bundle.Schema, bundle.Content, it.NL)
			if pred == nil {
				continue
			}
			if err := bundle.Schema.Bind(pred); err == nil {
				samples = append(samples, pred)
			}
		}
	}
	return samples
}

// SystemFor deploys a GAR system for one evaluation database.
func (r *GARRunner) SystemFor(dbName string, items []datasets.Item, mode SampleMode) (*core.System, error) {
	bundle := r.Bench.DBs[dbName]
	sys := core.New(bundle.Schema, r.Opts)
	if !r.HideContent {
		sys.SetContent(bundle.Content)
	}
	sys.Prepare(r.sampleQueries(dbName, items, mode))
	if err := sys.UseModels(r.Models); err != nil {
		return nil, err
	}
	return sys, nil
}

// Evaluate runs GAR over a split and collects per-item results.
func (r *GARRunner) Evaluate(name string, items []datasets.Item, mode SampleMode) (*Result, error) {
	res := &Result{System: name}
	systems := map[string]*core.System{}
	for _, dbName := range datasets.DBNames(items) {
		sys, err := r.SystemFor(dbName, items, mode)
		if err != nil {
			return nil, err
		}
		systems[dbName] = sys
	}
	for _, it := range items {
		sys := systems[it.DB]
		bundle := r.Bench.DBs[it.DB]
		out := classify(it)
		gold := sys.BindGold(it.Gold)

		start := time.Now()
		tr, err := sys.Translate(it.NL)
		out.Latency = time.Since(start)
		if err != nil {
			return nil, err
		}
		if tr.Top != nil {
			out.Correct = exactMatch(tr.Top.SQL, gold)
			out.ExecCorrect = execMatch(bundle.Content, tr.Top.SQL, gold)
		}
		for i, c := range tr.Ranked {
			if i >= 10 {
				break
			}
			if exactMatch(c.SQL, gold) {
				out.GoldRank = i + 1
				break
			}
		}
		if !out.Correct {
			switch {
			case !sys.HasCandidate(gold):
				out.PrepMiss = true
			case !sys.RetrievalContains(it.NL, gold, r.Opts.RetrievalK):
				out.RetrievalMiss = true
			default:
				out.RerankMiss = true
			}
		}
		res.Items = append(res.Items, out)
	}
	return res, nil
}

// EvaluateBaseline runs one baseline model over a split. hideContent
// reproduces benchmarks whose databases are not published: models that
// need content become N/A, and the others translate without it (the
// execution metric still uses our content, as the benchmark authors
// could).
func EvaluateBaseline(m *baselines.Model, bench *datasets.Benchmark, items []datasets.Item, hideContent bool) *Result {
	res := &Result{System: m.Name()}
	for _, it := range items {
		bundle := bench.DBs[it.DB]
		out := classify(it)
		content := bundle.Content
		if hideContent {
			content = nil
		}
		if m.NeedsContent() && content == nil {
			out.NA = true
			res.Items = append(res.Items, out)
			continue
		}
		start := time.Now()
		pred := m.Translate(bundle.Schema, content, it.NL)
		out.Latency = time.Since(start)
		gold := it.Gold.Clone()
		if err := bundle.Schema.Bind(gold); err != nil {
			gold = it.Gold
		}
		if pred != nil {
			out.Correct = exactMatch(pred, gold)
			out.ExecCorrect = execMatch(bundle.Content, pred, gold)
		}
		res.Items = append(res.Items, out)
	}
	return res
}

// TrainBaselineLexicon trains the shared cue lexicon on a benchmark's
// train split.
func TrainBaselineLexicon(bench *datasets.Benchmark) *baselines.Lexicon {
	var items []baselines.TrainItem
	for _, it := range bench.Train {
		items = append(items, baselines.TrainItem{
			DB: bench.DBs[it.DB].Schema, NL: it.NL, Gold: it.Gold,
		})
	}
	return baselines.TrainLexicon(items)
}
