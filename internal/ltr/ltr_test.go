package ltr_test

import (
	"context"
	"testing"

	"repro/internal/embed"
	"repro/internal/ltr"
	"repro/internal/rerank"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/text"
	"repro/internal/vector"
	"repro/internal/vindex"
)

func TestSimilarityScore(t *testing.T) {
	gold := sqlparse.MustParse("SELECT name FROM employee WHERE age > 30 ORDER BY age DESC LIMIT 1")
	if s := ltr.SimilarityScore(gold, gold); s != 1 {
		t.Errorf("identical queries: s = %v, want 1", s)
	}
	oneOff := sqlparse.MustParse("SELECT name FROM employee WHERE age > 30 ORDER BY age LIMIT 1")
	s1 := ltr.SimilarityScore(oneOff, gold)
	if s1 >= 1 || s1 <= 0 {
		t.Errorf("one differing clause: s = %v, want in (0,1)", s1)
	}
	twoOff := sqlparse.MustParse("SELECT age FROM employee WHERE age > 30 ORDER BY age LIMIT 1")
	s2 := ltr.SimilarityScore(twoOff, gold)
	if s2 >= s1 {
		t.Errorf("more differences should score lower: %v vs %v", s2, s1)
	}
	allOff := sqlparse.MustParse("SELECT city, COUNT(*) FROM shop GROUP BY city")
	if s := ltr.SimilarityScore(allOff, gold); s != 0 {
		t.Errorf("disjoint queries: s = %v, want 0", s)
	}
	if ltr.SimilarityScore(nil, gold) != 0 || ltr.SimilarityScore(gold, nil) != 0 {
		t.Error("nil queries must score 0")
	}
	// Value-masking invariance: literal values must not affect s.
	a := sqlparse.MustParse("SELECT name FROM employee WHERE city = 'Austin'")
	b := sqlparse.MustParse("SELECT name FROM employee WHERE city = 'Madrid'")
	if ltr.SimilarityScore(a, b) != 1 {
		t.Error("values should be masked in similarity")
	}
}

func pool() []ltr.Candidate {
	mk := func(src, d string) ltr.Candidate {
		return ltr.Candidate{SQL: sqlparse.MustParse(src), Dialect: d}
	}
	return []ltr.Candidate{
		mk("SELECT name FROM employee", "Find the name of employee."),
		mk("SELECT age FROM employee", "Find the age of employee."),
		mk("SELECT COUNT(*) FROM employee", "Find the number of employees."),
		mk("SELECT name FROM employee ORDER BY age DESC LIMIT 1", "Find the name of employee. Return the top one result in descending order of the age of employee."),
		mk("SELECT city FROM employee", "Find the city of employee."),
	}
}

func TestPoolIndex(t *testing.T) {
	p := pool()
	pi := ltr.NewPoolIndex(p)
	if got := pi.Find(sqlparse.MustParse("SELECT name FROM employee")); got != 0 {
		t.Errorf("Find = %d, want 0", got)
	}
	// Alias and value invariance (callers must bind queries consistently
	// against the schema; here both sides are unqualified).
	if got := pi.Find(sqlparse.MustParse("SELECT name FROM employee AS T1")); got != 0 {
		t.Errorf("aliased Find = %d, want 0", got)
	}
	if got := pi.Find(sqlparse.MustParse("SELECT salary FROM employee")); got != -1 {
		t.Errorf("missing query Find = %d, want -1", got)
	}
	if pi.Find(nil) != -1 {
		t.Error("nil Find should be -1")
	}
}

func trainedPipeline(t *testing.T, skipRerank bool) (*ltr.Pipeline, []ltr.Example) {
	t.Helper()
	p := pool()
	examples := []ltr.Example{
		{NL: "what are the names of all employees", Gold: sqlparse.MustParse("SELECT name FROM employee")},
		{NL: "how old is each employee", Gold: sqlparse.MustParse("SELECT age FROM employee")},
		{NL: "how many employees are there", Gold: sqlparse.MustParse("SELECT COUNT(*) FROM employee")},
		{NL: "who is the oldest employee", Gold: sqlparse.MustParse("SELECT name FROM employee ORDER BY age DESC LIMIT 1")},
		{NL: "which cities do employees live in", Gold: sqlparse.MustParse("SELECT city FROM employee")},
	}
	enc := embed.NewEncoder(embed.Config{Seed: 1})
	var corpus []string
	for _, c := range p {
		corpus = append(corpus, c.Dialect)
	}
	for _, ex := range examples {
		corpus = append(corpus, ex.NL)
	}
	enc.FitIDF(corpus)
	trips := ltr.BuildTriplets(examples, p, nil, 4, 2)
	if len(trips) == 0 {
		t.Fatal("no triplets built")
	}
	enc.Train(trips, embed.TrainConfig{Epochs: 6})
	idx := vindex.NewFlat()
	for i, c := range p {
		idx.Add(i, enc.Encode(c.Dialect))
	}
	return &ltr.Pipeline{Encoder: enc, Index: idx, Pool: p, K: 3, SkipRerank: skipRerank}, examples
}

func TestPipelineRetrieve(t *testing.T) {
	pipe, examples := trainedPipeline(t, true)
	hits := pipe.Retrieve(examples[0].NL, 3)
	if len(hits) != 3 {
		t.Fatalf("Retrieve returned %d hits", len(hits))
	}
	// Retrieval-only ranking must still usually find the gold in top-3.
	found := 0
	pi := ltr.NewPoolIndex(pipe.Pool)
	for _, ex := range examples {
		goldIdx := pi.Find(ex.Gold)
		for _, h := range pipe.Retrieve(ex.NL, 3) {
			if h.ID == goldIdx {
				found++
				break
			}
		}
	}
	if found < 4 {
		t.Errorf("gold in top-3 for only %d/5 examples", found)
	}
}

func TestBuildListsShape(t *testing.T) {
	pipe, examples := trainedPipeline(t, true)
	lists := pipe.BuildLists(examples, 3)
	if len(lists) != len(examples) {
		t.Fatalf("lists = %d, want %d", len(lists), len(examples))
	}
	for _, l := range lists {
		if len(l.Dialects) != len(l.Labels) {
			t.Fatal("list shape mismatch")
		}
		pos := 0
		for _, lab := range l.Labels {
			if lab == 1 {
				pos++
			}
		}
		if pos != 1 {
			t.Errorf("list for %q has %d positives, want 1", l.NL, pos)
		}
		if len(l.Dialects) > 4 { // k=3 plus possibly the appended gold
			t.Errorf("list too long: %d", len(l.Dialects))
		}
	}
}

func TestRankWithoutReranker(t *testing.T) {
	pipe, examples := trainedPipeline(t, true)
	ranked := pipe.Rank(examples[3].NL)
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Error("retrieval-only ranking not sorted by score")
		}
	}
	// The SQL of each ranked entry must match its pool entry.
	for _, r := range ranked {
		if !sqlast.Equal(r.SQL, pipe.Pool[r.ID].SQL) {
			t.Error("ranked entry SQL mismatch")
		}
	}
}

func TestBuildTripletsSkipsMissingGold(t *testing.T) {
	p := pool()
	examples := []ltr.Example{
		{NL: "something unanswerable", Gold: sqlparse.MustParse("SELECT salary FROM payroll")},
	}
	trips := ltr.BuildTriplets(examples, p, nil, 4, 1)
	if len(trips) != 0 {
		t.Errorf("triplets built for a data-preparation miss: %d", len(trips))
	}
}

// TestRerankVecContextCostAware drives the full second stage with a
// live re-ranker: ranked output must be a permutation of the retrieved
// hits in descending score order, the precomputed-embedding and
// precomputed-cost paths must be bit-identical to the plain path, and
// the cost vector must actually reach the model (perturbing it moves a
// score).
func TestRerankVecContextCostAware(t *testing.T) {
	pipe, examples := trainedPipeline(t, false)
	var corpus []string
	for _, c := range pipe.Pool {
		corpus = append(corpus, c.Dialect)
	}
	x := &rerank.Extractor{IDF: text.NewIDF(corpus), Encoder: pipe.Encoder}
	m, err := rerank.New(x, 9)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Reranker = m

	nl := examples[3].NL
	hits := pipe.Retrieve(nl, 3)

	plain, err := pipe.RerankContext(context.Background(), nl, hits)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(hits) {
		t.Fatalf("reranked %d of %d hits", len(plain), len(hits))
	}
	for i := 1; i < len(plain); i++ {
		if plain[i].Score > plain[i-1].Score {
			t.Fatal("reranked output not in descending score order")
		}
	}

	// Precomputed dialect embeddings and a cached query vector must not
	// change a single bit.
	pipe.DialVecs = make([]vector.Vec, len(pipe.Pool))
	for i, c := range pipe.Pool {
		pipe.DialVecs[i] = pipe.Encoder.Encode(c.Dialect)
	}
	qvec := pipe.Encoder.Encode(nl)
	cached, err := pipe.RerankVecContext(context.Background(), nl, qvec, hits)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != len(plain) {
		t.Fatal("cached path changed the candidate count")
	}
	for i := range plain {
		if cached[i].ID != plain[i].ID || cached[i].Score != plain[i].Score {
			t.Fatalf("cached path diverged at %d: %+v vs %+v", i, cached[i], plain[i])
		}
	}

	// A zero cost vector is the same as no cost vector; a perturbed one
	// must move at least the perturbed candidate's score.
	pipe.Costs = make([]float64, len(pipe.Pool))
	zeroCost, err := pipe.RerankVecContext(context.Background(), nl, qvec, hits)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if zeroCost[i].Score != plain[i].Score {
			t.Fatalf("zero cost vector changed score %d", i)
		}
	}
	for i := range pipe.Costs {
		pipe.Costs[i] = 0.9
	}
	costly, err := pipe.RerankVecContext(context.Background(), nl, qvec, hits)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range costly {
		if costly[i].Score != zeroCost[i].Score {
			moved = true
		}
	}
	if !moved {
		t.Fatal("cost vector did not reach the scoring path")
	}
}
