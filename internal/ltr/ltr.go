// Package ltr orchestrates GAR's two-stage learning-to-rank pipeline
// (§III-C): the training-data construction with the clause-wise
// similarity score s_i, the first-stage retrieval (Siamese encoder +
// vector index), and the second-stage re-ranking over the retrieved
// subset. The paper's Fig. 3 training flow maps onto BuildTriplets /
// BuildLists; inference maps onto Pipeline.Rank.
package ltr

import (
	"context"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/norm"
	"repro/internal/parallel"
	"repro/internal/rerank"
	"repro/internal/sqlast"
	"repro/internal/vector"
	"repro/internal/vindex"
)

// clausePenalty is the punishment applied to s_i per differing clause
// (§III-C1 "Training Data"): s_i starts at 1 and is reduced for each
// clause of the candidate that differs from the gold query, clamping at
// 0. Select and compound mismatches hurt most; the remaining clauses
// share a uniform penalty.
var clausePenalty = map[string]float64{
	"select":   0.30,
	"from":     0.25,
	"where":    0.20,
	"group":    0.15,
	"having":   0.15,
	"order":    0.20,
	"compound": 0.30,
}

// SimilarityScore computes s_i between a candidate query and the gold
// query: 1 when they match exactly, decreasing with each differing
// clause, floored at 0.
func SimilarityScore(cand, gold *sqlast.Query) float64 {
	if cand == nil || gold == nil {
		return 0
	}
	s := 1.0
	for clause, equal := range norm.ClauseMatch(cand, gold) {
		if !equal {
			s -= clausePenalty[clause]
		}
		if s <= 0 {
			return 0
		}
	}
	return s
}

// Example is one supervised training example: an NL query and its gold
// SQL query.
type Example struct {
	NL   string
	Gold *sqlast.Query
}

// Candidate is one entry of the generated pool: a SQL query and its
// dialect expression.
type Candidate struct {
	SQL     *sqlast.Query
	Dialect string
}

// PoolIndex maps canonical query forms to pool positions, so gold
// lookups are O(1) instead of a scan over the (large) candidate pool.
type PoolIndex struct {
	pool    []Candidate
	byCanon map[string]int
}

// NewPoolIndex indexes the pool by canonical normalized SQL.
func NewPoolIndex(pool []Candidate) *PoolIndex {
	pi := &PoolIndex{pool: pool, byCanon: make(map[string]int, len(pool))}
	for i, c := range pool {
		key := norm.Canonical(c.SQL)
		if _, ok := pi.byCanon[key]; !ok {
			pi.byCanon[key] = i
		}
	}
	return pi
}

// Find returns the pool position whose SQL exactly matches the query
// under SPIDER normalization, or -1.
func (pi *PoolIndex) Find(q *sqlast.Query) int {
	if q == nil {
		return -1
	}
	if i, ok := pi.byCanon[norm.Canonical(q)]; ok {
		return i
	}
	return -1
}

// BuildTriplets constructs the retrieval model's training triples
// {(q_i, d_i, s_i)} in triplet form: for each example, the dialect of
// its gold query is the positive and negPerExample sampled low-scoring
// candidates are the negatives. Examples whose gold query is missing
// from the pool are skipped (they are data-preparation misses).
func BuildTriplets(examples []Example, pool []Candidate, pi *PoolIndex, negPerExample int, seed int64) []embed.Triplet {
	if negPerExample <= 0 {
		negPerExample = 4
	}
	if pi == nil {
		pi = NewPoolIndex(pool)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []embed.Triplet
	for _, ex := range examples {
		posIdx := pi.Find(ex.Gold)
		if posIdx < 0 {
			continue
		}
		pos := pool[posIdx].Dialect
		for n := 0; n < negPerExample; n++ {
			ci := rng.Intn(len(pool))
			if ci == posIdx {
				continue
			}
			// Hard negatives (structurally close but not equal) teach
			// the boundary; the s_i score keeps them as negatives, not
			// positives.
			if SimilarityScore(pool[ci].SQL, ex.Gold) >= 1 {
				continue
			}
			out = append(out, embed.Triplet{Anchor: ex.NL, Positive: pos, Negative: pool[ci].Dialect})
		}
	}
	return out
}

// Pipeline is the assembled two-stage ranking pipeline over a candidate
// pool.
type Pipeline struct {
	Encoder  *embed.Encoder
	Index    vindex.Index
	Reranker *rerank.Model
	Pool     []Candidate
	// PoolIdx accelerates gold lookups; built lazily when nil.
	PoolIdx *PoolIndex
	// K is the retrieval threshold (paper: 100).
	K int
	// SkipRerank disables the second stage (the "w/o Re-ranking Model"
	// ablation): retrieval order is final.
	SkipRerank bool
	// DialVecs, when non-nil, holds the Encoder embedding of each pool
	// candidate's dialect, aligned with Pool. Snapshot builds compute
	// them once (they are the same vectors the index stores), so the
	// re-ranker's similarity feature reuses them instead of re-encoding
	// every retrieved dialect on every request. Must be embeddings under
	// the same encoder the re-ranker's extractor holds.
	DialVecs []vector.Vec
	// Costs, when non-nil, holds each pool candidate's estimated-cost
	// feature (execguide.CostFeature of its SQL, normalized to [0,1)),
	// aligned with Pool. Snapshot builds compute them once; the
	// re-ranker consumes them as a static input feature. Nil scores
	// every candidate with a zero cost feature.
	Costs []float64
	// Workers bounds the fan-out of batched scoring and retrieval
	// (0 = one per CPU, 1 = sequential).
	Workers int
}

// Ranked is one ranked translation candidate.
type Ranked struct {
	ID      int // index into Pool
	Score   float64
	Dialect string
	SQL     *sqlast.Query
}

// Retrieve runs the first stage only: the top-k pool ids by encoder
// similarity.
//
//garlint:allow ctxpass errlost -- compatibility wrapper over RetrieveContext; the fresh root context and the dropped error are the legacy signature
func (p *Pipeline) Retrieve(nl string, k int) []vindex.Hit {
	hits, _ := p.RetrieveContext(context.Background(), nl, k)
	return hits
}

// RetrieveContext is Retrieve with cancellation: the index scan aborts
// when ctx is done.
func (p *Pipeline) RetrieveContext(ctx context.Context, nl string, k int) ([]vindex.Hit, error) {
	return p.RetrieveVecContext(ctx, p.Encoder.Encode(nl), k)
}

// RetrieveVecContext is RetrieveContext with a precomputed query
// embedding (the value p.Encoder.Encode(nl) would return), so callers
// holding a cached embedding skip the encode entirely.
func (p *Pipeline) RetrieveVecContext(ctx context.Context, qvec vector.Vec, k int) ([]vindex.Hit, error) {
	return p.Index.SearchContext(ctx, qvec, p.retrievalK(k))
}

// RetrieveBatchContext answers first-stage retrieval for a batch of
// questions in one call: the encodes fan out across p.Workers and the
// index answers all queries through its batched search. out[i] is
// exactly RetrieveContext(ctx, nls[i], k).
func (p *Pipeline) RetrieveBatchContext(ctx context.Context, nls []string, k int) ([][]vindex.Hit, error) {
	vecs := make([]vector.Vec, len(nls))
	err := parallel.ForEach(ctx, len(nls), p.Workers, func(i int) error {
		vecs[i] = p.Encoder.Encode(nls[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p.Index.SearchBatch(ctx, vecs, p.retrievalK(k))
}

// retrievalK resolves the effective top-k: the argument, else the
// pipeline default, else the paper's 100.
func (p *Pipeline) retrievalK(k int) int {
	if k <= 0 {
		k = p.K
	}
	if k <= 0 {
		k = 100
	}
	return k
}

// FromHits converts first-stage hits to Ranked candidates in retrieval
// order, carrying the retrieval score. This is both the "w/o
// Re-ranking" ablation path and the degraded fallback when the second
// stage fails.
func (p *Pipeline) FromHits(hits []vindex.Hit) []Ranked {
	out := make([]Ranked, 0, len(hits))
	for _, h := range hits {
		c := p.Pool[h.ID]
		out = append(out, Ranked{ID: h.ID, Score: float64(h.Score), Dialect: c.Dialect, SQL: c.SQL})
	}
	return out
}

// RerankContext runs the second stage only: the re-ranker reorders the
// retrieved hits. The context is observed between forward passes.
func (p *Pipeline) RerankContext(ctx context.Context, nl string, hits []vindex.Hit) ([]Ranked, error) {
	return p.RerankVecContext(ctx, nl, nil, hits)
}

// RerankVecContext is RerankContext with an optional precomputed query
// embedding (under p.Encoder). Every candidate is scored exactly once:
// the NL-side features are prepared once per question, the dialect-side
// embeddings come from DialVecs when the snapshot precomputed them, and
// the forward passes fan out across p.Workers. The ranked output is
// bit-identical to sequential per-pair scoring.
func (p *Pipeline) RerankVecContext(ctx context.Context, nl string, qvec vector.Vec, hits []vindex.Hit) ([]Ranked, error) {
	if p.SkipRerank || p.Reranker == nil {
		return p.FromHits(hits), nil
	}
	dialects := make([]string, len(hits))
	var dialVecs []vector.Vec
	if p.DialVecs != nil {
		dialVecs = make([]vector.Vec, len(hits))
	}
	var costs []float64
	if p.Costs != nil {
		costs = make([]float64, len(hits))
	}
	for i, h := range hits {
		dialects[i] = p.Pool[h.ID].Dialect
		if dialVecs != nil {
			dialVecs[i] = p.DialVecs[h.ID]
		}
		if costs != nil {
			costs[i] = p.Costs[h.ID]
		}
	}
	// The cached query embedding substitutes for the extractor's own
	// encode only when both stages share one encoder (they do in every
	// snapshot core builds; the guard keeps hand-assembled pipelines
	// honest).
	var prep *rerank.Prep
	if qvec != nil && p.Reranker.X.Encoder == p.Encoder {
		prep = p.Reranker.X.PrepareVec(nl, qvec)
	} else {
		prep = p.Reranker.X.Prepare(nl)
	}
	order, scores, err := p.Reranker.RankScoresPrepContext(ctx, prep, dialects, dialVecs, costs, p.Workers)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, 0, len(hits))
	for _, idx := range order {
		h := hits[idx]
		c := p.Pool[h.ID]
		out = append(out, Ranked{
			ID:      h.ID,
			Score:   scores[idx],
			Dialect: c.Dialect,
			SQL:     c.SQL,
		})
	}
	return out, nil
}

// Rank runs the full two-stage pipeline and returns the candidates in
// final ranked order.
//
//garlint:allow ctxpass errlost -- compatibility wrapper over RankContext; the fresh root context and the dropped error are the legacy signature
func (p *Pipeline) Rank(nl string) []Ranked {
	out, _ := p.RankContext(context.Background(), nl)
	return out
}

// RankContext is Rank with cancellation threaded through both stages.
func (p *Pipeline) RankContext(ctx context.Context, nl string) ([]Ranked, error) {
	hits, err := p.RetrieveContext(ctx, nl, p.K)
	if err != nil {
		return nil, err
	}
	return p.RerankContext(ctx, nl, hits)
}

// BuildLists constructs the re-ranking model's listwise training groups:
// for each example, the top-k retrieval results form the candidate list
// and the binary labels mark the gold dialect (§III-C2). Examples whose
// gold is not retrieved in the top-k contribute their list with the gold
// appended, so the model still sees a positive (standard practice for
// training with imperfect first stages). Retrieval for all examples
// runs as one batched search instead of a per-example loop.
//
//garlint:allow ctxpass -- training-time helper with no caller context
func (p *Pipeline) BuildLists(examples []Example, k int) []rerank.TrainingList {
	if p.PoolIdx == nil {
		p.PoolIdx = NewPoolIndex(p.Pool)
	}
	golds := make([]int, 0, len(examples))
	nls := make([]string, 0, len(examples))
	for _, ex := range examples {
		goldIdx := p.PoolIdx.Find(ex.Gold)
		if goldIdx < 0 {
			continue
		}
		golds = append(golds, goldIdx)
		nls = append(nls, ex.NL)
	}
	batch, err := p.RetrieveBatchContext(context.Background(), nls, k)
	if err != nil {
		return nil
	}
	lists := make([]rerank.TrainingList, 0, len(nls))
	for j, hits := range batch {
		goldIdx := golds[j]
		list := rerank.TrainingList{NL: nls[j]}
		sawGold := false
		for _, h := range hits {
			list.Dialects = append(list.Dialects, p.Pool[h.ID].Dialect)
			label := 0.0
			if h.ID == goldIdx {
				label = 1
				sawGold = true
			}
			list.Labels = append(list.Labels, label)
			if p.Costs != nil {
				list.Costs = append(list.Costs, p.Costs[h.ID])
			}
		}
		if !sawGold {
			list.Dialects = append(list.Dialects, p.Pool[goldIdx].Dialect)
			list.Labels = append(list.Labels, 1)
			if p.Costs != nil {
				list.Costs = append(list.Costs, p.Costs[goldIdx])
			}
		}
		lists = append(lists, list)
	}
	return lists
}
