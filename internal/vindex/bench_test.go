package vindex_test

import (
	"math/rand"
	"testing"

	"repro/internal/vector"
	"repro/internal/vindex"
)

func fill(idx vindex.Index, n, dim int, seed int64) vector.Vec {
	rng := rand.New(rand.NewSource(seed))
	var q vector.Vec
	for i := 0; i < n; i++ {
		v := make(vector.Vec, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		vector.Normalize(v)
		idx.Add(i, v)
		q = v
	}
	return q
}

// BenchmarkFlatSearch measures exact top-100 search over a pool the size
// of a prepared GAR candidate set.
func BenchmarkFlatSearch(b *testing.B) {
	idx := vindex.NewFlat()
	q := fill(idx, 4000, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Search(q, 100)
	}
}

// BenchmarkIVFSearch measures the clustered (Faiss-style) search.
func BenchmarkIVFSearch(b *testing.B) {
	idx := vindex.NewIVF(64, 8, 2)
	q := fill(idx, 4000, 64, 1)
	idx.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Search(q, 100)
	}
}
