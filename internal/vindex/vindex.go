// Package vindex provides top-k vector similarity search over unit-norm
// embeddings: an exact flat index and an IVF-style clustered index (a
// k-means coarse quantizer over probed inverted lists). It plays the
// role Faiss plays in the paper's inference pipeline (§V-A2): retrieving
// the closest dialect-expression embeddings for an NL query embedding.
package vindex

import (
	"sort"

	"repro/internal/vector"
)

// Hit is one search result.
type Hit struct {
	ID    int
	Score float32 // inner product; cosine for unit vectors
}

// Index is a top-k inner-product search structure.
type Index interface {
	// Add inserts a vector under the caller-chosen id.
	Add(id int, v vector.Vec)
	// Search returns the k highest-scoring ids in descending score
	// order. Fewer than k hits are returned when the index is smaller.
	Search(q vector.Vec, k int) []Hit
	// Len returns the number of stored vectors.
	Len() int
}

// Flat is the exact brute-force index.
type Flat struct {
	ids  []int
	vecs []vector.Vec
}

// NewFlat returns an empty exact index.
func NewFlat() *Flat { return &Flat{} }

// Add implements Index.
func (f *Flat) Add(id int, v vector.Vec) {
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, v)
}

// Len implements Index.
func (f *Flat) Len() int { return len(f.ids) }

// Search implements Index.
func (f *Flat) Search(q vector.Vec, k int) []Hit {
	return topK(q, f.ids, f.vecs, k)
}

// IVF is the clustered index: vectors are assigned to the nearest of
// nlist k-means centroids; a query scans only the nprobe closest lists.
type IVF struct {
	nlist, nprobe int
	seed          int64
	ids           []int
	vecs          []vector.Vec
	centroids     []vector.Vec
	lists         [][]int // centroid → positions in ids/vecs
	built         bool
}

// NewIVF returns an IVF index with nlist clusters probing nprobe lists
// per query. The index trains lazily on first search.
func NewIVF(nlist, nprobe int, seed int64) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	if nprobe < 1 {
		nprobe = 1
	}
	return &IVF{nlist: nlist, nprobe: nprobe, seed: seed}
}

// Add implements Index. Adding invalidates the trained clustering.
func (iv *IVF) Add(id int, v vector.Vec) {
	iv.ids = append(iv.ids, id)
	iv.vecs = append(iv.vecs, v)
	iv.built = false
}

// Len implements Index.
func (iv *IVF) Len() int { return len(iv.ids) }

// Build trains the coarse quantizer; called automatically by Search.
func (iv *IVF) Build() {
	if iv.built || len(iv.vecs) == 0 {
		return
	}
	centroids, assign := vector.KMeans(iv.vecs, iv.nlist, 10, iv.seed)
	iv.centroids = centroids
	iv.lists = make([][]int, len(centroids))
	for i, c := range assign {
		iv.lists[c] = append(iv.lists[c], i)
	}
	iv.built = true
}

// Search implements Index.
func (iv *IVF) Search(q vector.Vec, k int) []Hit {
	iv.Build()
	if len(iv.centroids) == 0 {
		return nil
	}
	// Rank centroids by similarity and scan the top nprobe lists.
	type cs struct {
		c     int
		score float32
	}
	order := make([]cs, len(iv.centroids))
	for i, cent := range iv.centroids {
		order[i] = cs{c: i, score: vector.Dot(q, cent)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	probes := iv.nprobe
	if probes > len(order) {
		probes = len(order)
	}
	var ids []int
	var vecs []vector.Vec
	for _, o := range order[:probes] {
		for _, pos := range iv.lists[o.c] {
			ids = append(ids, iv.ids[pos])
			vecs = append(vecs, iv.vecs[pos])
		}
	}
	return topK(q, ids, vecs, k)
}

func topK(q vector.Vec, ids []int, vecs []vector.Vec, k int) []Hit {
	hits := make([]Hit, 0, len(ids))
	for i, v := range vecs {
		hits = append(hits, Hit{ID: ids[i], Score: vector.Dot(q, v)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
