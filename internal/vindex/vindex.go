// Package vindex provides top-k vector similarity search over unit-norm
// embeddings: an exact flat index and an IVF-style clustered index (a
// k-means coarse quantizer over probed inverted lists). It plays the
// role Faiss plays in the paper's inference pipeline (§V-A2): retrieving
// the closest dialect-expression embeddings for an NL query embedding.
//
// Searches accept a context.Context; cancellation and deadlines are
// checked inside the scoring loops, so a slow scan over a very large
// pool can be abandoned mid-flight. Indexes are safe for concurrent
// searches once populated.
package vindex

import (
	"context"
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/vector"
)

// ctxCheckStride is how many scored vectors pass between context
// checks in the hot loops; a power of two keeps the check a mask.
const ctxCheckStride = 256

// Hit is one search result.
type Hit struct {
	ID    int
	Score float32 // inner product; cosine for unit vectors
}

// Index is a top-k inner-product search structure.
type Index interface {
	// Add inserts a vector under the caller-chosen id. Add must not be
	// called concurrently with Search.
	Add(id int, v vector.Vec)
	// Search returns the k highest-scoring ids in descending score
	// order. Fewer than k hits are returned when the index is smaller.
	Search(q vector.Vec, k int) []Hit
	// SearchContext is Search with cancellation: the scan aborts (and
	// returns the context error) when ctx is done.
	SearchContext(ctx context.Context, q vector.Vec, k int) ([]Hit, error)
	// SearchBatch answers one top-k query per embedding in qs with a
	// single call: the per-query scans fan out across the available
	// CPUs, and out[i] is exactly what SearchContext(ctx, qs[i], k)
	// would return. Batching replaces the per-query loop the training
	// and bulk-evaluation paths would otherwise run sequentially.
	SearchBatch(ctx context.Context, qs []vector.Vec, k int) ([][]Hit, error)
	// Len returns the number of stored vectors.
	Len() int
}

// searchBatch fans a query batch across CPUs over any per-query search
// function, keeping out[i] aligned with qs[i].
func searchBatch(ctx context.Context, qs []vector.Vec, k int,
	search func(ctx context.Context, q vector.Vec, k int) ([]Hit, error)) ([][]Hit, error) {
	out := make([][]Hit, len(qs))
	err := parallel.ForEach(ctx, len(qs), 0, func(i int) error {
		hits, serr := search(ctx, qs[i], k)
		if serr != nil {
			return serr
		}
		out[i] = hits
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Flat is the exact brute-force index.
type Flat struct {
	ids  []int
	vecs []vector.Vec
}

// NewFlat returns an empty exact index.
func NewFlat() *Flat { return &Flat{} }

// Add implements Index.
func (f *Flat) Add(id int, v vector.Vec) {
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, v)
}

// Len implements Index.
func (f *Flat) Len() int { return len(f.ids) }

// Search implements Index.
//
//garlint:allow ctxpass errlost -- compatibility wrapper over SearchContext; the fresh root context and the dropped error are the legacy signature
func (f *Flat) Search(q vector.Vec, k int) []Hit {
	hits, _ := topK(context.Background(), q, f.ids, f.vecs, k)
	return hits
}

// SearchContext implements Index.
func (f *Flat) SearchContext(ctx context.Context, q vector.Vec, k int) ([]Hit, error) {
	return topK(ctx, q, f.ids, f.vecs, k)
}

// SearchBatch implements Index.
func (f *Flat) SearchBatch(ctx context.Context, qs []vector.Vec, k int) ([][]Hit, error) {
	return searchBatch(ctx, qs, k, f.SearchContext)
}

// IVF is the clustered index: vectors are assigned to the nearest of
// nlist k-means centroids; a query scans only the nprobe closest lists.
type IVF struct {
	nlist, nprobe int
	seed          int64
	ids           []int
	vecs          []vector.Vec
	centroids     []vector.Vec
	lists         [][]int // centroid → positions in ids/vecs
	// buildMu serializes the lazy clustering so concurrent first
	// searches do not race; built is only written under buildMu.
	buildMu sync.Mutex
	built   bool
}

// NewIVF returns an IVF index with nlist clusters probing nprobe lists
// per query. The index trains lazily on first search.
func NewIVF(nlist, nprobe int, seed int64) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	if nprobe < 1 {
		nprobe = 1
	}
	return &IVF{nlist: nlist, nprobe: nprobe, seed: seed}
}

// Add implements Index. Adding invalidates the trained clustering.
func (iv *IVF) Add(id int, v vector.Vec) {
	iv.buildMu.Lock()
	iv.ids = append(iv.ids, id)
	iv.vecs = append(iv.vecs, v)
	iv.built = false
	iv.buildMu.Unlock()
}

// Len implements Index.
func (iv *IVF) Len() int {
	iv.buildMu.Lock()
	defer iv.buildMu.Unlock()
	return len(iv.ids)
}

// Build trains the coarse quantizer; called automatically by Search.
// It is safe to call from concurrent searches.
func (iv *IVF) Build() {
	iv.buildMu.Lock()
	defer iv.buildMu.Unlock()
	if iv.built || len(iv.vecs) == 0 {
		return
	}
	centroids, assign := vector.KMeans(iv.vecs, iv.nlist, 10, iv.seed)
	iv.centroids = centroids
	iv.lists = make([][]int, len(centroids))
	for i, c := range assign {
		iv.lists[c] = append(iv.lists[c], i)
	}
	iv.built = true
}

// Search implements Index.
//
//garlint:allow ctxpass errlost -- compatibility wrapper over SearchContext; the fresh root context and the dropped error are the legacy signature
func (iv *IVF) Search(q vector.Vec, k int) []Hit {
	hits, _ := iv.SearchContext(context.Background(), q, k)
	return hits
}

// SearchContext implements Index. The centroid ranking and the probed
// scans both observe cancellation.
func (iv *IVF) SearchContext(ctx context.Context, q vector.Vec, k int) ([]Hit, error) {
	iv.Build()
	if len(iv.centroids) == 0 {
		return nil, ctx.Err()
	}
	// Rank centroids by similarity and scan the top nprobe lists.
	type cs struct {
		c     int
		score float32
	}
	order := make([]cs, len(iv.centroids))
	for i, cent := range iv.centroids {
		if i&(ctxCheckStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		order[i] = cs{c: i, score: vector.Dot(q, cent)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	probes := iv.nprobe
	if probes > len(order) {
		probes = len(order)
	}
	var ids []int
	var vecs []vector.Vec
	for _, o := range order[:probes] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, pos := range iv.lists[o.c] {
			ids = append(ids, iv.ids[pos])
			vecs = append(vecs, iv.vecs[pos])
		}
	}
	return topK(ctx, q, ids, vecs, k)
}

// SearchBatch implements Index. The coarse quantizer is built once up
// front so concurrent per-query scans never contend on the lazy build.
func (iv *IVF) SearchBatch(ctx context.Context, qs []vector.Vec, k int) ([][]Hit, error) {
	iv.Build()
	return searchBatch(ctx, qs, k, iv.SearchContext)
}

// better is the ranking order of hits: score descending, ID ascending
// on ties. It is a strict total order, which is what makes the bounded
// heap selection below return exactly the prefix a full sort would.
func better(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// topK scores every vector against q and returns the k best hits in
// `better` order. For k well below the pool size it keeps a bounded
// min-heap (worst hit at the root) instead of sorting the whole score
// slice: O(n log k) with a k-sized footprint rather than O(n log n)
// over the full pool, which is the dominant cost of first-stage
// retrieval over large candidate pools.
func topK(ctx context.Context, q vector.Vec, ids []int, vecs []vector.Vec, k int) ([]Hit, error) {
	if k <= 0 || k >= len(ids) {
		hits := make([]Hit, 0, len(ids))
		for i, v := range vecs {
			if i&(ctxCheckStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			hits = append(hits, Hit{ID: ids[i], Score: vector.Dot(q, v)})
		}
		sort.Slice(hits, func(i, j int) bool { return better(hits[i], hits[j]) })
		return hits, nil
	}

	// heap[0] is the worst of the k best seen so far (min-heap under
	// `better`).
	heap := make([]Hit, 0, k)
	for i, v := range vecs {
		if i&(ctxCheckStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		h := Hit{ID: ids[i], Score: vector.Dot(q, v)}
		if len(heap) < k {
			heap = append(heap, h)
			siftUp(heap, len(heap)-1)
			continue
		}
		if better(h, heap[0]) {
			heap[0] = h
			siftDown(heap, 0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return better(heap[i], heap[j]) })
	return heap, nil
}

// siftUp restores the min-heap property (worst hit at the root, under
// `better`) after appending at position i.
func siftUp(h []Hit, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !better(h[parent], h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []Hit, i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && better(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && better(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
