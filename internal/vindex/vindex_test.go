package vindex_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/vector"
	"repro/internal/vindex"
)

func randomUnit(rng *rand.Rand, dim int) vector.Vec {
	v := make(vector.Vec, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return vector.Normalize(v)
}

func TestFlatExactTopK(t *testing.T) {
	idx := vindex.NewFlat()
	idx.Add(0, vector.Vec{1, 0})
	idx.Add(1, vector.Vec{0, 1})
	idx.Add(2, vector.Normalize(vector.Vec{1, 1}))
	hits := idx.Search(vector.Vec{1, 0}, 2)
	if len(hits) != 2 || hits[0].ID != 0 || hits[1].ID != 2 {
		t.Fatalf("unexpected hits: %+v", hits)
	}
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by score")
	}
}

func TestFlatKLargerThanIndex(t *testing.T) {
	idx := vindex.NewFlat()
	idx.Add(7, vector.Vec{1, 0})
	hits := idx.Search(vector.Vec{1, 0}, 10)
	if len(hits) != 1 || hits[0].ID != 7 {
		t.Fatalf("unexpected hits: %+v", hits)
	}
}

func TestIVFMatchesFlatWithFullProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	flat := vindex.NewFlat()
	ivf := vindex.NewIVF(8, 8, 3) // probing all lists ⇒ exact
	for i := 0; i < 200; i++ {
		v := randomUnit(rng, 16)
		flat.Add(i, v)
		ivf.Add(i, v)
	}
	for trial := 0; trial < 10; trial++ {
		q := randomUnit(rng, 16)
		fh := flat.Search(q, 5)
		ih := ivf.Search(q, 5)
		if len(fh) != len(ih) {
			t.Fatalf("result sizes differ: %d vs %d", len(fh), len(ih))
		}
		for i := range fh {
			if fh[i].ID != ih[i].ID {
				t.Fatalf("trial %d: rank %d differs: flat %d vs ivf %d", trial, i, fh[i].ID, ih[i].ID)
			}
		}
	}
}

func TestIVFRecallWithPartialProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	flat := vindex.NewFlat()
	ivf := vindex.NewIVF(16, 4, 5)
	vecs := make([]vector.Vec, 500)
	for i := range vecs {
		vecs[i] = randomUnit(rng, 24)
		flat.Add(i, vecs[i])
		ivf.Add(i, vecs[i])
	}
	// Query near stored points: recall@10 should be high even with a
	// quarter of the lists probed.
	hitSum, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		q := vecs[rng.Intn(len(vecs))]
		want := map[int]bool{}
		for _, h := range flat.Search(q, 10) {
			want[h.ID] = true
		}
		for _, h := range ivf.Search(q, 10) {
			if want[h.ID] {
				hitSum++
			}
		}
		total += 10
	}
	recall := float64(hitSum) / float64(total)
	if recall < 0.6 {
		t.Errorf("IVF recall@10 too low: %.2f", recall)
	}
}

func TestIVFRebuildAfterAdd(t *testing.T) {
	ivf := vindex.NewIVF(2, 2, 1)
	ivf.Add(0, vector.Vec{1, 0})
	if got := ivf.Search(vector.Vec{1, 0}, 1); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("initial search wrong: %+v", got)
	}
	ivf.Add(1, vector.Vec{0, 1})
	got := ivf.Search(vector.Vec{0, 1}, 1)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("vector added after build not found: %+v", got)
	}
	if ivf.Len() != 2 {
		t.Errorf("Len = %d, want 2", ivf.Len())
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	if hits := vindex.NewFlat().Search(vector.Vec{1}, 3); len(hits) != 0 {
		t.Errorf("empty flat index returned hits: %+v", hits)
	}
	if hits := vindex.NewIVF(4, 2, 1).Search(vector.Vec{1}, 3); len(hits) != 0 {
		t.Errorf("empty ivf index returned hits: %+v", hits)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	idx := vindex.NewFlat()
	idx.Add(5, vector.Vec{1, 0})
	idx.Add(3, vector.Vec{1, 0})
	hits := idx.Search(vector.Vec{1, 0}, 2)
	if hits[0].ID != 3 || hits[1].ID != 5 {
		t.Errorf("tie break should order by id: %+v", hits)
	}
}

// TestHeapSelectionMatchesFullSort pins the bounded-heap top-k to the
// full-sort semantics across every k, including heavy score ties.
func TestHeapSelectionMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	idx := vindex.NewFlat()
	n := 300
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			// Duplicate vectors force exact score ties.
			idx.Add(i, vector.Vec{1, 0, 0})
		} else {
			idx.Add(i, randomUnit(rng, 3))
		}
	}
	q := randomUnit(rng, 3)
	// k >= n takes the full-sort path; smaller k takes the heap path.
	full := idx.Search(q, n)
	for _, k := range []int{1, 2, 7, 50, 299} {
		got := idx.Search(q, k)
		if len(got) != k {
			t.Fatalf("k=%d: got %d hits", k, len(got))
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("k=%d: rank %d differs: heap %+v vs sort %+v", k, i, got[i], full[i])
			}
		}
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	flat := vindex.NewFlat()
	ivf := vindex.NewIVF(8, 8, 3)
	for i := 0; i < 250; i++ {
		v := randomUnit(rng, 12)
		flat.Add(i, v)
		ivf.Add(i, v)
	}
	qs := make([]vector.Vec, 40)
	for i := range qs {
		qs[i] = randomUnit(rng, 12)
	}
	for _, idx := range []vindex.Index{flat, ivf} {
		batch, err := idx.SearchBatch(context.Background(), qs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(qs) {
			t.Fatalf("batch size %d, want %d", len(batch), len(qs))
		}
		for qi, q := range qs {
			want, err := idx.SearchContext(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[qi]) != len(want) {
				t.Fatalf("query %d: %d hits vs %d", qi, len(batch[qi]), len(want))
			}
			for i := range want {
				if batch[qi][i] != want[i] {
					t.Fatalf("query %d rank %d: batch %+v vs sequential %+v", qi, i, batch[qi][i], want[i])
				}
			}
		}
	}
}

func TestSearchBatchCancellation(t *testing.T) {
	idx := vindex.NewFlat()
	for i := 0; i < 100; i++ {
		idx.Add(i, vector.Vec{1, 0})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.SearchBatch(ctx, []vector.Vec{{1, 0}, {0, 1}}, 5); err == nil {
		t.Fatal("cancelled batch search must fail")
	}
}
