package component_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/component"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// queryPool is a varied set of queries for property tests.
var queryPool = []string{
	"SELECT a FROM t",
	"SELECT a, b FROM t WHERE c = 1",
	"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
	"SELECT a FROM t ORDER BY b DESC LIMIT 1",
	"SELECT t.a FROM t JOIN s ON t.id = s.tid WHERE s.x > 5",
	"SELECT a FROM t WHERE b IN (SELECT c FROM s) ORDER BY a",
	"SELECT a FROM t WHERE c = 2 INTERSECT SELECT a FROM t WHERE d = 3",
	"SELECT DISTINCT a FROM t WHERE b BETWEEN 1 AND 9",
}

var poolCfg = &quick.Config{
	MaxCount: 200,
	Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(sqlparse.MustParse(queryPool[rng.Intn(len(queryPool))]))
		vals[1] = reflect.ValueOf(rng.Int63())
	},
}

// TestReplaceSelfIsIdentity: replacing a component with itself preserves
// the query's fingerprint (Extract ∘ Replace fixed point).
func TestReplaceSelfIsIdentity(t *testing.T) {
	if err := quick.Check(func(q *sqlast.Query, seed int64) bool {
		comps := component.Extract(q)
		rng := rand.New(rand.NewSource(seed))
		c := comps[rng.Intn(len(comps))]
		out := component.Replace(q, c)
		if sqlast.Fingerprint(out) != sqlast.Fingerprint(q) {
			t.Logf("self-replace changed %q → %q (kind %v)", q, out, c.Kind)
			return false
		}
		return true
	}, poolCfg); err != nil {
		t.Error(err)
	}
}

// TestReplaceNeverMutatesBase: Replace and Remove leave the base query
// untouched.
func TestReplaceNeverMutatesBase(t *testing.T) {
	if err := quick.Check(func(q *sqlast.Query, seed int64) bool {
		before := q.String()
		rng := rand.New(rand.NewSource(seed))
		donorQ := sqlparse.MustParse(queryPool[rng.Intn(len(queryPool))])
		for _, donor := range component.Extract(donorQ) {
			_ = component.Replace(q, donor)
		}
		for _, k := range component.Kinds {
			_ = component.Remove(q, k)
		}
		return q.String() == before
	}, poolCfg); err != nil {
		t.Error(err)
	}
}

// TestExtractedFingerprintsStable: extracting twice yields identical
// component fingerprints in identical order.
func TestExtractedFingerprintsStable(t *testing.T) {
	if err := quick.Check(func(q *sqlast.Query, _ int64) bool {
		a := component.Extract(q)
		b := component.Extract(q)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Fingerprint() != b[i].Fingerprint() {
				return false
			}
		}
		return true
	}, poolCfg); err != nil {
		t.Error(err)
	}
}

// TestRemoveDropsKind: after Remove(k), the query no longer has a
// component of kind k.
func TestRemoveDropsKind(t *testing.T) {
	removable := []component.Kind{
		component.KindWhere, component.KindGroup,
		component.KindOrder, component.KindCompound,
	}
	if err := quick.Check(func(q *sqlast.Query, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := removable[rng.Intn(len(removable))]
		out := component.Remove(q, k)
		if out == nil {
			return false
		}
		return !component.Has(out, k)
	}, poolCfg); err != nil {
		t.Error(err)
	}
}
