package component_test

import (
	"strings"
	"testing"

	"repro/internal/component"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

const gold = "SELECT employee.name FROM employee JOIN evaluation ON employee.employee_id = evaluation.employee_id ORDER BY evaluation.bonus DESC LIMIT 1"

func TestExtractKinds(t *testing.T) {
	q := sqlparse.MustParse(gold)
	got := map[component.Kind]bool{}
	for _, c := range component.Extract(q) {
		got[c.Kind] = true
	}
	for _, want := range []component.Kind{component.KindSelect, component.KindJoin, component.KindOrder} {
		if !got[want] {
			t.Errorf("missing component kind %v", want)
		}
	}
	if got[component.KindFrom] {
		t.Error("a join query must not expose a from component")
	}
	if got[component.KindWhere] || got[component.KindGroup] || got[component.KindCompound] {
		t.Errorf("unexpected kinds present: %v", got)
	}
}

func TestExtractAllSeven(t *testing.T) {
	q := sqlparse.MustParse(`SELECT a FROM t WHERE b = 1 GROUP BY a HAVING COUNT(*) > 2
		ORDER BY a LIMIT 3 INTERSECT SELECT a FROM s`)
	kinds := map[component.Kind]bool{}
	for _, c := range component.Extract(q) {
		kinds[c.Kind] = true
	}
	want := []component.Kind{component.KindSelect, component.KindFrom, component.KindWhere,
		component.KindGroup, component.KindOrder, component.KindCompound}
	for _, k := range want {
		if !kinds[k] {
			t.Errorf("missing kind %v", k)
		}
	}
}

func TestReplaceSelect(t *testing.T) {
	q := sqlparse.MustParse(gold)
	donorQ := sqlparse.MustParse("SELECT employee.age FROM employee")
	donor, ok := component.Of(donorQ, component.KindSelect)
	if !ok {
		t.Fatal("donor select component missing")
	}
	out := component.Replace(q, donor)
	want := "SELECT employee.age FROM employee JOIN evaluation ON employee.employee_id = evaluation.employee_id ORDER BY evaluation.bonus DESC LIMIT 1"
	if got := out.String(); got != want {
		t.Errorf("Replace select:\n got %s\nwant %s", got, want)
	}
	// The base query must be untouched.
	if q.String() != gold {
		t.Error("Replace mutated the base query")
	}
}

func TestReplaceOrder(t *testing.T) {
	base := sqlparse.MustParse("SELECT employee.name FROM employee")
	donor, _ := component.Of(sqlparse.MustParse(gold), component.KindOrder)
	out := component.Replace(base, donor)
	if !strings.Contains(out.String(), "ORDER BY evaluation.bonus DESC LIMIT 1") {
		t.Errorf("order component not installed: %s", out)
	}
}

func TestReplaceCompound(t *testing.T) {
	base := sqlparse.MustParse("SELECT a FROM t")
	donor, _ := component.Of(sqlparse.MustParse("SELECT b FROM s UNION SELECT c FROM r"), component.KindCompound)
	out := component.Replace(base, donor)
	if out.Op != sqlast.Union || out.Right == nil {
		t.Errorf("compound component not installed: %s", out)
	}
}

func TestRemove(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t WHERE b = 1 ORDER BY a LIMIT 2")
	out := component.Remove(q, component.KindWhere)
	if strings.Contains(out.String(), "WHERE") {
		t.Errorf("where not removed: %s", out)
	}
	out = component.Remove(q, component.KindOrder)
	if strings.Contains(out.String(), "ORDER") || strings.Contains(out.String(), "LIMIT") {
		t.Errorf("order not removed: %s", out)
	}
	if component.Remove(q, component.KindSelect) != nil {
		t.Error("select removal must be rejected")
	}
}

func TestComponentPayloadIsolation(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t WHERE b = 'x'")
	c, _ := component.Of(q, component.KindWhere)
	// Mutating the extracted payload must not affect the query.
	sqlast.WalkExprs(c.Where, func(e sqlast.Expr) {
		if l, ok := e.(*sqlast.Lit); ok {
			l.Text = "mutated"
		}
	})
	if strings.Contains(q.String(), "mutated") {
		t.Error("extracted component shares nodes with the query")
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	a, _ := component.Of(sqlparse.MustParse("SELECT a, b FROM t"), component.KindSelect)
	b, _ := component.Of(sqlparse.MustParse("SELECT b, a FROM t"), component.KindSelect)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("select fingerprints differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	c, _ := component.Of(sqlparse.MustParse("SELECT a, c FROM t"), component.KindSelect)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different select lists share a fingerprint")
	}
}

func TestSubqueryAtomic(t *testing.T) {
	// Rule 4: the where component carries its subquery whole.
	q := sqlparse.MustParse("SELECT a FROM t WHERE b IN (SELECT c FROM s WHERE d = 1)")
	c, ok := component.Of(q, component.KindWhere)
	if !ok {
		t.Fatal("where component missing")
	}
	if !strings.Contains(sqlast.ExprString(c.Where), "SELECT c FROM s") {
		t.Errorf("subquery not preserved: %s", sqlast.ExprString(c.Where))
	}
}
