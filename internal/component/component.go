// Package component implements the SQL component model of the GAR paper
// (Definition 1, Table 2): the seven component types — select, from,
// where, group, order, join, compound — and the operations the
// compositional generalizer needs: extracting the components of a parse
// tree and recomposing a parse tree with a replacement component.
//
// Following the paper's Rule 4 (Sub-query Preservation), subqueries are
// treated as atomic: components are extracted from the top-level SELECT
// block only, and a predicate containing a subquery moves as a whole
// inside its where component.
package component

import (
	"sort"
	"strings"

	"repro/internal/sqlast"
)

// Kind is a component type from Table 2 of the paper.
type Kind int

// The seven component types.
const (
	KindSelect Kind = iota
	KindFrom        // single-table FROM clause
	KindJoin        // multi-table FROM clause with its join conditions
	KindWhere
	KindGroup // GROUP BY together with HAVING
	KindOrder // ORDER BY together with LIMIT
	KindCompound
)

// Kinds lists all component kinds.
var Kinds = []Kind{KindSelect, KindFrom, KindJoin, KindWhere, KindGroup, KindOrder, KindCompound}

// String returns the paper's name for the component type.
func (k Kind) String() string {
	switch k {
	case KindSelect:
		return "select"
	case KindFrom:
		return "from"
	case KindJoin:
		return "join"
	case KindWhere:
		return "where"
	case KindGroup:
		return "group"
	case KindOrder:
		return "order"
	case KindCompound:
		return "compound"
	default:
		return "unknown"
	}
}

// Component is one extracted subtree. Exactly the fields relevant to its
// Kind are populated. Payloads share no nodes with the source query
// (they are deep copies), so components can be stored and reused freely.
type Component struct {
	Kind Kind

	// KindSelect
	Distinct bool
	Items    []sqlast.SelectItem

	// KindFrom / KindJoin
	From *sqlast.From

	// KindWhere
	Where sqlast.Expr

	// KindGroup
	GroupBy []*sqlast.ColumnRef
	Having  sqlast.Expr

	// KindOrder
	OrderBy []sqlast.OrderItem
	Limit   int

	// KindCompound
	Op    sqlast.SetOp
	Right *sqlast.Query
}

// Extract returns all components present in the query's top-level block
// (plus its compound component, if any). The query itself is not
// modified; payloads are deep copies.
func Extract(q *sqlast.Query) []Component {
	s := q.Select
	var out []Component
	sel := Component{Kind: KindSelect, Distinct: s.Distinct}
	for _, it := range s.Items {
		sel.Items = append(sel.Items, sqlast.SelectItem{Expr: sqlast.CloneExpr(it.Expr)})
	}
	out = append(out, sel)

	fromKind := KindFrom
	if len(s.From.Tables) > 1 {
		fromKind = KindJoin
	}
	fc := s.Clone().From
	out = append(out, Component{Kind: fromKind, From: &fc})

	if s.Where != nil {
		out = append(out, Component{Kind: KindWhere, Where: sqlast.CloneExpr(s.Where)})
	}
	if len(s.GroupBy) > 0 {
		g := Component{Kind: KindGroup, Having: sqlast.CloneExpr(s.Having)}
		for _, c := range s.GroupBy {
			cc := *c
			g.GroupBy = append(g.GroupBy, &cc)
		}
		out = append(out, g)
	}
	if len(s.OrderBy) > 0 {
		o := Component{Kind: KindOrder, Limit: s.Limit}
		for _, it := range s.OrderBy {
			o.OrderBy = append(o.OrderBy, sqlast.OrderItem{Expr: sqlast.CloneExpr(it.Expr), Desc: it.Desc})
		}
		out = append(out, o)
	}
	if q.Op != sqlast.SetNone {
		out = append(out, Component{Kind: KindCompound, Op: q.Op, Right: q.Right.Clone()})
	}
	return out
}

// Of returns the query's component of the given kind, if present.
func Of(q *sqlast.Query, k Kind) (Component, bool) {
	for _, c := range Extract(q) {
		if c.Kind == k {
			return c, true
		}
	}
	return Component{}, false
}

// Has reports whether the query has a component of the given kind.
func Has(q *sqlast.Query, k Kind) bool {
	_, ok := Of(q, k)
	return ok
}

// Replace returns a deep copy of q with its component of c.Kind replaced
// by c. Replacing a kind the query does not have installs the component
// (e.g. attaching an order component to an unordered query); that is how
// recomposition grows coverage beyond strict swaps.
func Replace(q *sqlast.Query, c Component) *sqlast.Query {
	out := q.Clone()
	s := out.Select
	switch c.Kind {
	case KindSelect:
		s.Distinct = c.Distinct
		s.Items = nil
		for _, it := range c.Items {
			s.Items = append(s.Items, sqlast.SelectItem{Expr: sqlast.CloneExpr(it.Expr)})
		}
	case KindFrom, KindJoin:
		cp := cloneFrom(c.From)
		s.From = *cp
	case KindWhere:
		s.Where = sqlast.CloneExpr(c.Where)
	case KindGroup:
		s.GroupBy = nil
		for _, g := range c.GroupBy {
			cc := *g
			s.GroupBy = append(s.GroupBy, &cc)
		}
		s.Having = sqlast.CloneExpr(c.Having)
	case KindOrder:
		s.OrderBy = nil
		for _, o := range c.OrderBy {
			s.OrderBy = append(s.OrderBy, sqlast.OrderItem{Expr: sqlast.CloneExpr(o.Expr), Desc: o.Desc})
		}
		s.Limit = c.Limit
	case KindCompound:
		out.Op = c.Op
		out.Right = c.Right.Clone()
	}
	return out
}

// Remove returns a deep copy of q with the component of kind k removed.
// Select, from and join components cannot be removed (a query needs
// them); Remove returns nil for those kinds.
func Remove(q *sqlast.Query, k Kind) *sqlast.Query {
	switch k {
	case KindSelect, KindFrom, KindJoin:
		return nil
	}
	out := q.Clone()
	s := out.Select
	switch k {
	case KindWhere:
		s.Where = nil
	case KindGroup:
		s.GroupBy = nil
		s.Having = nil
	case KindOrder:
		s.OrderBy = nil
		s.Limit = 0
	case KindCompound:
		out.Op = sqlast.SetNone
		out.Right = nil
	}
	return out
}

func cloneFrom(f *sqlast.From) *sqlast.From {
	out := &sqlast.From{}
	for _, t := range f.Tables {
		out.Tables = append(out.Tables, sqlast.TableRef{Name: t.Name, Alias: t.Alias, Sub: t.Sub.Clone()})
	}
	out.Joins = append(out.Joins, f.Joins...)
	return out
}

// Fingerprint returns a canonical identity string for the component,
// used for frequency counting and deduplication. Literal values are not
// masked here; callers mask queries before extraction when desired.
func (c Component) Fingerprint() string {
	var b strings.Builder
	b.WriteString(c.Kind.String())
	b.WriteByte(':')
	switch c.Kind {
	case KindSelect:
		var items []string
		for _, it := range c.Items {
			items = append(items, strings.ToLower(sqlast.ExprString(it.Expr)))
		}
		sort.Strings(items)
		if c.Distinct {
			b.WriteString("distinct ")
		}
		b.WriteString(strings.Join(items, ","))
	case KindFrom, KindJoin:
		var tables []string
		for _, t := range c.From.Tables {
			if t.Sub != nil {
				tables = append(tables, "("+strings.ToLower(t.Sub.String())+")")
			} else {
				tables = append(tables, strings.ToLower(t.Name))
			}
		}
		sort.Strings(tables)
		var edges []string
		for _, j := range c.From.Joins {
			l := strings.ToLower(sqlast.ExprString(&j.Left))
			r := strings.ToLower(sqlast.ExprString(&j.Right))
			if r < l {
				l, r = r, l
			}
			edges = append(edges, l+"="+r)
		}
		sort.Strings(edges)
		b.WriteString(strings.Join(tables, ","))
		b.WriteByte('|')
		b.WriteString(strings.Join(edges, ","))
	case KindWhere:
		b.WriteString(strings.ToLower(sqlast.ExprString(c.Where)))
	case KindGroup:
		var keys []string
		for _, g := range c.GroupBy {
			keys = append(keys, strings.ToLower(sqlast.ExprString(g)))
		}
		sort.Strings(keys)
		b.WriteString(strings.Join(keys, ","))
		if c.Having != nil {
			b.WriteString("|having ")
			b.WriteString(strings.ToLower(sqlast.ExprString(c.Having)))
		}
	case KindOrder:
		var keys []string
		for _, o := range c.OrderBy {
			k := strings.ToLower(sqlast.ExprString(o.Expr))
			if o.Desc {
				k += " desc"
			}
			keys = append(keys, k)
		}
		b.WriteString(strings.Join(keys, ","))
		if c.Limit > 0 {
			b.WriteString("|limit")
		}
	case KindCompound:
		b.WriteString(strings.ToLower(c.Op.String()))
		b.WriteByte(' ')
		b.WriteString(strings.ToLower(c.Right.String()))
	}
	return b.String()
}
