package execguide

import "repro/internal/sqlast"

// EstimateCost is a static cost proxy for a candidate: per SELECT block
// (top level, compound arms, and every nested subquery) the number of
// scanned relations weighted by the projection width, so a three-way
// join selecting many columns estimates far above a single-table count.
// It deliberately ignores data statistics — the signal separates
// structurally heavy candidates from light ones, which is all the
// re-ranker's cost feature needs.
func EstimateCost(q *sqlast.Query) float64 {
	var cost float64
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		s := sub.Select
		if s == nil {
			return
		}
		scans := float64(len(s.From.Tables))
		if scans == 0 {
			scans = 1
		}
		// Joins multiply the scanned space; the nested-loop engine pays
		// the product, the proxy charges the join count linearly.
		scans += float64(len(s.From.Joins))
		width := float64(len(s.Items)) + 1
		blockCost := scans * width
		if len(s.GroupBy) > 0 {
			blockCost += 2
		}
		if len(s.OrderBy) > 0 {
			blockCost += 1
		}
		cost += blockCost
	})
	return cost
}

// costScale normalizes EstimateCost into [0, 1): a single-table
// single-column query lands near 0.3, heavy multi-join candidates
// saturate toward 1.
const costScale = 8.0

// CostFeature maps the raw estimate into [0, 1) for use as a re-ranker
// input feature. A nil query costs 0.
func CostFeature(q *sqlast.Query) float64 {
	if q == nil {
		return 0
	}
	c := EstimateCost(q)
	return c / (c + costScale)
}
