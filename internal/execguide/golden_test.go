package execguide

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/generalize"
	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

var update = flag.Bool("update", false, "rewrite the golden verdict files from current classifications")

// TestGoldenVerdicts pins the demotion verdict of every query in the
// committed generalized pools (employee: the paper's 34-query running
// example; flights: the Fig. 7 scenario). Any change to seeding,
// harvesting or classification shows up as a golden diff and must be
// reviewed — regenerate deliberately with:
//
//	go test ./internal/execguide -run TestGoldenVerdicts -update
func TestGoldenVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		db      *schema.Database
		samples []string
	}{
		{"employee", schematest.Employee(), []string{
			"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
			"SELECT name FROM employee WHERE age > 30",
			"SELECT age FROM employee WHERE city = 'Austin'",
			"SELECT city, COUNT(*) FROM employee GROUP BY city",
			"SELECT AVG(bonus) FROM evaluation",
			"SELECT COUNT(*) FROM employee",
			"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
			"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
			"SELECT city FROM employee",
		}},
		{"flights", schematest.Flights(), []string{
			"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
			"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
			"SELECT COUNT(*) FROM flights",
			"SELECT city FROM airports",
			"SELECT airportName FROM airports WHERE city = 'Austin'",
			"SELECT airline FROM airlines WHERE country = 'USA'",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			samples := make([]*sqlast.Query, len(c.samples))
			for i, s := range c.samples {
				samples[i] = sqlparse.MustParse(s)
			}
			res := generalize.Generalize(c.db, samples, generalize.Config{
				TargetSize: 300,
				Seed:       42,
				Rules:      generalize.AllRules(),
			})
			g := New(c.db, nil, HarvestSeeds(c.db, samples), Config{
				TopK:   len(res.Queries),
				Budget: time.Second,
			})
			verdicts, err := g.Inspect(context.Background(), res.Queries)
			if err != nil {
				t.Fatal(err)
			}

			var sb strings.Builder
			fmt.Fprintf(&sb, "# verdicts for the %s pool (%d queries), seed 42\n", c.name, len(res.Queries))
			for i, v := range verdicts {
				fmt.Fprintf(&sb, "%02d\t%s\trows=%d\t%s", i, v.Outcome, v.Rows, res.Queries[i])
				if v.Detail != "" {
					fmt.Fprintf(&sb, "\t# %s", v.Detail)
				}
				sb.WriteByte('\n')
			}
			got := sb.String()

			path := filepath.Join("testdata", c.name+"_pool.golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("verdicts diverged from %s (regenerate with -update if deliberate):\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
