// Package execguide implements execution-guided reranking: after the
// learned two-stage ranking has ordered the candidates, the top-k are
// executed against a small deterministic sample instance seeded from
// the database schema (and, when available, the spec's content values),
// and candidates whose execution errors, times out, or returns a
// degenerate result are demoted below the candidates that executed
// cleanly. This is the execution-guided trick from the text-to-SQL
// literature (cf. T5QL's ranking and METASQL's multi-ranking): the
// learned ranker proposes, the engine disposes.
//
// The package also supplies the estimated-cost signal (join count ×
// scan width proxy) that the LTR pipeline feeds to the re-ranker as a
// static feature; see EstimateCost/CostFeature.
//
// Everything here is deterministic: the sample instance depends only on
// the schema and the content values, candidates are executed in rank
// order, and the demotion rules are pure functions of the execution
// outcomes — so exec-guided rankings are byte-identical across worker
// counts and runs.
package execguide

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// errBudget marks a per-candidate budget expiry, distinct from the
// caller's context ending (which aborts the whole sweep).
var errBudget = errors.New("execguide: candidate budget exceeded")

// Config tunes the guide. The zero value gives serving defaults.
type Config struct {
	// TopK is how many of the best-ranked candidates are executed
	// (default 8). Candidates beyond TopK are never demoted — execution
	// evidence exists only for the head of the list.
	TopK int
	// Budget caps one candidate's execution wall time (default 25ms). A
	// candidate that exceeds it is marked Timeout and demoted; the
	// runaway execution is abandoned, so a pathological candidate can
	// never stall the translation beyond TopK × Budget.
	Budget time.Duration
	// Rows is the number of rows seeded per table (default 6).
	Rows int
}

func (c *Config) fill() {
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.Budget <= 0 {
		c.Budget = 25 * time.Millisecond
	}
	if c.Rows <= 0 {
		c.Rows = 6
	}
}

// Guide executes ranked candidates against a deterministic seeded
// sample instance and classifies the outcomes. A Guide is immutable
// after New and safe for concurrent use (engine execution only reads
// the instance).
type Guide struct {
	cfg  Config
	inst *engine.Instance
}

// New builds a guide for the database. content, when non-nil, donates
// its distinct text cell values per column (the same value index the
// value linker uses); seeds carries literals harvested from the spec's
// sample queries (see HarvestSeeds), so seeded rows contain the values
// a post-processed candidate is likely to filter on. Without either,
// synthetic per-column values are used. Seeding is pure: the same
// schema, content and seeds always produce the same instance.
func New(db *schema.Database, content *engine.Instance, seeds Seeds, cfg Config) *Guide {
	cfg.fill()
	text := mergeText(contentValues(db, content), seeds.Text)
	g := &Guide{cfg: cfg, inst: seedInstance(db, text, seeds.Number, cfg.Rows)}
	return g
}

// mergeText unions content values with harvested literals per column,
// keeping the result sorted and distinct.
func mergeText(content map[string][]string, harvested map[string][]string) map[string][]string {
	if len(harvested) == 0 {
		return content
	}
	out := make(map[string][]string, len(content)+len(harvested))
	for k, vs := range content {
		out[k] = vs
	}
	for k, vs := range harvested {
		set := make(map[string]bool, len(out[k])+len(vs))
		for _, v := range out[k] {
			set[v] = true
		}
		for _, v := range vs {
			set[v] = true
		}
		merged := make([]string, 0, len(set))
		for v := range set {
			merged = append(merged, v)
		}
		sort.Strings(merged)
		out[k] = merged
	}
	return out
}

// Instance exposes the seeded sample instance (read-only use: property
// tests execute pool queries against it directly).
func (g *Guide) Instance() *engine.Instance { return g.inst }

// contentValues collects the sorted distinct text values of every
// column of the content instance, keyed by lower-cased "table.column".
func contentValues(db *schema.Database, content *engine.Instance) map[string][]string {
	if content == nil {
		return nil
	}
	seen := make(map[string]map[string]bool)
	for tname, td := range content.Tables {
		if db.Table(tname) == nil {
			continue
		}
		for _, row := range td.Rows {
			for ci, v := range row {
				if v.Null || v.IsNum || v.Str == "" || ci >= len(td.Columns) {
					continue
				}
				key := strings.ToLower(tname + "." + td.Columns[ci])
				if seen[key] == nil {
					seen[key] = make(map[string]bool)
				}
				seen[key][v.Str] = true
			}
		}
	}
	out := make(map[string][]string, len(seen))
	for key, set := range seen {
		vals := make([]string, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out[key] = vals
	}
	return out
}

// seeder resolves the deterministic value of (table, column, row),
// following single-column foreign keys so join columns line up across
// tables: the child row copies the parent row's key value.
type seeder struct {
	db   *schema.Database
	vals map[string][]string
	nums map[string][]float64
	rows int
}

// value is a pure function of its arguments. depth guards FK cycles.
func (s *seeder) value(t *schema.Table, col *schema.Column, row, colIdx, depth int) engine.Value {
	if depth < 8 {
		for _, fk := range s.db.ForeignKeys {
			if !strings.EqualFold(fk.FromTable, t.Name) || !strings.EqualFold(fk.FromColumn, col.Name) {
				continue
			}
			pt := s.db.Table(fk.ToTable)
			if pt == nil {
				break
			}
			pc := pt.Column(fk.ToColumn)
			if pc == nil {
				break
			}
			var pIdx int
			for i, c := range pt.Columns {
				if c == pc {
					pIdx = i
				}
			}
			return s.value(pt, pc, row, pIdx, depth+1)
		}
	}
	isKey := t.IsKey(col.Name)
	key := strings.ToLower(t.Name + "." + col.Name)
	if col.Type == schema.Number {
		if isKey {
			// Distinct ascending ids; FK copies above hit the same row
			// index, so every child row joins to exactly one parent.
			return engine.Num(float64(row + 1))
		}
		if nums := straddle(s.nums[key]); len(nums) > 0 {
			// Harvested comparison literals, each straddled by ±1, so a
			// candidate filtering with <, = or > against a spec value
			// finds both matching and non-matching rows; padded to one
			// distinct value per row so a filtered projection of this
			// column never collapses to a false constant.
			for len(nums) < s.rows {
				nums = append(nums, nums[len(nums)-1]+2)
			}
			return engine.Num(nums[row%len(nums)])
		}
		// Repeating small values so GROUP BY and duplicate detection
		// have something to chew on.
		return engine.Num(float64((row%3)*5 + colIdx + 1))
	}
	vals := s.vals[key]
	if isKey {
		if len(vals) >= s.rows {
			return engine.Str(vals[row])
		}
		// Key columns must stay distinct per row.
		return engine.Str(fmt.Sprintf("%s_%s_%d", strings.ToLower(t.Name), strings.ToLower(col.Name), row+1))
	}
	// Non-key text: the masked-literal text first — value post-processing
	// cannot always instantiate a placeholder (no content to link
	// against), and a filter on 'value' must still be satisfiable — then
	// the harvested/content values, padded with synthetic filler to one
	// distinct value per row. Distinct rows keep a filtered projection
	// from looking constant by accident.
	cycle := make([]string, 0, s.rows)
	cycle = append(cycle, sqlast.PlaceholderValue)
	for _, v := range vals {
		if v != sqlast.PlaceholderValue {
			cycle = append(cycle, v)
		}
	}
	for n := 1; len(cycle) < s.rows; n++ {
		cycle = append(cycle, fmt.Sprintf("%s_%d", strings.ToLower(col.Name), n))
	}
	return engine.Str(cycle[row%len(cycle)])
}

// straddle expands each harvested numeric literal v into v-1, v, v+1
// (sorted, distinct), so every comparison direction is satisfiable.
func straddle(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	set := make(map[float64]bool, 3*len(vals))
	for _, v := range vals {
		set[v-1] = true
		set[v] = true
		set[v+1] = true
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// seedInstance builds the deterministic sample instance: rows rows per
// table, values resolved by the seeder.
func seedInstance(db *schema.Database, vals map[string][]string, nums map[string][]float64, rows int) *engine.Instance {
	inst := engine.NewInstance(db)
	s := &seeder{db: db, vals: vals, nums: nums, rows: rows}
	for _, t := range db.Tables {
		for row := 0; row < rows; row++ {
			tuple := make([]engine.Value, len(t.Columns))
			for ci, c := range t.Columns {
				tuple[ci] = s.value(t, c, row, ci, 0)
			}
			if err := inst.Insert(t.Name, tuple...); err != nil {
				// Unreachable by construction (the tuple matches the
				// schema's column count); skipping the row keeps New
				// infallible without masking a real engine change.
				break
			}
		}
	}
	return inst
}

// Outcome classifies one executed candidate.
type Outcome int

// Outcomes, from best to worst. OK keeps the candidate's rank;
// Empty/Constant/Duplicate demote it below every clean candidate
// (degenerate but executable); Error/Timeout demote it to the bottom.
const (
	OK Outcome = iota
	Empty
	Constant
	Duplicate
	Error
	Timeout
)

// String names the outcome for goldens and health output.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Empty:
		return "empty"
	case Constant:
		return "constant"
	case Duplicate:
		return "duplicate"
	case Error:
		return "error"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// DemotionClass buckets the outcome: 0 keeps the learned rank, 1 is a
// soft demotion (degenerate result), 2 a hard demotion (no result).
func (o Outcome) DemotionClass() int {
	switch o {
	case Empty, Constant, Duplicate:
		return 1
	case Error, Timeout:
		return 2
	default:
		return 0
	}
}

// Verdict is the execution evidence for one candidate.
type Verdict struct {
	// Index is the candidate's position in the ranked list handed to
	// Inspect.
	Index int
	// Outcome classifies the execution.
	Outcome Outcome
	// Rows is the result cardinality (0 unless the execution finished).
	Rows int
	// Detail explains non-OK outcomes (the error text, the duplicate's
	// better-ranked index, …).
	Detail string
}

// execResult carries one candidate's raw execution out of its goroutine.
type execResult struct {
	res *engine.Result
	err error
}

// Inspect executes the first min(TopK, len(queries)) candidates in rank
// order against the sample instance and classifies each one. It fails
// only when ctx ends before the sweep completes; per-candidate
// failures are verdicts, not errors.
func (g *Guide) Inspect(ctx context.Context, queries []*sqlast.Query) ([]Verdict, error) {
	k := g.cfg.TopK
	if k > len(queries) {
		k = len(queries)
	}
	verdicts := make([]Verdict, k)
	results := make([]*engine.Result, k)
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		verdicts[i] = Verdict{Index: i}
		res, err := g.execOne(ctx, queries[i])
		switch {
		case errors.Is(err, errBudget):
			verdicts[i].Outcome = Timeout
			verdicts[i].Detail = fmt.Sprintf("exceeded %v budget", g.cfg.Budget)
		case err != nil:
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			verdicts[i].Outcome = Error
			verdicts[i].Detail = err.Error()
		default:
			results[i] = res
			verdicts[i].Rows = len(res.Rows)
		}
	}
	classify(queries, verdicts, results)
	return verdicts, nil
}

// execOne runs one candidate under the per-candidate budget. The
// execution runs on its own goroutine with a recover boundary (an
// engine bug must become a verdict, not a crash); on timeout the
// goroutine is abandoned — the buffered channel lets it finish and be
// collected without anyone listening.
func (g *Guide) execOne(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	done := make(chan execResult, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				done <- execResult{err: fmt.Errorf("execguide: candidate panicked: %v", rec)}
			}
		}()
		res, err := g.inst.Exec(q)
		done <- execResult{res: res, err: err}
	}()
	timer := time.NewTimer(g.cfg.Budget)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.res, r.err
	case <-timer.C:
		return nil, errBudget
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// classify applies the degenerate-result rules to the executed
// candidates, in rank order so "duplicate of a better-ranked candidate"
// is well defined. The rules:
//
//   - Empty: the candidate returned zero rows while some sibling
//     executed cleanly with rows — relative emptiness is the signal, a
//     question whose every candidate is empty demotes none of them;
//   - Constant: every column of a multi-row result holds one distinct
//     value — the query degenerated to a constant;
//   - Duplicate: the result equals a better-ranked clean candidate's
//     result (ordered comparison iff the candidate has ORDER BY) — the
//     lower-ranked copy adds nothing.
func classify(queries []*sqlast.Query, verdicts []Verdict, results []*engine.Result) {
	anyRows := false
	for i := range verdicts {
		if results[i] != nil && len(results[i].Rows) > 0 {
			anyRows = true
		}
	}
	for i := range verdicts {
		if results[i] == nil {
			continue // Error/Timeout already classified.
		}
		res := results[i]
		switch {
		case len(res.Rows) == 0:
			if anyRows {
				verdicts[i].Outcome = Empty
				verdicts[i].Detail = "empty result while sibling candidates return rows"
			}
		case constantColumns(res):
			verdicts[i].Outcome = Constant
			verdicts[i].Detail = "every column is a single repeated value"
		default:
			for j := 0; j < i; j++ {
				if results[j] == nil || verdicts[j].Outcome != OK {
					continue
				}
				if engine.ResultsEqual(results[j], res, hasOrderBy(queries[i])) {
					verdicts[i].Outcome = Duplicate
					verdicts[i].Detail = fmt.Sprintf("result equals better-ranked candidate %d", j)
					break
				}
			}
		}
	}
}

// constantColumns reports whether a result with at least two rows holds
// exactly one distinct value in every column.
func constantColumns(res *engine.Result) bool {
	if len(res.Rows) < 2 {
		return false
	}
	first := res.Rows[0]
	for _, row := range res.Rows[1:] {
		for ci := range row {
			if ci < len(first) && !row[ci].Equal(first[ci]) {
				return false
			}
		}
	}
	return true
}

// hasOrderBy reports whether the query's top-level block orders its
// output, which decides ordered vs multiset result comparison.
func hasOrderBy(q *sqlast.Query) bool {
	return q != nil && q.Select != nil && len(q.Select.OrderBy) > 0
}

// Reorder turns execution verdicts into a new ranking of n candidates:
// clean candidates keep their learned order, candidates beyond the
// executed head follow unchanged (no evidence, no demotion), softly
// demoted candidates (degenerate results) come next, and hard-demoted
// ones (error/timeout) sink to the bottom. Within each band the learned
// order is preserved, so the permutation is deterministic.
func Reorder(n int, verdicts []Verdict) []int {
	demoted := make(map[int]int, len(verdicts))
	for _, v := range verdicts {
		if v.Index < n {
			demoted[v.Index] = v.Outcome.DemotionClass()
		}
	}
	out := make([]int, 0, n)
	for band := 0; band <= 2; band++ {
		for i := 0; i < n; i++ {
			if demoted[i] == band {
				out = append(out, i)
			}
		}
	}
	return out
}
